// hobbit_serve — the block lookup service.
//
// Speaks the LineService protocol (see src/serve/service.h) either over
// stdin/stdout (the default, and `--stdio` explicitly) or, with
// `--listen`/`--port`, as an event-driven multi-client TCP server (see
// src/serve/reactor.h) hosting many concurrent conversations:
//
//   hobbit_sim export-snapshot --scale 0.05 --out epoch1.snap
//   # one conversation over a pipe:
//   printf 'LOOKUP 20.0.1.7\nSTATS\nQUIT\n' |
//       hobbit_serve --snapshot epoch1.snap --threads 4
//   # many concurrent clients over TCP:
//   hobbit_serve --snapshot epoch1.snap --threads 4 --port 7424 &
//   printf 'LOOKUP 20.0.1.7\nQUIT\n' | nc 127.0.0.1 7424
//
// Diagnostics go to stderr; stdout carries only protocol replies (stdio
// mode), so the binary pipes cleanly.  SIGINT/SIGTERM trigger a graceful
// drain: pending replies are flushed before the server exits.

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/parallel.h"
#include "serve/reactor.h"
#include "serve/service.h"

namespace {

hobbit::serve::Reactor* g_reactor = nullptr;

void HandleSignal(int) {
  if (g_reactor != nullptr) g_reactor->Stop();  // async-signal-safe
}

int Usage() {
  std::cerr <<
      "usage: hobbit_serve [--snapshot FILE] [--threads N] [--stdio]\n"
      "                    [--mmap] [--mmap-verify]\n"
      "                    [--prefault [populate|willneed]]\n"
      "                    [--listen ADDR] [--port P]\n"
      "                    [--max-connections N] [--idle-timeout-ms T]\n"
      "                    [--use-poll]\n"
      "  serves LOOKUP/BATCH/RELOAD/STATS/QUIT; without --snapshot,\n"
      "  start empty and load via RELOAD.  --mmap serves snapshots\n"
      "  zero-copy straight from the page cache with per-section\n"
      "  checksums deferred (structural checks still run at load);\n"
      "  --mmap-verify maps but verifies checksums up front.\n"
      "  --prefault faults the mapped snapshot in at load time instead\n"
      "  of on first query: 'populate' (the default) blocks until every\n"
      "  page is resident (MAP_POPULATE), 'willneed' kicks off async\n"
      "  readahead (madvise).  Only meaningful with --mmap/--mmap-verify\n"
      "  and applies to RELOADs too.  Default transport is\n"
      "  stdin/stdout; --listen/--port starts the multi-client TCP\n"
      "  server (--port 0 picks an ephemeral port, printed to stderr).\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path;
  int threads = 1;
  bool stdio = true;
  hobbit::serve::ReactorOptions options;
  hobbit::serve::SnapshotLoadOptions load_options;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--snapshot" && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (flag == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (flag == "--mmap") {
      load_options.use_mmap = true;
      load_options.defer_verification = true;
    } else if (flag == "--mmap-verify") {
      load_options.use_mmap = true;
      load_options.defer_verification = false;
    } else if (flag == "--prefault") {
      load_options.prefault = hobbit::serve::PrefaultMode::kPopulate;
      // Optional mode argument; anything else is the next flag.
      if (i + 1 < argc) {
        const std::string mode = argv[i + 1];
        if (mode == "populate") {
          ++i;
        } else if (mode == "willneed") {
          load_options.prefault = hobbit::serve::PrefaultMode::kWillNeed;
          ++i;
        }
      }
    } else if (flag == "--stdio") {
      stdio = true;
    } else if (flag == "--listen" && i + 1 < argc) {
      options.bind_address = argv[++i];
      stdio = false;
    } else if (flag == "--port" && i + 1 < argc) {
      options.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
      stdio = false;
    } else if (flag == "--max-connections" && i + 1 < argc) {
      options.max_connections =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (flag == "--idle-timeout-ms" && i + 1 < argc) {
      options.idle_timeout =
          std::chrono::milliseconds(std::atoll(argv[++i]));
    } else if (flag == "--use-poll") {
      options.use_poll = true;
    } else {
      return Usage();
    }
  }

  hobbit::common::ThreadPool pool(threads);
  hobbit::serve::SnapshotStore store;
  hobbit::serve::ServeMetrics metrics;
  if (!snapshot_path.empty()) {
    std::string error;
    if (!store.ReloadFromFile(snapshot_path, &error, load_options)) {
      std::cerr << "cannot load snapshot: " << error << "\n";
      return 1;
    }
    metrics.reloads.fetch_add(1, std::memory_order_relaxed);
    auto snapshot = store.Current();
    std::cerr << "serving " << snapshot_path << ": "
              << snapshot->entry_count() << " /24s, "
              << snapshot->block_count() << " blocks, epoch "
              << snapshot->epoch()
              << (snapshot->is_mapped() ? " (mmap)" : "")
              << (snapshot->fully_verified() ? "" : " (deferred verify)")
              << "\n";
  } else {
    std::cerr << "no snapshot loaded; waiting for RELOAD\n";
  }

  if (stdio) {
    hobbit::serve::LineService service(&store, &metrics, &pool);
    service.set_reload_options(load_options);
    std::size_t commands = service.Run(std::cin, std::cout);
    std::cerr << "session end: " << commands << " command(s)\n";
    return 0;
  }

  hobbit::serve::Reactor reactor(&store, &metrics, &pool, options);
  reactor.service()->set_reload_options(load_options);
  std::string error;
  if (!reactor.Listen(&error)) {
    std::cerr << "cannot listen on " << options.bind_address << ":"
              << options.port << ": " << error << "\n";
    return 1;
  }
  std::cerr << "listening on " << options.bind_address << ":"
            << reactor.port() << "\n";
  g_reactor = &reactor;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);  // broken pipes surface as write errors
  int rc = reactor.Run();
  g_reactor = nullptr;
  const auto& stats = reactor.stats();
  std::cerr << "server end: " << stats.accepted.load() << " accepted, "
            << stats.commands.load() << " command(s), "
            << stats.bytes_out.load() << " bytes out"
            << (rc == 0 ? "" : " (drain timeout)") << "\n";
  return rc;
}
