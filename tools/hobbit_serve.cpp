// hobbit_serve — the block lookup service.
//
// Speaks the LineService protocol (see src/serve/service.h) over
// stdin/stdout, serving a compiled snapshot (produced by
// `hobbit_sim export-snapshot`) with RCU hot-swap on RELOAD:
//
//   hobbit_sim export-snapshot --scale 0.05 --out epoch1.snap
//   printf 'LOOKUP 20.0.1.7\nSTATS\nQUIT\n' |
//       hobbit_serve --snapshot epoch1.snap --threads 4
//
// Diagnostics go to stderr; stdout carries only protocol replies, so the
// binary pipes cleanly.

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/parallel.h"
#include "serve/service.h"

namespace {

int Usage() {
  std::cerr <<
      "usage: hobbit_serve [--snapshot FILE] [--threads N]\n"
      "  serves LOOKUP/BATCH/RELOAD/STATS/QUIT over stdin/stdout;\n"
      "  without --snapshot, start empty and load via RELOAD.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--snapshot" && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (flag == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else {
      return Usage();
    }
  }

  hobbit::common::ThreadPool pool(threads);
  hobbit::serve::SnapshotStore store;
  hobbit::serve::ServeMetrics metrics;
  if (!snapshot_path.empty()) {
    std::string error;
    if (!store.ReloadFromFile(snapshot_path, &error)) {
      std::cerr << "cannot load snapshot: " << error << "\n";
      return 1;
    }
    metrics.reloads.fetch_add(1, std::memory_order_relaxed);
    auto snapshot = store.Current();
    std::cerr << "serving " << snapshot_path << ": "
              << snapshot->entry_count() << " /24s, "
              << snapshot->block_count() << " blocks, epoch "
              << snapshot->epoch() << "\n";
  } else {
    std::cerr << "no snapshot loaded; waiting for RELOAD\n";
  }

  hobbit::serve::LineService service(&store, &metrics, &pool);
  std::size_t commands = service.Run(std::cin, std::cout);
  std::cerr << "session end: " << commands << " command(s)\n";
  return 0;
}
