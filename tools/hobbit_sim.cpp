// hobbit_sim — command-line driver for the whole library.
//
// The synthetic Internet is deterministic in (seed, scale), so every
// subcommand regenerates the world it needs; measurement artifacts are
// exchanged through the text formats in hobbit/resultio.h and
// cluster/blockio.h.
//
//   hobbit_sim generate   [--seed N] [--scale S]
//   hobbit_sim measure    [--seed N] [--scale S] [--threads T]
//                         [--results FILE] [--blocks FILE] [--mcl]
//   hobbit_sim classify   <prefix/24> [--seed N] [--scale S]
//   hobbit_sim traceroute <address>   [--seed N] [--scale S] [--mda]
//   hobbit_sim rdns       <address>   [--seed N] [--scale S]
//   hobbit_sim whois      <prefix>    [--seed N] [--scale S]
//   hobbit_sim stats      --results FILE
//   hobbit_sim lookup     <prefix/24> --blocks FILE
//   hobbit_sim export-snapshot --out FILE [--blocks FILE [--results FILE]]
//                         [--seed N] [--scale S] [--threads T] [--mcl]
//                         [--epoch E] [--v2]
//   hobbit_sim stream-campaign [--seed N] [--scale S] [--threads T]
//                         [--window W] [--segment B] [--publish-every K]
//                         [--churn-every M] [--verify] [--out FILE]
//                         [--epoch E]
//   hobbit_sim scenario   [--seed N] [--scale S] [--threads T]
//                         [--loss P] [--ratelimit P] [--loops P]
//                         [--churn N] [--perpacket N] [--outage PREFIX]
//                         [--segment B] [--mda-lite] [--stream]

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "cluster/aggregate.h"
#include "cluster/blockio.h"
#include "common/parallel.h"
#include "hobbit/hierarchy.h"
#include "hobbit/pipeline.h"
#include "hobbit/resultio.h"
#include "netsim/internet.h"
#include "netsim/rdns.h"
#include "probing/traceroute.h"
#include "serve/snapshot.h"
#include "serve/store.h"
#include "scenario/scenario.h"
#include "scenario/scenario_stream.h"
#include "stream/stream.h"

namespace {

using namespace hobbit;

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& flag) const { return flags.count(flag) > 0; }
  std::string Get(const std::string& flag,
                  const std::string& fallback) const {
    auto pos = flags.find(flag);
    return pos == flags.end() ? fallback : pos->second;
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      std::string name = token.substr(2);
      // Boolean flags take no value; value flags consume the next token.
      if (name == "mcl" || name == "mda" || name == "verify" ||
          name == "mda-lite" || name == "stream" || name == "v2") {
        args.flags[name] = "1";
      } else if (i + 1 < argc) {
        args.flags[name] = argv[++i];
      } else {
        args.flags[name] = "";
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

netsim::Internet BuildWorld(const Args& args) {
  netsim::InternetConfig config;
  config.seed = std::strtoull(args.Get("seed", "42").c_str(), nullptr, 10);
  config.scale = std::atof(args.Get("scale", "0.1").c_str());
  return netsim::BuildInternet(config);
}

int Usage() {
  std::cerr <<
      "usage: hobbit_sim <command> [args]\n"
      "  generate   [--seed N] [--scale S]           world summary\n"
      "  measure    [--seed N] [--scale S] [--threads T]\n"
      "             [--results FILE] [--blocks FILE] [--mcl]\n"
      "  classify   <prefix/24> [--seed N] [--scale S]\n"
      "  traceroute <address> [--seed N] [--scale S] [--mda]\n"
      "  rdns       <address> [--seed N] [--scale S]\n"
      "  whois      <prefix>  [--seed N] [--scale S]\n"
      "  stats      --results FILE\n"
      "  lookup     <prefix/24> --blocks FILE\n"
      "  export-snapshot --out FILE [--blocks FILE [--results FILE]]\n"
      "             [--seed N] [--scale S] [--threads T] [--mcl]\n"
      "             [--epoch E] [--v2]\n"
      "  stream-campaign [--seed N] [--scale S] [--threads T]\n"
      "             [--window W] [--segment B] [--publish-every K]\n"
      "             [--churn-every M] [--verify] [--out FILE] [--epoch E]\n"
      "  scenario   [--seed N] [--scale S] [--threads T]\n"
      "             [--loss P] [--ratelimit P] [--loops P]\n"
      "             [--churn N] [--perpacket N] [--outage PREFIX]\n"
      "             [--segment B] [--mda-lite] [--stream]\n";
  return 2;
}

int CmdGenerate(const Args& args) {
  netsim::Internet internet = BuildWorld(args);
  std::map<netsim::SubnetKind, std::size_t> kinds;
  for (std::size_t i = 0; i < internet.topology.subnet_count(); ++i) {
    ++kinds[internet.topology.subnet(static_cast<netsim::SubnetId>(i))
                .kind];
  }
  std::size_t heterogeneous = 0;
  for (const auto& truth : internet.truth) {
    heterogeneous += truth.heterogeneous;
  }
  std::cout << "routers:              " << internet.topology.router_count()
            << "\nsubnets (route entries): "
            << internet.topology.subnet_count()
            << "\nstudy /24s:           " << internet.study_24s.size()
            << "\nheterogeneous /24s:   " << heterogeneous
            << "\nautonomous systems:   " << internet.registry.as_count()
            << "\nsubnet kinds:         residential "
            << kinds[netsim::SubnetKind::kResidential] << ", business "
            << kinds[netsim::SubnetKind::kBusiness] << ", datacenter "
            << kinds[netsim::SubnetKind::kDatacenter] << ", cellular "
            << kinds[netsim::SubnetKind::kCellular] << ", hosting "
            << kinds[netsim::SubnetKind::kHosting] << "\n";
  return 0;
}

int CmdMeasure(const Args& args) {
  netsim::Internet internet = BuildWorld(args);
  // One pool serves probing, MCL clustering and validation reprobing;
  // --threads is the single knob for the whole campaign.
  common::ThreadPool pool(std::atoi(args.Get("threads", "1").c_str()));
  core::PipelineConfig config;
  config.seed =
      std::strtoull(args.Get("seed", "42").c_str(), nullptr, 10);
  config.pool = &pool;
  core::PipelineResult result = core::RunPipeline(internet, config);

  auto counts = result.classification_counts();
  analysis::TextTable table({"class", "count"});
  for (std::size_t c = 0; c < counts.size(); ++c) {
    table.AddRow({core::ToString(static_cast<core::Classification>(c)),
                  std::to_string(counts[c])});
  }
  table.Print(std::cout);

  if (args.Has("results")) {
    std::ofstream out(args.Get("results", ""));
    if (!out) {
      std::cerr << "cannot open results file\n";
      return 1;
    }
    core::WriteResults(out, result.results);
    std::cout << "results -> " << args.Get("results", "") << "\n";
  }
  if (args.Has("blocks")) {
    auto aggregates =
        cluster::AggregateIdentical(result.HomogeneousBlocks());
    if (args.Has("mcl")) {
      cluster::MclAggregationParams mcl_params;
      mcl_params.mcl.pool = &pool;
      auto mcl = cluster::RunMclAggregation(aggregates, mcl_params);
      cluster::ValidationParams validation;
      validation.pool = &pool;
      cluster::ValidateClusters(internet, result.study_blocks, aggregates,
                                mcl, validation);
      aggregates = cluster::MergeValidatedClusters(aggregates, mcl);
    }
    std::ofstream out(args.Get("blocks", ""));
    if (!out) {
      std::cerr << "cannot open blocks file\n";
      return 1;
    }
    cluster::WriteBlocks(out, aggregates);
    std::cout << "blocks (" << aggregates.size() << ") -> "
              << args.Get("blocks", "") << "\n";
  }
  return 0;
}

int CmdClassify(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto prefix = netsim::Prefix::Parse(args.positional[0]);
  if (!prefix || prefix->length() != 24) {
    std::cerr << "need a /24 prefix\n";
    return 2;
  }
  netsim::Internet internet = BuildWorld(args);
  probing::ZmapSnapshot snapshot = probing::RunZmapScan(
      internet, std::span<const netsim::Prefix>(&*prefix, 1));
  if (snapshot.blocks.empty()) {
    std::cout << prefix->ToString() << ": no active addresses\n";
    return 0;
  }
  core::BlockProber prober(internet.simulator.get(), nullptr, {});
  core::BlockResult result =
      prober.ProbeBlock(snapshot.blocks.front(), netsim::Rng(1));
  std::cout << prefix->ToString() << ": "
            << core::ToString(result.classification) << "\n"
            << "snapshot-active: " << result.active_in_snapshot
            << ", usable: " << result.observations.size()
            << ", probes: " << result.probes_used << "\n";
  auto groups = core::GroupByLastHop(result.observations);
  for (const auto& group : groups) {
    std::cout << "  last hop " << group.router.ToString() << ": "
              << group.members.size() << " addrs, range ["
              << group.min.ToString() << ", " << group.max.ToString()
              << "], span "
              << netsim::SpanningPrefix(group.min, group.max).ToString()
              << "\n";
  }
  if (groups.size() >= 2) {
    std::cout << "  hierarchy: "
              << (core::GroupsAreHierarchical(groups) ? "hierarchical"
                                                      : "non-hierarchical")
              << ", aligned-disjoint: "
              << (core::IsAlignedDisjoint(groups) ? "yes" : "no") << "\n";
  }
  const netsim::TruthRecord* truth = internet.TruthOf(*prefix);
  if (truth != nullptr) {
    std::cout << "  ground truth: "
              << (truth->heterogeneous ? "heterogeneous" : "homogeneous")
              << "\n";
  }
  return 0;
}

int CmdTraceroute(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto address = netsim::Ipv4Address::Parse(args.positional[0]);
  if (!address) {
    std::cerr << "bad address\n";
    return 2;
  }
  netsim::Internet internet = BuildWorld(args);
  std::uint64_t serial = 1;
  if (args.Has("mda")) {
    auto routes =
        probing::EnumerateRoutes(*internet.simulator, *address, serial);
    std::cout << routes.size() << " distinct route(s)\n";
    for (std::size_t r = 0; r < routes.size(); ++r) {
      std::cout << "route " << r + 1 << ":";
      for (const auto& hop : routes[r].hops) {
        std::cout << " "
                  << (hop.responsive ? hop.address.ToString() : "*");
      }
      std::cout << "\n";
    }
  } else {
    probing::Route route =
        probing::ParisTraceroute(*internet.simulator, *address, 1, serial);
    for (std::size_t h = 0; h < route.hops.size(); ++h) {
      std::cout << h + 1 << "  "
                << (route.hops[h].responsive
                        ? route.hops[h].address.ToString()
                        : "*")
                << "\n";
    }
    std::cout << (route.reached_destination ? "destination reached"
                                            : "no reply from destination")
              << "\n";
  }
  return 0;
}

int CmdRdns(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto address = netsim::Ipv4Address::Parse(args.positional[0]);
  if (!address) {
    std::cerr << "bad address\n";
    return 2;
  }
  netsim::Internet internet = BuildWorld(args);
  auto name =
      netsim::RdnsName(internet.RdnsSchemeOf(*address), *address);
  std::cout << address->ToString() << " -> "
            << (name ? *name : std::string("NXDOMAIN")) << "\n";
  return 0;
}

int CmdWhois(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto prefix = netsim::Prefix::Parse(args.positional[0]);
  if (!prefix) {
    std::cerr << "bad prefix\n";
    return 2;
  }
  netsim::Internet internet = BuildWorld(args);
  auto as_index = internet.registry.AsOf(prefix->base());
  if (as_index) {
    const auto& info = internet.registry.as_info(*as_index);
    std::cout << "AS" << info.asn << "  " << info.organization << "  "
              << info.country << "  " << netsim::ToString(info.type)
              << "\n";
  } else {
    std::cout << "no allocation found\n";
  }
  for (const auto& record : internet.registry.WhoisLookup(*prefix)) {
    std::cout << record.prefix.ToString() << "  "
              << record.organization_name << "  " << record.network_type
              << "  " << record.registration_date << "\n";
  }
  return 0;
}

int CmdStats(const Args& args) {
  std::ifstream in(args.Get("results", ""));
  if (!in) {
    std::cerr << "cannot open --results file\n";
    return 1;
  }
  std::string error;
  auto records = core::ReadResults(in, &error);
  if (!records) {
    std::cerr << "parse error: " << error << "\n";
    return 1;
  }
  std::map<core::Classification, std::size_t> counts;
  std::uint64_t probes = 0;
  for (const auto& record : *records) {
    ++counts[record.classification];
    probes += static_cast<std::uint64_t>(record.probes_used);
  }
  analysis::TextTable table({"class", "count", "share"});
  for (const auto& [classification, count] : counts) {
    table.AddRow({core::ToString(classification), std::to_string(count),
                  analysis::Pct(static_cast<double>(count) /
                                static_cast<double>(records->size()))});
  }
  table.Print(std::cout);
  std::cout << records->size() << " /24s, " << probes
            << " probe packets\n";
  return 0;
}

int CmdLookup(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto prefix = netsim::Prefix::Parse(args.positional[0]);
  if (!prefix || prefix->length() != 24) {
    std::cerr << "need a /24 prefix\n";
    return 2;
  }
  std::ifstream in(args.Get("blocks", ""));
  if (!in) {
    std::cerr << "cannot open --blocks file\n";
    return 1;
  }
  std::string error;
  auto blocks = cluster::ReadBlocks(in, &error);
  if (!blocks) {
    std::cerr << "parse error: " << error << "\n";
    return 1;
  }
  cluster::BlockIndex index(*blocks);
  int block = index.BlockOf(*prefix);
  if (block < 0) {
    std::cout << prefix->ToString() << ": not in any block\n";
    return 0;
  }
  const auto& b = (*blocks)[static_cast<std::size_t>(block)];
  std::cout << prefix->ToString() << ": block " << block << " ("
            << b.member_24s.size() << " member /24s, "
            << b.last_hops.size() << " last hops)\n";
  for (const auto& member : b.member_24s) {
    std::cout << "  " << member.ToString() << "\n";
  }
  return 0;
}

// Compiles a campaign into the binary serving snapshot.  Two sources:
// archived text artifacts (--blocks, optionally --results), or — with no
// --blocks — a fresh simulated campaign (seed/scale/threads/mcl flags as
// for `measure`), so results flow straight into the compiler.
int CmdExportSnapshot(const Args& args) {
  if (!args.Has("out")) {
    std::cerr << "export-snapshot needs --out\n";
    return 2;
  }
  std::uint64_t epoch =
      std::strtoull(args.Get("epoch", "0").c_str(), nullptr, 10);
  std::vector<cluster::AggregateBlock> blocks;
  std::vector<serve::ClassifiedPrefix> classified;
  if (args.Has("blocks")) {
    std::ifstream in(args.Get("blocks", ""));
    if (!in) {
      std::cerr << "cannot open --blocks file\n";
      return 1;
    }
    std::string error;
    auto parsed = cluster::ReadBlocks(in, &error);
    if (!parsed) {
      std::cerr << "blocks parse error: " << error << "\n";
      return 1;
    }
    blocks = *std::move(parsed);
    if (args.Has("results")) {
      std::ifstream rin(args.Get("results", ""));
      if (!rin) {
        std::cerr << "cannot open --results file\n";
        return 1;
      }
      auto records = core::ReadResults(rin, &error);
      if (!records) {
        std::cerr << "results parse error: " << error << "\n";
        return 1;
      }
      classified = serve::ClassifiedFrom(*records);
    }
  } else {
    netsim::Internet internet = BuildWorld(args);
    common::ThreadPool pool(std::atoi(args.Get("threads", "1").c_str()));
    core::PipelineConfig config;
    config.seed =
        std::strtoull(args.Get("seed", "42").c_str(), nullptr, 10);
    config.pool = &pool;
    core::PipelineResult result = core::RunPipeline(internet, config);
    blocks = cluster::AggregateIdentical(result.HomogeneousBlocks());
    if (args.Has("mcl")) {
      cluster::MclAggregationParams mcl_params;
      mcl_params.mcl.pool = &pool;
      auto mcl = cluster::RunMclAggregation(blocks, mcl_params);
      cluster::ValidationParams validation;
      validation.pool = &pool;
      cluster::ValidateClusters(internet, result.study_blocks, blocks, mcl,
                                validation);
      blocks = cluster::MergeValidatedClusters(blocks, mcl);
    }
    classified = serve::ClassifiedFrom(
        std::span<const core::BlockResult>(result.results));
  }
  // Default layout is the v1 packed form; --v2 emits the 64-byte-aligned
  // mmap-servable layout (HSNP v2) — pair it with `hobbit_serve --mmap`
  // for zero-copy serving.  (README "Serving snapshots" documents both.)
  std::vector<std::byte> snapshot =
      args.Has("v2") ? serve::CompileSnapshotV2(blocks, classified, epoch)
                     : serve::CompileSnapshot(blocks, classified, epoch);
  std::ofstream out(args.Get("out", ""), std::ios::binary);
  if (!out ||
      !out.write(reinterpret_cast<const char*>(snapshot.data()),
                 static_cast<std::streamsize>(snapshot.size()))) {
    std::cerr << "cannot write --out file\n";
    return 1;
  }
  std::cout << "snapshot (" << blocks.size() << " blocks, "
            << classified.size() << " classified /24s, "
            << snapshot.size() << " bytes, epoch " << epoch
            << (args.Has("v2") ? ", v2" : ", v1") << ") -> "
            << args.Get("out", "") << "\n";
  return 0;
}

// The streaming campaign: bounded-memory probing with live delta
// publishing into an in-process SnapshotStore, optional route churn
// between probe waves (--churn-every M flips ECMP orders every M
// blocks), and the delta-vs-full differential check (--verify).
int CmdStreamCampaign(const Args& args) {
  netsim::Internet internet = BuildWorld(args);
  common::ThreadPool pool(std::atoi(args.Get("threads", "1").c_str()));
  serve::SnapshotStore store;

  stream::StreamConfig config;
  config.seed = std::strtoull(args.Get("seed", "42").c_str(), nullptr, 10);
  config.pool = &pool;
  config.window = std::strtoull(args.Get("window", "256").c_str(), nullptr, 10);
  config.segment =
      std::strtoull(args.Get("segment", "0").c_str(), nullptr, 10);
  config.publish_every =
      std::strtoull(args.Get("publish-every", "0").c_str(), nullptr, 10);
  config.epoch_base =
      std::strtoull(args.Get("epoch", "1").c_str(), nullptr, 10);
  config.store = &store;
  config.verify_full_reference = args.Has("verify");

  const std::size_t churn_every =
      std::strtoull(args.Get("churn-every", "0").c_str(), nullptr, 10);
  netsim::Rng churn_rng = netsim::Rng(config.seed).Fork(0xC4024ULL);
  std::size_t churn_flips = 0;
  if (churn_every > 0) {
    if (config.segment == 0 || config.segment > churn_every) {
      config.segment = churn_every;
    }
    config.on_segment_boundary = [&](std::size_t) {
      churn_flips +=
          stream::InjectRouteChurn(internet.topology, churn_rng, 4);
    };
  }
  const std::uint64_t epoch_before = internet.topology.mutation_epoch();

  stream::StreamResult result = stream::RunStreamCampaign(internet, config);
  const stream::StreamStats& stats = result.stats;

  analysis::TextTable table({"class", "count"});
  for (std::size_t c = 0; c < result.classification_counts.size(); ++c) {
    table.AddRow({core::ToString(static_cast<core::Classification>(c)),
                  std::to_string(result.classification_counts[c])});
  }
  table.Print(std::cout);
  std::cout << "measured /24s:      " << stats.measured_24s << "\n"
            << "aggregated blocks:  " << result.blocks.size() << "\n"
            << "probes sent:        " << stats.probes_sent << "\n"
            << "peak in-flight:     " << stats.peak_inflight_results
            << " (bound " << stats.inflight_bound << ")\n"
            << "queue:              pushed=" << stats.results_queue.pushed
            << " push_waits=" << stats.results_queue.push_waits
            << " pop_waits=" << stats.results_queue.pop_waits
            << " peak_depth=" << stats.results_queue.peak_depth << "\n"
            << "publishes:          " << stats.publishes << " ("
            << stats.delta_publishes << " delta, "
            << stats.delta_entries << " patched entries)\n";
  if (churn_every > 0) {
    std::cout << "route churn:        " << churn_flips
              << " flips (topology mutation epoch "
              << epoch_before << " -> "
              << internet.topology.mutation_epoch() << ")\n";
  }
  if (config.verify_full_reference) {
    std::cout << "delta-vs-full:      "
              << (stats.reference_mismatches == 0 ? "identical"
                                                  : "MISMATCH")
              << " (" << stats.publishes << " publishes checked)\n";
  }
  if (stats.publish_failures > 0 || stats.reference_mismatches > 0) {
    std::cerr << "stream publish failures: " << stats.publish_failures
              << ", reference mismatches: " << stats.reference_mismatches
              << "\n";
    return 1;
  }
  if (args.Has("out")) {
    std::ofstream out(args.Get("out", ""), std::ios::binary);
    if (!out ||
        !out.write(
            reinterpret_cast<const char*>(result.final_snapshot.data()),
            static_cast<std::streamsize>(result.final_snapshot.size()))) {
      std::cerr << "cannot write --out file\n";
      return 1;
    }
    std::cout << "final snapshot (" << result.final_snapshot.size()
              << " bytes, epoch "
              << config.epoch_base + stats.publishes - 1 << ") -> "
              << args.Get("out", "") << "\n";
  }
  return 0;
}

// Robustness scenarios: run a campaign under deterministic measurement
// artifacts (probe loss, rate-limit silence, forwarding loops), world
// events (route churn, per-packet LB reconfiguration, outages) and/or
// MDA-Lite probing, then diff the classifications against a clean
// full-MDA baseline of the same world.
int CmdScenario(const Args& args) {
  const std::uint64_t seed =
      std::strtoull(args.Get("seed", "42").c_str(), nullptr, 10);
  const int threads = std::atoi(args.Get("threads", "1").c_str());

  scenario::ScenarioSpec spec;
  spec.seed = seed;
  spec.artifacts.seed = seed;
  spec.artifacts.p_probe_loss = std::atof(args.Get("loss", "0").c_str());
  spec.artifacts.p_rate_limit =
      std::atof(args.Get("ratelimit", "0").c_str());
  spec.artifacts.p_loop = std::atof(args.Get("loops", "0").c_str());
  spec.segment = std::strtoull(args.Get("segment", "0").c_str(), nullptr, 10);

  const std::size_t perpacket =
      std::strtoull(args.Get("perpacket", "0").c_str(), nullptr, 10);
  if (perpacket > 0) {
    scenario::ScenarioEvent event;
    event.action = scenario::ScenarioAction::kLbReconfigure;
    event.wave = 0;
    event.count = perpacket;
    spec.events.push_back(event);
  }
  const std::size_t churn =
      std::strtoull(args.Get("churn", "0").c_str(), nullptr, 10);
  if (churn > 0) {
    scenario::ScenarioEvent event;
    event.action = scenario::ScenarioAction::kRouteChurn;
    event.wave = 1;
    event.repeat = 1;  // every boundary
    event.count = churn;
    spec.events.push_back(event);
  }
  if (args.Has("outage")) {
    auto prefix = netsim::Prefix::Parse(args.Get("outage", ""));
    if (!prefix) {
      std::cerr << "cannot parse --outage prefix\n";
      return 2;
    }
    scenario::ScenarioEvent start;
    start.action = scenario::ScenarioAction::kOutageStart;
    start.wave = 1;
    start.prefix = *prefix;
    spec.events.push_back(start);
    scenario::ScenarioEvent end;
    end.action = scenario::ScenarioAction::kOutageEnd;
    end.wave = 3;
    end.prefix = *prefix;
    spec.events.push_back(end);
  }
  // Wave-keyed events need waves to exist: default to 64-block waves
  // when a schedule was requested without an explicit --segment.
  if (spec.segment == 0 && (churn > 0 || args.Has("outage"))) {
    spec.segment = 64;
  }

  core::PipelineConfig config;
  config.seed = seed;
  config.threads = threads;
  config.prober.mda_lite = args.Has("mda-lite");

  // Clean full-MDA baseline on a pristine copy of the same world
  // (scenario events mutate the topology, so each run gets its own).
  netsim::Internet baseline_world = BuildWorld(args);
  core::PipelineConfig baseline_config = config;
  baseline_config.prober.mda_lite = false;
  core::PipelineResult baseline =
      core::RunPipeline(baseline_world, baseline_config);

  netsim::Internet world = BuildWorld(args);
  std::map<std::uint32_t, std::pair<core::Classification, int>> scenario_by;
  std::uint64_t scenario_probes = 0;
  std::array<std::size_t, 5> counts{};
  scenario::ScenarioStats stats;
  if (args.Has("stream")) {
    common::ThreadPool pool(threads);
    stream::StreamConfig stream_config;
    stream_config.seed = seed;
    stream_config.pool = &pool;
    stream_config.prober = config.prober;
    stream::StreamResult streamed =
        scenario::RunScenarioStream(world, stream_config, spec, &stats);
    for (const stream::StreamRecord& record : streamed.records) {
      scenario_by[record.prefix.base().value()] = {record.classification,
                                                   record.probes_used};
    }
    counts = streamed.classification_counts;
    scenario_probes =
        streamed.stats.setup.probes_sent + streamed.stats.probes_sent;
  } else {
    core::PipelineResult run =
        scenario::RunScenarioPipeline(world, config, spec, &stats);
    for (const core::BlockResult& r : run.results) {
      scenario_by[r.prefix.base().value()] = {r.classification,
                                              r.probes_used};
    }
    counts = run.classification_counts();
    scenario_probes = run.stats.probes_sent;
  }

  analysis::TextTable table({"class", "clean", "scenario"});
  const std::array<std::size_t, 5> clean_counts =
      baseline.classification_counts();
  for (std::size_t c = 0; c < counts.size(); ++c) {
    table.AddRow({core::ToString(static_cast<core::Classification>(c)),
                  std::to_string(clean_counts[c]),
                  std::to_string(counts[c])});
  }
  table.Print(std::cout);

  std::size_t agree = 0, moved = 0, missing = 0;
  for (const core::BlockResult& r : baseline.results) {
    auto pos = scenario_by.find(r.prefix.base().value());
    if (pos == scenario_by.end()) {
      ++missing;
    } else if (pos->second.first == r.classification) {
      ++agree;
    } else {
      ++moved;
    }
  }
  const std::size_t total = baseline.results.size();
  std::cout << "clean baseline /24s: " << total << "\n"
            << "agreement:           " << agree << "/" << total
            << " (reclassified " << moved << ", not measured " << missing
            << ")\n"
            << "probes clean:        " << baseline.stats.probes_sent << "\n"
            << "probes scenario:     " << scenario_probes << "\n";
  const scenario::InjectorCounters injected = stats.injector;
  std::cout << "artifacts:           loss=" << injected.probe_losses
            << " ratelimit=" << injected.rate_limit_silences
            << " loops=" << injected.loop_rewrites << "\n"
            << "events:              " << stats.events_fired << " fired ("
            << stats.churn_flips << " churn flips, "
            << stats.lb_reconfigured << " LB groups reconfigured, "
            << stats.outage_starts << " outages)\n";
  if (args.Has("mda-lite")) {
    const double savings =
        baseline.stats.probes_sent == 0
            ? 0.0
            : 1.0 - static_cast<double>(scenario_probes) /
                        static_cast<double>(baseline.stats.probes_sent);
    std::cout << "mda-lite probe savings vs full: "
              << static_cast<int>(savings * 100.0) << "%\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command == "measure") return CmdMeasure(args);
  if (args.command == "classify") return CmdClassify(args);
  if (args.command == "traceroute") return CmdTraceroute(args);
  if (args.command == "rdns") return CmdRdns(args);
  if (args.command == "whois") return CmdWhois(args);
  if (args.command == "stats") return CmdStats(args);
  if (args.command == "lookup") return CmdLookup(args);
  if (args.command == "export-snapshot") return CmdExportSnapshot(args);
  if (args.command == "stream-campaign") return CmdStreamCampaign(args);
  if (args.command == "scenario") return CmdScenario(args);
  return Usage();
}
