// bench_table3 — reproduces Table 3: "Top 10 ASes having the most number
// of heterogeneous /24 blocks".
//
// Paper: Korea Telecom (AS4766, 8207) and SK Broadband (AS9318, 1798)
// lead with ~60% of all 17,387 heterogeneous /24s; SFR, TDC, TM Net,
// Telenor, ColoCrossing, Caucasus, AS20751 and IRIS follow.

#include <iostream>

#include "analysis/census.h"
#include "analysis/report.h"
#include "common.h"
#include "hobbit/hierarchy.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Table 3: top ASes by heterogeneous /24 count",
                     "paper §4.2");

  const bench::World& world = bench::GetWorld();
  std::vector<netsim::Prefix> heterogeneous;
  for (const core::BlockResult& result : world.pipeline.results) {
    if (result.classification !=
        core::Classification::kDifferentButHierarchical) {
      continue;
    }
    auto groups = core::GroupByLastHop(result.observations);
    if (core::IsAlignedDisjoint(groups)) {
      heterogeneous.push_back(result.prefix);
    }
  }

  auto rows = analysis::CountByAs(world.internet.registry, heterogeneous);
  analysis::TextTable table(
      {"Rank", "# het /24s", "ASN", "Organization", "Country", "Type"});
  std::size_t top2 = 0;
  for (std::size_t i = 0; i < rows.size() && i < 10; ++i) {
    if (i < 2) top2 += rows[i].count;
    table.AddRow({std::to_string(i + 1), std::to_string(rows[i].count),
                  "AS" + std::to_string(rows[i].info.asn),
                  rows[i].info.organization, rows[i].info.country,
                  netsim::ToString(rows[i].info.type)});
  }
  table.Print(std::cout);
  std::cout << "\ntop-2 share: "
            << analysis::Pct(static_cast<double>(top2) /
                             static_cast<double>(heterogeneous.size()))
            << "   (paper: ~60%, Korea Telecom + SK Broadband)\n";
  return 0;
}
