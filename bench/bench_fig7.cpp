// bench_fig7 — reproduces Figure 7: "The length distribution of the
// longest common prefixes between (a) adjacent /24s within homogeneous
// blocks (b) the smallest and the largest /24s".
//
// Paper: (a) >30% of adjacent pairs share 23 bits and ~70% share >= 20 —
// members are largely contiguous; (b) ~40% of blocks span nearly the
// whole address space (LCP 0-1) while only ~5% stay within one /23 —
// blocks are made of scattered contiguous runs.

#include <iostream>
#include <vector>

#include "analysis/adjacency.h"
#include "analysis/report.h"
#include "common.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Figure 7: numerical adjacency of /24s in blocks",
                     "paper §5.3");

  const bench::World& world = bench::GetWorld();
  std::vector<std::size_t> adjacent_hist(24, 0);
  std::vector<std::size_t> endtoend_hist(25, 0);
  std::size_t adjacent_total = 0, multi_blocks = 0;
  for (const cluster::AggregateBlock& block : world.final_blocks) {
    if (block.member_24s.size() < 2) continue;
    ++multi_blocks;
    for (int lcp : analysis::AdjacentLcpLengths(block)) {
      ++adjacent_hist[static_cast<std::size_t>(lcp)];
      ++adjacent_total;
    }
    ++endtoend_hist[static_cast<std::size_t>(
        analysis::EndToEndLcpLength(block))];
  }

  std::cout << "(a) adjacent-pair LCP distribution (" << adjacent_total
            << " pairs in " << multi_blocks << " multi-/24 blocks)\n";
  analysis::TextTable table_a({"LCP length", "share"});
  std::size_t ge20 = 0;
  for (int lcp = 23; lcp >= 0; --lcp) {
    double share = static_cast<double>(adjacent_hist[lcp]) /
                   static_cast<double>(adjacent_total);
    if (lcp >= 20) ge20 += adjacent_hist[lcp];
    if (share >= 0.005) {
      table_a.AddRow({std::to_string(lcp), analysis::Pct(share)});
    }
  }
  table_a.Print(std::cout);
  std::cout << "LCP 23 share: "
            << analysis::Pct(static_cast<double>(adjacent_hist[23]) /
                             adjacent_total)
            << " (paper: >30%)   LCP >= 20 share: "
            << analysis::Pct(static_cast<double>(ge20) / adjacent_total)
            << " (paper: ~70%)\n\n";

  std::cout << "(b) smallest-vs-largest LCP distribution\n";
  analysis::TextTable table_b({"LCP length", "share"});
  std::size_t le1 = endtoend_hist[0] + endtoend_hist[1];
  for (int lcp = 0; lcp <= 24; ++lcp) {
    double share = static_cast<double>(endtoend_hist[lcp]) /
                   static_cast<double>(multi_blocks);
    if (share >= 0.01) {
      table_b.AddRow({std::to_string(lcp), analysis::Pct(share)});
    }
  }
  table_b.Print(std::cout);
  std::cout << "LCP <= 1 share: "
            << analysis::Pct(static_cast<double>(le1) / multi_blocks)
            << " (paper: ~40%)   LCP 23 share: "
            << analysis::Pct(static_cast<double>(endtoend_hist[23]) /
                             multi_blocks)
            << " (paper: ~5%)\n";
  return 0;
}
