// route_corpus.h — shared between bench_metric_choice and bench_fig3:
// a corpus of MDA route *sets* toward every active address of a sample of
// ground-truth-homogeneous /24s (the paper's §3.1 dataset), plus the
// grouping/hierarchy machinery for route-level metrics.
//
// Every address carries a set of routes (per-flow diversity), hence a set
// of keys under each metric; Hobbit's verdict on a metric is: one group,
// or a key common to all addresses, or a non-hierarchical grouping.
#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common.h"
#include "hobbit/hierarchy.h"
#include "probing/traceroute.h"

namespace hobbit::bench {

struct RouteObservation {
  netsim::Ipv4Address address;
  std::vector<probing::Route> routes;  // MDA-enumerated, all reached
};

struct BlockRouteSet {
  netsim::Prefix prefix;
  std::vector<RouteObservation> observations;
};

/// Collects MDA route sets for every snapshot-active address of up to
/// `max_blocks` ground-truth homogeneous /24s.
inline std::vector<BlockRouteSet> CollectRouteCorpus(const World& world,
                                                     std::size_t max_blocks) {
  std::vector<BlockRouteSet> corpus;
  std::uint64_t serial = 1;
  for (const probing::ZmapBlock& block : world.pipeline.study_blocks) {
    if (corpus.size() >= max_blocks) break;
    const netsim::TruthRecord* truth = world.internet.TruthOf(block.prefix);
    if (truth == nullptr || truth->heterogeneous) continue;
    BlockRouteSet entry;
    entry.prefix = block.prefix;
    for (std::uint8_t octet : block.active_octets) {
      netsim::Ipv4Address address(block.prefix.base().value() | octet);
      std::vector<probing::Route> routes = probing::EnumerateRoutes(
          *world.internet.simulator, address, serial);
      if (routes.empty()) continue;
      entry.observations.push_back({address, std::move(routes)});
    }
    if (entry.observations.size() >= 4) corpus.push_back(std::move(entry));
  }
  return corpus;
}

/// Renders a route as a comparison key ("*" for silent hops).
inline std::string RouteKey(const probing::Route& route) {
  std::string key;
  for (const probing::Hop& hop : route.hops) {
    key += hop.responsive ? hop.address.ToString() : "*";
    key.push_back('>');
  }
  return key;
}

/// Keys of one observation under the entire-route metric.
inline std::vector<std::string> RouteKeys(const RouteObservation& obs) {
  std::vector<std::string> keys;
  for (const probing::Route& route : obs.routes) {
    keys.push_back(RouteKey(route));
  }
  return keys;
}

/// Keys under the last-hop metric (unresponsive last hops are skipped).
inline std::vector<std::string> LastHopKeys(const RouteObservation& obs) {
  std::vector<std::string> keys;
  for (const probing::Route& route : obs.routes) {
    const probing::Hop* hop = route.LastHop();
    if (hop != nullptr && hop->responsive) {
      keys.push_back(hop->address.ToString());
    }
  }
  return keys;
}

/// Depth below the deepest hop position at which every route of every
/// observation shows one common responsive router.
inline std::size_t CommonRouterDepth(const BlockRouteSet& block) {
  std::size_t min_len = ~std::size_t{0};
  for (const RouteObservation& obs : block.observations) {
    for (const probing::Route& route : obs.routes) {
      min_len = std::min(min_len, route.hops.size());
    }
  }
  if (min_len == 0 || min_len == ~std::size_t{0}) return 0;
  const probing::Route& reference = block.observations.front().routes.front();
  for (std::size_t depth = min_len; depth-- > 0;) {
    const probing::Hop& first = reference.hops[depth];
    if (!first.responsive) continue;
    bool common = true;
    for (const RouteObservation& obs : block.observations) {
      for (const probing::Route& route : obs.routes) {
        const probing::Hop& hop = route.hops[depth];
        if (!hop.responsive || hop.address != first.address) {
          common = false;
          break;
        }
      }
      if (!common) break;
    }
    if (common) return depth + 1;
  }
  return 0;
}

/// Keys under the sub-path metric: route suffixes below `common_depth`.
inline std::vector<std::string> SubPathKeys(const RouteObservation& obs,
                                            std::size_t common_depth) {
  std::vector<std::string> keys;
  for (const probing::Route& route : obs.routes) {
    std::string key;
    for (std::size_t i = common_depth; i < route.hops.size(); ++i) {
      key += route.hops[i].responsive ? route.hops[i].address.ToString()
                                      : "*";
      key.push_back('>');
    }
    keys.push_back(std::move(key));
  }
  return keys;
}

/// Applies Hobbit's *procedure* to the block under an arbitrary key
/// function mapping an observation to its key set: walk the addresses in
/// a (seeded) random probing order, exactly as the prober would, and
/// declare homogeneity on the first non-hierarchical grouping — or, at
/// exhaustion, when a key is common to every address.  (Non-laminarity is
/// not monotone, so this first-passage semantics differs from evaluating
/// the final grouping once; it is what "applying Hobbit to the partial
/// information" means throughout the paper.)
/// Returns (cardinality = total distinct keys, homogeneous-verdict).
template <typename KeysFn>
std::pair<int, bool> HobbitOnMetric(const BlockRouteSet& block,
                                    KeysFn keys_of) {
  // Seeded shuffle of the probing order.
  std::vector<std::uint32_t> order(block.observations.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  netsim::Rng rng(netsim::StableHash(
      {block.prefix.base().value(), 0x0B5E4EULL}));
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    std::swap(order[i], order[i + rng.NextBelow(order.size() - i)]);
  }

  std::map<std::string,
           std::pair<netsim::Ipv4Address, netsim::Ipv4Address>>
      ranges;  // key -> (min addr, max addr)
  std::set<std::string> common;
  bool first = true;
  bool passed = false;
  for (std::uint32_t index : order) {
    const RouteObservation& obs = block.observations[index];
    std::vector<std::string> keys = keys_of(obs);
    if (keys.empty()) continue;
    std::set<std::string> key_set(keys.begin(), keys.end());
    for (const std::string& key : key_set) {
      auto [pos, inserted] =
          ranges.try_emplace(key, obs.address, obs.address);
      if (!inserted) {
        if (obs.address < pos->second.first) pos->second.first = obs.address;
        if (pos->second.second < obs.address) {
          pos->second.second = obs.address;
        }
      }
    }
    if (first) {
      common = key_set;
      first = false;
    } else if (!common.empty()) {
      std::set<std::string> next;
      std::set_intersection(common.begin(), common.end(), key_set.begin(),
                            key_set.end(),
                            std::inserter(next, next.begin()));
      common = std::move(next);
    }
    if (!passed && common.empty() && ranges.size() >= 2) {
      std::vector<core::AddressGroup> groups;
      groups.reserve(ranges.size());
      for (const auto& [key, range] : ranges) {
        core::AddressGroup group;
        group.min = range.first;
        group.max = range.second;
        groups.push_back(std::move(group));
      }
      passed = !core::GroupsAreHierarchical(groups);
    }
  }
  const int cardinality = static_cast<int>(ranges.size());
  if (ranges.empty()) return {0, false};
  return {cardinality,
          passed || ranges.size() == 1 || !common.empty()};
}

}  // namespace hobbit::bench
