// bench_scenario — the accuracy-vs-cost robustness matrix.
//
// Sweeps scenario × probing-mode over fresh copies of one world:
// scenarios are the classic traceroute pathologies (probe loss,
// rate-limit silence, forwarding loops, per-packet false links, route
// churn, an outage window) from src/scenario, probing modes are full
// MDA vs MDA-Lite.  Each cell reports, against the clean/full-MDA
// baseline of the same world:
//
//   * probe cost,
//   * per-/24 classification agreement with a misclassification
//     breakdown (homogeneous->heterogeneous, the reverse, and blocks
//     that dropped out of analyzability),
//   * homogeneity accuracy against the generator's ground truth
//     (IsHomogeneous vs !TruthRecord::heterogeneous over analyzable
//     blocks),
//   * how often each injector actually fired.
//
// Gates (bench-gate pattern):
//   exit 1 — the clean/full cell is not byte-identical to the plain
//            core::RunPipeline of the same world (the scenario harness
//            must be a no-op at zero intensity);
//   exit 2 — MDA-Lite shows no probe savings on the clean world;
//   exit 3 — an artifact cell ran without its injector ever firing
//            (the adversity would be vacuous).
//
// Results go to BENCH_scenario.json; `--quick` (the `perf` ctest label)
// runs the same matrix at tiny scale.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "hobbit/pipeline.h"
#include "hobbit/resultio.h"
#include "netsim/internet.h"
#include "scenario/scenario.h"

namespace {

using namespace hobbit;

struct Cell {
  std::string name;
  scenario::ScenarioSpec spec;
  bool expects_artifacts = false;  ///< reply-side injector must fire
  bool expects_events = false;     ///< world events must fire
};

struct CellOutcome {
  std::uint64_t probes = 0;
  std::size_t measured = 0;
  std::size_t agree = 0;
  std::size_t homo_to_hetero = 0;
  std::size_t hetero_to_homo = 0;
  std::size_t to_unanalyzable = 0;
  std::size_t from_unanalyzable = 0;
  std::size_t analyzable = 0;
  std::size_t truth_correct = 0;
  scenario::ScenarioStats stats;
  std::string serialized;  ///< WriteResults bytes (identity gate)
};

std::string Serialize(const core::PipelineResult& result) {
  std::ostringstream os;
  core::WriteResults(os, result.results);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::uint64_t seed = bench::WorldSeed();
  const double scale = quick ? 0.02 : bench::WorldScale();
  const int threads = quick ? 2 : 4;
  const std::size_t segment = quick ? 32 : 256;

  bench::PrintHeader("scenario",
                     "robustness: measurement artifacts x probing mode "
                     "(Viger et al. pathologies, MDA-Lite)");
  bench::JsonReporter report("scenario");
  report.Config("seed", static_cast<double>(seed));
  report.Config("scale", scale);
  report.Config("mode", quick ? "quick" : "full");
  report.Config("threads", threads);
  report.Config("segment", static_cast<double>(segment));

  netsim::InternetConfig world_config;
  world_config.seed = seed;
  world_config.scale = scale;

  core::PipelineConfig config;
  config.seed = seed;
  config.threads = threads;
  if (quick) {
    config.calibration_blocks = 60;
    config.samples_per_block = 32;
    config.prober.min_cell_trials = 100;
  }

  // --- clean/full-MDA baseline: the plain batch pipeline.
  netsim::Internet baseline_world = netsim::BuildInternet(world_config);
  core::PipelineResult baseline =
      core::RunPipeline(baseline_world, config);
  const std::string baseline_bytes = Serialize(baseline);
  std::map<std::uint32_t, core::Classification> baseline_class;
  for (const core::BlockResult& r : baseline.results) {
    baseline_class[r.prefix.base().value()] = r.classification;
  }
  std::printf("baseline: %zu /24s, %llu probes\n", baseline.results.size(),
              static_cast<unsigned long long>(baseline.stats.probes_sent));
  report.Metric("baseline_24s", static_cast<double>(baseline.results.size()));
  report.Metric("baseline_probes",
                static_cast<double>(baseline.stats.probes_sent));

  // --- the scenario matrix.
  std::vector<Cell> cells;
  {
    Cell clean;
    clean.name = "clean";
    cells.push_back(clean);

    Cell loss;
    loss.name = "loss";
    loss.spec.artifacts.p_probe_loss = 0.08;
    loss.expects_artifacts = true;
    cells.push_back(loss);

    Cell ratelimit;
    ratelimit.name = "ratelimit";
    ratelimit.spec.artifacts.p_rate_limit = 0.25;
    ratelimit.expects_artifacts = true;
    cells.push_back(ratelimit);

    Cell loops;
    loops.name = "loops";
    loops.spec.artifacts.p_loop = 0.05;
    loops.expects_artifacts = true;
    cells.push_back(loops);

    Cell perpacket;
    perpacket.name = "perpacket";
    scenario::ScenarioEvent reconfigure;
    reconfigure.action = scenario::ScenarioAction::kLbReconfigure;
    reconfigure.wave = 0;
    reconfigure.count = quick ? 8 : 32;
    perpacket.spec.events.push_back(reconfigure);
    perpacket.expects_events = true;
    cells.push_back(perpacket);

    Cell churn;
    churn.name = "churn";
    churn.spec.segment = segment;
    scenario::ScenarioEvent flip;
    flip.action = scenario::ScenarioAction::kRouteChurn;
    flip.wave = 1;
    flip.repeat = 1;
    flip.count = 4;
    churn.spec.events.push_back(flip);
    churn.expects_events = true;
    cells.push_back(churn);

    Cell outage;
    outage.name = "outage";
    outage.spec.segment = segment;
    scenario::ScenarioEvent start;
    start.action = scenario::ScenarioAction::kOutageStart;
    start.wave = 1;
    scenario::ScenarioEvent end;
    end.action = scenario::ScenarioAction::kOutageEnd;
    end.wave = 3;
    // Down a studied /16 for waves 1-2 — the one containing the first
    // block of wave 1 *of the measurement grid* (baseline.study_blocks,
    // the zmap-filtered list all cells share), so the window covers
    // blocks probed while it is dark.  Indexing the unfiltered
    // study_24s would land in wave 0, fully measured before the outage
    // even starts.
    if (!baseline.study_blocks.empty()) {
      const std::size_t wave1_index =
          std::min(segment, baseline.study_blocks.size() - 1);
      const netsim::Prefix slash16 = netsim::Prefix::Of(
          baseline.study_blocks[wave1_index].prefix.base(), 16);
      start.prefix = slash16;
      end.prefix = slash16;
    }
    outage.spec.events.push_back(start);
    outage.spec.events.push_back(end);
    outage.expects_events = true;
    cells.push_back(outage);
  }

  bool identity_ok = true;
  bool injectors_ok = true;
  std::uint64_t clean_full_probes = 0, clean_lite_probes = 0;
  std::size_t clean_lite_agree = 0, clean_lite_measured = 0;

  for (const Cell& cell : cells) {
    for (const bool lite : {false, true}) {
      // Fresh world per run: scenario events mutate the topology.
      netsim::Internet world = netsim::BuildInternet(world_config);
      scenario::ScenarioSpec spec = cell.spec;
      spec.seed = seed;
      spec.artifacts.seed = seed;
      core::PipelineConfig run_config = config;
      run_config.prober.mda_lite = lite;
      CellOutcome outcome;
      core::PipelineResult run =
          scenario::RunScenarioPipeline(world, run_config, spec,
                                        &outcome.stats);
      outcome.probes = run.stats.probes_sent;
      outcome.measured = run.results.size();
      outcome.serialized = Serialize(run);
      for (const core::BlockResult& r : run.results) {
        auto pos = baseline_class.find(r.prefix.base().value());
        const bool have_base = pos != baseline_class.end();
        if (have_base && pos->second == r.classification) ++outcome.agree;
        if (have_base && pos->second != r.classification) {
          const bool base_analyzable = core::IsAnalyzable(pos->second);
          const bool now_analyzable = core::IsAnalyzable(r.classification);
          if (base_analyzable && !now_analyzable) {
            ++outcome.to_unanalyzable;
          } else if (!base_analyzable && now_analyzable) {
            ++outcome.from_unanalyzable;
          } else if (core::IsHomogeneous(pos->second) &&
                     !core::IsHomogeneous(r.classification)) {
            ++outcome.homo_to_hetero;
          } else if (!core::IsHomogeneous(pos->second) &&
                     core::IsHomogeneous(r.classification)) {
            ++outcome.hetero_to_homo;
          }
        }
        if (core::IsAnalyzable(r.classification)) {
          ++outcome.analyzable;
          if (const netsim::TruthRecord* truth = world.TruthOf(r.prefix)) {
            if (core::IsHomogeneous(r.classification) ==
                !truth->heterogeneous) {
              ++outcome.truth_correct;
            }
          }
        }
      }

      const std::string key =
          cell.name + (lite ? "_lite" : "_full");
      const double agreement =
          outcome.measured == 0
              ? 0.0
              : static_cast<double>(outcome.agree) / outcome.measured;
      const double truth_accuracy =
          outcome.analyzable == 0
              ? 0.0
              : static_cast<double>(outcome.truth_correct) /
                    outcome.analyzable;
      const std::uint64_t fired = outcome.stats.injector.total();
      std::printf(
          "%-16s probes %9llu  agree %5.3f  truth %5.3f  "
          "(h->x %zu, x->h %zu, ->n/a %zu; artifacts %llu, events %zu)\n",
          key.c_str(), static_cast<unsigned long long>(outcome.probes),
          agreement, truth_accuracy, outcome.homo_to_hetero,
          outcome.hetero_to_homo, outcome.to_unanalyzable,
          static_cast<unsigned long long>(fired),
          outcome.stats.events_fired);
      report.Metric(key + "_probes", static_cast<double>(outcome.probes));
      report.Metric(key + "_agreement", agreement);
      report.Metric(key + "_truth_accuracy", truth_accuracy);
      report.Metric(key + "_analyzable",
                    static_cast<double>(outcome.analyzable));
      report.Metric(key + "_homo_to_hetero",
                    static_cast<double>(outcome.homo_to_hetero));
      report.Metric(key + "_hetero_to_homo",
                    static_cast<double>(outcome.hetero_to_homo));
      report.Metric(key + "_to_unanalyzable",
                    static_cast<double>(outcome.to_unanalyzable));
      report.Metric(key + "_artifacts", static_cast<double>(fired));

      if (cell.name == "clean" && !lite) {
        clean_full_probes = outcome.probes;
        // The zero-intensity identity gate: the scenario harness with an
        // empty spec must BE the plain pipeline.
        if (outcome.serialized != baseline_bytes ||
            outcome.probes != baseline.stats.probes_sent) {
          identity_ok = false;
        }
      }
      if (cell.name == "clean" && lite) {
        clean_lite_probes = outcome.probes;
        clean_lite_agree = outcome.agree;
        clean_lite_measured = outcome.measured;
      }
      if (cell.expects_artifacts && fired == 0) injectors_ok = false;
      if (cell.expects_events && outcome.stats.events_fired == 0) {
        injectors_ok = false;
      }
    }
  }

  const double lite_savings =
      clean_full_probes == 0
          ? 0.0
          : 1.0 - static_cast<double>(clean_lite_probes) /
                      static_cast<double>(clean_full_probes);
  const double lite_accuracy_delta =
      clean_lite_measured == 0
          ? 0.0
          : 1.0 - static_cast<double>(clean_lite_agree) /
                      static_cast<double>(clean_lite_measured);
  report.Metric("mda_lite_probe_savings", lite_savings);
  report.Metric("mda_lite_accuracy_delta", lite_accuracy_delta);
  report.Metric("zero_intensity_identical", identity_ok ? 1.0 : 0.0);
  report.Write();

  std::printf("mda-lite on the clean world: %.1f%% fewer probes, "
              "%.3f classification delta\n",
              lite_savings * 100.0, lite_accuracy_delta);
  std::printf("zero-intensity scenario vs plain pipeline: %s\n",
              identity_ok ? "byte-identical" : "MISMATCH (bug!)");
  std::printf("injector coverage: %s\n",
              injectors_ok ? "every adverse cell fired"
                           : "an adverse cell never fired (bug!)");

  if (!identity_ok) return 1;
  if (clean_lite_probes >= clean_full_probes) return 2;
  if (!injectors_ok) return 3;
  return 0;
}
