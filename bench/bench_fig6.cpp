// bench_fig6 — reproduces Figure 6: "The CDF of the differences between
// the first RTT and the maximum of the rest RTTs for broadband blocks".
//
// Paper: Tele2, OCN and Verizon Wireless blocks show large positive
// differences (~50% of addresses > 0.5s, >= 10% >= 1s) — cellular radio
// wake-up; SingTel and SoftBank sit at ~0 — datacenters.

#include <iostream>

#include "analysis/census.h"
#include "analysis/cellular.h"
#include "analysis/plot.h"
#include "analysis/report.h"
#include "analysis/stats.h"
#include "common.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Figure 6: first-RTT minus max(rest) per block",
                     "paper §5.2");

  const bench::World& world = bench::GetWorld();
  const double xs[] = {-0.5, -0.1, 0.0, 0.1, 0.25, 0.5, 1.0, 2.0};

  std::vector<std::pair<std::string, std::vector<double>>> curves;

  // The paper studies the large "Broadband"/mobile blocks of Table 5.
  int printed = 0;
  for (std::size_t i = 0; i < world.final_blocks.size() && printed < 8;
       ++i) {
    const cluster::AggregateBlock& block = world.final_blocks[i];
    const netsim::AsInfo* as =
        analysis::AsOfBlock(world.internet.registry, block);
    if (as == nullptr) continue;
    if (as->type != netsim::OrgType::kBroadbandIsp &&
        as->type != netsim::OrgType::kMobileIsp &&
        as->type != netsim::OrgType::kFixedIsp) {
      continue;
    }
    // Paper: 200 sampled /24s x 20 pings; scaled down here.
    std::vector<double> deltas = analysis::FirstRttDeltas(
        world.internet, block, 60, 20, world.seed + i);
    if (deltas.size() < 40) continue;
    curves.emplace_back(as->organization + " #" + std::to_string(i + 1),
                        deltas);
    analysis::Ecdf ecdf(std::move(deltas));
    std::cout << as->organization << " (rank " << i + 1 << ", "
              << block.member_24s.size() << " x /24)\n";
    analysis::PrintCdfSeries(std::cout, "  CDF(delta seconds)", ecdf, xs);
    std::cout << "  share > 0.5s: " << analysis::Pct(1.0 - ecdf.At(0.5))
              << ", share >= 1s: " << analysis::Pct(1.0 - ecdf.At(1.0 - 1e-9))
              << "\n";
    ++printed;
  }
  std::cout << "\n";
  analysis::PlotOptions plot;
  plot.x_label = "first RTT - max(rest) [s]";
  plot.x_min = -0.5;
  plot.x_max = 2.5;
  analysis::RenderCdfPlot(std::cout, curves, plot);
  std::cout << "\npaper: Tele2/OCN/Verizon ~50% above 0.5s and >=10% at "
               ">=1s (cellular); SingTel/SoftBank/Cox ~0 (datacenter)\n";
  return 0;
}
