// bench_table4 — reproduces Table 4: "WHOIS responses from KRNIC for a
// /24", the paper's evidence that heterogeneous /24s really are split
// into per-customer sub-assignments (example: 220.83.88.0/24 divided
// into a /25 and two /26s registered in 2015-2016).

#include <iostream>

#include "analysis/census.h"
#include "analysis/report.h"
#include "common.h"
#include "hobbit/hierarchy.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Table 4: WHOIS sub-assignments of a split /24",
                     "paper §4.2");

  const bench::World& world = bench::GetWorld();
  const netsim::Registry& registry = world.internet.registry;

  // Find heterogeneous /24s owned by the top splitter AS (Korea Telecom
  // in the default census) and query WHOIS for each, as the paper did.
  std::vector<netsim::Prefix> heterogeneous;
  for (const core::BlockResult& result : world.pipeline.results) {
    if (result.classification !=
        core::Classification::kDifferentButHierarchical) {
      continue;
    }
    auto groups = core::GroupByLastHop(result.observations);
    if (core::IsAlignedDisjoint(groups)) {
      heterogeneous.push_back(result.prefix);
    }
  }
  auto by_as = analysis::CountByAs(registry, heterogeneous);
  if (by_as.empty()) {
    std::cout << "no heterogeneous /24s found at this scale\n";
    return 0;
  }
  const netsim::AsInfo& top = by_as.front().info;
  std::cout << "top splitter: AS" << top.asn << " " << top.organization
            << " (" << top.country << ")\n";

  std::size_t verified_split = 0;
  std::size_t queried = 0;
  const netsim::Prefix* example = nullptr;
  for (const netsim::Prefix& prefix : heterogeneous) {
    auto as_index = registry.AsOf(prefix.base());
    if (!as_index || registry.as_info(*as_index).asn != top.asn) continue;
    ++queried;
    auto records = registry.WhoisLookup(prefix);
    if (records.size() >= 2) {
      ++verified_split;
      if (example == nullptr) example = &prefix;
    }
  }
  std::cout << "WHOIS queried: " << queried
            << ", verified as split into sub-assignments: "
            << verified_split << "\n\n";

  if (example != nullptr) {
    std::cout << "example (" << example->ToString() << "):\n";
    analysis::TextTable table({"IPv4 Address", "Organization Name",
                               "Network Type", "Zip", "Registration Date"});
    for (const netsim::WhoisRecord& record :
         registry.WhoisLookup(*example)) {
      table.AddRow({record.prefix.ToString(), record.organization_name,
                    record.network_type, record.zip_code,
                    record.registration_date});
    }
    table.Print(std::cout);
    std::cout << "\npaper example: 220.83.88.0/24 -> /25 + /26 + /26, all "
                 "registered 2015-2016 to different customers\n";
  }
  return 0;
}
