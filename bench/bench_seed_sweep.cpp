// bench_seed_sweep — robustness of the headline result across worlds.
//
// Table 1's proportions should not be an artifact of one random universe:
// this bench regenerates the Internet under several seeds and reports the
// spread of each classification share and of the homogeneous-share
// headline (the paper's 90 %).

#include <algorithm>
#include <iostream>
#include <vector>

#include "analysis/report.h"
#include "common.h"
#include "hobbit/pipeline.h"
#include "netsim/internet.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Seed sweep: Table 1 stability across universes",
                     "robustness check");

  const std::uint64_t seeds[] = {42, 7, 1001, 20260705, 99};
  const double scale = std::min(0.1, bench::WorldScale());

  std::vector<std::array<double, 5>> shares;
  std::vector<double> homogeneous_shares;
  for (std::uint64_t seed : seeds) {
    netsim::InternetConfig config;
    config.seed = seed;
    config.scale = scale;
    netsim::Internet internet = netsim::BuildInternet(config);
    core::PipelineConfig pipeline_config;
    pipeline_config.seed = seed;
    pipeline_config.calibration_blocks = 300;
    core::PipelineResult result =
        core::RunPipeline(internet, pipeline_config);
    auto counts = result.classification_counts();
    const double total = static_cast<double>(result.results.size());
    std::array<double, 5> share{};
    for (std::size_t c = 0; c < counts.size(); ++c) {
      share[c] = counts[c] / total;
    }
    shares.push_back(share);
    const double homogeneous = share[2] + share[3];
    const double analyzable = homogeneous + share[4];
    homogeneous_shares.push_back(homogeneous / analyzable);
    std::cout << "seed " << seed << ": ";
    for (double s : share) std::cout << analysis::Pct(s) << " ";
    std::cout << " homog/analyzable " << analysis::Pct(homogeneous_shares.back())
              << "\n";
  }

  analysis::TextTable table({"class", "min share", "max share", "paper"});
  const char* names[] = {"Too few active", "Unresponsive last-hop",
                         "Same last-hop router", "Non-hierarchical",
                         "Different but hierarchical"};
  const char* paper[] = {"24.9%", "16.8%", "18.2%", "34.2%", "5.9%"};
  for (std::size_t c = 0; c < 5; ++c) {
    double lo = 1.0, hi = 0.0;
    for (const auto& share : shares) {
      lo = std::min(lo, share[c]);
      hi = std::max(hi, share[c]);
    }
    table.AddRow({names[c], analysis::Pct(lo), analysis::Pct(hi),
                  paper[c]});
  }
  table.Print(std::cout);

  auto [lo, hi] = std::minmax_element(homogeneous_shares.begin(),
                                      homogeneous_shares.end());
  std::cout << "\nhomogeneous share of analyzable /24s across seeds: "
            << analysis::Pct(*lo) << " .. " << analysis::Pct(*hi)
            << "   (paper: 90%)\n"
            << "the conclusion — /24s are overwhelmingly homogeneous — is "
               "seed-independent\n";
  return 0;
}
