// bench_cluster_scaling — wall-time scaling of the clustering half of the
// pipeline (similarity graph, MCL aggregation, validation reprobing)
// against the thread count, on the shared seed workload.  The probing half
// has scaled with threads since the beginning; this records that the
// post-processing stages now do too, and that results stay bit-identical
// while they do (any mismatch is reported loudly).
#include <chrono>
#include <cstdio>
#include <string>

#include "cluster/aggregate.h"
#include "common.h"
#include "common/parallel.h"

namespace {

using namespace hobbit;

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct StageTimes {
  double graph = 0.0;
  double mcl = 0.0;
  double validate = 0.0;
  double total() const { return graph + mcl + validate; }
};

StageTimes RunClusteringStage(const bench::World& world,
                              common::ThreadPool& pool,
                              cluster::MclAggregationResult* out) {
  StageTimes times;
  auto t0 = std::chrono::steady_clock::now();
  cluster::Graph graph =
      cluster::BuildSimilarityGraph(world.aggregates, &pool);
  auto t1 = std::chrono::steady_clock::now();
  cluster::MclAggregationParams params;
  params.mcl.pool = &pool;
  cluster::MclAggregationResult mcl =
      cluster::RunMclAggregation(world.aggregates, params);
  auto t2 = std::chrono::steady_clock::now();
  cluster::ValidationParams validation;
  validation.pool = &pool;
  cluster::ValidateClusters(world.internet, world.pipeline.study_blocks,
                            world.aggregates, mcl, validation);
  auto t3 = std::chrono::steady_clock::now();
  times.graph = Seconds(t0, t1);
  times.mcl = Seconds(t1, t2);
  times.validate = Seconds(t2, t3);
  (void)graph;
  *out = std::move(mcl);
  return times;
}

bool SameClustering(const cluster::MclAggregationResult& a,
                    const cluster::MclAggregationResult& b) {
  if (a.clusters.size() != b.clusters.size()) return false;
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    if (a.clusters[i].aggregate_ids != b.clusters[i].aggregate_ids ||
        a.clusters[i].validated_homogeneous !=
            b.clusters[i].validated_homogeneous) {
      return false;
    }
  }
  return a.unclustered == b.unclustered;
}

}  // namespace

int main() {
  bench::PrintHeader("cluster-scaling",
                     "engineering: MCL-stage thread scaling");
  const bench::World& world = bench::GetWorld();
  std::printf("aggregates: %zu, clusters input to validation follow\n\n",
              world.aggregates.size());
  std::printf("%8s %10s %10s %10s %10s %9s\n", "threads", "graph[s]",
              "mcl[s]", "valid[s]", "total[s]", "speedup");

  bench::JsonReporter report("cluster_scaling");
  report.Config("scale", world.scale);
  report.Config("seed", static_cast<double>(world.seed));
  report.Config("aggregates", static_cast<double>(world.aggregates.size()));

  cluster::MclAggregationResult baseline;
  double baseline_total = 0.0;
  bool all_identical = true;
  for (int threads : {1, 2, 4, 8}) {
    common::ThreadPool pool(threads);
    cluster::MclAggregationResult result;
    StageTimes times = RunClusteringStage(world, pool, &result);
    if (threads == 1) {
      baseline = std::move(result);
      baseline_total = times.total();
    } else if (!SameClustering(result, baseline)) {
      all_identical = false;
    }
    std::printf("%8d %10.3f %10.3f %10.3f %10.3f %8.2fx\n", threads,
                times.graph, times.mcl, times.validate, times.total(),
                baseline_total / times.total());
    const std::string tag = std::to_string(threads) + "t";
    report.Metric(tag + "_total_seconds", times.total());
    report.Metric(tag + "_speedup", baseline_total / times.total());
  }
  report.Metric("identical", all_identical ? 1.0 : 0.0);
  report.Write();
  std::printf("\nclustering results across thread counts: %s\n",
              all_identical ? "bit-identical" : "MISMATCH (bug!)");
  return all_identical ? 0 : 1;
}
