// bench_cluster_scaling — wall-time scaling of the clustering half of the
// pipeline (similarity graph, MCL aggregation, validation reprobing)
// against the thread count, on the shared seed workload.  The probing half
// has scaled with threads since the beginning; this records that the
// post-processing stages now do too, and that results stay bit-identical
// while they do (any mismatch is reported loudly).
// Also gated here: the fused MclIterate kernel (SoA column gather) must
// stay bit-identical to the unfused Multiply -> Inflate -> Prune
// sequence and beat it single-threaded by >= 1.2x.
//
// Exit codes: 0 ok, 1 result mismatch (cross-thread or fused-vs-unfused),
// 2 scaling-gate failure, 3 fused-kernel speedup gate, 77 scaling gates
// skipped (single-core machine: every multi-thread run time-slices one
// core, so "speedup" floors would be vacuously low — the report says
// "skipped-1core" instead of silently passing).  On >= 2 cores the
// speedup gates are hardware-aware (see RequiredSpeedup): with >= 4
// cores the full gates apply (4t must reach 2x, no thread count may
// lose to serial); thread counts beyond the machine's cores only guard
// against pathological oversubscription collapse.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/aggregate.h"
#include "cluster/sparse.h"
#include "common.h"
#include "common/parallel.h"
#include "netsim/rng.h"

namespace {

using namespace hobbit;

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct StageTimes {
  double graph = 0.0;
  double mcl = 0.0;
  double validate = 0.0;
  double total() const { return graph + mcl + validate; }
};

StageTimes RunClusteringStage(const bench::World& world,
                              common::ThreadPool& pool,
                              cluster::MclAggregationResult* out) {
  StageTimes times;
  auto t0 = std::chrono::steady_clock::now();
  cluster::Graph graph =
      cluster::BuildSimilarityGraph(world.aggregates, &pool);
  auto t1 = std::chrono::steady_clock::now();
  cluster::MclAggregationParams params;
  params.mcl.pool = &pool;
  cluster::MclAggregationResult mcl =
      cluster::RunMclAggregation(world.aggregates, params);
  auto t2 = std::chrono::steady_clock::now();
  cluster::ValidationParams validation;
  validation.pool = &pool;
  cluster::ValidateClusters(world.internet, world.pipeline.study_blocks,
                            world.aggregates, mcl, validation);
  auto t3 = std::chrono::steady_clock::now();
  times.graph = Seconds(t0, t1);
  times.mcl = Seconds(t1, t2);
  times.validate = Seconds(t2, t3);
  (void)graph;
  *out = std::move(mcl);
  return times;
}

bool SameClustering(const cluster::MclAggregationResult& a,
                    const cluster::MclAggregationResult& b) {
  if (a.clusters.size() != b.clusters.size()) return false;
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    if (a.clusters[i].aggregate_ids != b.clusters[i].aggregate_ids ||
        a.clusters[i].validated_homogeneous !=
            b.clusters[i].validated_homogeneous) {
      return false;
    }
  }
  return a.unclustered == b.unclustered;
}

/// Minimum acceptable `baseline / Nt` ratio for a run with `threads`
/// workers on a machine with `hw` cores.  Quick mode (tiny scale, run
/// as a ctest smoke) keeps the same shape with headroom for noise.
double RequiredSpeedup(int threads, unsigned hw, bool quick) {
  const unsigned cores = std::max(hw, 1u);
  if (static_cast<unsigned>(threads) <= cores) {
    if (threads >= 4) return quick ? 1.5 : 2.0;
    if (threads > 1) return quick ? 0.9 : 1.0;
    return 0.0;  // 1t vs itself
  }
  // Oversubscribed: context switches and cache thrash make < 1x normal
  // (a single-core box time-slices every "parallel" run); only flag a
  // collapse.
  return 0.4;
}

/// A deterministic random similarity-shaped graph for the fused-kernel
/// gate.  The world at smoke scale is too small to time an MCL
/// iteration out of the noise (one iteration is microseconds), so the
/// kernel comparison runs on a fixed-size synthetic graph instead —
/// same sparsity regime as a paper-scale similarity graph, independent
/// of HOBBIT_SCALE.
cluster::Graph SyntheticGraph(std::uint32_t vertices, int edges_per_vertex) {
  cluster::Graph graph;
  graph.vertex_count = vertices;
  netsim::Rng rng(1234);
  for (std::uint32_t a = 0; a + 1 < vertices; ++a) {
    for (int e = 0; e < edges_per_vertex; ++e) {
      const std::uint32_t b = static_cast<std::uint32_t>(
          a + 1 + rng.NextBelow(vertices - a - 1));
      graph.edges.push_back({a, b, 0.05 + 0.9 * rng.NextUnit()});
    }
  }
  return graph;
}

/// The MCL input matrix exactly as RunMcl builds it: symmetrized edges
/// plus self-loops, column-normalized.
cluster::SparseMatrix MclMatrix(const cluster::Graph& graph) {
  std::vector<cluster::SparseMatrix::Triplet> triplets;
  triplets.reserve(graph.edges.size() * 2 + graph.vertex_count);
  for (const auto& e : graph.edges) {
    triplets.push_back({e.a, e.b, e.weight});
    triplets.push_back({e.b, e.a, e.weight});
  }
  for (std::uint32_t v = 0; v < graph.vertex_count; ++v) {
    triplets.push_back({v, v, 1.0});
  }
  cluster::SparseMatrix m = cluster::SparseMatrix::FromTriplets(
      graph.vertex_count, std::move(triplets));
  m.NormalizeColumns();
  return m;
}

bool SameMatrix(const cluster::SparseMatrix& a,
                const cluster::SparseMatrix& b) {
  return a.size() == b.size() && a.nonzeros() == b.nonzeros() &&
         a.MaxDifference(b) == 0.0;
}

struct FusedKernelRun {
  double unfused_seconds = 0.0;
  double fused_seconds = 0.0;
  bool identical = true;
  double speedup() const { return unfused_seconds / fused_seconds; }
};

/// Times one MCL iteration both ways (single thread) on the world's
/// similarity matrix, repeated until the measurement is out of the
/// noise.  Bit-identity of the iterates is part of the check.
FusedKernelRun CompareFusedKernel(const cluster::SparseMatrix& m) {
  constexpr double kInflation = 2.0;
  constexpr double kPrune = 1e-5;
  constexpr std::size_t kMaxPerColumn = 64;
  FusedKernelRun run;
  {
    cluster::SparseMatrix unfused = m.Multiply(m);
    unfused.Inflate(kInflation);
    unfused.Prune(kPrune, kMaxPerColumn);
    cluster::SparseMatrix fused =
        m.MclIterate(kInflation, kPrune, kMaxPerColumn);
    run.identical = SameMatrix(fused, unfused);
  }
  // Calibrate repetitions off one unfused iteration (>= ~0.3 s total).
  auto start = std::chrono::steady_clock::now();
  {
    cluster::SparseMatrix probe = m.Multiply(m);
    probe.Inflate(kInflation);
    probe.Prune(kPrune, kMaxPerColumn);
  }
  const double once = std::max(Seconds(start, std::chrono::steady_clock::now()),
                               1e-6);
  const int reps = std::clamp(static_cast<int>(0.3 / once), 3, 200);

  start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    cluster::SparseMatrix product = m.Multiply(m);
    product.Inflate(kInflation);
    product.Prune(kPrune, kMaxPerColumn);
  }
  run.unfused_seconds =
      Seconds(start, std::chrono::steady_clock::now()) / reps;
  start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    cluster::SparseMatrix iterate =
        m.MclIterate(kInflation, kPrune, kMaxPerColumn);
  }
  run.fused_seconds = Seconds(start, std::chrono::steady_clock::now()) / reps;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  // Quick mode shrinks the world (unless the caller pinned a scale) so
  // the smoke test stays in ctest budget; gates get noise headroom.
  if (quick) ::setenv("HOBBIT_SCALE", "0.05", /*overwrite=*/0);

  bench::PrintHeader("cluster-scaling",
                     "engineering: MCL-stage thread scaling");
  const unsigned hw = std::thread::hardware_concurrency();
  const bench::World& world = bench::GetWorld();
  std::printf("aggregates: %zu, clusters input to validation follow\n\n",
              world.aggregates.size());
  std::printf("%8s %10s %10s %10s %10s %9s\n", "threads", "graph[s]",
              "mcl[s]", "valid[s]", "total[s]", "speedup");

  bench::JsonReporter report("cluster_scaling");
  report.Config("scale", world.scale);
  report.Config("seed", static_cast<double>(world.seed));
  report.Config("mode", quick ? "quick" : "full");
  report.Config("aggregates", static_cast<double>(world.aggregates.size()));

  cluster::MclAggregationResult baseline;
  double baseline_total = 0.0;
  bool all_identical = true;
  bool gates_pass = true;
  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  for (int threads : thread_counts) {
    common::ThreadPool pool(threads);
    cluster::MclAggregationResult result;
    StageTimes times = RunClusteringStage(world, pool, &result);
    if (threads == 1) {
      baseline = std::move(result);
      baseline_total = times.total();
    } else if (!SameClustering(result, baseline)) {
      all_identical = false;
    }
    const double speedup = baseline_total / times.total();
    const double required = RequiredSpeedup(threads, hw, quick);
    const bool pass = speedup >= required;
    gates_pass = gates_pass && pass;
    std::printf("%8d %10.3f %10.3f %10.3f %10.3f %8.2fx%s\n", threads,
                times.graph, times.mcl, times.validate, times.total(),
                speedup,
                pass ? "" : "  BELOW GATE");
    const std::string tag = std::to_string(threads) + "t";
    report.Metric(tag + "_total_seconds", times.total());
    report.Metric(tag + "_speedup", speedup);
    report.Metric(tag + "_required_speedup", required);
    report.Metric(tag + "_pool_threads",
                  static_cast<double>(pool.thread_count()));
  }
  // Fused-kernel gate: MclIterate (one dispatch, SoA column gather)
  // versus the unfused Multiply -> Inflate -> Prune it replaces, single
  // thread, bit-identical by contract.
  const double require_fused = quick ? 1.1 : 1.2;
  cluster::Graph graph =
      SyntheticGraph(quick ? 20'000 : 60'000, /*edges_per_vertex=*/8);
  FusedKernelRun fused = CompareFusedKernel(MclMatrix(graph));
  std::printf("\nfused MclIterate: %.4fs vs unfused %.4fs (%.2fx, "
              "required >= %.2fx)%s\n",
              fused.fused_seconds, fused.unfused_seconds, fused.speedup(),
              require_fused,
              fused.identical ? "" : "  ITERATE MISMATCH");
  report.Config("require_fused_speedup", require_fused);
  report.Metric("fused_iterate_seconds", fused.fused_seconds);
  report.Metric("unfused_iterate_seconds", fused.unfused_seconds);
  report.Metric("fused_speedup", fused.speedup());
  all_identical = all_identical && fused.identical;
  report.Metric("identical", all_identical ? 1.0 : 0.0);

  // On one core the thread-scaling floors are vacuous (0.4x collapse
  // guards); say so in the report instead of claiming a pass.
  const bool scaling_meaningful = hw > 1;
  report.Metric("scaling_gates",
                scaling_meaningful ? std::string("enforced")
                                   : std::string("skipped-1core"));
  report.Metric("gates_pass",
                (gates_pass && fused.speedup() >= require_fused) ? 1.0 : 0.0);
  report.Write();
  std::printf("\nclustering results across thread counts: %s\n",
              all_identical ? "bit-identical" : "MISMATCH (bug!)");
  if (!all_identical) return 1;
  if (fused.speedup() < require_fused) {
    std::printf("fused-kernel gate FAILED (%.2fx < %.2fx)\n", fused.speedup(),
                require_fused);
    return 3;
  }
  if (!scaling_meaningful) {
    std::printf("scaling gates SKIPPED (threads_hw=1: multi-thread floors "
                "are vacuous on one core)\n");
    return 77;
  }
  if (!gates_pass) {
    std::printf("scaling gate FAILED (threads_hw=%u; see table)\n", hw);
    return 2;
  }
  std::printf("scaling gates passed (threads_hw=%u)\n", hw);
  return 0;
}
