// bench_cluster_scaling — wall-time scaling of the clustering half of the
// pipeline (similarity graph, MCL aggregation, validation reprobing)
// against the thread count, on the shared seed workload.  The probing half
// has scaled with threads since the beginning; this records that the
// post-processing stages now do too, and that results stay bit-identical
// while they do (any mismatch is reported loudly).
// Exit codes: 0 ok, 1 cross-thread result mismatch, 2 scaling-gate
// failure.  The speedup gates are hardware-aware (see RequiredSpeedup):
// on a machine with >= 4 cores the full gates apply (4t must reach 2x,
// no thread count may lose to serial); thread counts beyond the
// machine's cores only guard against pathological oversubscription
// collapse, since time-slicing one core across N workers cannot win.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cluster/aggregate.h"
#include "common.h"
#include "common/parallel.h"

namespace {

using namespace hobbit;

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct StageTimes {
  double graph = 0.0;
  double mcl = 0.0;
  double validate = 0.0;
  double total() const { return graph + mcl + validate; }
};

StageTimes RunClusteringStage(const bench::World& world,
                              common::ThreadPool& pool,
                              cluster::MclAggregationResult* out) {
  StageTimes times;
  auto t0 = std::chrono::steady_clock::now();
  cluster::Graph graph =
      cluster::BuildSimilarityGraph(world.aggregates, &pool);
  auto t1 = std::chrono::steady_clock::now();
  cluster::MclAggregationParams params;
  params.mcl.pool = &pool;
  cluster::MclAggregationResult mcl =
      cluster::RunMclAggregation(world.aggregates, params);
  auto t2 = std::chrono::steady_clock::now();
  cluster::ValidationParams validation;
  validation.pool = &pool;
  cluster::ValidateClusters(world.internet, world.pipeline.study_blocks,
                            world.aggregates, mcl, validation);
  auto t3 = std::chrono::steady_clock::now();
  times.graph = Seconds(t0, t1);
  times.mcl = Seconds(t1, t2);
  times.validate = Seconds(t2, t3);
  (void)graph;
  *out = std::move(mcl);
  return times;
}

bool SameClustering(const cluster::MclAggregationResult& a,
                    const cluster::MclAggregationResult& b) {
  if (a.clusters.size() != b.clusters.size()) return false;
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    if (a.clusters[i].aggregate_ids != b.clusters[i].aggregate_ids ||
        a.clusters[i].validated_homogeneous !=
            b.clusters[i].validated_homogeneous) {
      return false;
    }
  }
  return a.unclustered == b.unclustered;
}

/// Minimum acceptable `baseline / Nt` ratio for a run with `threads`
/// workers on a machine with `hw` cores.  Quick mode (tiny scale, run
/// as a ctest smoke) keeps the same shape with headroom for noise.
double RequiredSpeedup(int threads, unsigned hw, bool quick) {
  const unsigned cores = std::max(hw, 1u);
  if (static_cast<unsigned>(threads) <= cores) {
    if (threads >= 4) return quick ? 1.5 : 2.0;
    if (threads > 1) return quick ? 0.9 : 1.0;
    return 0.0;  // 1t vs itself
  }
  // Oversubscribed: context switches and cache thrash make < 1x normal
  // (a single-core box time-slices every "parallel" run); only flag a
  // collapse.
  return 0.4;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  // Quick mode shrinks the world (unless the caller pinned a scale) so
  // the smoke test stays in ctest budget; gates get noise headroom.
  if (quick) ::setenv("HOBBIT_SCALE", "0.05", /*overwrite=*/0);

  bench::PrintHeader("cluster-scaling",
                     "engineering: MCL-stage thread scaling");
  const unsigned hw = std::thread::hardware_concurrency();
  const bench::World& world = bench::GetWorld();
  std::printf("aggregates: %zu, clusters input to validation follow\n\n",
              world.aggregates.size());
  std::printf("%8s %10s %10s %10s %10s %9s\n", "threads", "graph[s]",
              "mcl[s]", "valid[s]", "total[s]", "speedup");

  bench::JsonReporter report("cluster_scaling");
  report.Config("scale", world.scale);
  report.Config("seed", static_cast<double>(world.seed));
  report.Config("mode", quick ? "quick" : "full");
  report.Config("aggregates", static_cast<double>(world.aggregates.size()));

  cluster::MclAggregationResult baseline;
  double baseline_total = 0.0;
  bool all_identical = true;
  bool gates_pass = true;
  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  for (int threads : thread_counts) {
    common::ThreadPool pool(threads);
    cluster::MclAggregationResult result;
    StageTimes times = RunClusteringStage(world, pool, &result);
    if (threads == 1) {
      baseline = std::move(result);
      baseline_total = times.total();
    } else if (!SameClustering(result, baseline)) {
      all_identical = false;
    }
    const double speedup = baseline_total / times.total();
    const double required = RequiredSpeedup(threads, hw, quick);
    const bool pass = speedup >= required;
    gates_pass = gates_pass && pass;
    std::printf("%8d %10.3f %10.3f %10.3f %10.3f %8.2fx%s\n", threads,
                times.graph, times.mcl, times.validate, times.total(),
                speedup,
                pass ? "" : "  BELOW GATE");
    const std::string tag = std::to_string(threads) + "t";
    report.Metric(tag + "_total_seconds", times.total());
    report.Metric(tag + "_speedup", speedup);
    report.Metric(tag + "_required_speedup", required);
    report.Metric(tag + "_pool_threads",
                  static_cast<double>(pool.thread_count()));
  }
  report.Metric("identical", all_identical ? 1.0 : 0.0);
  report.Metric("gates_pass", gates_pass ? 1.0 : 0.0);
  report.Write();
  std::printf("\nclustering results across thread counts: %s\n",
              all_identical ? "bit-identical" : "MISMATCH (bug!)");
  if (!all_identical) return 1;
  if (!gates_pass) {
    std::printf("scaling gate FAILED (threads_hw=%u; see table)\n", hw);
    return 2;
  }
  std::printf("scaling gates passed (threads_hw=%u)\n", hw);
  return 0;
}
