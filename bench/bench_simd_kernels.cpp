// bench_simd_kernels — the runtime-dispatch SIMD layer's speedup gate.
//
// Measures the fused MclIterate column sweep — square_accumulate (the
// power-2 inflation), divide (normalization) and filter_ge (the prune
// scan) back to back per column — through each dispatch tier's kernel
// table (common/simd.h) on cache-resident column-sized buffers: each
// column (~224 entries, ~1.8KB) is L1-hot across its three kernel
// passes, which is exactly the shape MclIterate's gathered SoA columns
// give the kernels.  Every tier's outputs are compared bit for bit
// against the scalar reference first (the FP-identity contract), then
// the AVX2 tier must beat scalar by the gate ratio.
//
// Skip-not-vacuous-pass: on hardware (or a build) without AVX2 the gate
// cannot be exercised, so the binary reports "skipped-no-avx2" and
// exits 77 — the ctest SKIP_RETURN_CODE — rather than passing green.
// Wherever AVX2 *is* executable the gate is enforced unconditionally.
//
// Exit codes: 0 ok, 1 cross-tier identity mismatch, 2 AVX2 below the
// speedup gate, 77 AVX2 not executable (ctest skip).  `--quick` trims
// columns and repetitions (and softens the floor: short runs are
// noisier) for the perf-micro/simd ctest smoke.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common.h"
#include "common/simd.h"
#include "netsim/rng.h"

namespace {

using namespace hobbit;
using common::simd::Kernels;
using common::simd::KernelsFor;
using common::simd::Tier;
using common::simd::TierName;
using common::simd::TierSupported;

constexpr std::size_t kColumnLength = 224;  // ~typical pruned MCL column

struct SweepOutput {
  std::vector<double> values;   // all columns after square+divide
  std::vector<double> sums;     // per-column accumulate results
  std::vector<std::uint32_t> tags;  // row ids fed to the prune scan
  std::vector<std::pair<double, std::uint32_t>> kept;  // filter survivors
  std::size_t kept_count = 0;
};

/// One full pass over every column: the fused-iteration inner loop.
void SweepColumns(const Kernels& kernels, std::size_t columns,
                  double threshold, SweepOutput* out) {
  for (std::size_t c = 0; c < columns; ++c) {
    double* column = out->values.data() + c * kColumnLength;
    const double sum = kernels.square_accumulate(column, kColumnLength);
    out->sums[c] = sum;
    kernels.divide(column, kColumnLength, sum);
    out->kept_count += kernels.filter_ge(column, out->tags.data(),
                                         kColumnLength, threshold,
                                         out->kept.data());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::PrintHeader("simd-kernels",
                     "dispatch-tier speedup gate for the MCL column sweep");
  bench::JsonReporter report("simd_kernels");
  report.Config("mode", quick ? "quick" : "full");
  report.Config("cpu_features", common::simd::CpuFeatureString());
  report.Config("max_tier", TierName(common::simd::MaxSupportedTier()));

  const std::size_t columns = quick ? 1024 : 4096;
  const std::size_t reps = quick ? 60 : 200;
  // The repo's MCL prune default (cluster::MclParams): 1e-4 against
  // normalized column values (~1/column_length), i.e. a high-keep scan —
  // filter_ge only sheds the numeric tail; SelectTopThenSortByRow does
  // the real dropping afterwards.
  const double threshold = 1e-4;
  report.Config("columns", static_cast<double>(columns));
  report.Config("column_length", static_cast<double>(kColumnLength));

  // Pristine inputs in (0.1, 1): squaring never denormalizes, every tier
  // starts every pass from identical bits.
  const std::size_t total = columns * kColumnLength;
  std::vector<double> pristine(total);
  netsim::Rng rng(4242);
  for (double& v : pristine) v = 0.1 + 0.9 * rng.NextUnit();

  std::vector<Tier> tiers = {Tier::kScalar};
  if (TierSupported(Tier::kSse2)) tiers.push_back(Tier::kSse2);
  if (TierSupported(Tier::kAvx2)) tiers.push_back(Tier::kAvx2);

  // ---- FP-identity: every tier against scalar, bit for bit -------------
  std::vector<SweepOutput> outputs(tiers.size());
  for (std::size_t t = 0; t < tiers.size(); ++t) {
    SweepOutput& out = outputs[t];
    out.values = pristine;
    out.sums.assign(columns, 0.0);
    out.tags.resize(kColumnLength);
    for (std::size_t i = 0; i < kColumnLength; ++i) {
      out.tags[i] = static_cast<std::uint32_t>(i);
    }
    out.kept.assign(kColumnLength, {0.0, 0});
    SweepColumns(KernelsFor(tiers[t]), columns, threshold, &out);
  }
  bool identical = true;
  for (std::size_t t = 1; t < tiers.size(); ++t) {
    // (Survivor *pairs* are differentially tested per size in
    // tests/test_simd.cpp; here the raw buffers can't be memcmp'd —
    // branchless emit leaves tier-dependent scratch past the kept
    // count and in pair padding bytes.)
    identical =
        identical &&
        std::memcmp(outputs[0].values.data(), outputs[t].values.data(),
                    total * sizeof(double)) == 0 &&
        std::memcmp(outputs[0].sums.data(), outputs[t].sums.data(),
                    columns * sizeof(double)) == 0 &&
        outputs[0].kept_count == outputs[t].kept_count;
    if (!identical) {
      std::printf("tier %s DISAGREES with scalar (FP contract broken)\n",
                  TierName(tiers[t]));
    }
  }
  report.Metric("identical", identical ? 1.0 : 0.0);

  // ---- Throughput per tier ---------------------------------------------
  // The restore memcpy runs outside the timed segments; only the sweep
  // itself accumulates time.
  auto measure = [&](Tier tier) {
    const Kernels& kernels = KernelsFor(tier);
    SweepOutput out;
    out.sums.assign(columns, 0.0);
    out.tags.resize(kColumnLength);
    for (std::size_t i = 0; i < kColumnLength; ++i) {
      out.tags[i] = static_cast<std::uint32_t>(i);
    }
    out.kept.assign(kColumnLength, {0.0, 0});
    double seconds = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      out.values = pristine;
      const auto start = std::chrono::steady_clock::now();
      SweepColumns(kernels, columns, threshold, &out);
      seconds += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    }
    return static_cast<double>(total) * static_cast<double>(reps) / seconds;
  };

  std::printf("%8s %16s %9s\n", "tier", "sweep[elem/s]", "vs scalar");
  double scalar_rate = 0.0;
  double avx2_rate = 0.0;
  const double require_speedup = quick ? 1.35 : 1.5;
  // Up to three attempts at the gated ratio (first pass wins): one timed
  // run is at the mercy of a scheduler hiccup, and only the best
  // achievable ratio is the regression signal.
  for (int attempt = 0; attempt < 3; ++attempt) {
    for (Tier tier : tiers) {
      const double rate = measure(tier);
      if (tier == Tier::kScalar) scalar_rate = rate;
      if (tier == Tier::kAvx2 && rate > avx2_rate) avx2_rate = rate;
      if (attempt == 0 || tier == Tier::kAvx2) {
        std::printf("%8s %16.0f %8.2fx\n", TierName(tier), rate,
                    rate / scalar_rate);
        report.Metric(std::string(TierName(tier)) + "_elems_per_s", rate);
        report.Metric(std::string(TierName(tier)) + "_speedup",
                      rate / scalar_rate);
      }
    }
    if (!TierSupported(Tier::kAvx2) ||
        avx2_rate / scalar_rate >= require_speedup) {
      break;
    }
  }
  report.Config("require_avx2_speedup", require_speedup);

  if (!identical) {
    report.Metric("simd_gate", "identity-mismatch");
    report.Write();
    std::printf("\ntier outputs DISAGREE (bug!)\n");
    return 1;
  }
  if (!TierSupported(Tier::kAvx2)) {
    // No AVX2 on this host/build: the speedup gate cannot run.  Exit 77
    // (ctest skip) instead of a vacuous pass.
    report.Metric("simd_gate", "skipped-no-avx2");
    report.Write();
    std::printf("\nAVX2 not executable here; gate SKIPPED (exit 77)\n");
    return 77;
  }
  const double speedup = avx2_rate / scalar_rate;
  if (speedup < require_speedup) {
    report.Metric("simd_gate", "failed");
    report.Write();
    std::printf("\nAVX2 sweep gate FAILED (%.2fx < %.2fx)\n", speedup,
                require_speedup);
    return 2;
  }
  report.Metric("simd_gate", "passed");
  report.Write();
  std::printf("\nAVX2 sweep gate passed (%.2fx >= %.2fx)\n", speedup,
              require_speedup);
  return 0;
}
