// bench_ablations — ablation studies over the design choices DESIGN.md
// calls out:
//
//  A. termination rules: the non-hierarchy early stop, the 6-destination
//     single-last-hop rule and the confidence-table stop, versus
//     probe-everything — measurement load vs verdict agreement;
//  B. the single-last-hop threshold (3 vs 6 vs 12);
//  C. the confidence level (0.90 / 0.95 / 0.99);
//  D. the MCL inflation parameter (the §6.4 sweep).

#include <iostream>
#include <vector>

#include "analysis/report.h"
#include "cluster/aggregate.h"
#include "common.h"

namespace {

using namespace hobbit;

struct AblationOutcome {
  std::string name;
  std::size_t probes = 0;
  std::size_t homogeneous = 0;
  std::size_t analyzable = 0;
  std::size_t agree_with_truth = 0;
};

AblationOutcome RunProberVariant(const bench::World& world,
                                 const std::string& name,
                                 core::ProberOptions options,
                                 std::size_t block_limit) {
  AblationOutcome outcome;
  outcome.name = name;
  core::BlockProber prober(world.internet.simulator.get(),
                           &world.pipeline.table, options);
  netsim::Rng rng(world.seed + 0xAB1ULL);
  const auto& blocks = world.pipeline.study_blocks;
  const std::size_t step = std::max<std::size_t>(1, blocks.size() / block_limit);
  for (std::size_t i = 0; i < blocks.size(); i += step) {
    core::BlockResult result = prober.ProbeBlock(blocks[i], rng.Fork(i));
    if (core::IsAnalyzable(result.classification)) {
      ++outcome.analyzable;
      const netsim::TruthRecord* truth =
          world.internet.TruthOf(result.prefix);
      bool says = core::IsHomogeneous(result.classification);
      outcome.homogeneous += says;
      outcome.agree_with_truth +=
          truth != nullptr && says == !truth->heterogeneous;
    }
  }
  outcome.probes = prober.probes_sent();
  return outcome;
}

void PrintOutcomes(const std::vector<AblationOutcome>& outcomes) {
  analysis::TextTable table({"variant", "probe packets", "analyzable",
                             "homogeneous", "truth agreement"});
  for (const AblationOutcome& o : outcomes) {
    table.AddRow({o.name, std::to_string(o.probes),
                  std::to_string(o.analyzable),
                  std::to_string(o.homogeneous),
                  analysis::Pct(static_cast<double>(o.agree_with_truth) /
                                std::max<std::size_t>(1, o.analyzable))});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  bench::PrintHeader("Ablations: termination rules, thresholds, inflation",
                     "DESIGN.md §5");
  const bench::World& world = bench::GetWorld();
  const std::size_t kBlocks = 1200;

  std::cout << "A/B/C. prober variants (on ~" << kBlocks
            << " study blocks)\n";
  std::vector<AblationOutcome> outcomes;
  outcomes.push_back(
      RunProberVariant(world, "standard (6-stop, 95%)", {}, kBlocks));
  {
    core::ProberOptions exhaustive;
    exhaustive.reprobe_strategy = true;
    outcomes.push_back(RunProberVariant(world, "exhaustive (reprobe mode)",
                                        exhaustive, kBlocks));
  }
  for (int stop : {3, 12}) {
    core::ProberOptions options;
    options.same_last_hop_stop = stop;
    outcomes.push_back(RunProberVariant(
        world, "single-last-hop stop = " + std::to_string(stop), options,
        kBlocks));
  }
  for (double level : {0.90, 0.99}) {
    core::ProberOptions options;
    options.confidence_level = level;
    outcomes.push_back(RunProberVariant(
        world, "confidence level = " + analysis::Fmt(level), options,
        kBlocks));
  }
  PrintOutcomes(outcomes);
  std::cout << "\nexpected: early stops cut probe load several-fold at "
               "nearly identical truth agreement; looser confidence "
               "trades probes for misclassified hierarchical blocks\n\n";

  std::cout << "D. MCL inflation sweep (paper §6.4)\n";
  cluster::Graph graph = cluster::BuildSimilarityGraph(world.aggregates);
  const double candidates[] = {1.4, 1.6, 2.0, 2.6, 3.2, 4.0, 6.0};
  cluster::SweepOutcome sweep = cluster::SweepInflation(graph, candidates);
  analysis::TextTable sweep_table(
      {"inflation", "bad-edge ratio", "chosen"});
  for (const auto& [inflation, ratio] : sweep.tried) {
    sweep_table.AddRow({analysis::Fmt(inflation, 1),
                        analysis::Fmt(ratio, 4),
                        inflation == sweep.best_inflation ? "<--" : ""});
  }
  sweep_table.Print(std::cout);
  std::cout << "\nthe sweep picks the inflation minimizing intra-cluster "
               "edges below the median weight, as §6.4 prescribes\n";
  return 0;
}
