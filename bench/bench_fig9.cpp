// bench_fig9 — reproduces Figure 9: "The ratio of identical /24 pairs
// within clusters that match and do not match the rule".
//
// Paper: ~90% of rule-matching clusters have an identical-pair ratio
// above 0.6 (57% at exactly 1), while ~60% of non-matching clusters sit
// at ratio 0 — the experimental similarity-distribution rule predicts
// which MCL clusters reprobing will confirm.

#include <iostream>
#include <vector>

#include "analysis/plot.h"
#include "analysis/report.h"
#include "analysis/stats.h"
#include "common.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Figure 9: identical-pair ratio, rule vs no-rule",
                     "paper §6.6");

  const bench::World& world = bench::GetWorld();
  std::vector<double> matched, unmatched;
  for (const cluster::ClusterInfo& cluster : world.mcl.clusters) {
    if (cluster.identical_pair_ratio < 0) continue;
    (cluster.matches_rule ? matched : unmatched)
        .push_back(cluster.identical_pair_ratio);
  }
  std::cout << "MCL clusters: " << world.mcl.clusters.size()
            << " (rule-matched " << matched.size() << ", unmatched "
            << unmatched.size() << ")\n\n";

  const double xs[] = {0.0, 0.2, 0.4, 0.6, 0.8, 0.999};
  analysis::PlotOptions plot;
  plot.x_label = "ratio of identical /24 pairs";
  plot.x_min = 0.0;
  plot.x_max = 1.0;
  analysis::RenderCdfPlot(
      std::cout,
      {{"clusters matching the rule", matched},
       {"clusters not matching", unmatched}},
      plot);
  std::cout << "\n";
  analysis::Ecdf matched_ecdf(std::move(matched));
  analysis::Ecdf unmatched_ecdf(std::move(unmatched));
  analysis::PrintCdfSeries(std::cout, "matched   CDF(ratio)", matched_ecdf,
                           xs);
  analysis::PrintCdfSeries(std::cout, "unmatched CDF(ratio)",
                           unmatched_ecdf, xs);

  if (!matched_ecdf.empty()) {
    std::cout << "\nmatched clusters with ratio > 0.6: "
              << analysis::Pct(1.0 - matched_ecdf.At(0.6))
              << " (paper: ~90%), at ratio 1: "
              << analysis::Pct(1.0 - matched_ecdf.At(0.999))
              << " (paper: 57%)\n";
  }
  if (!unmatched_ecdf.empty()) {
    std::cout << "unmatched clusters at ratio 0: "
              << analysis::Pct(unmatched_ecdf.At(0.0))
              << " (paper: ~60%)\n";
  }
  return 0;
}
