#include "common.h"

#include <chrono>
#include <thread>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>

#include "common/parallel.h"

#ifndef HOBBIT_REPO_ROOT
#define HOBBIT_REPO_ROOT "."
#endif

namespace hobbit::bench {
namespace {

double ParseEnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}

std::uint64_t ParseEnvU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  std::uint64_t parsed = std::strtoull(value, &end, 10);
  return end != value ? parsed : fallback;
}

World BuildWorld() {
  World world;
  world.scale = WorldScale();
  world.seed = WorldSeed();

  auto t0 = std::chrono::steady_clock::now();
  netsim::InternetConfig config;
  config.seed = world.seed;
  config.scale = world.scale;
  world.internet = netsim::BuildInternet(config);

  // One pool serves every stage: probing, MCL clustering, validation.
  common::ThreadPool pool(static_cast<int>(
      std::min(8u, std::max(1u, std::thread::hardware_concurrency()))));
  core::PipelineConfig pipeline_config;
  pipeline_config.seed = world.seed;
  pipeline_config.pool = &pool;
  pipeline_config.calibration_blocks =
      std::max(200, static_cast<int>(1200 * world.scale));
  pipeline_config.samples_per_block = 64;
  world.pipeline = core::RunPipeline(world.internet, pipeline_config);

  world.homogeneous = world.pipeline.HomogeneousBlocks();
  world.aggregates = cluster::AggregateIdentical(world.homogeneous);
  cluster::MclAggregationParams mcl_params;
  mcl_params.mcl.pool = &pool;
  world.mcl = cluster::RunMclAggregation(world.aggregates, mcl_params);
  cluster::ValidationParams validation;
  validation.pool = &pool;
  cluster::ValidateClusters(world.internet, world.pipeline.study_blocks,
                            world.aggregates, world.mcl, validation);
  world.final_blocks =
      cluster::MergeValidatedClusters(world.aggregates, world.mcl);

  auto t1 = std::chrono::steady_clock::now();
  std::cerr << "[world] scale=" << world.scale << " seed=" << world.seed
            << " study_24s=" << world.pipeline.stats.study_24s
            << " probes=" << world.pipeline.stats.probes_sent
            << " built in "
            << std::chrono::duration<double>(t1 - t0).count() << "s\n";
  return world;
}

}  // namespace

double WorldScale() { return ParseEnvDouble("HOBBIT_SCALE", 0.25); }

std::uint64_t WorldSeed() { return ParseEnvU64("HOBBIT_SEED", 42); }

const World& GetWorld() {
  static World world = BuildWorld();
  return world;
}

namespace {

std::string JsonNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string JsonString(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string RunGitLine(const char* command) {
  FILE* pipe = ::popen(command, "r");
  if (pipe == nullptr) return "";
  char buffer[128] = {0};
  std::string line;
  if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    line = buffer;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
  }
  ::pclose(pipe);
  return line;
}

std::string CurrentCommit() {
  if (const char* env = std::getenv("HOBBIT_COMMIT");
      env != nullptr && *env != '\0') {
    return env;
  }
  std::string line = RunGitLine(
      "git -C \"" HOBBIT_REPO_ROOT "\" rev-parse --short HEAD 2>/dev/null");
  if (!line.empty()) return line;
  // rev-parse fails on e.g. a shallow export with no HEAD ref; describe
  // --always still resolves anything with objects, and --dirty marks
  // uncommitted state so a report never masquerades as a clean commit.
  line = RunGitLine(
      "git -C \"" HOBBIT_REPO_ROOT
      "\" describe --always --dirty 2>/dev/null");
  if (!line.empty()) return line;
  // A report without a commit stamp cannot be diffed against history, so
  // refuse to produce one rather than writing "unknown" into a JSON that
  // looks authoritative.
  std::cerr << "[bench] fatal: cannot resolve the current commit -- set "
               "HOBBIT_COMMIT or run inside the git checkout\n";
  std::exit(1);
}

void AppendObject(
    std::ostringstream& os,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  os << '{';
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) os << ", ";
    os << JsonString(fields[i].first) << ": " << fields[i].second;
  }
  os << '}';
}

}  // namespace

JsonReporter::JsonReporter(std::string bench_name)
    : bench_name_(std::move(bench_name)) {
  Config("threads_hw",
         static_cast<double>(std::thread::hardware_concurrency()));
}

void JsonReporter::Config(const std::string& key, double value) {
  config_.emplace_back(key, JsonNumber(value));
}

void JsonReporter::Config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, JsonString(value));
}

void JsonReporter::Metric(const std::string& key, double value) {
  metrics_.emplace_back(key, JsonNumber(value));
}

void JsonReporter::Metric(const std::string& key, const std::string& value) {
  metrics_.emplace_back(key, JsonString(value));
}

std::string JsonReporter::ToJson() const {
  std::ostringstream os;
  os << "{\"bench\": " << JsonString(bench_name_) << ", \"config\": ";
  AppendObject(os, config_);
  os << ", \"metrics\": ";
  AppendObject(os, metrics_);
  os << ", \"commit\": " << JsonString(CurrentCommit()) << "}\n";
  return os.str();
}

std::string JsonReporter::Write() const {
  const char* dir = std::getenv("HOBBIT_BENCH_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : HOBBIT_REPO_ROOT;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "BENCH_" + bench_name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "[bench] cannot write " << path << "\n";
    return "";
  }
  out << ToJson();
  std::cerr << "[bench] wrote " << path << "\n";
  return path;
}

void PrintHeader(const std::string& experiment,
                 const std::string& paper_reference) {
  std::cout << "==================================================\n"
            << experiment << "  (" << paper_reference << ")\n"
            << "scale=" << WorldScale() << " seed=" << WorldSeed()
            << "  -- compare shapes/ratios, not absolute counts\n"
            << "==================================================\n";
}

}  // namespace hobbit::bench
