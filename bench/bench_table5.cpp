// bench_table5 — reproduces Table 5: "Top 15 largest homogeneous blocks".
//
// Paper: sizes 1251 down to 679; 7 of 15 blocks belong to hosting
// companies (EGIHosting, Amazon x2, OPENTRANSFER x2, GoDaddy, NTT),
// 6 to broadband ISPs whose blocks are cellular pools (Tele2 x2, OCN x2,
// SingTel, SoftBank), plus Verizon Wireless (mobile) and Cox (fixed).

#include <iostream>

#include "analysis/census.h"
#include "analysis/report.h"
#include "common.h"

namespace {

const char* KindLabel(hobbit::netsim::SubnetKind kind) {
  using hobbit::netsim::SubnetKind;
  switch (kind) {
    case SubnetKind::kResidential: return "residential";
    case SubnetKind::kBusiness: return "business";
    case SubnetKind::kDatacenter: return "datacenter";
    case SubnetKind::kCellular: return "cellular";
    case SubnetKind::kHosting: return "hosting";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace hobbit;
  bench::PrintHeader("Table 5: top 15 largest homogeneous blocks",
                     "paper §5.2");

  const bench::World& world = bench::GetWorld();
  analysis::TextTable table({"Rank", "Size", "ASN", "Organization",
                             "Country", "Type", "Ground-truth kind"});
  for (std::size_t i = 0; i < world.final_blocks.size() && i < 15; ++i) {
    const cluster::AggregateBlock& block = world.final_blocks[i];
    const netsim::AsInfo* as = analysis::AsOfBlock(world.internet.registry,
                                                   block);
    table.AddRow(
        {std::to_string(i + 1), std::to_string(block.member_24s.size()),
         as ? "AS" + std::to_string(as->asn) : "?",
         as ? as->organization : "?", as ? as->country : "?",
         as ? netsim::ToString(as->type) : "?",
         KindLabel(analysis::DominantKind(world.internet, block))});
  }
  table.Print(std::cout);

  std::cout << "\npaper top-15: EGIHosting 1251, Tele2 1187, Amazon 1122, "
               "NTT 1071, OPENTRANSFER 940, Tele2 857, OCN 840, Amazon "
               "835, OCN 783, SingTel 732, SoftBank 731, GoDaddy 703, "
               "Verizon Wireless 699, OPENTRANSFER 698, Cox 679\n"
            << "(sizes scale with HOBBIT_SCALE=" << bench::WorldScale()
            << "; ordering and org mix are the reproduced shape)\n";
  return 0;
}
