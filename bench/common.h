// common.h — shared state for the per-table/per-figure bench binaries.
//
// Every bench needs the same expensive artifacts: a generated Internet,
// the full Hobbit pipeline run, and the aggregation stages.  `GetWorld()`
// builds them once per process, at a scale controlled by the HOBBIT_SCALE
// environment variable (default 0.25; 1.0 reproduces the full
// paper-shaped census of ~85k /24s) and seed HOBBIT_SEED (default 42).
//
// Absolute counts scale with HOBBIT_SCALE; the ratios and shapes that the
// paper reports are scale-free, which is what EXPERIMENTS.md compares.
#pragma once

#include <string>

#include "cluster/aggregate.h"
#include "hobbit/pipeline.h"
#include "netsim/internet.h"

namespace hobbit::bench {

struct World {
  netsim::Internet internet;
  core::PipelineResult pipeline;
  /// Homogeneous /24s (pointers into pipeline.results).
  std::vector<const core::BlockResult*> homogeneous;
  /// §5 exact aggregation.
  std::vector<cluster::AggregateBlock> aggregates;
  /// §6 MCL aggregation, validated by reprobing.
  cluster::MclAggregationResult mcl;
  /// Final block list after merging validated clusters.
  std::vector<cluster::AggregateBlock> final_blocks;

  double scale = 0.25;
  std::uint64_t seed = 42;
};

/// Builds (once) and returns the shared world.
const World& GetWorld();

/// Scale/seed actually in use (parsed from the environment).
double WorldScale();
std::uint64_t WorldSeed();

/// Prints the standard bench header (experiment id + scale note).
void PrintHeader(const std::string& experiment,
                 const std::string& paper_reference);

}  // namespace hobbit::bench
