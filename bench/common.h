// common.h — shared state for the per-table/per-figure bench binaries.
//
// Every bench needs the same expensive artifacts: a generated Internet,
// the full Hobbit pipeline run, and the aggregation stages.  `GetWorld()`
// builds them once per process, at a scale controlled by the HOBBIT_SCALE
// environment variable (default 0.25; 1.0 reproduces the full
// paper-shaped census of ~85k /24s) and seed HOBBIT_SEED (default 42).
//
// Absolute counts scale with HOBBIT_SCALE; the ratios and shapes that the
// paper reports are scale-free, which is what EXPERIMENTS.md compares.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "cluster/aggregate.h"
#include "hobbit/pipeline.h"
#include "netsim/internet.h"

namespace hobbit::bench {

struct World {
  netsim::Internet internet;
  core::PipelineResult pipeline;
  /// Homogeneous /24s (pointers into pipeline.results).
  std::vector<const core::BlockResult*> homogeneous;
  /// §5 exact aggregation.
  std::vector<cluster::AggregateBlock> aggregates;
  /// §6 MCL aggregation, validated by reprobing.
  cluster::MclAggregationResult mcl;
  /// Final block list after merging validated clusters.
  std::vector<cluster::AggregateBlock> final_blocks;

  double scale = 0.25;
  std::uint64_t seed = 42;
};

/// Builds (once) and returns the shared world.
const World& GetWorld();

/// Scale/seed actually in use (parsed from the environment).
double WorldScale();
std::uint64_t WorldSeed();

/// Prints the standard bench header (experiment id + scale note).
void PrintHeader(const std::string& experiment,
                 const std::string& paper_reference);

/// Machine-readable bench results.  Accumulates configuration and metric
/// key/value pairs and writes them as
///   {"bench": <name>, "config": {...}, "metrics": {...}, "commit": <sha>}
/// to `BENCH_<name>.json` at the repo root (overridable with the
/// HOBBIT_BENCH_DIR environment variable), so CI and EXPERIMENTS.md
/// tooling can diff runs without scraping stdout.  The commit comes from
/// HOBBIT_COMMIT when set, else `git rev-parse --short HEAD`.
class JsonReporter {
 public:
  /// Every report starts with a `threads_hw` config entry (the machine's
  /// hardware concurrency) so scaling numbers can be judged against the
  /// hardware they were measured on.
  explicit JsonReporter(std::string bench_name);

  void Config(const std::string& key, double value);
  void Config(const std::string& key, const std::string& value);
  void Metric(const std::string& key, double value);
  /// String-valued metric (e.g. "scaling_gates": "skipped-1core" when a
  /// single-core machine cannot exercise multi-thread speedup gates).
  void Metric(const std::string& key, const std::string& value);

  /// Serializes the report.  Keys keep insertion order.
  std::string ToJson() const;

  /// Writes BENCH_<bench_name>.json; returns the path written, or an
  /// empty string (with a note on stderr) when the file cannot be
  /// opened.
  std::string Write() const;

 private:
  std::string bench_name_;
  /// Values are pre-rendered JSON tokens (quoted strings or numbers).
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, std::string>> metrics_;
};

}  // namespace hobbit::bench
