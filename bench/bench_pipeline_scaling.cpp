// bench_pipeline_scaling — wall-time scaling of the measurement campaign
// (snapshot -> calibration -> adaptive probing) across thread counts and
// internet scales, and the speedup of the measurement fast path
// (incremental grouping + route memo + small-vector storage) over the
// reference batch path it replaced.
//
// Correctness is part of the benchmark: for every (scale, thread count)
// the fast and reference configurations must produce byte-identical
// classification output (resultio v1 serialization), and a mismatch fails
// the run loudly.  Speedup gates guard regressions: the single-thread
// fast-vs-reference ratio must clear `--require-speedup` (default
// below); on a machine with >= 4 cores the fast path at 4 threads must
// beat 1 thread; and the similarity-graph build (flat inverted index +
// arena segment chains) must beat its hash-map reference single-threaded
// while producing element-identical edges.  Exit codes: 1 mismatch,
// 2 fast-path gate, 3 thread-scaling gate, 4 similarity-graph gate,
// 77 thread-scaling gate skipped (single-core machine: the report says
// "skipped-1core" instead of letting the vacuous collapse floor count
// as a pass).  The `perf` ctest label runs `--quick` (tiny scale,
// threads {1,2,4}, well under 5 s).
//
// Results are also written to BENCH_pipeline.json via the JSON reporter
// (schema: {bench, config, metrics{...}, commit}).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/aggregate.h"
#include "common.h"
#include "hobbit/pipeline.h"
#include "hobbit/resultio.h"
#include "netsim/internet.h"

namespace {

using namespace hobbit;

struct CampaignRun {
  double seconds = 0.0;
  double measurement_seconds = 0.0;  // stage 2 (the main campaign) alone
  std::uint64_t probes = 0;
  std::size_t blocks = 0;
  std::string serialized;  // resultio v1 dump of the classifications
};

CampaignRun RunCampaign(const netsim::Internet& internet, std::uint64_t seed,
                        double scale, int threads, bool fast_path) {
  core::PipelineConfig config;
  config.seed = seed;
  config.threads = threads;
  config.calibration_blocks = std::max(20, static_cast<int>(1200 * scale));
  config.samples_per_block = 16;
  config.prober.incremental_grouping = fast_path;
  config.prober.route_memo = fast_path;

  internet.simulator->ResetProbeCounter();
  auto start = std::chrono::steady_clock::now();
  core::PipelineResult result = core::RunPipeline(internet, config);
  auto stop = std::chrono::steady_clock::now();

  CampaignRun run;
  run.seconds = std::chrono::duration<double>(stop - start).count();
  run.measurement_seconds = result.stats.measurement_seconds;
  run.probes = result.stats.probes_sent;
  run.blocks = result.results.size();
  std::ostringstream os;
  core::WriteResults(os, result.results);
  run.serialized = os.str();
  return run;
}

netsim::Internet BuildAt(double scale, std::uint64_t seed) {
  netsim::InternetConfig config;
  config.seed = seed;
  config.scale = scale;
  return netsim::BuildInternet(config);
}

bool SameGraph(const cluster::Graph& a, const cluster::Graph& b) {
  if (a.vertex_count != b.vertex_count || a.edges.size() != b.edges.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    if (a.edges[i].a != b.edges[i].a || a.edges[i].b != b.edges[i].b ||
        a.edges[i].weight != b.edges[i].weight) {
      return false;
    }
  }
  return true;
}

struct GraphBuildRun {
  double reference_seconds = 0.0;
  double fast_seconds = 0.0;
  bool identical = true;
  double speedup() const { return reference_seconds / fast_seconds; }
};

/// Times BuildSimilarityGraph (flat sorted inverted index, arena-backed
/// edge chains) against BuildSimilarityGraphReference (hash map +
/// std::vector) single-threaded, repeated out of the noise floor.
GraphBuildRun CompareGraphBuild(
    std::span<const cluster::AggregateBlock> aggregates) {
  GraphBuildRun run;
  run.identical = SameGraph(cluster::BuildSimilarityGraph(aggregates),
                            cluster::BuildSimilarityGraphReference(aggregates));
  auto probe_start = std::chrono::steady_clock::now();
  { cluster::Graph g = cluster::BuildSimilarityGraphReference(aggregates); }
  const double once = std::max(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    probe_start)
          .count(),
      1e-6);
  const int reps = std::clamp(static_cast<int>(0.3 / once), 3, 300);
  auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    cluster::Graph g = cluster::BuildSimilarityGraphReference(aggregates);
  }
  run.reference_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count() /
      reps;
  start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    cluster::Graph g = cluster::BuildSimilarityGraph(aggregates);
  }
  run.fast_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count() /
      reps;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  double require_speedup = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--require-speedup=", 18) == 0) {
      require_speedup = std::strtod(argv[i] + 18, nullptr);
    }
  }
  // The per-block work (and thus the fast-path advantage) is independent
  // of scale — scale changes the number of /24s, not the probes per /24 —
  // so the quick gate at tiny scale tests the same code paths the full
  // run times.  The gate is on the *measurement stage* (the campaign the
  // fast path targets; the zmap snapshot stage is untouched by it), with
  // enough headroom below the typically measured ~3x that a noisy
  // single-core box does not flake the perf ctest.
  if (require_speedup < 0.0) require_speedup = quick ? 1.3 : 2.2;

  const std::uint64_t seed = bench::WorldSeed();
  const std::vector<double> scales =
      quick ? std::vector<double>{0.02}
            : std::vector<double>{0.05, bench::WorldScale()};
  const std::vector<int> threads =
      quick ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};

  // Thread-scaling gate on the fast path itself: 4 threads must beat 1
  // thread by this factor at the largest scale.  Only meaningful when
  // the machine actually has >= 4 cores; below that, the gate degrades
  // to an oversubscription-collapse guard (time-slicing one core across
  // four workers cannot win, it must merely not fall off a cliff).
  const unsigned hw = std::thread::hardware_concurrency();
  const double require_thread_scaling =
      hw >= 4 ? (quick ? 1.2 : 1.5) : 0.4;

  bench::PrintHeader("pipeline-scaling",
                     "engineering: measurement fast path + thread scaling");
  bench::JsonReporter report("pipeline");
  report.Config("seed", static_cast<double>(seed));
  report.Config("mode", quick ? "quick" : "full");
  report.Config("require_speedup", require_speedup);

  report.Config("require_thread_scaling", require_thread_scaling);

  bool all_identical = true;
  // Single-thread measurement-stage speedup at the largest scale.
  double gate_speedup = 0.0;
  // fast_1t / fast_4t wall time at the largest scale.
  double fast_1t_seconds = 0.0;
  double thread_scaling = 0.0;
  netsim::Internet internet;  // survives the loop at the largest scale
  for (double scale : scales) {
    internet = BuildAt(scale, seed);
    std::printf("\nscale %.3g\n", scale);
    std::printf("%10s %10s %12s %12s %12s %9s %10s\n", "threads", "path",
                "total[s]", "measure[s]", "probes/s", "blocks/s",
                "vs ref");

    CampaignRun reference = RunCampaign(internet, seed, scale, 1, false);
    std::printf("%10d %10s %12.3f %12.3f %12.0f %9.1f %9s\n", 1,
                "reference", reference.seconds,
                reference.measurement_seconds,
                reference.probes / reference.seconds,
                reference.blocks / reference.seconds, "-");

    char tag_buffer[32];
    std::snprintf(tag_buffer, sizeof(tag_buffer), "s%.3g", scale);
    const std::string tag = tag_buffer;
    report.Metric(tag + "_reference_1t_seconds", reference.seconds);
    report.Metric(tag + "_reference_1t_measure_seconds",
                  reference.measurement_seconds);
    report.Metric(tag + "_blocks", static_cast<double>(reference.blocks));
    report.Metric(tag + "_probes", static_cast<double>(reference.probes));

    for (int t : threads) {
      CampaignRun fast = RunCampaign(internet, seed, scale, t, true);
      const double speedup = reference.seconds / fast.seconds;
      const double measure_speedup =
          reference.measurement_seconds / fast.measurement_seconds;
      const bool identical = fast.serialized == reference.serialized;
      all_identical = all_identical && identical;
      std::printf("%10d %10s %12.3f %12.3f %12.0f %9.1f %8.2fx%s\n", t,
                  "fast", fast.seconds, fast.measurement_seconds,
                  fast.probes / fast.seconds,
                  fast.blocks / fast.seconds, measure_speedup,
                  identical ? "" : "  CLASSIFICATION MISMATCH");
      report.Metric(tag + "_fast_" + std::to_string(t) + "t_seconds",
                    fast.seconds);
      report.Metric(tag + "_fast_" + std::to_string(t) +
                        "t_measure_seconds",
                    fast.measurement_seconds);
      report.Metric(tag + "_fast_" + std::to_string(t) + "t_speedup",
                    speedup);
      report.Metric(tag + "_fast_" + std::to_string(t) +
                        "t_measure_speedup",
                    measure_speedup);
      if (t == 1) {
        gate_speedup = measure_speedup;
        fast_1t_seconds = fast.seconds;
      }
      if (t == 4 && fast_1t_seconds > 0.0) {
        thread_scaling = fast_1t_seconds / fast.seconds;
      }
    }

    // Cross-check: the reference path must also be thread-count invariant
    // (it was before the fast path landed; keep it honest).
    if (!quick) {
      CampaignRun reference_mt =
          RunCampaign(internet, seed, scale, threads.back(), false);
      all_identical =
          all_identical && reference_mt.serialized == reference.serialized;
    }
  }

  // Similarity-graph build gate on the aggregates of the largest scale:
  // the flat-index + arena build must emit element-identical edges and
  // beat the hash-map reference single-threaded.
  const double require_graph_speedup = quick ? 1.05 : 1.15;
  core::PipelineConfig aggregate_config;
  aggregate_config.seed = seed;
  aggregate_config.threads = 1;
  aggregate_config.calibration_blocks =
      std::max(20, static_cast<int>(1200 * scales.back()));
  aggregate_config.samples_per_block = 16;
  core::PipelineResult aggregate_result =
      core::RunPipeline(internet, aggregate_config);
  std::vector<const core::BlockResult*> homogeneous =
      aggregate_result.HomogeneousBlocks();
  std::vector<cluster::AggregateBlock> aggregates =
      cluster::AggregateIdentical(homogeneous);
  GraphBuildRun graph_run = CompareGraphBuild(aggregates);
  std::printf("\nsimilarity graph (%zu aggregates): fast %.5fs vs reference "
              "%.5fs (%.2fx, required >= %.2fx)%s\n",
              aggregates.size(), graph_run.fast_seconds,
              graph_run.reference_seconds, graph_run.speedup(),
              require_graph_speedup,
              graph_run.identical ? "" : "  EDGE MISMATCH");
  report.Config("require_graph_speedup", require_graph_speedup);
  report.Metric("graph_aggregates", static_cast<double>(aggregates.size()));
  report.Metric("graph_reference_seconds", graph_run.reference_seconds);
  report.Metric("graph_fast_seconds", graph_run.fast_seconds);
  report.Metric("graph_speedup", graph_run.speedup());
  all_identical = all_identical && graph_run.identical;

  const bool scaling_meaningful = hw > 1;
  report.Metric("single_thread_measure_speedup", gate_speedup);
  report.Metric("fast_4t_vs_1t", thread_scaling);
  report.Metric("identical", all_identical ? 1.0 : 0.0);
  report.Metric("scaling_gates",
                scaling_meaningful ? std::string("enforced")
                                   : std::string("skipped-1core"));
  report.Write();

  std::printf("\nclassifications fast vs reference: %s\n",
              all_identical ? "byte-identical" : "MISMATCH (bug!)");
  std::printf(
      "single-thread measurement-stage speedup %.2fx (required >= %.2fx)\n",
      gate_speedup, require_speedup);
  std::printf("fast-path 4t vs 1t %.2fx (required >= %.2fx, threads_hw=%u)\n",
              thread_scaling, require_thread_scaling, hw);
  if (!all_identical) return 1;
  if (gate_speedup < require_speedup) return 2;
  if (graph_run.speedup() < require_graph_speedup) return 4;
  if (!scaling_meaningful) {
    std::printf("thread-scaling gate SKIPPED (threads_hw=1: time-slicing "
                "one core cannot show speedup)\n");
    return 77;
  }
  if (thread_scaling < require_thread_scaling) return 3;
  return 0;
}
