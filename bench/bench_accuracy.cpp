// bench_accuracy — what the paper could not measure: Hobbit scored
// against the simulator's ground truth.
//
// The paper argues its error bounds statistically (the 95 % stopping
// rule; the <0.1 % false-positive check for the §4.2 criteria).  With
// route entries as first-class simulator objects we can report the full
// confusion matrix of the homogeneity verdict, the §4.2 flag's precision,
// and how pure/complete the aggregated blocks are.

#include <iostream>

#include "analysis/evaluation.h"
#include "analysis/report.h"
#include "common.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Ground-truth accuracy of Hobbit",
                     "simulator-only evaluation (DESIGN.md §2)");

  const bench::World& world = bench::GetWorld();

  analysis::VerdictEvaluation verdicts =
      analysis::EvaluateVerdicts(world.internet, world.pipeline);
  analysis::TextTable confusion(
      {"", "truth homogeneous", "truth heterogeneous"});
  confusion.AddRow({"said homogeneous",
                    std::to_string(verdicts.true_homogeneous),
                    std::to_string(verdicts.false_homogeneous)});
  confusion.AddRow({"said hierarchical",
                    std::to_string(verdicts.false_heterogeneous),
                    std::to_string(verdicts.true_heterogeneous)});
  confusion.Print(std::cout);
  std::cout << "accuracy " << analysis::Pct(verdicts.Accuracy())
            << ", homogeneous precision "
            << analysis::Pct(verdicts.HomogeneousPrecision())
            << " / recall "
            << analysis::Pct(verdicts.HomogeneousRecall())
            << ", heterogeneous precision "
            << analysis::Pct(verdicts.HeterogeneousPrecision())
            << " / recall "
            << analysis::Pct(verdicts.HeterogeneousRecall()) << "\n"
            << "(the paper's 95% stopping rule predicts homogeneous "
               "recall >= ~95%)\n\n";

  analysis::FlagEvaluation flag =
      analysis::EvaluateAlignedDisjointFlag(world.internet, world.pipeline);
  std::cout << "aligned-disjoint flag: " << flag.flagged
            << " /24s flagged, precision "
            << analysis::Pct(flag.Precision())
            << "   (paper: homogeneous blocks pass the criteria at "
               "< 0.1%)\n\n";

  analysis::AggregationEvaluation exact =
      analysis::EvaluateAggregation(world.internet, world.aggregates);
  analysis::AggregationEvaluation final_blocks =
      analysis::EvaluateAggregation(world.internet, world.final_blocks);
  analysis::TextTable agg({"aggregation", "blocks", "purity",
                           "mean completeness"});
  agg.AddRow({"identical sets (§5)", std::to_string(exact.blocks),
              analysis::Pct(exact.Purity()),
              analysis::Pct(exact.mean_completeness)});
  agg.AddRow({"+ MCL + reprobe (§6)",
              std::to_string(final_blocks.blocks),
              analysis::Pct(final_blocks.Purity()),
              analysis::Pct(final_blocks.mean_completeness)});
  agg.Print(std::cout);
  std::cout << "\nreading: exact aggregation is conservative (high purity, "
               "low completeness — partial last-hop sets fragment true "
               "blocks); validated MCL merging buys completeness at "
               "almost no purity cost\n";
  return 0;
}
