// bench_fig11 — reproduces Figure 11: "The ratio of the links discovered
// by two different approaches: select addresses from 1) each Hobbit block
// and 2) each /24".
//
// Paper: choosing traceroute destinations per Hobbit block always
// discovers more links than per /24 at equal probing budget; per-dest
// load balancing means even ~100 destinations per /24 are needed to
// approach ratio 1.

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "analysis/plot.h"
#include "analysis/report.h"
#include "analysis/topo_discovery.h"
#include "common.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Figure 11: link discovery, Hobbit blocks vs /24s",
                     "paper §7.1");

  const bench::World& world = bench::GetWorld();
  netsim::Rng rng(world.seed + 0xF16ULL);

  // Sample homogeneous /24s (the paper uses its §3.1 full-traceroute
  // dataset of homogeneous blocks).
  std::vector<const core::BlockResult*> sample = world.homogeneous;
  const std::size_t want = std::min<std::size_t>(sample.size(), 600);
  for (std::size_t i = 0; i < want; ++i) {
    std::size_t j = i + rng.NextBelow(sample.size() - i);
    std::swap(sample[i], sample[j]);
  }
  sample.resize(want);

  // All snapshot-active destinations of the sampled blocks.
  std::map<netsim::Prefix, std::size_t> sampled_24s;
  std::vector<netsim::Ipv4Address> destinations;
  std::vector<netsim::Prefix> destination_24;
  auto find_snapshot = [&](const netsim::Prefix& p)
      -> const probing::ZmapBlock* {
    auto pos = std::lower_bound(
        world.pipeline.study_blocks.begin(),
        world.pipeline.study_blocks.end(), p,
        [](const probing::ZmapBlock& b, const netsim::Prefix& q) {
          return b.prefix < q;
        });
    return pos != world.pipeline.study_blocks.end() && pos->prefix == p
               ? &*pos
               : nullptr;
  };
  for (const core::BlockResult* block : sample) {
    const probing::ZmapBlock* snapshot = find_snapshot(block->prefix);
    if (snapshot == nullptr) continue;
    sampled_24s.emplace(block->prefix, sampled_24s.size());
    for (std::uint8_t octet : snapshot->active_octets) {
      destinations.push_back(
          netsim::Ipv4Address(block->prefix.base().value() | octet));
      destination_24.push_back(block->prefix);
    }
  }

  analysis::TracerouteCorpus corpus =
      analysis::CollectCorpus(*world.internet.simulator, destinations);
  std::cout << "corpus: " << corpus.entries.size() << " traceroutes, "
            << corpus.total_links << " distinct links, "
            << sampled_24s.size() << " /24s\n\n";

  // Strata 1: per /24.
  std::map<netsim::Prefix, std::vector<std::uint32_t>> by_24;
  for (std::uint32_t i = 0; i < corpus.entries.size(); ++i) {
    by_24[netsim::Prefix::Slash24Of(corpus.entries[i].destination)]
        .push_back(i);
  }
  std::vector<std::vector<std::uint32_t>> strata_24;
  for (auto& [prefix, indices] : by_24) {
    strata_24.push_back(std::move(indices));
  }

  // Strata 2: per final Hobbit block (restricted to the sampled /24s).
  std::map<const cluster::AggregateBlock*, std::vector<std::uint32_t>>
      by_block;
  std::map<netsim::Prefix, const cluster::AggregateBlock*> block_of;
  for (const cluster::AggregateBlock& block : world.final_blocks) {
    for (const netsim::Prefix& p : block.member_24s) block_of[p] = &block;
  }
  for (std::uint32_t i = 0; i < corpus.entries.size(); ++i) {
    netsim::Prefix p =
        netsim::Prefix::Slash24Of(corpus.entries[i].destination);
    auto pos = block_of.find(p);
    if (pos != block_of.end()) {
      by_block[pos->second].push_back(i);
    } else {
      by_block[nullptr].push_back(i);  // not aggregated: its own stratum
    }
  }
  std::vector<std::vector<std::uint32_t>> strata_block;
  for (auto& [block, indices] : by_block) {
    strata_block.push_back(std::move(indices));
  }

  const std::size_t total_24s = strata_24.size();
  auto hobbit_series = analysis::DiscoverySeries(
      corpus, strata_block, total_24s, netsim::Rng(world.seed + 1));
  auto per24_series = analysis::DiscoverySeries(
      corpus, strata_24, total_24s, netsim::Rng(world.seed + 2));

  auto ratio_at = [](const std::vector<analysis::SeriesPoint>& series,
                     double x) {
    double best = 0;
    for (const auto& point : series) {
      if (point.avg_selected_per_24 <= x) best = point.link_ratio;
    }
    return best;
  };
  analysis::TextTable table({"avg selected per /24", "Hobbit blocks",
                             "per /24", "advantage"});
  for (double x : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    double h = ratio_at(hobbit_series, x);
    double p = ratio_at(per24_series, x);
    table.AddRow({analysis::Fmt(x, 1), analysis::Fmt(h, 3),
                  analysis::Fmt(p, 3),
                  (h >= p ? "+" : "") + analysis::Fmt(h - p, 3)});
  }
  table.Print(std::cout);
  std::cout << "\n";
  analysis::PlotSeries hobbit_plot{"Hobbit blocks", '*', {}};
  for (const auto& point : hobbit_series) {
    hobbit_plot.points.emplace_back(point.avg_selected_per_24,
                                    point.link_ratio);
  }
  analysis::PlotSeries per24_plot{"per /24", 'o', {}};
  for (const auto& point : per24_series) {
    per24_plot.points.emplace_back(point.avg_selected_per_24,
                                   point.link_ratio);
  }
  analysis::PlotOptions plot;
  plot.x_label = "avg selected destinations per /24";
  plot.y_label = "discovered links ratio";
  plot.x_min = 0;
  plot.x_max = 32;
  plot.y_min = 0;
  plot.y_max = 1;
  analysis::RenderPlot(std::cout, {hobbit_plot, per24_plot}, plot);
  std::cout << "\npaper: the Hobbit-block curve dominates the per-/24 "
               "curve at every budget\n";
  return 0;
}
