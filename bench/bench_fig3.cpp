// bench_fig3 — reproduces Figure 3:
//  (a) CDF of cardinality for homogeneous /24s detected vs undetected by
//      the hierarchy test (undetected blocks skew toward higher
//      cardinality);
//  (b) CDF of cardinality under three metrics — entire path, sub-path,
//      last hop (cardinality shrinks as less of the route is used, which
//      is why Hobbit uses last hops);
//  (c) CDF of the number of probed addresses for detected vs undetected.

#include <iostream>
#include <vector>

#include "analysis/plot.h"
#include "analysis/report.h"
#include "analysis/stats.h"
#include "common.h"
#include "route_corpus.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Figure 3: cardinality and probed-address CDFs",
                     "paper §3.1-§3.2");

  const bench::World& world = bench::GetWorld();
  auto corpus = bench::CollectRouteCorpus(world, 250);
  std::cout << "corpus: " << corpus.size()
            << " truth-homogeneous /24s, MDA-tracerouted\n\n";

  std::vector<double> card_detected, card_undetected, card_all;
  std::vector<double> probed_detected, probed_undetected;
  std::vector<double> card_route, card_subpath, card_lasthop;
  for (const bench::BlockRouteSet& block : corpus) {
    auto [route_card, detected] =
        bench::HobbitOnMetric(block, bench::RouteKeys);
    card_all.push_back(route_card);
    (detected ? card_detected : card_undetected).push_back(route_card);
    (detected ? probed_detected : probed_undetected)
        .push_back(static_cast<double>(block.observations.size()));

    card_route.push_back(route_card);
    std::size_t depth = bench::CommonRouterDepth(block);
    auto [subpath_card, s_unused] = bench::HobbitOnMetric(
        block, [depth](const bench::RouteObservation& obs) {
          return bench::SubPathKeys(obs, depth);
        });
    (void)s_unused;
    card_subpath.push_back(subpath_card);
    auto [lasthop_card, l_unused] =
        bench::HobbitOnMetric(block, bench::LastHopKeys);
    (void)l_unused;
    card_lasthop.push_back(lasthop_card);
  }

  std::cout << "(a) cardinality (entire-route metric)\n";
  analysis::PrintCdfSummary(std::cout, "  detected  ",
                            analysis::Ecdf(card_detected));
  analysis::PrintCdfSummary(std::cout, "  undetected",
                            analysis::Ecdf(card_undetected));
  analysis::PrintCdfSummary(std::cout, "  all       ",
                            analysis::Ecdf(card_all));
  std::cout << "  paper: undetected homogeneous /24s have higher "
               "cardinalities\n\n";

  std::cout << "(b) cardinality by metric\n";
  analysis::PrintCdfSummary(std::cout, "  entire path",
                            analysis::Ecdf(card_route));
  analysis::PrintCdfSummary(std::cout, "  sub-path   ",
                            analysis::Ecdf(card_subpath));
  analysis::PrintCdfSummary(std::cout, "  last-hop   ",
                            analysis::Ecdf(card_lasthop));
  std::cout << "  paper: cardinality falls sharply from entire path to "
               "last hop (cascaded balancers multiply path counts)\n\n";

  {
    analysis::PlotOptions plot;
    plot.x_label = "cardinality";
    analysis::RenderCdfPlot(std::cout,
                            {{"entire path", card_route},
                             {"sub-path", card_subpath},
                             {"last-hop", card_lasthop}},
                            plot);
    std::cout << "\n";
  }

  std::cout << "(c) probed addresses\n";
  analysis::PrintCdfSummary(std::cout, "  detected  ",
                            analysis::Ecdf(probed_detected));
  analysis::PrintCdfSummary(std::cout, "  undetected",
                            analysis::Ecdf(probed_undetected));
  std::cout << "  paper: detection failures concentrate at fewer probed "
               "addresses — probing more addresses controls the failure "
               "probability (leads to Fig 4)\n";
  return 0;
}
