// bench_serve — serving-layer lookup throughput.
//
// Compiles the shared world's final block list into a snapshot, then
// measures the lookup engine: single-threaded exact lookups, batched
// lookups across thread counts, and covering queries.  The ROADMAP
// target is >= 1M lookups/sec on the seed-scale snapshot; the query mix
// is half hits (member /24s) and half misses (shifted keys), shuffled
// deterministically, which is the unfriendliest realistic case for the
// branch predictor.
//
// Exit codes follow bench_cluster_scaling: 0 ok, 1 batched answers
// disagree with serial lookups, 2 scaling-gate failure.  The gates are
// hardware-aware (see RequiredSpeedup): within the machine's core count
// a batched run must not lose to the 1-thread batch (the chunked
// scheduler's grain keeps dispatch overhead out of small batches, so
// extra threads must be free or better); oversubscribed thread counts
// only guard against pathological collapse, since time-slicing one core
// across N workers cannot win.  `--quick` shrinks the world to smoke
// scale (unless HOBBIT_SCALE pins it) and pads the floors for noise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "common/parallel.h"
#include "netsim/rng.h"
#include "serve/lookup.h"
#include "serve/snapshot.h"

namespace {

using namespace hobbit;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Minimum acceptable `batch_1t / batch_Nt` ratio on `hw` cores.
double RequiredSpeedup(int threads, unsigned hw, bool quick) {
  const unsigned cores = std::max(hw, 1u);
  if (threads <= 1) return 0.0;  // 1t is the baseline
  if (static_cast<unsigned>(threads) <= cores) {
    // No-loss floor: adding threads within the core budget must never
    // cost throughput (quick mode leaves headroom for smoke-scale
    // noise, where a run is only a few milliseconds).
    return quick ? 0.85 : 0.95;
  }
  return 0.4;  // oversubscribed: only flag a collapse
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  if (quick) ::setenv("HOBBIT_SCALE", "0.05", /*overwrite=*/0);

  bench::PrintHeader("serve lookup throughput",
                     "serving layer (no paper figure)");
  const unsigned hw = std::thread::hardware_concurrency();
  const bench::World& world = bench::GetWorld();
  bench::JsonReporter report("serve");
  report.Config("scale", world.scale);
  report.Config("seed", static_cast<double>(world.seed));
  report.Config("mode", quick ? "quick" : "full");

  auto buffer = serve::CompileSnapshot(
      world.final_blocks,
      serve::ClassifiedFrom(
          std::span<const core::BlockResult>(world.pipeline.results)),
      world.seed);
  std::string error;
  auto snapshot = serve::Snapshot::FromBuffer(std::move(buffer), &error);
  if (!snapshot) {
    std::printf("snapshot compile failed: %s\n", error.c_str());
    return 1;
  }
  serve::LookupEngine engine(*snapshot);
  std::printf("snapshot: %zu entries, %zu blocks, %zu bytes\n",
              snapshot->entry_count(), snapshot->block_count(),
              snapshot->buffer_bytes());

  // Query mix: every entry once as a hit and once shifted as a miss,
  // repeated until the target count, then shuffled.
  std::vector<std::uint32_t> queries;
  const std::size_t target = quick ? (1 << 20) : (1 << 22);
  while (queries.size() < target) {
    for (std::size_t i = 0; i < snapshot->entry_count(); ++i) {
      queries.push_back(snapshot->EntryKey(i));
      queries.push_back(snapshot->EntryKey(i) ^ 0x00800000u);
    }
    if (snapshot->entry_count() == 0) break;
  }
  netsim::Rng rng(7);
  for (std::size_t i = queries.size(); i > 1; --i) {
    std::swap(queries[i - 1], queries[rng.NextBelow(i)]);
  }

  // Single-threaded, one call per query; doubles as the answer key the
  // batched runs are checked against.
  std::vector<serve::LookupResult> reference(queries.size());
  std::size_t hits = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    reference[i] = engine.Lookup(netsim::Ipv4Address(queries[i]));
    hits += reference[i].found ? 1 : 0;
  }
  double elapsed = Seconds(start);
  std::printf("single-thread : %8.0f klookups/s  (%zu/%zu hits, %.3fs)\n",
              queries.size() / elapsed / 1e3, hits, queries.size(),
              elapsed);
  report.Metric("entries", static_cast<double>(snapshot->entry_count()));
  report.Metric("queries", static_cast<double>(queries.size()));
  report.Metric("single_thread_lookups_per_s", queries.size() / elapsed);

  // Batched across thread counts, gated against the 1-thread batch.
  std::vector<serve::LookupResult> answers(queries.size());
  double batch_1t = 0.0;
  bool all_identical = true;
  bool gates_pass = true;
  for (int threads : {1, 2, 4, 8}) {
    common::ThreadPool pool(threads);
    start = std::chrono::steady_clock::now();
    engine.LookupBatch(queries, answers, &pool);
    elapsed = Seconds(start);
    for (std::size_t i = 0; i < answers.size(); ++i) {
      if (answers[i].found != reference[i].found ||
          answers[i].block != reference[i].block) {
        all_identical = false;
        break;
      }
    }
    if (threads == 1) batch_1t = elapsed;
    const double speedup = batch_1t / elapsed;
    const double required = RequiredSpeedup(threads, hw, quick);
    const bool pass = speedup >= required;
    gates_pass = gates_pass && pass;
    std::printf("batch %2d thr  : %8.0f klookups/s  (%5.2fx vs 1t, %.3fs)%s\n",
                threads, queries.size() / elapsed / 1e3, speedup, elapsed,
                pass ? "" : "  BELOW GATE");
    const std::string tag = "batch_" + std::to_string(threads) + "t";
    report.Metric(tag + "_lookups_per_s", queries.size() / elapsed);
    report.Metric(tag + "_speedup", speedup);
    report.Metric(tag + "_required_speedup", required);
  }
  report.Metric("identical", all_identical ? 1.0 : 0.0);
  report.Metric("gates_pass", gates_pass ? 1.0 : 0.0);

  // Covering queries: one per distinct /16 in the entry set.
  std::vector<netsim::Prefix> sixteens;
  for (std::size_t i = 0; i < snapshot->entry_count(); ++i) {
    netsim::Prefix p = netsim::Prefix::Of(
        netsim::Ipv4Address(snapshot->EntryKey(i)), 16);
    if (sixteens.empty() || !(sixteens.back() == p)) sixteens.push_back(p);
  }
  std::size_t covered = 0;
  start = std::chrono::steady_clock::now();
  const int cover_rounds = quick ? 50 : 200;
  for (int round = 0; round < cover_rounds; ++round) {
    for (const auto& p : sixteens) {
      covered += engine.Covering(p).size();
    }
  }
  elapsed = Seconds(start);
  std::printf(
      "covering /16  : %8.0f kqueries/s  (%zu /16s, %.1f entries avg)\n",
      cover_rounds * sixteens.size() / elapsed / 1e3, sixteens.size(),
      sixteens.empty()
          ? 0.0
          : static_cast<double>(covered) / (cover_rounds * sixteens.size()));
  report.Metric("covering_queries_per_s",
                cover_rounds * sixteens.size() / elapsed);
  report.Write();

  if (!all_identical) {
    std::printf("\nbatched lookups DISAGREE with serial lookups (bug!)\n");
    return 1;
  }
  if (!gates_pass) {
    std::printf("\nscaling gate FAILED (threads_hw=%u; see table)\n", hw);
    return 2;
  }
  std::printf("\nbatched == serial; scaling gates passed (threads_hw=%u)\n",
              hw);
  return 0;
}
