// bench_serve — serving-layer lookup throughput.
//
// Compiles the shared world's final block list into a snapshot, then
// measures the lookup engine: single-threaded exact lookups, batched
// lookups across thread counts, and covering queries.  The ROADMAP
// target is >= 1M lookups/sec on the seed-scale snapshot; the query mix
// is half hits (member /24s) and half misses (shifted keys), shuffled
// deterministically, which is the unfriendliest realistic case for the
// branch predictor.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "common/parallel.h"
#include "netsim/rng.h"
#include "serve/lookup.h"
#include "serve/snapshot.h"

namespace {

using namespace hobbit;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  bench::PrintHeader("serve lookup throughput",
                     "serving layer (no paper figure)");
  const bench::World& world = bench::GetWorld();
  bench::JsonReporter report("serve");
  report.Config("scale", world.scale);
  report.Config("seed", static_cast<double>(world.seed));

  auto buffer = serve::CompileSnapshot(
      world.final_blocks,
      serve::ClassifiedFrom(
          std::span<const core::BlockResult>(world.pipeline.results)),
      world.seed);
  std::string error;
  auto snapshot = serve::Snapshot::FromBuffer(std::move(buffer), &error);
  if (!snapshot) {
    std::printf("snapshot compile failed: %s\n", error.c_str());
    return 1;
  }
  serve::LookupEngine engine(*snapshot);
  std::printf("snapshot: %zu entries, %zu blocks, %zu bytes\n",
              snapshot->entry_count(), snapshot->block_count(),
              snapshot->buffer_bytes());

  // Query mix: every entry once as a hit and once shifted as a miss,
  // repeated until ~4M queries, then shuffled.
  std::vector<std::uint32_t> queries;
  const std::size_t target = 1 << 22;
  while (queries.size() < target) {
    for (std::size_t i = 0; i < snapshot->entry_count(); ++i) {
      queries.push_back(snapshot->EntryKey(i));
      queries.push_back(snapshot->EntryKey(i) ^ 0x00800000u);
    }
    if (snapshot->entry_count() == 0) break;
  }
  netsim::Rng rng(7);
  for (std::size_t i = queries.size(); i > 1; --i) {
    std::swap(queries[i - 1], queries[rng.NextBelow(i)]);
  }

  // Single-threaded, one call per query.
  std::size_t hits = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::uint32_t key : queries) {
    hits += engine.Lookup(netsim::Ipv4Address(key)).found ? 1 : 0;
  }
  double elapsed = Seconds(start);
  std::printf("single-thread : %8.0f klookups/s  (%zu/%zu hits, %.3fs)\n",
              queries.size() / elapsed / 1e3, hits, queries.size(),
              elapsed);
  report.Metric("entries", static_cast<double>(snapshot->entry_count()));
  report.Metric("queries", static_cast<double>(queries.size()));
  report.Metric("single_thread_lookups_per_s", queries.size() / elapsed);

  // Batched across thread counts.
  std::vector<serve::LookupResult> answers(queries.size());
  for (int threads : {1, 2, 4, 8}) {
    common::ThreadPool pool(threads);
    start = std::chrono::steady_clock::now();
    engine.LookupBatch(queries, answers, &pool);
    elapsed = Seconds(start);
    std::size_t batch_hits = 0;
    for (const auto& a : answers) batch_hits += a.found ? 1 : 0;
    std::printf("batch %2d thr  : %8.0f klookups/s  (%zu hits, %.3fs)\n",
                threads, queries.size() / elapsed / 1e3, batch_hits,
                elapsed);
    report.Metric("batch_" + std::to_string(threads) + "t_lookups_per_s",
                  queries.size() / elapsed);
  }

  // Covering queries: one per distinct /16 in the entry set.
  std::vector<netsim::Prefix> sixteens;
  for (std::size_t i = 0; i < snapshot->entry_count(); ++i) {
    netsim::Prefix p = netsim::Prefix::Of(
        netsim::Ipv4Address(snapshot->EntryKey(i)), 16);
    if (sixteens.empty() || !(sixteens.back() == p)) sixteens.push_back(p);
  }
  std::size_t covered = 0;
  start = std::chrono::steady_clock::now();
  constexpr int kCoverRounds = 200;
  for (int round = 0; round < kCoverRounds; ++round) {
    for (const auto& p : sixteens) {
      covered += engine.Covering(p).size();
    }
  }
  elapsed = Seconds(start);
  std::printf(
      "covering /16  : %8.0f kqueries/s  (%zu /16s, %.1f entries avg)\n",
      kCoverRounds * sixteens.size() / elapsed / 1e3, sixteens.size(),
      sixteens.empty()
          ? 0.0
          : static_cast<double>(covered) / (kCoverRounds * sixteens.size()));
  report.Metric("covering_queries_per_s",
                kCoverRounds * sixteens.size() / elapsed);
  report.Write();
  return 0;
}
