// bench_serve — serving-layer lookup throughput.
//
// Compiles the shared world's final block list into a snapshot, then
// measures the lookup engine: single-threaded exact lookups, batched
// lookups across thread counts, and covering queries.  The ROADMAP
// target is >= 1M lookups/sec on the seed-scale snapshot; the query mix
// is half hits (member /24s) and half misses (shifted keys), shuffled
// deterministically, which is the unfriendliest realistic case for the
// branch predictor.
//
// The snapshot is also round-tripped through a v2 file and served twice
// — owned buffer versus mmap (hobbit_serve --mmap) — with identical
// answers required and a throughput floor on the mapped path (it reads
// the same bytes out of the page cache; only first-touch differs, and
// bench_lookup_layout gates that cold-start win on a 64MB+ snapshot).
//
// Exit codes follow bench_cluster_scaling: 0 ok, 1 batched or mmap
// answers disagree with serial owned-buffer lookups, 2 scaling-gate
// failure, 3 mmap throughput floor, 77 scaling gates skipped
// (single-core machine — the report says "skipped-1core" instead of
// letting the vacuous 0.4x collapse floors count as a pass).  The gates
// are hardware-aware (see RequiredSpeedup): within the machine's core
// count a batched run must not lose to the 1-thread batch (the chunked
// scheduler's grain keeps dispatch overhead out of small batches, so
// extra threads must be free or better); oversubscribed thread counts
// only guard against pathological collapse, since time-slicing one core
// across N workers cannot win.  `--quick` shrinks the world to smoke
// scale (unless HOBBIT_SCALE pins it) and pads the floors for noise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "common/parallel.h"
#include "netsim/rng.h"
#include "serve/lookup.h"
#include "serve/snapshot.h"

namespace {

using namespace hobbit;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Minimum acceptable `batch_1t / batch_Nt` ratio on `hw` cores.
double RequiredSpeedup(int threads, unsigned hw, bool quick) {
  const unsigned cores = std::max(hw, 1u);
  if (threads <= 1) return 0.0;  // 1t is the baseline
  if (static_cast<unsigned>(threads) <= cores) {
    // No-loss floor: adding threads within the core budget must never
    // cost throughput (quick mode leaves headroom for smoke-scale
    // noise, where a run is only a few milliseconds).
    return quick ? 0.85 : 0.95;
  }
  return 0.4;  // oversubscribed: only flag a collapse
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  if (quick) ::setenv("HOBBIT_SCALE", "0.05", /*overwrite=*/0);

  bench::PrintHeader("serve lookup throughput",
                     "serving layer (no paper figure)");
  const unsigned hw = std::thread::hardware_concurrency();
  const bench::World& world = bench::GetWorld();
  bench::JsonReporter report("serve");
  report.Config("scale", world.scale);
  report.Config("seed", static_cast<double>(world.seed));
  report.Config("mode", quick ? "quick" : "full");

  auto buffer = serve::CompileSnapshot(
      world.final_blocks,
      serve::ClassifiedFrom(
          std::span<const core::BlockResult>(world.pipeline.results)),
      world.seed);
  std::string error;
  auto snapshot = serve::Snapshot::FromBuffer(std::move(buffer), &error);
  if (!snapshot) {
    std::printf("snapshot compile failed: %s\n", error.c_str());
    return 1;
  }
  serve::LookupEngine engine(*snapshot);
  std::printf("snapshot: %zu entries, %zu blocks, %zu bytes\n",
              snapshot->entry_count(), snapshot->block_count(),
              snapshot->buffer_bytes());

  // Query mix: every entry once as a hit and once shifted as a miss,
  // repeated until the target count, then shuffled.
  std::vector<std::uint32_t> queries;
  const std::size_t target = quick ? (1 << 20) : (1 << 22);
  while (queries.size() < target) {
    for (std::size_t i = 0; i < snapshot->entry_count(); ++i) {
      queries.push_back(snapshot->EntryKey(i));
      queries.push_back(snapshot->EntryKey(i) ^ 0x00800000u);
    }
    if (snapshot->entry_count() == 0) break;
  }
  netsim::Rng rng(7);
  for (std::size_t i = queries.size(); i > 1; --i) {
    std::swap(queries[i - 1], queries[rng.NextBelow(i)]);
  }

  // Single-threaded, one call per query; doubles as the answer key the
  // batched runs are checked against.
  std::vector<serve::LookupResult> reference(queries.size());
  std::size_t hits = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    reference[i] = engine.Lookup(netsim::Ipv4Address(queries[i]));
    hits += reference[i].found ? 1 : 0;
  }
  double elapsed = Seconds(start);
  std::printf("single-thread : %8.0f klookups/s  (%zu/%zu hits, %.3fs)\n",
              queries.size() / elapsed / 1e3, hits, queries.size(),
              elapsed);
  report.Metric("entries", static_cast<double>(snapshot->entry_count()));
  report.Metric("queries", static_cast<double>(queries.size()));
  report.Metric("single_thread_lookups_per_s", queries.size() / elapsed);

  // Batched across thread counts, gated against the 1-thread batch.
  std::vector<serve::LookupResult> answers(queries.size());
  double batch_1t = 0.0;
  bool all_identical = true;
  bool gates_pass = true;
  for (int threads : {1, 2, 4, 8}) {
    common::ThreadPool pool(threads);
    start = std::chrono::steady_clock::now();
    engine.LookupBatch(queries, answers, &pool);
    elapsed = Seconds(start);
    for (std::size_t i = 0; i < answers.size(); ++i) {
      if (answers[i].found != reference[i].found ||
          answers[i].block != reference[i].block) {
        all_identical = false;
        break;
      }
    }
    if (threads == 1) batch_1t = elapsed;
    const double speedup = batch_1t / elapsed;
    const double required = RequiredSpeedup(threads, hw, quick);
    const bool pass = speedup >= required;
    gates_pass = gates_pass && pass;
    std::printf("batch %2d thr  : %8.0f klookups/s  (%5.2fx vs 1t, %.3fs)%s\n",
                threads, queries.size() / elapsed / 1e3, speedup, elapsed,
                pass ? "" : "  BELOW GATE");
    const std::string tag = "batch_" + std::to_string(threads) + "t";
    report.Metric(tag + "_lookups_per_s", queries.size() / elapsed);
    report.Metric(tag + "_speedup", speedup);
    report.Metric(tag + "_required_speedup", required);
  }
  // The serve tier's BATCH path as LineService actually runs it: an
  // Eytzinger index built once over the snapshot, the engine descending
  // it kBatchWidth keys in lockstep (LookupBatch's indexed branch).
  // Identity against the serial unindexed reference is enforced; the
  // throughput ratio is reported here and floor-gated at out-of-cache
  // size in bench_lookup_layout (this snapshot is usually cache-warm,
  // where overlapping misses buys little by construction).
  {
    const serve::EytzingerIndex index = serve::EytzingerIndex::Build(*snapshot);
    serve::LookupEngine indexed(*snapshot, &index);
    start = std::chrono::steady_clock::now();
    indexed.LookupBatch(queries, answers, nullptr);
    elapsed = Seconds(start);
    for (std::size_t i = 0; i < answers.size(); ++i) {
      if (answers[i].found != reference[i].found ||
          answers[i].block != reference[i].block ||
          answers[i].class_token != reference[i].class_token) {
        all_identical = false;
        break;
      }
    }
    const double ratio = batch_1t / elapsed;
    std::printf("batch indexed : %8.0f klookups/s  (%5.2fx vs 1t unindexed)\n",
                queries.size() / elapsed / 1e3, ratio);
    report.Metric("indexed_batch_lookups_per_s", queries.size() / elapsed);
    report.Metric("indexed_batch_ratio", ratio);
  }

  // Covering queries: one per distinct /16 in the entry set.
  std::vector<netsim::Prefix> sixteens;
  for (std::size_t i = 0; i < snapshot->entry_count(); ++i) {
    netsim::Prefix p = netsim::Prefix::Of(
        netsim::Ipv4Address(snapshot->EntryKey(i)), 16);
    if (sixteens.empty() || !(sixteens.back() == p)) sixteens.push_back(p);
  }
  std::size_t covered = 0;
  start = std::chrono::steady_clock::now();
  const int cover_rounds = quick ? 50 : 200;
  for (int round = 0; round < cover_rounds; ++round) {
    for (const auto& p : sixteens) {
      covered += engine.Covering(p).size();
    }
  }
  elapsed = Seconds(start);
  std::printf(
      "covering /16  : %8.0f kqueries/s  (%zu /16s, %.1f entries avg)\n",
      cover_rounds * sixteens.size() / elapsed / 1e3, sixteens.size(),
      sixteens.empty()
          ? 0.0
          : static_cast<double>(covered) / (cover_rounds * sixteens.size()));
  report.Metric("covering_queries_per_s",
                cover_rounds * sixteens.size() / elapsed);

  // mmap zero-copy serving: the same state as a v2 file, mapped with
  // deferred verification (hobbit_serve --mmap) and re-queried.  Must
  // answer identically and hold >= 0.9x of the owned-buffer throughput
  // (one warm pass absorbs first-touch faults; cold start is gated at
  // size in bench_lookup_layout).
  const double require_mmap_ratio = 0.9;
  double mmap_ratio = 1.0;
  {
    auto v2 = serve::CompileSnapshotV2(
        world.final_blocks,
        serve::ClassifiedFrom(
            std::span<const core::BlockResult>(world.pipeline.results)),
        world.seed);
    const std::string path = "/tmp/hobbit_bench_serve.hsnp";
    std::FILE* out = std::fopen(path.c_str(), "wb");
    if (out == nullptr ||
        std::fwrite(v2.data(), 1, v2.size(), out) != v2.size()) {
      std::printf("cannot write %s\n", path.c_str());
      if (out != nullptr) std::fclose(out);
      return 1;
    }
    std::fclose(out);
    serve::SnapshotLoadOptions mmap_options;
    mmap_options.use_mmap = true;
    mmap_options.defer_verification = true;
    auto mapped = serve::Snapshot::FromFile(path, &error, mmap_options);
    std::remove(path.c_str());
    if (!mapped) {
      std::printf("mmap load failed: %s\n", error.c_str());
      return 1;
    }
    serve::LookupEngine mapped_engine(*mapped);
    std::size_t mapped_hits = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {  // warm + identity
      serve::LookupResult r =
          mapped_engine.Lookup(netsim::Ipv4Address(queries[i]));
      if (r.found != reference[i].found || r.block != reference[i].block) {
        all_identical = false;
        break;
      }
    }
    start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      mapped_hits +=
          mapped_engine.Lookup(netsim::Ipv4Address(queries[i])).found;
    }
    const double mapped_elapsed = Seconds(start);
    start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      mapped_hits += engine.Lookup(netsim::Ipv4Address(queries[i])).found;
    }
    const double owned_elapsed = Seconds(start);
    mmap_ratio = owned_elapsed / mapped_elapsed;
    std::printf("mmap serving  : %8.0f klookups/s  (%5.2fx vs owned%s, "
                "%zu hits)\n",
                queries.size() / mapped_elapsed / 1e3, mmap_ratio,
                mapped->is_mapped() ? "" : ", read fallback", mapped_hits / 2);
    report.Metric("mmap_lookups_per_s", queries.size() / mapped_elapsed);
    report.Metric("mmap_throughput_ratio", mmap_ratio);
    report.Metric("mmap_mapped", mapped->is_mapped() ? 1.0 : 0.0);
  }
  report.Config("require_mmap_ratio", require_mmap_ratio);

  // On one core the batch floors are vacuous collapse guards; report
  // them as skipped rather than passed.
  const bool scaling_meaningful = hw > 1;
  report.Metric("identical", all_identical ? 1.0 : 0.0);
  report.Metric("gates_pass",
                (gates_pass && mmap_ratio >= require_mmap_ratio) ? 1.0 : 0.0);
  report.Metric("scaling_gates",
                scaling_meaningful ? std::string("enforced")
                                   : std::string("skipped-1core"));
  report.Write();

  if (!all_identical) {
    std::printf("\nbatched/mmap lookups DISAGREE with serial lookups (bug!)\n");
    return 1;
  }
  if (mmap_ratio < require_mmap_ratio) {
    std::printf("\nmmap throughput gate FAILED (%.2fx < %.2fx)\n", mmap_ratio,
                require_mmap_ratio);
    return 3;
  }
  if (!scaling_meaningful) {
    std::printf("\nbatched == serial; scaling gates SKIPPED (threads_hw=1)\n");
    return 77;
  }
  if (!gates_pass) {
    std::printf("\nscaling gate FAILED (threads_hw=%u; see table)\n", hw);
    return 2;
  }
  std::printf("\nbatched == serial; scaling gates passed (threads_hw=%u)\n",
              hw);
  return 0;
}
