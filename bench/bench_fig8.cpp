// bench_fig8 — reproduces Figure 8: "Visualization of numerical adjacency
// of /24s within the top 9 homogeneous blocks".
//
// Paper: each block draws as several large contiguous segments separated
// by gaps — no single segment covers a whole block.

#include <iostream>

#include "analysis/adjacency.h"
#include "analysis/census.h"
#include "common.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Figure 8: adjacency strips of the top 9 blocks",
                     "paper §5.3");

  const bench::World& world = bench::GetWorld();
  for (std::size_t i = 0; i < world.final_blocks.size() && i < 9; ++i) {
    const cluster::AggregateBlock& block = world.final_blocks[i];
    const netsim::AsInfo* as =
        analysis::AsOfBlock(world.internet.registry, block);
    auto runs = analysis::ContiguousRuns(block);
    std::cout << "#" << i + 1 << " " << (as ? as->organization : "?")
              << " (cluster size " << block.member_24s.size() << ", "
              << runs.size() << " contiguous segments, largest "
              << [&runs] {
                   std::size_t largest = 0;
                   for (const auto& run : runs) {
                     largest = std::max(largest, run.count);
                   }
                   return largest;
                 }()
              << " x /24)\n  |" << analysis::RenderAdjacencyStrip(block)
              << "|\n";
  }
  std::cout << "\npaper: every top block consists of several contiguous "
               "segments; none covers the whole block ('#' runs, '.' "
               "log-scaled gaps)\n";
  return 0;
}
