// bench_multivantage — the §6.1 alternative the paper rejects: instead of
// clustering similar /24s with MCL, probe them again from MORE vantage
// points (and/or at other times) to complete their last-hop sets.
//
// Paper: "Probing /24s varying vantage points and times can alleviate
// this problem, because some routers compute hashes for per-destination
// load-balancing based on both the source and destination IP address...
// However, the measurement load of this approach can be very heavy."
//
// This bench quantifies exactly that trade-off on blocks whose gateways
// hash (src, dst): extra vantages recover last-hop interfaces a single
// vantage never sees, at a proportional probe cost — versus MCL, which
// recovers the aggregation at a fraction of the probes.

#include <algorithm>
#include <iostream>
#include <map>

#include "analysis/report.h"
#include "common.h"
#include "hobbit/prober.h"
#include "netsim/internet.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Multi-vantage reprobing vs clustering",
                     "paper §6.1 (ablation)");

  // A dedicated world with extra vantage points.
  netsim::InternetConfig config;
  config.seed = bench::WorldSeed();
  config.scale = std::min(0.1, bench::WorldScale());
  config.extra_vantages = 2;
  netsim::Internet internet = netsim::BuildInternet(config);
  auto sim_b = internet.MakeSimulatorAt(internet.extra_vantages[0]);
  auto sim_c = internet.MakeSimulatorAt(internet.extra_vantages[1]);

  probing::ZmapSnapshot snapshot =
      probing::RunZmapScan(internet, internet.study_24s);
  auto study = probing::SelectStudyBlocks(snapshot);

  core::ProberOptions reprobe;
  reprobe.reprobe_strategy = true;

  // The effect lives where the paper says it does: blocks with FEW
  // responsive addresses, whose single-vantage sample cannot cover the
  // gateway set.
  constexpr std::size_t kMaxUsable = 10;
  std::size_t blocks = 0;
  std::size_t grew_with_second = 0, grew_with_third = 0;
  std::uint64_t probes_1 = 0, probes_3 = 0;
  double set_ratio_sum = 0;
  for (std::size_t i = 0; i < study.size() && blocks < 400; i += 3) {
    core::BlockProber p1(internet.simulator.get(), nullptr, reprobe);
    core::BlockProber p2(sim_b.get(), nullptr, reprobe);
    core::BlockProber p3(sim_c.get(), nullptr, reprobe);
    core::BlockResult r1 = p1.ProbeBlock(study[i], netsim::Rng(900 + i));
    if (r1.last_hop_set.empty()) continue;
    if (r1.observations.size() > kMaxUsable) continue;
    core::BlockResult r2 = p2.ProbeBlock(study[i], netsim::Rng(901 + i));
    core::BlockResult r3 = p3.ProbeBlock(study[i], netsim::Rng(902 + i));
    ++blocks;
    probes_1 += p1.probes_sent();
    probes_3 += p1.probes_sent() + p2.probes_sent() + p3.probes_sent();

    auto union_size = [&](const core::BlockResult& a,
                          const core::BlockResult& b,
                          const core::BlockResult* c) {
      std::map<netsim::Ipv4Address, bool> u;
      for (auto r : a.last_hop_set) u[r] = true;
      for (auto r : b.last_hop_set) u[r] = true;
      if (c != nullptr) {
        for (auto r : c->last_hop_set) u[r] = true;
      }
      return u.size();
    };
    std::size_t one = r1.last_hop_set.size();
    std::size_t two = union_size(r1, r2, nullptr);
    std::size_t three = union_size(r1, r2, &r3);
    grew_with_second += two > one;
    grew_with_third += three > two;
    set_ratio_sum += static_cast<double>(one) /
                     static_cast<double>(std::max<std::size_t>(1, three));
  }

  analysis::TextTable table({"quantity", "value"});
  table.AddRow({"sparse blocks (<=10 usable) reprobed", std::to_string(blocks)});
  table.AddRow({"single-vantage set completeness (vs 3 vantages)",
                analysis::Pct(set_ratio_sum / std::max<std::size_t>(1,
                                                                    blocks))});
  table.AddRow({"blocks gaining last hops from a 2nd vantage",
                analysis::Pct(static_cast<double>(grew_with_second) /
                              std::max<std::size_t>(1, blocks))});
  table.AddRow({"blocks gaining more from a 3rd vantage",
                analysis::Pct(static_cast<double>(grew_with_third) /
                              std::max<std::size_t>(1, blocks))});
  table.AddRow({"probe packets, 1 vantage", std::to_string(probes_1)});
  table.AddRow({"probe packets, 3 vantages", std::to_string(probes_3)});
  table.Print(std::cout);

  std::cout << "\npaper's point: source-hashing balancers make extra "
               "vantages informative, but the load multiplies with the "
               "vantage count — which is why §6 infers the aggregation "
               "from partial information with MCL instead\n";
  return 0;
}
