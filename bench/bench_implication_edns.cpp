// bench_implication_edns — the paper's EDNS-client-subnet motivation,
// quantified: "The EDNS-Client-Subnet extension may fail to find the
// single best server for addresses within a /24 block if some addresses
// are distant from each other" (§1).
//
// A CDN maps client aggregates to front-end servers based on one measured
// representative per aggregate.  We compare mapping granularities against
// the per-client optimum:
//   * per /16           — coarse, the pre-ECS practice;
//   * per /24           — what ECS prescribes;
//   * per Hobbit block  — same accuracy as /24 with far fewer map entries;
//   * /24 restricted to split blocks — where the /24 unit actually hurts.

#include <iostream>
#include <map>

#include "analysis/edns.h"
#include "analysis/report.h"
#include "common.h"
#include "hobbit/hierarchy.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("EDNS mapping penalty by aggregation granularity",
                     "paper §1 (EDNS motivation)");

  const bench::World& world = bench::GetWorld();
  netsim::Rng rng(world.seed + 0xED25ULL);
  auto front_ends = analysis::PlaceFrontEnds(12, rng.Fork(1));

  // Clients: snapshot-active addresses of a sample of study /24s.
  std::vector<std::vector<netsim::Ipv4Address>> per_24;
  std::map<netsim::Prefix, std::vector<netsim::Ipv4Address>> by_16;
  const std::size_t kMax24s = 3000;
  for (std::size_t i = 0; i < world.pipeline.study_blocks.size() &&
                          per_24.size() < kMax24s;
       ++i) {
    const probing::ZmapBlock& snapshot = world.pipeline.study_blocks[i];
    std::vector<netsim::Ipv4Address> clients;
    for (std::uint8_t octet : snapshot.active_octets) {
      clients.push_back(
          netsim::Ipv4Address(snapshot.prefix.base().value() | octet));
    }
    by_16[netsim::Prefix::Of(snapshot.prefix.base(), 16)].insert(
        by_16[netsim::Prefix::Of(snapshot.prefix.base(), 16)].end(),
        clients.begin(), clients.end());
    per_24.push_back(std::move(clients));
  }
  std::vector<std::vector<netsim::Ipv4Address>> per_16;
  for (auto& [prefix, clients] : by_16) per_16.push_back(std::move(clients));

  // Hobbit blocks restricted to the sampled /24s.  Keys: block index for
  // aggregated /24s, -(sample index + 1) for unaggregated ones (their own
  // unit either way).
  std::map<long, std::vector<netsim::Ipv4Address>> by_block;
  {
    std::map<netsim::Prefix, long> block_of;
    for (std::size_t b = 0; b < world.final_blocks.size(); ++b) {
      for (const auto& p : world.final_blocks[b].member_24s) {
        block_of[p] = static_cast<long>(b);
      }
    }
    for (std::size_t index = 0; index < per_24.size(); ++index) {
      const auto& clients = per_24[index];
      if (clients.empty()) continue;
      netsim::Prefix p = netsim::Prefix::Slash24Of(clients.front());
      auto pos = block_of.find(p);
      long key = pos != block_of.end() ? pos->second
                                       : -static_cast<long>(index) - 1;
      auto& bucket = by_block[key];
      bucket.insert(bucket.end(), clients.begin(), clients.end());
    }
  }
  std::vector<std::vector<netsim::Ipv4Address>> per_block;
  for (auto& [key, clients] : by_block) per_block.push_back(std::move(clients));

  // Split /24s only (ground truth): the blind spot.
  std::vector<std::vector<netsim::Ipv4Address>> split_24s;
  for (const auto& clients : per_24) {
    if (clients.empty()) continue;
    const netsim::TruthRecord* truth = world.internet.TruthOf(
        netsim::Prefix::Slash24Of(clients.front()));
    if (truth != nullptr && truth->heterogeneous) {
      split_24s.push_back(clients);
    }
  }

  analysis::TextTable table({"mapping unit", "units", "clients",
                             "mean penalty (ms)", "p95 (ms)",
                             "misdirected"});
  auto add_row = [&](const char* name,
                     std::span<const std::vector<netsim::Ipv4Address>>
                         strata,
                     std::uint64_t salt) {
    analysis::MappingOutcome outcome = analysis::EvaluateMapping(
        world.internet, strata, front_ends, rng.Fork(salt));
    table.AddRow({name, std::to_string(strata.size()),
                  std::to_string(outcome.clients),
                  analysis::Fmt(outcome.mean_penalty_ms),
                  analysis::Fmt(outcome.p95_penalty_ms),
                  analysis::Pct(outcome.misdirected_share)});
  };
  add_row("/16", per_16, 11);
  add_row("/24 (ECS)", per_24, 12);
  add_row("Hobbit block", per_block, 13);
  add_row("/24, split blocks only", split_24s, 14);
  table.Print(std::cout);

  std::cout << "\nreading: /24 mapping is near-optimal for homogeneous "
               "space and Hobbit blocks match it with ~"
            << analysis::Fmt(static_cast<double>(per_24.size()) /
                                 std::max<std::size_t>(1, per_block.size()),
                             1)
            << "x fewer map entries; the residual /24 penalty "
               "concentrates in the split /24s (the paper's point), "
               "while /16 mapping pays everywhere\n";
  return 0;
}
