// bench_implication_outage — the paper's FIRST motivation, quantified:
// "Trinocular may fail to detect outages if a few addresses within a /24
// block have an outage while others are normally up" (§1).
//
// Experiment: inject outages into the synthetic Internet and run a
// Trinocular-style adaptive detector with two watch granularities:
//   (a) the conventional /24 unit;
//   (b) the sub-block units Hobbit's last-hop groups reveal.
// Whole-/24 outages are caught either way; partial outages — one customer
// sub-block of a split /24 failing — are invisible at /24 granularity.

#include <iostream>

#include "analysis/outage_detection.h"
#include "analysis/report.h"
#include "common.h"
#include "hobbit/hierarchy.h"
#include "netsim/outage.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Outage detection: /24 unit vs Hobbit sub-blocks",
                     "paper §1 (Trinocular motivation)");

  const bench::World& world = bench::GetWorld();
  netsim::Simulator& simulator = *world.internet.simulator;
  netsim::Rng rng(world.seed + 0x0D7ULL);

  // Gather split /24s (aligned-disjoint) with their sub-block groups.
  struct SplitCase {
    netsim::Prefix slash24;
    std::vector<core::AddressGroup> groups;
    std::vector<netsim::Ipv4Address> all_actives;
  };
  std::vector<SplitCase> cases;
  for (std::size_t i = 0;
       i < world.pipeline.results.size() && cases.size() < 60; ++i) {
    const core::BlockResult& r = world.pipeline.results[i];
    if (r.classification !=
        core::Classification::kDifferentButHierarchical) {
      continue;
    }
    core::BlockResult full = core::ReprobeBlock(
        world.internet, world.pipeline.study_blocks[i], world.seed + i);
    auto groups = core::GroupByLastHop(full.observations);
    if (!core::IsAlignedDisjoint(groups)) continue;
    SplitCase c;
    c.slash24 = r.prefix;
    c.groups = std::move(groups);
    for (const auto& obs : full.observations) {
      c.all_actives.push_back(obs.address);
    }
    cases.push_back(std::move(c));
  }
  std::cout << "split /24s under watch: " << cases.size() << "\n\n";

  analysis::DetectionParams params;
  std::size_t partial_outages = 0;
  std::size_t caught_24 = 0, caught_sub = 0;
  std::size_t false_alarms_24 = 0, false_alarms_sub = 0;
  std::uint64_t probes_24 = 0, probes_sub = 0;

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const SplitCase& c = cases[i];
    // Baselines for both granularities (no outage installed).
    analysis::WatchedBlock watch_24 =
        analysis::MakeWatchedBlock(simulator, c.all_actives);
    std::vector<analysis::WatchedBlock> watch_subs;
    for (const auto& group : c.groups) {
      watch_subs.push_back(
          analysis::MakeWatchedBlock(simulator, group.members));
    }

    // Sanity: with no outage, neither unit should raise an alarm.
    auto quiet_24 =
        analysis::DetectOutage(simulator, watch_24, params, rng.Fork(i));
    false_alarms_24 += quiet_24.verdict == analysis::OutageVerdict::kDown;
    for (std::size_t s = 0; s < watch_subs.size(); ++s) {
      auto quiet = analysis::DetectOutage(simulator, watch_subs[s], params,
                                          rng.Fork(1000 + i * 8 + s));
      false_alarms_sub += quiet.verdict == analysis::OutageVerdict::kDown;
    }

    // Partial outage: the first sub-block (its spanning prefix) goes dark.
    netsim::OutageOverlay overlay;
    overlay.Fail(netsim::SpanningPrefix(c.groups.front().min,
                                        c.groups.front().max));
    simulator.SetOutageOverlay(&overlay);
    ++partial_outages;

    auto during_24 =
        analysis::DetectOutage(simulator, watch_24, params, rng.Fork(2000 + i));
    probes_24 += static_cast<std::uint64_t>(during_24.probes_used);
    caught_24 += during_24.verdict == analysis::OutageVerdict::kDown;

    bool sub_caught = false;
    for (std::size_t s = 0; s < watch_subs.size(); ++s) {
      auto during = analysis::DetectOutage(simulator, watch_subs[s], params,
                                           rng.Fork(3000 + i * 8 + s));
      probes_sub += static_cast<std::uint64_t>(during.probes_used);
      if (s == 0) {
        sub_caught = during.verdict == analysis::OutageVerdict::kDown;
      }
    }
    caught_sub += sub_caught;
    simulator.SetOutageOverlay(nullptr);
  }

  analysis::TextTable table({"watch unit", "partial outages detected",
                             "false alarms", "probes"});
  table.AddRow({"/24 block (Trinocular unit)",
                std::to_string(caught_24) + "/" +
                    std::to_string(partial_outages),
                std::to_string(false_alarms_24), std::to_string(probes_24)});
  table.AddRow({"Hobbit sub-blocks",
                std::to_string(caught_sub) + "/" +
                    std::to_string(partial_outages),
                std::to_string(false_alarms_sub),
                std::to_string(probes_sub)});
  table.Print(std::cout);
  std::cout << "\npaper's claim: at /24 granularity a failed customer "
               "sub-block hides behind its responding neighbors; watching "
               "the Hobbit-revealed sub-blocks exposes it\n";
  return 0;
}
