// bench_serve_net — multi-client serving front-end under load.
//
// Compiles the shared world's final block list into a snapshot, hosts it
// behind the epoll reactor (src/serve/reactor.h) on an ephemeral
// loopback port, then hammers it with N concurrent client threads, each
// keeping a pipeline of BATCH requests in flight.  Reported: aggregate
// lookup/request throughput and request latency percentiles (p50, p99,
// p999), measured per request from the moment its bytes are written to
// the moment its full reply (batch lines + "OK n") has arrived.
//
// Every reply line is validated, so the bench doubles as an end-to-end
// correctness check of the reactor's framing and backpressure under real
// concurrency.  Exit codes: 0 ok, 1 reply error/client failure, 2
// throughput-gate failure, 77 skip (sandbox without loopback — matched
// by the ctest SKIP_RETURN_CODE so `ctest -L serve-net` skips cleanly).
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "serve/reactor.h"
#include "serve/snapshot.h"

namespace {

using namespace hobbit;
using Clock = std::chrono::steady_clock;

struct ClientResult {
  std::vector<double> latencies_us;
  std::uint64_t lookups = 0;
  std::uint64_t errors = 0;
  bool completed = false;
};

bool SendAll(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// One client conversation: `requests` pipelined BATCH commands with up
/// to `depth` in flight, every reply line checked.
void RunClient(std::uint16_t port, const std::string& request,
               int requests, int batch, int depth, ClientResult* out) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    ++out->errors;
    return;
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    ++out->errors;
    ::close(fd);
    return;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  const std::string ok_line = "OK " + std::to_string(batch);
  std::deque<Clock::time_point> inflight;
  int sent = 0;
  int completed = 0;
  auto send_one = [&] {
    if (!SendAll(fd, request)) {
      ++out->errors;
      return false;
    }
    inflight.push_back(Clock::now());
    ++sent;
    return true;
  };
  for (int i = 0; i < depth && sent < requests; ++i) {
    if (!send_one()) break;
  }

  std::string carry;  // partial line across reads
  int lines_in_reply = 0;
  char chunk[65536];
  while (completed < requests && out->errors == 0) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ++out->errors;  // server hung up with replies still owed
      break;
    }
    const char* base = chunk;
    const char* end = chunk + n;
    while (base < end) {
      const char* nl =
          static_cast<const char*>(std::memchr(base, '\n', end - base));
      if (nl == nullptr) {
        carry.append(base, end);
        break;
      }
      carry.append(base, nl);
      base = nl + 1;
      // A reply is `batch` answer lines then the OK line.
      if (lines_in_reply < batch) {
        if (carry.empty() || (carry[0] != 'H' && carry[0] != 'M')) {
          ++out->errors;
        } else {
          ++out->lookups;
        }
        ++lines_in_reply;
      } else {
        if (carry != ok_line) ++out->errors;
        lines_in_reply = 0;
        ++completed;
        auto now = Clock::now();
        out->latencies_us.push_back(
            std::chrono::duration<double, std::micro>(now -
                                                      inflight.front())
                .count());
        inflight.pop_front();
        if (sent < requests && !send_one()) break;
      }
      carry.clear();
    }
  }
  if (completed == requests && out->errors == 0) {
    SendAll(fd, "QUIT\n");
    // Drain BYE + EOF so the server sees a clean close.
    while (::read(fd, chunk, sizeof(chunk)) > 0) {
    }
    out->completed = true;
  }
  ::close(fd);
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double rank = p * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int clients = 64;
  int requests = -1;
  int batch = -1;
  int depth = -1;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--quick") {
      quick = true;
    } else if (flag == "--clients" && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (flag == "--requests" && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else if (flag == "--batch" && i + 1 < argc) {
      batch = std::atoi(argv[++i]);
    } else if (flag == "--depth" && i + 1 < argc) {
      depth = std::atoi(argv[++i]);
    } else {
      std::printf("usage: bench_serve_net [--quick] [--clients N]\n"
                  "       [--requests N] [--batch N] [--depth N]\n");
      return 1;
    }
  }
  if (requests < 0) requests = quick ? 20 : 200;
  if (batch < 0) batch = quick ? 32 : 256;
  if (depth < 0) depth = quick ? 4 : 8;
  if (quick) ::setenv("HOBBIT_SCALE", "0.05", /*overwrite=*/0);
  std::signal(SIGPIPE, SIG_IGN);

  bench::PrintHeader("serve-net multi-client throughput",
                     "serving layer (no paper figure)");
  const bench::World& world = bench::GetWorld();

  auto buffer = serve::CompileSnapshot(
      world.final_blocks,
      serve::ClassifiedFrom(
          std::span<const core::BlockResult>(world.pipeline.results)),
      world.seed);
  std::string error;
  auto snapshot = serve::Snapshot::FromBuffer(std::move(buffer), &error);
  if (!snapshot) {
    std::printf("snapshot compile failed: %s\n", error.c_str());
    return 1;
  }
  const std::size_t entries = snapshot->entry_count();
  std::printf("snapshot: %zu entries, %zu blocks; %d clients x %d "
              "requests x BATCH %d (pipeline depth %d)\n",
              entries, snapshot->block_count(), clients, requests, batch,
              depth);

  serve::SnapshotStore store;
  serve::ServeMetrics metrics;
  store.Swap(std::make_shared<const serve::Snapshot>(*std::move(snapshot)));
  serve::ReactorOptions options;
  options.max_connections = static_cast<std::size_t>(clients) + 8;
  serve::Reactor reactor(&store, &metrics, nullptr, options);
  if (!reactor.Listen(&error)) {
    std::printf("SKIP: cannot listen on loopback: %s\n", error.c_str());
    return 77;
  }
  std::thread server([&] { reactor.Run(); });

  // Per-client request payloads: each client cycles through a different
  // slice of the key space, half hits and half shifted misses.
  std::vector<std::string> payloads(static_cast<std::size_t>(clients));
  {
    auto current = store.Current();
    for (int c = 0; c < clients; ++c) {
      std::string& request = payloads[static_cast<std::size_t>(c)];
      request = "BATCH " + std::to_string(batch) + "\n";
      for (int q = 0; q < batch; ++q) {
        std::uint32_t key = current->EntryKey(
            (static_cast<std::size_t>(c) * 131 +
             static_cast<std::size_t>(q)) %
            std::max<std::size_t>(entries, 1));
        if (q % 2 == 1) key ^= 0x00800000u;  // miss half the time
        request += netsim::Ipv4Address(key).ToString() + "\n";
      }
    }
  }

  std::vector<ClientResult> results(static_cast<std::size_t>(clients));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  auto t0 = Clock::now();
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back(RunClient, reactor.port(),
                         std::cref(payloads[static_cast<std::size_t>(c)]),
                         requests, batch, depth,
                         &results[static_cast<std::size_t>(c)]);
  }
  for (auto& worker : workers) worker.join();
  double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  reactor.Stop();
  server.join();

  std::vector<double> latencies;
  std::uint64_t lookups = 0;
  std::uint64_t errors = 0;
  int incomplete = 0;
  for (const auto& result : results) {
    latencies.insert(latencies.end(), result.latencies_us.begin(),
                     result.latencies_us.end());
    lookups += result.lookups;
    errors += result.errors;
    incomplete += result.completed ? 0 : 1;
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);
  const double p999 = Percentile(latencies, 0.999);
  const double lookups_per_s = static_cast<double>(lookups) / elapsed;

  std::printf("wall %.3fs: %8.0f klookups/s, %8.0f requests/s\n", elapsed,
              lookups_per_s / 1e3, latencies.size() / elapsed);
  std::printf("request latency: p50 %.0fus  p99 %.0fus  p999 %.0fus\n",
              p50, p99, p999);
  std::printf("errors %llu, incomplete clients %d; server: %llu "
              "connections, %llu commands, %llu pauses\n",
              static_cast<unsigned long long>(errors), incomplete,
              static_cast<unsigned long long>(
                  reactor.stats().accepted.load()),
              static_cast<unsigned long long>(
                  reactor.stats().commands.load()),
              static_cast<unsigned long long>(
                  reactor.stats().backpressure_pauses.load()));

  bench::JsonReporter report("serve_net");
  report.Config("scale", world.scale);
  report.Config("seed", static_cast<double>(world.seed));
  report.Config("mode", quick ? "quick" : "full");
  report.Config("clients", clients);
  report.Config("requests_per_client", requests);
  report.Config("batch", batch);
  report.Config("pipeline_depth", depth);
  report.Metric("entries", static_cast<double>(entries));
  report.Metric("lookups", static_cast<double>(lookups));
  report.Metric("lookups_per_s", lookups_per_s);
  report.Metric("requests_per_s", latencies.size() / elapsed);
  report.Metric("p50_us", p50);
  report.Metric("p99_us", p99);
  report.Metric("p999_us", p999);
  report.Metric("errors", static_cast<double>(errors));
  report.Metric("incomplete_clients", static_cast<double>(incomplete));
  report.Write();

  if (errors > 0 || incomplete > 0) {
    std::printf("FAIL: reply errors or incomplete clients\n");
    return 1;
  }
  // Throughput floor: intentionally conservative (any hardware that can
  // build the repo clears it by an order of magnitude); its job is to
  // catch an event-loop pathology (e.g. a busy-wait or a lost wakeup
  // turning throughput to a trickle), not to benchmark the machine.
  const double floor = 10e3;
  if (lookups_per_s < floor) {
    std::printf("GATE FAILED: %.0f lookups/s < %.0f floor\n",
                lookups_per_s, floor);
    return 2;
  }
  std::printf("ok: %d clients served, gates passed\n", clients);
  return 0;
}
