// bench_stream — bounded-memory + throughput gates for the streaming
// campaign subsystem (src/stream).
//
// The streaming driver promises two things over the batch pipeline:
//
//   1. O(in-flight) residency: the number of full BlockResults alive at
//      once is capped at window + worker threads + 1, independent of
//      world size.  Gate: peak_inflight_results <= inflight_bound
//      (exit 2 on violation).
//   2. Identical output: per-/24 classifications match the batch
//      pipeline bit for bit, and every delta-published snapshot —
//      including the final one — is byte-identical to a full
//      CompileSnapshot of the same state (exit 1 on any divergence).
//
// The streaming run happens FIRST so its ru_maxrss high-water mark is
// not polluted by the batch reference run that follows; the reported
// rss_batch_kb then shows what the batch path adds on top.  Results go
// to BENCH_stream.json.  `--quick` (the `perf` ctest label) runs the
// same gates at tiny scale in a few seconds.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <span>
#include <vector>

#include "common.h"
#include "hobbit/pipeline.h"
#include "netsim/internet.h"
#include "serve/snapshot.h"
#include "serve/store.h"
#include "stream/stream.h"

namespace {

using namespace hobbit;

long MaxRssKb() {
  struct rusage usage {};
  ::getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::uint64_t seed = bench::WorldSeed();
  const double scale = quick ? 0.02 : bench::WorldScale();
  const int threads = quick ? 2 : 4;
  const std::size_t window = quick ? 8 : 64;
  const std::size_t publish_every = quick ? 40 : 400;

  bench::PrintHeader("stream",
                     "engineering: bounded-memory streaming + delta publish");
  bench::JsonReporter report("stream");
  report.Config("seed", static_cast<double>(seed));
  report.Config("scale", scale);
  report.Config("mode", quick ? "quick" : "full");
  report.Config("threads", threads);
  report.Config("window", static_cast<double>(window));
  report.Config("publish_every", static_cast<double>(publish_every));

  netsim::InternetConfig world_config;
  world_config.seed = seed;
  world_config.scale = scale;
  netsim::Internet internet = netsim::BuildInternet(world_config);

  const int calibration_blocks =
      std::max(20, static_cast<int>(1200 * scale));
  const int samples_per_block = 16;

  // --- streaming run (first, so ru_maxrss is its own high-water mark).
  serve::SnapshotStore store;
  stream::StreamConfig stream_config;
  stream_config.seed = seed;
  stream_config.threads = threads;
  stream_config.calibration_blocks = calibration_blocks;
  stream_config.samples_per_block = samples_per_block;
  stream_config.window = window;
  stream_config.publish_every = publish_every;
  stream_config.store = &store;
  stream_config.verify_full_reference = true;

  auto t0 = std::chrono::steady_clock::now();
  stream::StreamResult streamed =
      stream::RunStreamCampaign(internet, stream_config);
  auto t1 = std::chrono::steady_clock::now();
  const double stream_seconds = std::chrono::duration<double>(t1 - t0).count();
  const long rss_stream_kb = MaxRssKb();

  const stream::StreamStats& stats = streamed.stats;
  const double blocks_per_second =
      stats.measured_24s / std::max(1e-9, stream_seconds);
  std::printf("stream: %zu /24s in %.3fs (%.0f blocks/s), "
              "peak in-flight %zu (bound %zu), rss %ld KiB\n",
              stats.measured_24s, stream_seconds, blocks_per_second,
              stats.peak_inflight_results, stats.inflight_bound,
              rss_stream_kb);
  std::printf("publishes: %zu (%zu delta patches, %llu patched entries), "
              "failures %zu, reference mismatches %zu\n",
              stats.publishes, stats.delta_publishes,
              static_cast<unsigned long long>(stats.delta_entries),
              stats.publish_failures, stats.reference_mismatches);

  // --- batch reference: same stages, O(world) residency.
  core::PipelineConfig batch_config;
  batch_config.seed = seed;
  batch_config.threads = threads;
  batch_config.calibration_blocks = calibration_blocks;
  batch_config.samples_per_block = samples_per_block;
  auto t2 = std::chrono::steady_clock::now();
  core::PipelineResult batch = core::RunPipeline(internet, batch_config);
  auto t3 = std::chrono::steady_clock::now();
  const double batch_seconds = std::chrono::duration<double>(t3 - t2).count();
  const long rss_batch_kb = MaxRssKb();
  std::printf("batch reference: %zu /24s in %.3fs, process rss now %ld KiB "
              "(+%ld over streaming)\n",
              batch.results.size(), batch_seconds, rss_batch_kb,
              rss_batch_kb - rss_stream_kb);

  // --- gates.
  std::size_t classification_mismatches = 0;
  std::map<std::uint32_t, const core::BlockResult*> by_key;
  for (const core::BlockResult& r : batch.results) {
    by_key[r.prefix.base().value()] = &r;
  }
  if (streamed.records.size() != batch.results.size()) {
    classification_mismatches +=
        std::max(streamed.records.size(), batch.results.size()) -
        std::min(streamed.records.size(), batch.results.size());
  }
  for (const stream::StreamRecord& record : streamed.records) {
    auto pos = by_key.find(record.prefix.base().value());
    if (pos == by_key.end() ||
        record.classification != pos->second->classification ||
        record.probes_used != pos->second->probes_used) {
      ++classification_mismatches;
    }
  }

  std::vector<std::byte> full_reference = serve::CompileSnapshot(
      cluster::AggregateIdentical(batch.HomogeneousBlocks()),
      serve::ClassifiedFrom(std::span<const core::BlockResult>(batch.results)),
      stream_config.epoch_base + stats.publishes - 1);
  const bool snapshot_identical = streamed.final_snapshot == full_reference;
  const bool inflight_ok =
      stats.peak_inflight_results <= stats.inflight_bound;
  const bool delta_chain_ok =
      stats.reference_mismatches == 0 && stats.publish_failures == 0;

  report.Metric("measured_24s", static_cast<double>(stats.measured_24s));
  report.Metric("stream_seconds", stream_seconds);
  report.Metric("batch_seconds", batch_seconds);
  report.Metric("blocks_per_second", blocks_per_second);
  report.Metric("probes", static_cast<double>(stats.probes_sent));
  report.Metric("peak_inflight", static_cast<double>(stats.peak_inflight_results));
  report.Metric("inflight_bound", static_cast<double>(stats.inflight_bound));
  report.Metric("queue_push_waits",
                static_cast<double>(stats.results_queue.push_waits));
  report.Metric("queue_pop_waits",
                static_cast<double>(stats.results_queue.pop_waits));
  report.Metric("publishes", static_cast<double>(stats.publishes));
  report.Metric("delta_publishes", static_cast<double>(stats.delta_publishes));
  report.Metric("delta_entries", static_cast<double>(stats.delta_entries));
  report.Metric("rss_stream_kb", static_cast<double>(rss_stream_kb));
  report.Metric("rss_batch_kb", static_cast<double>(rss_batch_kb));
  report.Metric("classification_mismatches",
                static_cast<double>(classification_mismatches));
  report.Metric("snapshot_identical", snapshot_identical ? 1.0 : 0.0);
  report.Metric("inflight_bounded", inflight_ok ? 1.0 : 0.0);
  report.Write();

  std::printf("classifications stream vs batch: %s\n",
              classification_mismatches == 0
                  ? "identical"
                  : "MISMATCH (bug!)");
  std::printf("final snapshot vs full compile: %s\n",
              snapshot_identical ? "byte-identical" : "MISMATCH (bug!)");
  std::printf("delta publish chain: %s\n",
              delta_chain_ok ? "verified against full recompiles"
                             : "FAILED (bug!)");
  std::printf("in-flight bound: %s\n",
              inflight_ok ? "held" : "EXCEEDED (bug!)");
  if (classification_mismatches > 0 || !snapshot_identical ||
      !delta_chain_ok) {
    return 1;
  }
  if (!inflight_ok) return 2;
  return 0;
}
