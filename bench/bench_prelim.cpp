// bench_prelim — reproduces the §2 preliminary study numbers:
//
//  * comparing full MDA route sets of one address per /26, 88% of /24s
//    look heterogeneous (87% with unresponsive-hop wildcards) — the
//    motivation for Hobbit;
//  * 77% of /31 address pairs have distinct route sets and ~30% have
//    distinct last-hop routers — per-destination load balancing is
//    rampant and reaches the last hop.

#include <iostream>
#include <vector>

#include "analysis/report.h"
#include "common.h"
#include "probing/traceroute.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Preliminary study: route-set comparison",
                     "paper §2.1-§2.3");

  const bench::World& world = bench::GetWorld();
  const netsim::Simulator& simulator = *world.internet.simulator;
  netsim::Rng rng(world.seed + 0x9E1ULL);
  std::uint64_t serial = 1;

  const std::size_t kBlocks =
      std::min<std::size_t>(world.pipeline.study_blocks.size(), 300);

  // --- §2.1: one active address per /26, compare MDA route sets --------
  std::size_t comparable = 0, heterogeneous_exact = 0,
              heterogeneous_wildcard = 0;
  // --- §2.2/§2.3: /31 pairs ---------------------------------------------
  std::size_t pairs = 0, distinct_routes = 0, distinct_last_hops = 0;

  for (std::size_t b = 0; b < kBlocks; ++b) {
    const probing::ZmapBlock& block =
        world.pipeline.study_blocks[b * world.pipeline.study_blocks.size() /
                                    kBlocks];
    // One active per /26.
    std::vector<netsim::Ipv4Address> picks;
    int quarter = -1;
    for (std::uint8_t octet : block.active_octets) {
      if ((octet >> 6) != quarter) {
        quarter = octet >> 6;
        picks.push_back(
            netsim::Ipv4Address(block.prefix.base().value() | octet));
      }
    }
    if (picks.size() == 4) {
      std::vector<std::vector<probing::Route>> route_sets;
      bool all_reached = true;
      for (netsim::Ipv4Address pick : picks) {
        auto routes = probing::EnumerateRoutes(simulator, pick, serial);
        if (routes.empty()) all_reached = false;
        route_sets.push_back(std::move(routes));
      }
      if (all_reached) {
        ++comparable;
        bool homogeneous_exact = true, homogeneous_wild = true;
        for (std::size_t i = 1; i < route_sets.size(); ++i) {
          if (!probing::RouteSetsShareARoute(route_sets[0], route_sets[i],
                                             false)) {
            homogeneous_exact = false;
          }
          if (!probing::RouteSetsShareARoute(route_sets[0], route_sets[i],
                                             true)) {
            homogeneous_wild = false;
          }
        }
        heterogeneous_exact += !homogeneous_exact;
        heterogeneous_wildcard += !homogeneous_wild;
      }
    }

    // A /31 pair: two consecutive octets among the actives.
    for (std::size_t i = 0; i + 1 < block.active_octets.size(); ++i) {
      std::uint8_t a = block.active_octets[i];
      std::uint8_t b2 = block.active_octets[i + 1];
      if ((a ^ b2) != 1 || (a & 1) != 0) continue;
      netsim::Ipv4Address addr_a(block.prefix.base().value() | a);
      netsim::Ipv4Address addr_b(block.prefix.base().value() | b2);
      auto routes_a = probing::EnumerateRoutes(simulator, addr_a, serial);
      auto routes_b = probing::EnumerateRoutes(simulator, addr_b, serial);
      if (routes_a.empty() || routes_b.empty()) break;
      ++pairs;
      if (!probing::RouteSetsShareARoute(routes_a, routes_b, true)) {
        ++distinct_routes;
      }
      auto last_of = [](const std::vector<probing::Route>& routes) {
        std::vector<netsim::Ipv4Address> out;
        for (const probing::Route& route : routes) {
          if (const probing::Hop* hop = route.LastHop();
              hop && hop->responsive) {
            out.push_back(hop->address);
          }
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        return out;
      };
      if (last_of(routes_a) != last_of(routes_b)) ++distinct_last_hops;
      break;  // one pair per /24, as in the paper
    }
  }

  analysis::TextTable table({"quantity", "measured", "paper"});
  table.AddRow({"/24s compared (1 per /26, MDA)",
                std::to_string(comparable), "-"});
  table.AddRow(
      {"heterogeneous by exact route sets",
       analysis::Pct(static_cast<double>(heterogeneous_exact) /
                     std::max<std::size_t>(1, comparable)),
       "88%"});
  table.AddRow(
      {"heterogeneous with wildcard hops",
       analysis::Pct(static_cast<double>(heterogeneous_wildcard) /
                     std::max<std::size_t>(1, comparable)),
       "87%"});
  table.AddRow({"/31 pairs probed", std::to_string(pairs), "-"});
  table.AddRow({"/31 pairs with distinct route sets",
                analysis::Pct(static_cast<double>(distinct_routes) /
                              std::max<std::size_t>(1, pairs)),
                "77%"});
  table.AddRow({"/31 pairs with distinct last-hop routers",
                analysis::Pct(static_cast<double>(distinct_last_hops) /
                              std::max<std::size_t>(1, pairs)),
                "~30%"});
  table.Print(std::cout);
  std::cout << "\ninterpretation: naive route comparison wildly "
               "over-reports heterogeneity; per-destination load "
               "balancing even changes last hops — hence Hobbit\n";
  return 0;
}
