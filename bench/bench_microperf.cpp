// bench_microperf — google-benchmark microbenchmarks of the hot paths:
// FIB longest-prefix match, probe simulation, hierarchy testing, MCL,
// the ZMap sweep and the dispatch-tier SIMD kernels.  These bound the
// wall-clock cost of the paper-scale experiments (the paper probed
// 64.45M destinations; the harness must sustain millions of simulated
// probes per second).
//
// Besides google-benchmark's own console/JSON output, the binary writes
// BENCH_microperf.json through the shared reporter with the dispatch
// tier actually selected (`simd_tier` — HOBBIT_SIMD-clamped) and the
// host's capability string (`cpu_features`), so checked-in numbers are
// attributable to the kernel tier that produced them.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "cluster/mcl.h"
#include "common.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "hobbit/hierarchy.h"
#include "netsim/internet.h"
#include "netsim/rng.h"
#include "probing/zmap.h"

namespace {

using namespace hobbit;

const netsim::Internet& SharedInternet() {
  static netsim::Internet internet =
      netsim::BuildInternet(netsim::TinyConfig(9));
  return internet;
}

void BM_FibLookup(benchmark::State& state) {
  const netsim::Internet& internet = SharedInternet();
  // The core routers hold the largest tables.
  const netsim::Router& core = internet.topology.router(5);
  netsim::Rng rng(1);
  std::vector<netsim::Ipv4Address> targets;
  for (int i = 0; i < 512; ++i) {
    targets.push_back(internet.study_24s[rng.NextBelow(
                                             internet.study_24s.size())]
                          .base());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.fib.Lookup(targets[i++ & 511]));
  }
}
BENCHMARK(BM_FibLookup);

void BM_SimulatorEchoProbe(benchmark::State& state) {
  const netsim::Internet& internet = SharedInternet();
  netsim::Rng rng(2);
  std::vector<netsim::ProbeSpec> probes;
  for (int i = 0; i < 512; ++i) {
    netsim::ProbeSpec probe;
    probe.destination = netsim::Ipv4Address(
        internet.study_24s[rng.NextBelow(internet.study_24s.size())]
            .base()
            .value() +
        static_cast<std::uint32_t>(rng.NextBelow(256)));
    probe.ttl = 64;
    probes.push_back(probe);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto probe = probes[i++ & 511];
    probe.serial = i;
    benchmark::DoNotOptimize(internet.simulator->Send(probe));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorEchoProbe);

void BM_HierarchyTest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  netsim::Rng rng(3);
  std::vector<core::AddressObservation> observations;
  for (std::size_t i = 0; i < n; ++i) {
    core::AddressObservation obs;
    obs.address = netsim::Ipv4Address(0x14000000u +
                                      static_cast<std::uint32_t>(i));
    obs.last_hops = {netsim::Ipv4Address(
        0x0A000000u + static_cast<std::uint32_t>(rng.NextBelow(4)))};
    observations.push_back(std::move(obs));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::HobbitSaysHomogeneous(observations));
  }
}
BENCHMARK(BM_HierarchyTest)->Arg(8)->Arg(32)->Arg(128);

void BM_MclTwoCliques(benchmark::State& state) {
  cluster::Graph g;
  const auto k = static_cast<std::uint32_t>(state.range(0));
  g.vertex_count = 2 * k;
  for (std::uint32_t base : {0u, k}) {
    for (std::uint32_t i = 0; i < k; ++i) {
      for (std::uint32_t j = i + 1; j < k; ++j) {
        g.edges.push_back({base + i, base + j, 1.0});
      }
    }
  }
  g.edges.push_back({k - 1, k, 0.05});
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::RunMcl(g));
  }
}
BENCHMARK(BM_MclTwoCliques)->Arg(8)->Arg(32);

void BM_MclParallel(benchmark::State& state) {
  // The MCL expansion/inflation loop on a chunky random graph, under the
  // shared deterministic thread pool.  Arg = thread count; results are
  // bit-identical across counts, only the wall time moves.
  netsim::Rng rng(7);
  cluster::Graph g;
  g.vertex_count = 512;
  for (std::uint32_t i = 0; i < g.vertex_count; ++i) {
    for (std::uint32_t j = i + 1; j < g.vertex_count; ++j) {
      if (rng.NextBool(0.04)) g.edges.push_back({i, j, rng.NextUnit()});
    }
  }
  common::ThreadPool pool(static_cast<int>(state.range(0)));
  cluster::MclParams params;
  params.pool = &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::RunMcl(g, params));
  }
}
BENCHMARK(BM_MclParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_ZmapScanPerBlock(benchmark::State& state) {
  const netsim::Internet& internet = SharedInternet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        probing::RunZmapScan(internet, internet.study_24s));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(internet.study_24s.size()) * 256);
}
BENCHMARK(BM_ZmapScanPerBlock);

// The dispatch-layer kernels on one L1-resident MCL-shaped column
// (square_accumulate + divide + filter_ge, the fused-iteration inner
// loop).  Arg = tier; unsupported tiers report a skip rather than
// silently benchmarking a clamped fallback.
void BM_SimdColumnSweep(benchmark::State& state) {
  const auto tier = static_cast<common::simd::Tier>(state.range(0));
  if (!common::simd::TierSupported(tier)) {
    state.SkipWithError("tier not executable on this host/build");
    return;
  }
  const common::simd::Kernels& kernels = common::simd::KernelsFor(tier);
  constexpr std::size_t kCount = 224;
  netsim::Rng rng(11);
  std::vector<double> pristine(kCount);
  for (double& v : pristine) v = 0.1 + 0.9 * rng.NextUnit();
  std::vector<double> column(kCount);
  std::vector<std::uint32_t> tags(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    tags[i] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::pair<double, std::uint32_t>> kept(kCount);
  for (auto _ : state) {
    std::memcpy(column.data(), pristine.data(), kCount * sizeof(double));
    const double sum = kernels.square_accumulate(column.data(), kCount);
    kernels.divide(column.data(), kCount, sum);
    benchmark::DoNotOptimize(kernels.filter_ge(
        column.data(), tags.data(), kCount, 0.5 / kCount, kept.data()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kCount));
}
BENCHMARK(BM_SimdColumnSweep)
    ->Arg(static_cast<int>(common::simd::Tier::kScalar))
    ->Arg(static_cast<int>(common::simd::Tier::kSse2))
    ->Arg(static_cast<int>(common::simd::Tier::kAvx2));

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Attribute the numbers: which kernel tier dispatch actually selected
  // (the HOBBIT_SIMD override, clamped to the hardware) and what the
  // hardware could support.
  hobbit::bench::JsonReporter report("microperf");
  report.Metric("simd_tier",
                std::string(hobbit::common::simd::TierName(
                    hobbit::common::simd::ActiveTier())));
  report.Metric("cpu_features", hobbit::common::simd::CpuFeatureString());
  report.Write();
  return 0;
}
