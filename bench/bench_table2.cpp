// bench_table2 — reproduces Table 2: "The distribution of homogeneous
// sub-blocks within heterogeneous /24 blocks".
//
// The paper applies the §4.2 aligned-disjoint criteria to the "different
// but hierarchical" class, finds 17,387 very-likely-heterogeneous /24s,
// and reports their sub-block compositions:
//   {/25,/25} 50.48%, {/25,/26,/26} 20.65%, {/26 x4} 15.79%,
//   {/25,/26,/27,/27} 5.92%, {/26,/26,/26,/27,/27} 4.63%, ...

#include <iostream>
#include <map>
#include <sstream>

#include "analysis/report.h"
#include "common.h"
#include "hobbit/hierarchy.h"

namespace {

std::string CompositionLabel(const std::vector<int>& lengths) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    if (i > 0) os << ", ";
    os << "/" << lengths[i];
  }
  os << "}";
  return os.str();
}

}  // namespace

int main() {
  using namespace hobbit;
  bench::PrintHeader("Table 2: sub-block composition of heterogeneous /24s",
                     "paper §4.2");

  const bench::World& world = bench::GetWorld();
  std::map<std::string, std::size_t> compositions;
  std::size_t hierarchical = 0;
  std::size_t aligned_disjoint = 0;
  for (std::size_t i = 0; i < world.pipeline.results.size(); ++i) {
    const core::BlockResult& result = world.pipeline.results[i];
    if (result.classification !=
        core::Classification::kDifferentButHierarchical) {
      continue;
    }
    ++hierarchical;
    auto groups = core::GroupByLastHop(result.observations);
    if (!core::IsAlignedDisjoint(groups)) continue;
    ++aligned_disjoint;
    // The adaptive prober may have stopped with one or two addresses per
    // group, under-spanning the true sub-blocks; reprobe the flagged /24
    // exhaustively before reading its composition (the paper probed these
    // at the 95% level, i.e. with many addresses per group).
    core::BlockResult reprobed = core::ReprobeBlock(
        world.internet, world.pipeline.study_blocks[i],
        world.seed + 0x7AB2ULL + i);
    auto full_groups = core::GroupByLastHop(reprobed.observations);
    if (full_groups.size() < 2) full_groups = groups;
    ++compositions[CompositionLabel(
        core::SubBlockComposition(full_groups))];
  }

  std::cout << "different-but-hierarchical /24s: " << hierarchical << "\n"
            << "very likely heterogeneous (aligned-disjoint): "
            << aligned_disjoint << "   (paper: 17,387 of 198,292)\n\n";

  std::vector<std::pair<std::size_t, std::string>> rows;
  for (const auto& [label, count] : compositions) {
    rows.emplace_back(count, label);
  }
  std::sort(rows.rbegin(), rows.rend());

  analysis::TextTable table({"Composition", "count", "ratio"});
  for (const auto& [count, label] : rows) {
    table.AddRow({label, std::to_string(count),
                  analysis::Pct(static_cast<double>(count) /
                                static_cast<double>(aligned_disjoint))});
  }
  table.Print(std::cout);
  std::cout << "\npaper: {/25,/25} 50.48%  {/25,/26,/26} 20.65%  "
               "{/26,/26,/26,/26} 15.79%  {/25,/26,/27,/27} 5.92%  ...\n";
  return 0;
}
