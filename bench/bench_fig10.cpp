// bench_fig10 — reproduces Figure 10: "Changes in the size distribution
// of homogeneous blocks made by clustering".
//
// Paper: MCL + reprobing creates 8,931 clusters out of 33,023 existing
// ones (total 532,850 -> 508,758); small clusters (2^0..2^5) shrink in
// number, midsize (2^5..2^8) grow, and a new 1,217-/24 block appears
// (Amazon EC2 Dublin).

#include <iostream>
#include <vector>

#include "analysis/census.h"
#include "analysis/report.h"
#include "analysis/stats.h"
#include "common.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Figure 10: cluster-size change from MCL aggregation",
                     "paper §6.6");

  const bench::World& world = bench::GetWorld();
  std::vector<std::size_t> before, after;
  for (const auto& block : world.aggregates) {
    before.push_back(block.member_24s.size());
  }
  for (const auto& block : world.final_blocks) {
    after.push_back(block.member_24s.size());
  }

  std::size_t validated = 0, merged_members = 0;
  for (const cluster::ClusterInfo& cluster : world.mcl.clusters) {
    if (!cluster.validated_homogeneous) continue;
    ++validated;
    merged_members += cluster.aggregate_ids.size();
  }
  std::cout << "blocks before MCL: " << before.size()
            << "   (paper: 532,850)\n"
            << "validated clusters created: " << validated
            << " merging " << merged_members
            << " blocks   (paper: 8,931 from 33,023)\n"
            << "blocks after: " << after.size()
            << "   (paper: 508,758)\n\n";

  analysis::Log2Histogram histogram_before =
      analysis::Log2Histogram::Of(before);
  analysis::Log2Histogram histogram_after =
      analysis::Log2Histogram::Of(after);
  std::size_t buckets = std::max(histogram_before.counts.size(),
                                 histogram_after.counts.size());
  analysis::TextTable table({"size bucket", "before", "after", "change"});
  for (std::size_t k = 0; k < buckets; ++k) {
    auto b = k < histogram_before.counts.size() ? histogram_before.counts[k]
                                                : 0;
    auto a = k < histogram_after.counts.size() ? histogram_after.counts[k]
                                               : 0;
    table.AddRow({"[2^" + std::to_string(k) + ",2^" + std::to_string(k + 1)
                      + ")",
                  std::to_string(b), std::to_string(a),
                  (a >= b ? "+" : "") +
                      std::to_string(static_cast<long long>(a) -
                                     static_cast<long long>(b))});
  }
  table.Print(std::cout);

  // The Dublin-style reassembled giant.
  if (!world.final_blocks.empty()) {
    const auto& top = world.final_blocks.front();
    const netsim::AsInfo* as =
        analysis::AsOfBlock(world.internet.registry, top);
    std::cout << "\nlargest block after MCL: "
              << top.member_24s.size() << " x /24 ("
              << (as ? as->organization : "?")
              << ")   paper: new 1,217-/24 Amazon EC2 Dublin block\n";
  }
  return 0;
}
