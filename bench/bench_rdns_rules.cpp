// bench_rdns_rules — reproduces §7.2: "Implication for identifying
// cellular devices".
//
// Paper: all addresses of the Tele2 blocks share the rDNS pattern
// ^m[0-9].+\.cust\.tele2; ~95% of OCN names carry the keyword "omed";
// neither pattern matches any router or known non-cellular end host
// (Bitcoin nodes) — so Hobbit blocks yield cellular classifiers.

#include <iostream>

#include "analysis/census.h"
#include "analysis/cellular.h"
#include "analysis/report.h"
#include "common.h"
#include "netsim/rdns.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("rDNS rules for cellular identification",
                     "paper §7.2");

  const bench::World& world = bench::GetWorld();

  // Cellular blocks = large final blocks whose dominant ground-truth kind
  // is cellular (the paper identified them via Fig 6's RTT signature).
  std::size_t studied = 0;
  std::vector<std::string> extracted_patterns;
  for (std::size_t i = 0; i < world.final_blocks.size() && studied < 5;
       ++i) {
    const cluster::AggregateBlock& block = world.final_blocks[i];
    if (analysis::DominantKind(world.internet, block) !=
        netsim::SubnetKind::kCellular) {
      continue;
    }
    const netsim::AsInfo* as =
        analysis::AsOfBlock(world.internet.registry, block);
    auto names =
        analysis::CollectRdnsNames(world.internet, block, 400, world.seed);
    if (names.size() < 30) continue;
    ++studied;
    analysis::PatternExtraction extraction =
        analysis::ExtractDominantPattern(names);
    std::cout << (as ? as->organization : "?") << " block ("
              << block.member_24s.size() << " x /24): dominant pattern \""
              << extraction.dominant_pattern << "\" covers "
              << analysis::Pct(extraction.coverage) << " of "
              << extraction.names_seen << " names\n";
    extracted_patterns.push_back(extraction.dominant_pattern);
  }

  // Validation against non-cellular names: routers and Cox-residential
  // (Bitcoin-node-style) hosts must not match any extracted pattern.
  std::size_t false_matches = 0, checked = 0;
  for (std::uint32_t i = 0; i < 500; ++i) {
    netsim::Ipv4Address address(0x0A000000u + 1 + i * 7);
    auto router_name = netsim::RdnsName(netsim::kRdnsRouterInfra, address);
    auto bitcoin_name = netsim::RdnsName(netsim::kRdnsBitcoinHost, address);
    for (const std::string& pattern : extracted_patterns) {
      ++checked;
      false_matches += analysis::NameMatchesPattern(pattern, *router_name);
      ++checked;
      false_matches +=
          analysis::NameMatchesPattern(pattern, *bitcoin_name);
    }
  }
  std::cout << "\nvalidation against " << checked
            << " router/Bitcoin-host names: " << false_matches
            << " false matches   (paper: none)\n";

  // The paper's concrete handwritten rules, against our blocks.
  std::cout << "\npaper rules on this world:\n";
  std::size_t tele2_hits = 0, tele2_names = 0;
  std::size_t ocn_hits = 0, ocn_names = 0;
  for (const cluster::AggregateBlock& block : world.final_blocks) {
    auto names =
        analysis::CollectRdnsNames(world.internet, block, 100, world.seed);
    for (const std::string& name : names) {
      if (name.find("tele2") != std::string::npos) {
        ++tele2_names;
        tele2_hits += netsim::MatchesTele2CellularRule(name);
      }
      if (name.find("ocn.ne.jp") != std::string::npos) {
        ++ocn_names;
        ocn_hits += netsim::MatchesOcnCellularRule(name);
      }
    }
  }
  if (tele2_names > 0) {
    std::cout << "  ^m[0-9].+\\.cust\\.tele2 matches "
              << analysis::Pct(static_cast<double>(tele2_hits) /
                               tele2_names)
              << " of Tele2 names (paper: 100%)\n";
  }
  if (ocn_names > 0) {
    std::cout << "  'omed' keyword matches "
              << analysis::Pct(static_cast<double>(ocn_hits) / ocn_names)
              << " of OCN names (paper: ~95%)\n";
  }
  return 0;
}
