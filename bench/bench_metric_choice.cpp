// bench_metric_choice — reproduces §3.1: "Last-hop vs entire traceroute".
//
// Paper: on homogeneous /24s whose addresses show *different last hops*,
// Hobbit's hierarchy test recognises homogeneity for 92% of blocks when
// applied to last-hop routers but only 70% when applied to entire
// traceroutes — load-balancing inflates route-level cardinality, and
// hashing then fakes hierarchy more often.

#include <iostream>

#include "analysis/report.h"
#include "common.h"
#include "route_corpus.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Metric choice: last-hop vs entire traceroute",
                     "paper §3.1");

  const bench::World& world = bench::GetWorld();
  auto corpus = bench::CollectRouteCorpus(world, 250);

  std::size_t eligible = 0;
  std::size_t homogeneous_by_route = 0, homogeneous_by_lasthop = 0,
              homogeneous_by_subpath = 0;
  for (const bench::BlockRouteSet& block : corpus) {
    // The paper's fair-comparison filter: only blocks whose last hops
    // differ (identical last hops are trivially homogeneous for the
    // last-hop metric).
    auto [lasthop_card, by_lasthop] =
        bench::HobbitOnMetric(block, bench::LastHopKeys);
    if (lasthop_card < 2) continue;
    ++eligible;
    homogeneous_by_lasthop += by_lasthop;
    auto [route_card, by_route] =
        bench::HobbitOnMetric(block, bench::RouteKeys);
    homogeneous_by_route += by_route;
    std::size_t depth = bench::CommonRouterDepth(block);
    auto [subpath_card, by_subpath] = bench::HobbitOnMetric(
        block, [depth](const bench::RouteObservation& obs) {
          return bench::SubPathKeys(obs, depth);
        });
    homogeneous_by_subpath += by_subpath;
    (void)route_card;
    (void)subpath_card;
  }

  analysis::TextTable table({"metric", "recognized homogeneous", "paper"});
  auto pct = [&](std::size_t n) {
    return analysis::Pct(static_cast<double>(n) /
                         std::max<std::size_t>(1, eligible));
  };
  table.AddRow({"entire traceroute", pct(homogeneous_by_route), "70%"});
  table.AddRow({"sub-path", pct(homogeneous_by_subpath), "-"});
  table.AddRow({"last-hop router", pct(homogeneous_by_lasthop), "92%"});
  table.Print(std::cout);
  std::cout << "\neligible blocks (truth-homogeneous, differing last hops): "
            << eligible << " of " << corpus.size() << " in corpus\n"
            << "paper: the last-hop metric recovers 22% more homogeneous "
               "blocks than whole traceroutes\n";
  return 0;
}
