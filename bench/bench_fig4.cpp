// bench_fig4 — reproduces Figure 4: "Degree of confidence that Hobbit
// will recognize a homogeneous /24 block per <cardinality, number of
// probed addresses> pair".
//
// Paper: confidence grows with probed addresses; in the low-probe regime
// it falls with cardinality (near-singleton groups look disjoint).  The
// prober stops once its current cell clears 95%.  Cells are only used
// with enough samples (the paper's 16,588-sample criterion).

#include <iomanip>
#include <iostream>

#include "analysis/report.h"
#include "analysis/stats.h"
#include "common.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Figure 4: confidence per <cardinality, probes>",
                     "paper §3.2");

  const bench::World& world = bench::GetWorld();
  const core::ConfidenceTable& table = world.pipeline.table;

  std::cout << "sample-size criterion (99% level, 1% margin, p=0.5): "
            << analysis::RequiredSampleSize(analysis::kZ99, 0.01)
            << " samples/cell (paper: 16,588; scaled here via "
               "min_cell_trials)\n\n";

  // Heatmap rows: cardinality 2..10, probes 4..40.
  std::cout << "confidence heatmap (rows: cardinality, cols: probed "
               "addresses; '-' = insufficient samples)\n      ";
  const int probe_cols[] = {4, 6, 8, 10, 12, 16, 20, 24, 28, 32, 40};
  for (int n : probe_cols) std::cout << std::setw(6) << n;
  std::cout << "\n";
  for (int c = 2; c <= 10; ++c) {
    std::cout << "  c=" << std::setw(2) << c << " ";
    for (int n : probe_cols) {
      auto confidence = table.Confidence(c, n, 50);
      if (confidence) {
        std::cout << std::setw(6) << analysis::Fmt(*confidence, 2);
      } else {
        std::cout << std::setw(6) << "-";
      }
    }
    std::cout << "\n";
  }

  std::cout << "\nprobes required for 95% confidence by cardinality:\n";
  for (int c = 2; c <= 8; ++c) {
    auto required = table.RequiredProbes(c, 0.95, 50);
    std::cout << "  cardinality " << c << ": "
              << (required ? std::to_string(*required)
                           : std::string("> data range (probe all)"))
              << "\n";
  }
  std::cout << "\npaper: the same two trends — more probes help, and in "
               "the sparse regime more distinct last hops demand more "
               "probes before 95% is reached\n";
  return 0;
}
