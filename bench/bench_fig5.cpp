// bench_fig5 — reproduces Figure 5: "The size distribution of aggregated
// homogeneous blocks in terms of /24 blocks they contain".
//
// Paper: identical-set aggregation reduces 1.77M homogeneous /24s to
// 0.53M blocks; ~0.39M have size 1, counts fall with size, 21,513 blocks
// hold >= 16 /24s, 2,430 hold >= 64, and a few exceed 1,024.

#include <iostream>

#include "analysis/report.h"
#include "analysis/stats.h"
#include "common.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Figure 5: size distribution of aggregated blocks",
                     "paper §5.1");

  const bench::World& world = bench::GetWorld();
  std::vector<std::size_t> sizes;
  sizes.reserve(world.aggregates.size());
  std::size_t size1 = 0, ge16 = 0, ge64 = 0, ge1024 = 0;
  for (const cluster::AggregateBlock& block : world.aggregates) {
    std::size_t size = block.member_24s.size();
    sizes.push_back(size);
    size1 += size == 1;
    ge16 += size >= 16;
    ge64 += size >= 64;
    ge1024 += size >= 1024;
  }

  std::cout << "homogeneous /24s: " << world.homogeneous.size()
            << "  -> aggregated blocks: " << world.aggregates.size()
            << "   (paper: 1.77M -> 0.53M)\n"
            << "size-1 blocks: " << size1 << "   (paper: ~0.39M)\n"
            << "blocks with >= 16 /24s: " << ge16
            << "   (paper: 21,513)\n"
            << "blocks with >= 64 /24s: " << ge64 << "   (paper: 2,430)\n"
            << "blocks with >= 1024 /24s: " << ge1024
            << "   (paper: a few)\n\n";

  analysis::PrintLog2Histogram(std::cout,
                               "cluster size frequency (log2 buckets):",
                               analysis::Log2Histogram::Of(sizes));
  if (!sizes.empty()) {
    std::cout << "largest block: " << sizes.front()
              << " x /24   (paper: 1,251)\n";
  }
  return 0;
}
