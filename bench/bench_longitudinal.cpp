// bench_longitudinal — the paper's future work, prototyped: "We also plan
// to perform a longitudinal analysis of the homogeneity of /24 blocks to
// observe how IPv4 address exhaustion affects the address allocations."
//
// Re-measures the same world at several epochs (availability re-drawn,
// a churn share of addresses renumbered) and reports how stable Hobbit's
// verdicts and blocks are — the measurement noise floor any longitudinal
// claim must clear.

#include <iostream>
#include <map>

#include "analysis/report.h"
#include "cluster/aggregate.h"
#include "common.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Longitudinal stability across epochs",
                     "paper §9 (future work)");

  // A dedicated smaller world: three full pipeline runs.
  netsim::InternetConfig config;
  config.seed = bench::WorldSeed();
  config.scale = std::min(0.15, bench::WorldScale());
  netsim::Internet internet = netsim::BuildInternet(config);

  constexpr int kEpochs = 3;
  std::vector<core::PipelineResult> runs;
  std::vector<std::vector<cluster::AggregateBlock>> blocks;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    auto simulator = internet.MakeEpochSimulator(
        static_cast<std::uint32_t>(epoch));
    core::PipelineConfig pipeline_config;
    pipeline_config.seed = config.seed + static_cast<std::uint64_t>(epoch);
    pipeline_config.calibration_blocks = 250;
    runs.push_back(
        core::RunPipeline(internet, pipeline_config, simulator.get()));
    blocks.push_back(
        cluster::AggregateIdentical(runs.back().HomogeneousBlocks()));
    std::cout << "epoch " << epoch << ": " << runs.back().stats.study_24s
              << " study /24s, "
              << runs.back().HomogeneousBlocks().size()
              << " homogeneous, " << blocks.back().size() << " blocks\n";
  }

  // Verdict stability between consecutive epochs.
  analysis::TextTable table({"epoch pair", "/24s in both universes",
                             "same classification", "same homog verdict",
                             "co-membership kept"});
  for (int e = 1; e < kEpochs; ++e) {
    std::map<netsim::Prefix, const core::BlockResult*> previous;
    for (const auto& r : runs[e - 1].results) previous[r.prefix] = &r;
    std::size_t in_both = 0, same_class = 0, same_homog = 0;
    for (const auto& r : runs[e].results) {
      auto pos = previous.find(r.prefix);
      if (pos == previous.end()) continue;
      ++in_both;
      same_class += r.classification == pos->second->classification;
      same_homog += core::IsHomogeneous(r.classification) ==
                    core::IsHomogeneous(pos->second->classification);
    }
    // Co-membership persistence: adjacent member pairs of epoch e-1
    // blocks that still share a block in epoch e (exact member-list
    // equality would be needlessly brittle to one churned /24).
    std::map<netsim::Prefix, int> block_at_e;
    for (std::size_t b = 0; b < blocks[e].size(); ++b) {
      for (const auto& p : blocks[e][b].member_24s) {
        block_at_e[p] = static_cast<int>(b);
      }
    }
    std::size_t pairs = 0, together = 0;
    for (const auto& block : blocks[e - 1]) {
      for (std::size_t m = 1; m < block.member_24s.size(); ++m) {
        auto a = block_at_e.find(block.member_24s[m - 1]);
        auto b = block_at_e.find(block.member_24s[m]);
        if (a == block_at_e.end() || b == block_at_e.end()) continue;
        ++pairs;
        together += a->second == b->second;
      }
    }
    table.AddRow(
        {std::to_string(e - 1) + " vs " + std::to_string(e),
         std::to_string(in_both),
         analysis::Pct(static_cast<double>(same_class) /
                       std::max<std::size_t>(1, in_both)),
         analysis::Pct(static_cast<double>(same_homog) /
                       std::max<std::size_t>(1, in_both)),
         analysis::Pct(static_cast<double>(together) /
                       std::max<std::size_t>(1, pairs))});
  }
  table.Print(std::cout);
  std::cout << "\nreading: the homogeneity verdict is much more stable "
               "than the exact classification (availability churn shuffles "
               "blocks between 'same last hop', 'non-hierarchical' and the "
               "not-analyzable classes), and multi-/24 blocks mostly "
               "persist — the baseline a real longitudinal study would "
               "measure drift against\n";
  return 0;
}
