// bench_table1 — reproduces Table 1: "Measurement results of the
// homogeneity of /24".
//
// Paper (3.37M probed /24s):
//   Too few active              840,258 (24.9%)
//   Unresponsive last-hop       567,439 (16.8%)
//   Same last-hop router        616,719 (18.2%)
//   Non-hierarchical          1,153,628 (34.2%)
//   Different but hierarchical  198,292 ( 5.9%)
//   => 1.77M of 1.97M analyzable /24s (90%) homogeneous.

#include <iostream>

#include "analysis/report.h"
#include "common.h"

int main() {
  using namespace hobbit;
  bench::PrintHeader("Table 1: homogeneity of /24 blocks", "paper §4.1");

  const bench::World& world = bench::GetWorld();
  auto counts = world.pipeline.classification_counts();
  const double total = static_cast<double>(world.pipeline.results.size());

  analysis::TextTable table(
      {"Classification", "# of /24 blocks", "share", "paper"});
  const char* paper_share[] = {"24.9%", "16.8%", "18.2%", "34.2%", "5.9%"};
  for (std::size_t c = 0; c < counts.size(); ++c) {
    table.AddRow({core::ToString(static_cast<core::Classification>(c)),
                  std::to_string(counts[c]),
                  analysis::Pct(counts[c] / total), paper_share[c]});
  }
  table.Print(std::cout);

  const std::size_t homogeneous =
      counts[static_cast<int>(core::Classification::kSameLastHop)] +
      counts[static_cast<int>(core::Classification::kNonHierarchical)];
  const std::size_t analyzable =
      homogeneous + counts[static_cast<int>(
                        core::Classification::kDifferentButHierarchical)];
  std::cout << "\nhomogeneous share of analyzable /24s: "
            << analysis::Pct(static_cast<double>(homogeneous) /
                             static_cast<double>(analyzable))
            << "   (paper: 90%)\n";
  std::cout << "measurement cost: " << world.pipeline.stats.probes_sent
            << " probe packets over " << world.pipeline.stats.study_24s
            << " study blocks\n";
  return 0;
}
