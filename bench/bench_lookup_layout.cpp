// bench_lookup_layout — raw layout microbenchmarks for the serving-layer
// exact-/24 search and the snapshot storage path.
//
// Part 1: Eytzinger (BFS heap order, serve::EytzingerIndex) versus plain
// sorted-array binary search (std::lower_bound), over synthetic key
// arrays far larger than cache.  Every probe of a classic binary search
// lands on a different cache line until the range collapses; the
// Eytzinger layout keeps the top of the tree in a few hot lines and
// prefetches descendants four levels ahead, so the deep levels are the
// only misses left.  The gate requires >= 1.3x at the largest measured
// size — 100M keys in full mode, 10M in --quick (with a softer 1.15x
// floor there: shorter runs are noisier) — where the array is
// decisively out of cache; smaller sizes are reported for the curve
// but not gated.
//
// Part 2: mmap zero-copy serving (HSNP v2).  A >= 64MB v2 snapshot is
// written to a temp file and loaded twice — owned buffer with eager
// verification (the default) versus mmap with deferred verification
// (hobbit_serve --mmap).  Gates: cold start (open -> first lookup
// answered) must improve >= 5x, and steady-state lookup throughput out
// of the mapping must hold >= 0.9x of the owned buffer (it reads the
// same page-cache bytes; only the first touch differs).
//
// Identity is checked for both parts (every Eytzinger rank against the
// binary search, every mmap lookup against the owned snapshot).
//
// Part 1 also times the lockstep batched descent
// (EytzingerIndex::LowerBoundRankBatch, the serve tier's BATCH path):
// kBatchWidth descents per group issue their level loads back to back,
// so the cache misses that dominate out-of-cache lookups overlap
// instead of chaining.  Gate: >= 1.2x (1.1x in --quick) over the
// single-key descent at the largest size, identity-checked per query.
//
// Exit codes: 0 ok, 1 identity mismatch, 2 Eytzinger speedup gate,
// 3 cold-start gate, 4 mmap throughput gate, 5 batched-descent gate.
// All gates are single-threaded, so they are enforced on any machine
// (no skipped-1core path here).  `--quick` trims sizes and query counts
// for the perf-micro ctest smoke.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "netsim/rng.h"
#include "serve/lookup.h"
#include "serve/snapshot.h"

namespace {

using namespace hobbit;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Strictly ascending keys spread over the full u32 range with
/// deterministic per-slot jitter — no sort pass needed at 100M keys.
std::vector<std::uint32_t> SyntheticKeys(std::size_t count) {
  std::vector<std::uint32_t> keys(count);
  const std::uint64_t stride = (1ull << 32) / count;
  netsim::Rng rng(count);  // size-keyed: every size gets its own keys
  for (std::size_t i = 0; i < count; ++i) {
    keys[i] = static_cast<std::uint32_t>(
        i * stride + rng.NextBelow(static_cast<std::uint32_t>(stride)));
  }
  return keys;
}

struct LayoutRun {
  double binsearch_qps = 0.0;
  double eytzinger_qps = 0.0;
  double batch_qps = 0.0;
  bool identical = true;
  double speedup() const { return eytzinger_qps / binsearch_qps; }
  double batch_speedup() const { return batch_qps / eytzinger_qps; }
};

LayoutRun CompareLayouts(const std::vector<std::uint32_t>& keys,
                         std::size_t query_count) {
  const serve::EytzingerIndex index = serve::EytzingerIndex::Build(keys);
  std::vector<std::uint32_t> queries(query_count);
  netsim::Rng rng(keys.size() ^ 0x9e3779b9u);
  for (auto& q : queries) {
    q = static_cast<std::uint32_t>(rng.Next());
  }

  LayoutRun run;
  // Warm all three paths once (and check identity while at it): the
  // lockstep batch descent must agree with the single-key descent must
  // agree with std::lower_bound, query for query.
  constexpr std::size_t kWidth = serve::EytzingerIndex::kBatchWidth;
  std::vector<std::size_t> ranks(queries.size());
  index.LowerBoundRankBatch(queries.data(), queries.size(), ranks.data());
  for (std::size_t i = 0; i < queries.size() && run.identical; ++i) {
    const std::size_t expected = static_cast<std::size_t>(
        std::lower_bound(keys.begin(), keys.end(), queries[i]) -
        keys.begin());
    run.identical = index.LowerBoundRank(queries[i]) == expected &&
                    ranks[i] == expected;
  }

  std::uint64_t sink = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::uint32_t q : queries) {
    sink += static_cast<std::size_t>(
        std::lower_bound(keys.begin(), keys.end(), q) - keys.begin());
  }
  run.binsearch_qps = queries.size() / Seconds(start);

  start = std::chrono::steady_clock::now();
  for (std::uint32_t q : queries) {
    sink -= index.LowerBoundRank(q);
  }
  run.eytzinger_qps = queries.size() / Seconds(start);

  // The batched descent, as the serve tier's BATCH path drives it:
  // kBatchWidth descents in lockstep so their level loads overlap.
  std::size_t group_ranks[kWidth];
  start = std::chrono::steady_clock::now();
  for (std::size_t base = 0; base < queries.size(); base += kWidth) {
    const std::size_t group = std::min(kWidth, queries.size() - base);
    index.LowerBoundRankBatch(queries.data() + base, group, group_ranks);
    for (std::size_t i = 0; i < group; ++i) sink += group_ranks[i];
  }
  run.batch_qps = queries.size() / Seconds(start);
  for (std::size_t rank : ranks) sink -= rank;
  if (sink != 0) run.identical = false;  // also defeats dead-code removal
  return run;
}

/// A >= 64MB v2 snapshot: `count` bare /24 entries (no blocks, no hop
/// pool — the entry sections dominate real snapshots too).
std::vector<std::byte> BigSnapshotV2(std::size_t count) {
  std::vector<serve::SnapshotEntry> entries(count);
  for (std::size_t i = 0; i < count; ++i) {
    entries[i].key = static_cast<std::uint32_t>(i) << 8;
  }
  return serve::AssembleSnapshotV2(entries, {}, {}, /*epoch=*/1);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::PrintHeader("lookup-layout",
                     "serving layer: Eytzinger index + mmap zero-copy");
  bench::JsonReporter report("lookup_layout");
  report.Config("mode", quick ? "quick" : "full");

  // ---- Part 1: Eytzinger vs sorted-array binary search -----------------
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{1'000'000, 10'000'000}
            : std::vector<std::size_t>{1'000'000, 10'000'000, 100'000'000};
  // Quick mode gates softer (like the other --quick smokes): the 10M run
  // is short enough that scheduler noise moves the ratio by ~0.1-0.2x.
  const std::size_t query_count = quick ? 1'000'000 : 4'000'000;
  const double require_layout_speedup = quick ? 1.15 : 1.3;
  // The lockstep batch descent must beat the one-at-a-time descent at
  // the largest (out-of-cache) size, where the overlapped level loads
  // are the whole point.  Softer in --quick, as above.
  const double require_batch_speedup = quick ? 1.1 : 1.2;

  std::printf("%12s %14s %14s %9s %14s %9s\n", "keys", "binsearch[q/s]",
              "eytzinger[q/s]", "speedup", "batch[q/s]", "vs 1-key");
  bool identical = true;
  bool layout_gate_pass = true;
  bool batch_gate_pass = true;
  for (std::size_t size : sizes) {
    const std::vector<std::uint32_t> keys = SyntheticKeys(size);
    // Only the largest (most decisively out-of-cache) size is gated:
    // 1M (4MB of keys) can sit inside a large L2/L3 where both layouts
    // are fast, and mid sizes straddle the cache boundary where the
    // ratio is noisiest; the rest of the curve is reported, not gated.
    // Gated sizes get up to three attempts (first pass wins): a single
    // timed pair is at the mercy of one scheduler hiccup, and only the
    // layout's *best achievable* ratio is the regression signal.
    const bool gated = size == sizes.back() && size >= 10'000'000;
    LayoutRun run = CompareLayouts(keys, query_count);
    identical = identical && run.identical;
    for (int attempt = 1;
         attempt < 3 && gated && run.identical &&
         (run.speedup() < require_layout_speedup ||
          run.batch_speedup() < require_batch_speedup);
         ++attempt) {
      LayoutRun retry = CompareLayouts(keys, query_count);
      identical = identical && retry.identical;
      // Keep each path's best achievable rate across attempts.
      run.binsearch_qps = std::max(run.binsearch_qps, retry.binsearch_qps);
      run.eytzinger_qps = std::max(run.eytzinger_qps, retry.eytzinger_qps);
      run.batch_qps = std::max(run.batch_qps, retry.batch_qps);
    }
    const bool pass = !gated || run.speedup() >= require_layout_speedup;
    const bool batch_pass =
        !gated || run.batch_speedup() >= require_batch_speedup;
    layout_gate_pass = layout_gate_pass && pass;
    batch_gate_pass = batch_gate_pass && batch_pass;
    std::printf("%12zu %14.0f %14.0f %8.2fx %14.0f %8.2fx%s%s%s\n", size,
                run.binsearch_qps, run.eytzinger_qps, run.speedup(),
                run.batch_qps, run.batch_speedup(),
                run.identical ? "" : "  RANK MISMATCH",
                pass ? "" : "  BELOW GATE",
                batch_pass ? "" : "  BATCH BELOW GATE");
    const std::string tag = std::to_string(size / 1'000'000) + "m";
    report.Metric(tag + "_binsearch_qps", run.binsearch_qps);
    report.Metric(tag + "_eytzinger_qps", run.eytzinger_qps);
    report.Metric(tag + "_speedup", run.speedup());
    report.Metric(tag + "_batch_qps", run.batch_qps);
    report.Metric(tag + "_batch_speedup", run.batch_speedup());
  }
  report.Config("require_layout_speedup", require_layout_speedup);
  report.Config("require_batch_speedup", require_batch_speedup);

  // ---- Part 2: mmap zero-copy vs owned buffer --------------------------
  // 8M entries ~= 72MB of file: keys + blocks + classes sections.
  const std::size_t entry_count = 8'000'000;
  const char* path = "/tmp/hobbit_bench_lookup_layout.hsnp";
  {
    const std::vector<std::byte> buffer = BigSnapshotV2(entry_count);
    std::FILE* out = std::fopen(path, "wb");
    if (out == nullptr ||
        std::fwrite(buffer.data(), 1, buffer.size(), out) != buffer.size()) {
      std::printf("cannot write %s\n", path);
      if (out != nullptr) std::fclose(out);
      return 1;
    }
    std::fclose(out);
    std::printf("\nsnapshot file: %zu entries, %zu bytes (%s)\n", entry_count,
                buffer.size(), path);
    report.Config("snapshot_bytes", static_cast<double>(buffer.size()));
  }

  std::string error;
  const std::uint32_t probe_key = (entry_count / 2) << 8;

  // Cold start, owned + eager (the pre-v2 default): read the whole file,
  // checksum every section, scan every entry — then answer one lookup.
  auto start = std::chrono::steady_clock::now();
  auto owned = serve::Snapshot::FromFile(path, &error);
  if (!owned) {
    std::printf("owned load failed: %s\n", error.c_str());
    return 1;
  }
  serve::LookupResult first_owned =
      serve::LookupEngine(*owned).Lookup(netsim::Ipv4Address(probe_key));
  const double owned_cold = Seconds(start);

  // Cold start, mmap + deferred (hobbit_serve --mmap): map the file,
  // validate the header structurally, answer the lookup straight out of
  // the page cache.
  serve::SnapshotLoadOptions mmap_options;
  mmap_options.use_mmap = true;
  mmap_options.defer_verification = true;
  start = std::chrono::steady_clock::now();
  auto mapped = serve::Snapshot::FromFile(path, &error, mmap_options);
  if (!mapped) {
    std::printf("mmap load failed: %s\n", error.c_str());
    return 1;
  }
  serve::LookupResult first_mapped =
      serve::LookupEngine(*mapped).Lookup(netsim::Ipv4Address(probe_key));
  const double mmap_cold = Seconds(start);
  const double cold_ratio = owned_cold / mmap_cold;

  identical = identical && first_owned.found == first_mapped.found &&
              first_owned.key == first_mapped.key;
  std::printf("cold start    : owned+verify %.4fs, mmap+defer %.6fs (%.0fx)"
              "  [mapped: %s]\n",
              owned_cold, mmap_cold, cold_ratio,
              mapped->is_mapped() ? "yes" : "no, read fallback");
  report.Metric("cold_owned_seconds", owned_cold);
  report.Metric("cold_mmap_seconds", mmap_cold);
  report.Metric("cold_speedup", cold_ratio);
  report.Metric("mapped", mapped->is_mapped() ? 1.0 : 0.0);

  // Steady-state throughput: identical random queries against both
  // stores.  One warm pass first — part of the mmap cost is first-touch
  // page faults, which cold-start already accounts for; this measures
  // the serving loop once resident.
  const std::size_t mmap_queries = quick ? 1'000'000 : 4'000'000;
  std::vector<std::uint32_t> queries(mmap_queries);
  netsim::Rng rng(99);
  for (auto& q : queries) {
    q = static_cast<std::uint32_t>(
            rng.NextBelow(static_cast<std::uint32_t>(entry_count + 7)))
        << 8;
  }
  serve::LookupEngine owned_engine(*owned);
  serve::LookupEngine mapped_engine(*mapped);
  std::size_t owned_hits = 0, mapped_hits = 0;
  for (std::uint32_t q : queries) {
    owned_hits += owned_engine.Lookup(netsim::Ipv4Address(q)).found;
    mapped_hits += mapped_engine.Lookup(netsim::Ipv4Address(q)).found;
  }
  identical = identical && owned_hits == mapped_hits;

  start = std::chrono::steady_clock::now();
  for (std::uint32_t q : queries) {
    owned_hits += owned_engine.Lookup(netsim::Ipv4Address(q)).found;
  }
  const double owned_qps = queries.size() / Seconds(start);
  start = std::chrono::steady_clock::now();
  for (std::uint32_t q : queries) {
    mapped_hits += mapped_engine.Lookup(netsim::Ipv4Address(q)).found;
  }
  const double mapped_qps = queries.size() / Seconds(start);
  const double throughput_ratio = mapped_qps / owned_qps;
  identical = identical && owned_hits == mapped_hits;
  std::printf("steady state  : owned %.0f q/s, mmap %.0f q/s (%.2fx)\n",
              owned_qps, mapped_qps, throughput_ratio);
  report.Metric("owned_lookups_per_s", owned_qps);
  report.Metric("mmap_lookups_per_s", mapped_qps);
  report.Metric("mmap_throughput_ratio", throughput_ratio);

  // Deferred verification still catches corruption when finally asked.
  std::string verify_error;
  const bool verify_ok = mapped->VerifyPayload(&verify_error);
  identical = identical && verify_ok;

  std::remove(path);

  const double require_cold = 5.0;
  const double require_throughput = 0.9;
  report.Config("require_cold_speedup", require_cold);
  report.Config("require_throughput_ratio", require_throughput);
  report.Metric("identical", identical ? 1.0 : 0.0);
  const bool cold_pass = cold_ratio >= require_cold;
  const bool throughput_pass = throughput_ratio >= require_throughput;
  report.Metric("gates_pass",
                (layout_gate_pass && batch_gate_pass && cold_pass &&
                 throughput_pass)
                    ? 1.0
                    : 0.0);
  report.Write();

  if (!identical) {
    std::printf("\nlayout/mmap answers DISAGREE (bug!)\n");
    return 1;
  }
  if (!layout_gate_pass) {
    std::printf("\nEytzinger gate FAILED (required >= %.2fx at >= 10M keys)\n",
                require_layout_speedup);
    return 2;
  }
  if (!cold_pass) {
    std::printf("\ncold-start gate FAILED (%.1fx < %.1fx)\n", cold_ratio,
                require_cold);
    return 3;
  }
  if (!throughput_pass) {
    std::printf("\nmmap throughput gate FAILED (%.2fx < %.2fx)\n",
                throughput_ratio, require_throughput);
    return 4;
  }
  if (!batch_gate_pass) {
    std::printf(
        "\nbatched-descent gate FAILED (required >= %.2fx over the "
        "single-key descent at the largest size)\n",
        require_batch_speedup);
    return 5;
  }
  std::printf("\nall layout gates passed\n");
  return 0;
}
