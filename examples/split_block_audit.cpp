// split_block_audit.cpp — auditing /24s that ISPs split into customer
// sub-blocks (the paper's §4.2/Tables 2-4 workflow as a tool).
//
// Scenario: a measurement platform treats /24s as units and wants a list
// of prefixes where that assumption is wrong.  The audit runs Hobbit,
// keeps "different but hierarchical" /24s, applies the aligned-disjoint
// criteria, reads the observed sub-block composition, and cross-checks
// the registry's WHOIS assignments.
//
//   ./split_block_audit [scale] [seed]

#include <cstdlib>
#include <iostream>

#include "analysis/census.h"
#include "analysis/report.h"
#include "hobbit/hierarchy.h"
#include "hobbit/pipeline.h"
#include "netsim/internet.h"

int main(int argc, char** argv) {
  using namespace hobbit;

  netsim::InternetConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 19;
  netsim::Internet internet = netsim::BuildInternet(config);

  core::PipelineConfig pipeline_config;
  pipeline_config.seed = config.seed;
  pipeline_config.calibration_blocks = 400;
  core::PipelineResult result = core::RunPipeline(internet, pipeline_config);

  std::cout << "== audit: /24s that are NOT one unit ==\n";
  analysis::TextTable table({"prefix", "sub-blocks (observed)",
                             "WHOIS assignments", "owner"});
  std::size_t hierarchical = 0, flagged = 0, whois_confirmed = 0;
  for (std::size_t i = 0; i < result.results.size(); ++i) {
    const core::BlockResult& r = result.results[i];
    if (r.classification !=
        core::Classification::kDifferentButHierarchical) {
      continue;
    }
    ++hierarchical;
    // Reprobe exhaustively before judging the composition.
    core::BlockResult full = core::ReprobeBlock(
        internet, result.study_blocks[i], config.seed + i);
    auto groups = core::GroupByLastHop(full.observations);
    if (!core::IsAlignedDisjoint(groups)) continue;
    ++flagged;

    std::string composition;
    for (int length : core::SubBlockComposition(groups)) {
      composition += "/" + std::to_string(length) + " ";
    }
    auto records = internet.registry.WhoisLookup(r.prefix);
    if (records.size() >= 2) ++whois_confirmed;
    auto as_index = internet.registry.AsOf(r.prefix.base());
    if (flagged <= 12) {
      table.AddRow({r.prefix.ToString(), composition,
                    std::to_string(records.size()),
                    as_index ? internet.registry.as_info(*as_index)
                                   .organization
                             : "?"});
    }
  }
  table.Print(std::cout);
  std::cout << "\nhierarchical /24s examined: " << hierarchical
            << "\nflagged very-likely-heterogeneous: " << flagged
            << "\nWHOIS shows multiple assignments: " << whois_confirmed
            << "\n";

  // False-positive control (the paper's <0.1% claim): how many flagged
  // /24s are homogeneous in ground truth?
  std::size_t false_flags = 0;
  for (std::size_t i = 0; i < result.results.size(); ++i) {
    const core::BlockResult& r = result.results[i];
    if (r.classification !=
        core::Classification::kDifferentButHierarchical) {
      continue;
    }
    core::BlockResult full = core::ReprobeBlock(
        internet, result.study_blocks[i], config.seed + i);
    auto groups = core::GroupByLastHop(full.observations);
    if (!core::IsAlignedDisjoint(groups)) continue;
    const netsim::TruthRecord* truth = internet.TruthOf(r.prefix);
    if (truth != nullptr && !truth->heterogeneous) ++false_flags;
  }
  std::cout << "flagged-but-actually-homogeneous: " << false_flags
            << " (paper: <0.1% of homogeneous blocks meet the criteria)\n";
  return 0;
}
