// cellular_census.cpp — finding cellular address pools with Hobbit
// (paper §5.2 + §7.2 as one workflow).
//
// Scenario: you want a census of cellular IP space.  Hobbit's aggregated
// blocks reveal large single-location pools; the first-probe RTT
// signature separates cellular pools (radio wake-up) from datacenters;
// the pools' reverse-DNS names generalise into classifiers usable on
// addresses never probed.
//
//   ./cellular_census [scale] [seed]

#include <cstdlib>
#include <iostream>

#include "analysis/cellular.h"
#include "analysis/census.h"
#include "analysis/report.h"
#include "analysis/stats.h"
#include "cluster/aggregate.h"
#include "hobbit/pipeline.h"
#include "netsim/internet.h"

int main(int argc, char** argv) {
  using namespace hobbit;

  netsim::InternetConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;
  netsim::Internet internet = netsim::BuildInternet(config);

  std::cout << "== Hobbit measurement ==\n";
  core::PipelineConfig pipeline_config;
  pipeline_config.seed = config.seed;
  pipeline_config.calibration_blocks = 300;
  core::PipelineResult result = core::RunPipeline(internet, pipeline_config);
  auto aggregates =
      cluster::AggregateIdentical(result.HomogeneousBlocks());
  std::cout << aggregates.size() << " homogeneous blocks\n\n";

  std::cout << "== classifying the largest blocks by RTT signature ==\n";
  analysis::TextTable table({"block", "org", "size", "share >0.5s",
                             "verdict"});
  std::vector<const cluster::AggregateBlock*> cellular_blocks;
  for (std::size_t i = 0; i < aggregates.size() && i < 12; ++i) {
    const cluster::AggregateBlock& block = aggregates[i];
    const netsim::AsInfo* as =
        analysis::AsOfBlock(internet.registry, block);
    std::vector<double> deltas =
        analysis::FirstRttDeltas(internet, block, 30, 20, config.seed + i);
    if (deltas.size() < 30) continue;
    analysis::Ecdf ecdf(std::move(deltas));
    const double above = 1.0 - ecdf.At(0.5);
    const bool cellular = above > 0.25;
    if (cellular) cellular_blocks.push_back(&block);
    table.AddRow({std::to_string(i + 1), as ? as->organization : "?",
                  std::to_string(block.member_24s.size()),
                  analysis::Pct(above),
                  cellular ? "cellular" : "fixed/datacenter"});
  }
  table.Print(std::cout);

  std::cout << "\n== extracting reverse-DNS classifiers ==\n";
  std::size_t rules = 0;
  for (const cluster::AggregateBlock* block : cellular_blocks) {
    auto names =
        analysis::CollectRdnsNames(internet, *block, 300, config.seed);
    if (names.size() < 20) continue;
    analysis::PatternExtraction extraction =
        analysis::ExtractDominantPattern(names);
    if (extraction.coverage < 0.9) continue;
    ++rules;
    std::cout << "rule " << rules << ": addresses matching \""
              << extraction.dominant_pattern
              << "\" are cellular (derived from "
              << extraction.names_seen << " names, coverage "
              << analysis::Pct(extraction.coverage) << ")\n";
  }
  if (rules == 0) {
    std::cout << "no high-coverage naming rule found at this scale; try "
                 "a larger one\n";
  }
  std::cout << "\nGround truth check: ";
  std::size_t truly_cellular = 0;
  for (const cluster::AggregateBlock* block : cellular_blocks) {
    truly_cellular += analysis::DominantKind(internet, *block) ==
                      netsim::SubnetKind::kCellular;
  }
  std::cout << truly_cellular << "/" << cellular_blocks.size()
            << " RTT-flagged blocks are cellular in ground truth\n";
  return 0;
}
