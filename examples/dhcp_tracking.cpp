// dhcp_tracking.cpp — finding a host after a DHCP renumbering (the
// paper's third implication, §1: "homogeneous blocks can provide guidance
// in searching for new addresses of the hosts that changed their
// addresses by DHCP").
//
// Scenario: you fingerprinted a host at address A; some time later its
// lease changed and it answers at a new address B drawn from the same
// operator pool.  Operator pools are topologically one place, so B lies
// in the same Hobbit block as A with high probability.  Searching the
// block first beats searching the whole AS or the whole universe.
//
//   ./dhcp_tracking [scale] [seed]

#include <cstdlib>
#include <iostream>
#include <map>

#include "analysis/report.h"
#include "cluster/aggregate.h"
#include "cluster/blockio.h"
#include "hobbit/pipeline.h"
#include "netsim/internet.h"
#include "netsim/rng.h"

int main(int argc, char** argv) {
  using namespace hobbit;

  netsim::InternetConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 23;
  netsim::Internet internet = netsim::BuildInternet(config);

  core::PipelineConfig pipeline_config;
  pipeline_config.seed = config.seed;
  pipeline_config.calibration_blocks = 300;
  core::PipelineResult result = core::RunPipeline(internet, pipeline_config);
  auto aggregates = cluster::AggregateIdentical(result.HomogeneousBlocks());
  cluster::BlockIndex index(aggregates);
  std::cout << aggregates.size() << " Hobbit blocks built\n\n";

  // Simulate DHCP renumbering: the host's pool is its ground-truth block
  // (the set of /24s sharing its gateway set); the new lease is a random
  // snapshot-active address of that pool.
  netsim::Rng rng(config.seed + 0xD4C0ULL);
  std::map<std::uint64_t, std::vector<netsim::Prefix>> pools;
  for (std::size_t i = 0; i < internet.study_24s.size(); ++i) {
    const netsim::TruthRecord& truth = internet.truth[i];
    if (!truth.heterogeneous) {
      pools[truth.truth_block].push_back(truth.prefix);
    }
  }

  std::size_t trials = 0, same_block = 0;
  double candidates_block = 0, candidates_as = 0;
  for (const auto& [pool_id, members] : pools) {
    if (members.size() < 4 || trials >= 200) continue;
    // Old and new lease in different /24s of the pool.
    const netsim::Prefix& old24 = members[rng.NextBelow(members.size())];
    const netsim::Prefix& new24 = members[rng.NextBelow(members.size())];
    int old_block = index.BlockOf(old24);
    if (old_block < 0) continue;
    ++trials;
    // Was the new lease's /24 inside the same measured block?
    same_block += index.BlockOf(new24) == old_block;
    // Search-space sizes: the block vs the owning AS.
    candidates_block += static_cast<double>(
        aggregates[static_cast<std::size_t>(old_block)].member_24s.size());
    auto as_index = internet.registry.AsOf(old24.base());
    std::size_t as_24s = 0;
    for (std::size_t i = 0; i < internet.study_24s.size(); ++i) {
      if (internet.truth[i].as_index == *as_index) ++as_24s;
    }
    candidates_as += static_cast<double>(as_24s);
  }

  analysis::TextTable table({"quantity", "value"});
  table.AddRow({"renumbering trials", std::to_string(trials)});
  table.AddRow({"new lease found in the SAME Hobbit block",
                analysis::Pct(static_cast<double>(same_block) /
                              std::max<std::size_t>(1, trials))});
  table.AddRow({"avg /24s to search (Hobbit block)",
                analysis::Fmt(candidates_block / std::max<std::size_t>(
                                                     1, trials))});
  table.AddRow({"avg /24s to search (whole AS)",
                analysis::Fmt(candidates_as / std::max<std::size_t>(
                                                  1, trials))});
  table.Print(std::cout);
  std::cout << "\nSearching the host's Hobbit block narrows the hunt by "
            << analysis::Fmt(candidates_as /
                                 std::max(1.0, candidates_block),
                             1)
            << "x versus sweeping its AS.\n";
  return 0;
}
