// quickstart.cpp — the whole Hobbit workflow in one small program.
//
// Builds a synthetic Internet, runs the measurement pipeline (ZMap
// snapshot -> calibration -> adaptive probing), classifies every /24,
// aggregates homogeneous /24s into larger blocks, and prints a compact
// summary of each stage.
//
//   ./quickstart [scale] [seed]
//
// `scale` multiplies the size of the synthetic Internet (default 0.1,
// about 6k /24 blocks; 1.0 reproduces the full paper-shaped census).

#include <cstdlib>
#include <iostream>

#include "analysis/report.h"
#include "cluster/aggregate.h"
#include "hobbit/pipeline.h"
#include "netsim/internet.h"

int main(int argc, char** argv) {
  using namespace hobbit;

  netsim::InternetConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::cout << "== building synthetic Internet (scale=" << config.scale
            << ", seed=" << config.seed << ") ==\n";
  netsim::Internet internet = netsim::BuildInternet(config);
  std::cout << "routers:  " << internet.topology.router_count() << "\n"
            << "subnets:  " << internet.topology.subnet_count() << "\n"
            << "/24s:     " << internet.study_24s.size() << "\n\n";

  std::cout << "== running Hobbit pipeline ==\n";
  core::PipelineConfig pipeline_config;
  pipeline_config.seed = config.seed;
  pipeline_config.calibration_blocks = 400;
  pipeline_config.samples_per_block = 64;
  core::PipelineResult result = core::RunPipeline(internet, pipeline_config);

  std::cout << "snapshot active addresses: "
            << result.stats.snapshot_active_addresses << "\n"
            << "study /24s (pass /26 criterion): " << result.stats.study_24s
            << "\n"
            << "probe packets sent: " << result.stats.probes_sent << "\n\n";

  std::cout << "== classification (Table 1 shape) ==\n";
  auto counts = result.classification_counts();
  analysis::TextTable table({"Class", "# of /24 blocks", "share"});
  const double total = static_cast<double>(result.results.size());
  for (std::size_t c = 0; c < counts.size(); ++c) {
    table.AddRow({core::ToString(static_cast<core::Classification>(c)),
                  std::to_string(counts[c]),
                  analysis::Pct(counts[c] / total)});
  }
  table.Print(std::cout);

  std::cout << "\n== aggregation ==\n";
  auto homogeneous = result.HomogeneousBlocks();
  auto aggregates = cluster::AggregateIdentical(homogeneous);
  std::cout << "homogeneous /24s: " << homogeneous.size() << "\n"
            << "after identical-set aggregation: " << aggregates.size()
            << " blocks\n";
  if (!aggregates.empty()) {
    std::cout << "largest block: " << aggregates.front().member_24s.size()
              << " x /24 (last-hop set size "
              << aggregates.front().last_hops.size() << ")\n";
  }

  cluster::MclAggregationResult mcl = cluster::RunMclAggregation(aggregates);
  cluster::ValidateClusters(internet, result.study_blocks, aggregates, mcl);
  std::size_t validated = 0;
  for (const auto& c : mcl.clusters) validated += c.validated_homogeneous;
  auto final_blocks = cluster::MergeValidatedClusters(aggregates, mcl);
  std::cout << "similarity components: " << mcl.component_count
            << ", MCL clusters: " << mcl.clusters.size() << " (validated "
            << validated << ")\n"
            << "final homogeneous blocks: " << final_blocks.size() << "\n";
  return 0;
}
