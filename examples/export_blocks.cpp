// export_blocks.cpp — produce the dataset the paper publishes: the final
// list of Hobbit blocks, as a loadable text file.
//
//   ./export_blocks out.blocks [scale] [seed]
//
// Runs the whole pipeline (measurement, exact aggregation, MCL + reprobe
// validation), writes the final block list, reloads it, and demonstrates
// a downstream lookup ("which block is this /24 in?").

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "cluster/aggregate.h"
#include "cluster/blockio.h"
#include "hobbit/pipeline.h"
#include "netsim/internet.h"

int main(int argc, char** argv) {
  using namespace hobbit;
  if (argc < 2) {
    std::cerr << "usage: export_blocks <output-file> [scale] [seed]\n";
    return 1;
  }
  const char* path = argv[1];

  netsim::InternetConfig config;
  config.scale = argc > 2 ? std::atof(argv[2]) : 0.1;
  config.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
  netsim::Internet internet = netsim::BuildInternet(config);

  core::PipelineConfig pipeline_config;
  pipeline_config.seed = config.seed;
  pipeline_config.calibration_blocks = 300;
  core::PipelineResult result = core::RunPipeline(internet, pipeline_config);
  auto aggregates = cluster::AggregateIdentical(result.HomogeneousBlocks());
  auto mcl = cluster::RunMclAggregation(aggregates);
  cluster::ValidateClusters(internet, result.study_blocks, aggregates, mcl);
  auto final_blocks = cluster::MergeValidatedClusters(aggregates, mcl);

  {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    cluster::WriteBlocks(out, final_blocks);
  }
  std::cout << "wrote " << final_blocks.size() << " blocks covering ";
  std::size_t members = 0;
  for (const auto& block : final_blocks) members += block.member_24s.size();
  std::cout << members << " /24s to " << path << "\n";

  // Downstream consumer: reload and look something up.
  std::ifstream in(path);
  std::string error;
  auto loaded = cluster::ReadBlocks(in, &error);
  if (!loaded) {
    std::cerr << "reload failed: " << error << "\n";
    return 1;
  }
  cluster::BlockIndex index(*loaded);
  const netsim::Prefix& probe = final_blocks.front().member_24s.front();
  std::cout << "reload OK (" << loaded->size() << " blocks); "
            << probe.ToString() << " belongs to block "
            << index.BlockOf(probe) << " with "
            << (*loaded)[static_cast<std::size_t>(index.BlockOf(probe))]
                   .member_24s.size()
            << " member /24s\n";
  return 0;
}
