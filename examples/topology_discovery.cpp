// topology_discovery.cpp — using Hobbit blocks to plan an efficient
// topology-discovery campaign (the paper's §7.1 application).
//
// Scenario: a mapping system (CAIDA-style) wants IP-level links.  The
// naive plan probes k destinations per routed /24; the Hobbit plan first
// aggregates /24s into homogeneous blocks and spreads the same probe
// budget across blocks instead.  This program builds a world, measures
// it, constructs both plans and reports the link coverage per budget.
//
//   ./topology_discovery [scale] [seed]

#include <cstdlib>
#include <iostream>
#include <map>

#include "analysis/report.h"
#include "analysis/topo_discovery.h"
#include "cluster/aggregate.h"
#include "hobbit/pipeline.h"
#include "netsim/internet.h"

int main(int argc, char** argv) {
  using namespace hobbit;

  netsim::InternetConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  netsim::Internet internet = netsim::BuildInternet(config);

  std::cout << "== measuring " << internet.study_24s.size()
            << " /24s with Hobbit ==\n";
  core::PipelineConfig pipeline_config;
  pipeline_config.seed = config.seed;
  pipeline_config.calibration_blocks = 300;
  core::PipelineResult result = core::RunPipeline(internet, pipeline_config);
  auto homogeneous = result.HomogeneousBlocks();
  auto aggregates = cluster::AggregateIdentical(homogeneous);
  std::cout << homogeneous.size() << " homogeneous /24s -> "
            << aggregates.size() << " blocks\n\n";

  // Probe targets: every snapshot-active address of the homogeneous /24s.
  std::vector<netsim::Ipv4Address> destinations;
  std::map<netsim::Prefix, std::size_t> block_of_24;
  for (std::size_t b = 0; b < aggregates.size(); ++b) {
    for (const netsim::Prefix& p : aggregates[b].member_24s) {
      block_of_24[p] = b;
    }
  }
  for (const probing::ZmapBlock& snapshot : result.study_blocks) {
    if (!block_of_24.count(snapshot.prefix)) continue;
    for (std::uint8_t octet : snapshot.active_octets) {
      destinations.push_back(
          netsim::Ipv4Address(snapshot.prefix.base().value() | octet));
    }
  }

  std::cout << "== collecting traceroute corpus (" << destinations.size()
            << " destinations) ==\n";
  analysis::TracerouteCorpus corpus =
      analysis::CollectCorpus(*internet.simulator, destinations);
  std::cout << corpus.total_links << " distinct router-router links\n\n";

  // Build strata for both plans.
  std::map<std::size_t, std::vector<std::uint32_t>> block_strata_map;
  std::map<netsim::Prefix, std::vector<std::uint32_t>> slash24_strata_map;
  for (std::uint32_t i = 0; i < corpus.entries.size(); ++i) {
    netsim::Prefix p =
        netsim::Prefix::Slash24Of(corpus.entries[i].destination);
    slash24_strata_map[p].push_back(i);
    block_strata_map[block_of_24[p]].push_back(i);
  }
  std::vector<std::vector<std::uint32_t>> block_strata, slash24_strata;
  for (auto& [key, indices] : block_strata_map) {
    block_strata.push_back(std::move(indices));
  }
  for (auto& [key, indices] : slash24_strata_map) {
    slash24_strata.push_back(std::move(indices));
  }

  const std::size_t total_24s = slash24_strata.size();
  auto hobbit_plan = analysis::DiscoverySeries(
      corpus, block_strata, total_24s, netsim::Rng(config.seed + 1));
  auto naive_plan = analysis::DiscoverySeries(
      corpus, slash24_strata, total_24s, netsim::Rng(config.seed + 2));

  auto budget_for = [](const std::vector<analysis::SeriesPoint>& series,
                       double target) -> double {
    for (const auto& point : series) {
      if (point.link_ratio >= target) return point.avg_selected_per_24;
    }
    return -1.0;
  };
  analysis::TextTable table(
      {"coverage target", "Hobbit plan (dest//24)", "naive plan (dest//24)",
       "probe savings"});
  for (double target : {0.5, 0.75, 0.9, 0.95, 0.99}) {
    double hobbit_budget = budget_for(hobbit_plan, target);
    double naive_budget = budget_for(naive_plan, target);
    std::string savings = "-";
    if (hobbit_budget > 0 && naive_budget > 0) {
      savings = analysis::Pct(1.0 - hobbit_budget / naive_budget);
    }
    table.AddRow({analysis::Pct(target),
                  hobbit_budget < 0 ? "-" : analysis::Fmt(hobbit_budget, 2),
                  naive_budget < 0 ? "-" : analysis::Fmt(naive_budget, 2),
                  savings});
  }
  table.Print(std::cout);
  std::cout << "\nThe Hobbit plan reaches each coverage level with fewer "
               "destinations per /24 — the §7.1 claim.\n";
  return 0;
}
