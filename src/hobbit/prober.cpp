#include "hobbit/prober.h"

#include <algorithm>
#include <array>
#include <iterator>

#include "hobbit/hierarchy.h"
#include "probing/last_hop.h"
#include "probing/traceroute.h"

namespace hobbit::core {
namespace {

/// Destination iterator implementing §3.3: group active octets by /26,
/// deal them round-robin, reshuffling the /26 order at each round.
class DestinationSchedule {
 public:
  DestinationSchedule(const probing::ZmapBlock& block, netsim::Rng rng)
      : base_(block.prefix.base()), rng_(rng) {
    for (std::uint8_t octet : block.active_octets) {
      quarters_[octet >> 6].push_back(octet);
    }
    // Probe order inside each /26 is randomized once.
    for (auto& q : quarters_) {
      for (std::size_t i = q.size(); i > 1; --i) {
        std::swap(q[i - 1], q[rng_.NextBelow(i)]);
      }
    }
    order_ = {0, 1, 2, 3};
    ShuffleOrder();
  }

  /// Next destination, or nullopt when all actives are consumed.
  std::optional<netsim::Ipv4Address> Next() {
    std::size_t remaining = 0;
    for (int q = 0; q < 4; ++q) remaining += quarters_[q].size() - cursor_[q];
    if (remaining == 0) return std::nullopt;
    while (true) {
      if (round_pos_ == order_.size()) {
        round_pos_ = 0;
        ShuffleOrder();
      }
      const std::uint8_t q = order_[round_pos_++];
      if (cursor_[q] < quarters_[q].size()) {
        std::uint8_t octet = quarters_[q][cursor_[q]++];
        return netsim::Ipv4Address(base_.value() | octet);
      }
    }
  }

 private:
  void ShuffleOrder() {
    for (std::size_t i = order_.size(); i > 1; --i) {
      std::swap(order_[i - 1], order_[rng_.NextBelow(i)]);
    }
  }

  netsim::Ipv4Address base_;
  netsim::Rng rng_;
  std::array<std::vector<std::uint8_t>, 4> quarters_;
  std::array<std::size_t, 4> cursor_ = {0, 0, 0, 0};
  std::array<std::uint8_t, 4> order_;
  std::size_t round_pos_ = 0;
};

/// Merges `add` (sorted unique) into `set` (sorted unique), keeping order.
template <typename Container>
void MergeLastHops(std::vector<netsim::Ipv4Address>& set,
                   const Container& add) {
  set.reserve(set.size() + add.size());
  for (netsim::Ipv4Address a : add) {
    auto pos = std::lower_bound(set.begin(), set.end(), a);
    if (pos == set.end() || *pos != a) set.insert(pos, a);
  }
}

}  // namespace

BlockResult BlockProber::ProbeBlock(const probing::ZmapBlock& block,
                                    netsim::Rng rng) {
  probing::LastHopProber prober(simulator_,
                                options_.route_memo ? &memo_ : nullptr,
                                options_.mda_lite ? probing::MdaMode::kLite
                                                  : probing::MdaMode::kFull);
  BlockResult result = ProbeBlockImpl(block, rng, prober);
  // Sole accounting point: every termination path of the impl lands here,
  // so probes_used is recorded exactly once per block.
  result.probes_used = static_cast<int>(prober.probes_sent());
  probes_sent_ += prober.probes_sent();
  return result;
}

BlockResult BlockProber::ProbeBlockImpl(const probing::ZmapBlock& block,
                                        netsim::Rng rng,
                                        probing::LastHopProber& prober) {
  BlockResult result;
  result.prefix = block.prefix;
  result.active_in_snapshot = static_cast<int>(block.active_octets.size());

  DestinationSchedule schedule(block, rng.Fork(0x5C4EDULL));

  // Grouping state.  The incremental path folds each observation into
  // per-last-hop [min, max] ranges as it arrives (O(log g)); the batch
  // path regroups everything after every probe (the original O(n^2)
  // reference, kept for differential testing).  Same verdicts either way;
  // see BasicIncrementalGrouping.
  IncrementalGrouping incremental;
  std::vector<AddressGroup> groups;
  const auto cardinality_now = [&]() {
    return static_cast<int>(options_.incremental_grouping
                                ? incremental.group_count()
                                : groups.size());
  };
  const auto non_hierarchical_now = [&]() {
    return options_.incremental_grouping ? !incremental.Hierarchical()
                                         : !GroupsAreHierarchical(groups);
  };

  int usable = 0;                 // destinations with an identified last hop
  int consecutive_no_new = 0;     // reprobe strategy counter
  bool stopped_by_rule = false;
  // Running intersection of per-address last-hop sets: non-empty means
  // every probed address shares a common last-hop router.
  LastHopSet common;

  while (auto destination = schedule.Next()) {
    probing::LastHopResult lh = prober.Probe(*destination);
    switch (lh.status) {
      case probing::LastHopStatus::kHostUnresponsive:
        ++result.hosts_unresponsive;
        continue;
      case probing::LastHopStatus::kLastHopUnresponsive:
        ++result.lasthop_unresponsive;
        continue;
      case probing::LastHopStatus::kOk:
        break;
    }
    const std::size_t before = result.last_hop_set.size();
    MergeLastHops(result.last_hop_set, lh.last_hops);
    if (usable == 0) {
      common = lh.last_hops;
    } else if (!common.empty()) {
      IntersectSortedInPlace(common, lh.last_hops);
    }
    result.observations.push_back({*destination, std::move(lh.last_hops)});
    ++usable;
    consecutive_no_new =
        result.last_hop_set.size() == before ? consecutive_no_new + 1 : 0;

    if (options_.incremental_grouping) {
      incremental.Add(result.observations.back());
    } else {
      groups = GroupByLastHop(result.observations);
    }
    const int cardinality = cardinality_now();

    if (options_.reprobe_strategy) {
      // §6.5: keep going until the last-hop set is exhausted with MDA
      // confidence; no early homogeneity stop.
      if (consecutive_no_new >= probing::MdaProbeCount(
                                    std::max(1, cardinality))) {
        stopped_by_rule = true;
        break;
      }
      continue;
    }

    // Standard strategy terminations.
    if (common.empty() && cardinality >= 2 && non_hierarchical_now()) {
      result.classification = Classification::kNonHierarchical;
      return result;
    }
    if (!common.empty() && usable >= options_.same_last_hop_stop) {
      // Every destination shares a last-hop router (§3.5's six-probe
      // rule; "common" rather than "only", since per-flow balancing at
      // the final hop gives addresses several last-hop interfaces).
      result.classification = Classification::kSameLastHop;
      return result;
    }
    // The confidence rule only concerns blocks with no common last hop: a
    // shared interface is handled by the six-destination rule above, and
    // its confidence cell would be trivially 1.0.
    if (table_ != nullptr && common.empty() && cardinality >= 2 &&
        usable >= options_.min_active) {
      auto confidence = table_->Confidence(cardinality, usable,
                                           options_.min_cell_trials);
      if (confidence && *confidence >= options_.confidence_level) {
        stopped_by_rule = true;
        break;
      }
    }
  }

  // Ran out of destinations, or the confidence rule fired.
  if (usable < options_.min_active) {
    result.classification = result.lasthop_unresponsive > 0 && usable == 0
                                ? Classification::kUnresponsiveLastHop
                                : Classification::kTooFewActive;
    return result;
  }
  const int cardinality = cardinality_now();
  if (!common.empty()) {
    // A shared last hop throughout, but we never reached the
    // six-destination rule: the block had too few usable addresses to
    // trust the verdict.
    result.classification = usable >= options_.same_last_hop_stop
                                ? Classification::kSameLastHop
                                : Classification::kTooFewActive;
    return result;
  }
  if (cardinality >= 2 && non_hierarchical_now()) {
    result.classification = Classification::kNonHierarchical;
    return result;
  }
  if (stopped_by_rule) {
    result.classification = Classification::kDifferentButHierarchical;
    return result;
  }
  // Exhausted all actives with a hierarchical grouping.  If a confidence
  // cell exists and says we probed enough, the hierarchy verdict stands;
  // otherwise the paper files the block under "not analyzable".
  if (table_ != nullptr) {
    auto confidence = table_->Confidence(cardinality, usable,
                                         options_.min_cell_trials);
    if (confidence && *confidence >= options_.confidence_level) {
      result.classification = Classification::kDifferentButHierarchical;
      return result;
    }
    if (confidence) {
      result.classification = Classification::kTooFewActive;
      return result;
    }
  }
  // No table (calibration) or no data for the cell: we probed everything
  // there was to probe, so classify on the full information we have.
  result.classification = Classification::kDifferentButHierarchical;
  return result;
}

FullyProbedBlock BlockProber::ProbeBlockFully(const probing::ZmapBlock& block,
                                              netsim::Rng rng) {
  FullyProbedBlock result;
  result.prefix = block.prefix;

  DestinationSchedule schedule(block, rng.Fork(0xF0BBULL));
  probing::LastHopProber prober(simulator_,
                                options_.route_memo ? &memo_ : nullptr,
                                options_.mda_lite ? probing::MdaMode::kLite
                                                  : probing::MdaMode::kFull);
  std::vector<netsim::Ipv4Address> union_set;
  while (auto destination = schedule.Next()) {
    probing::LastHopResult lh = prober.Probe(*destination);
    if (lh.status != probing::LastHopStatus::kOk) continue;
    MergeLastHops(union_set, lh.last_hops);
    result.observations.push_back({*destination, std::move(lh.last_hops)});
  }
  probes_sent_ += prober.probes_sent();
  result.cardinality = static_cast<int>(union_set.size());
  result.homogeneous = HobbitSaysHomogeneous(result.observations);
  return result;
}

}  // namespace hobbit::core
