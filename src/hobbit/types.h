// types.h — shared vocabulary of the Hobbit core library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/small_vector.h"
#include "netsim/ipv4.h"

namespace hobbit::core {

/// Per-destination last-hop interface set.  Nearly always a single
/// interface (a handful under per-flow diversity), so storage is inline
/// and the measurement hot loop performs no per-observation allocation.
using LastHopSet = common::SmallVector<netsim::Ipv4Address, 4>;

/// The five-way outcome of measuring one /24 (paper Table 1).
enum class Classification : std::uint8_t {
  kTooFewActive,            ///< not analyzable: not enough usable addresses
  kUnresponsiveLastHop,     ///< not analyzable: no last-hop ever answered
  kSameLastHop,             ///< homogeneous: one common last-hop router
  kNonHierarchical,         ///< homogeneous: grouping defeats hierarchy
  kDifferentButHierarchical,///< possibly heterogeneous (<= 5 % homogeneous)
};

std::string ToString(Classification c);

constexpr bool IsHomogeneous(Classification c) {
  return c == Classification::kSameLastHop ||
         c == Classification::kNonHierarchical;
}

constexpr bool IsAnalyzable(Classification c) {
  return c != Classification::kTooFewActive &&
         c != Classification::kUnresponsiveLastHop;
}

/// One probed destination and the last-hop interfaces found for it.
struct AddressObservation {
  netsim::Ipv4Address address;
  /// Sorted unique last-hop interfaces (usually one; more under per-flow
  /// diversity at the final hop).  Empty == last hop unresponsive.
  LastHopSet last_hops;
};

/// The measurement record of one /24 block.
struct BlockResult {
  netsim::Prefix prefix;
  Classification classification = Classification::kTooFewActive;
  /// Destinations whose last hop was identified.
  std::vector<AddressObservation> observations;
  /// Union of all observed last-hop interfaces, sorted unique — the
  /// block's signature for aggregation (§5).
  std::vector<netsim::Ipv4Address> last_hop_set;
  int active_in_snapshot = 0;
  int hosts_unresponsive = 0;
  int lasthop_unresponsive = 0;
  int probes_used = 0;
};

/// A /24 probed exhaustively (calibration stage / reprobing): same data as
/// BlockResult plus the full-information homogeneity verdict.
struct FullyProbedBlock {
  netsim::Prefix prefix;
  std::vector<AddressObservation> observations;
  /// Hobbit's verdict given *all* observations.
  bool homogeneous = false;
  /// Distinct last-hop interfaces across all observations.
  int cardinality = 0;
};

}  // namespace hobbit::core
