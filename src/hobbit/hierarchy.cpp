#include "hobbit/hierarchy.h"

#include <algorithm>
#include <iterator>
#include <map>

namespace hobbit::core {

std::vector<AddressGroup> GroupByLastHop(
    std::span<const AddressObservation> observations) {
  return GroupByLastHopGeneric<netsim::Ipv4Address>(observations);
}

bool GroupsAreHierarchical(std::span<const AddressGroup> groups) {
  return GroupsAreHierarchicalGeneric<netsim::Ipv4Address>(groups);
}

bool HaveCommonLastHop(std::span<const AddressObservation> observations) {
  return HaveCommonLastHopGeneric<netsim::Ipv4Address>(observations);
}

bool HobbitSaysHomogeneous(
    std::span<const AddressObservation> observations) {
  return HobbitVerdictGeneric<netsim::Ipv4Address>(observations);
}

bool IsAlignedDisjoint(std::span<const AddressGroup> groups) {
  if (groups.size() < 2) return false;
  // Every group needs at least two members: a singleton's spanning
  // "subnet" is a /32, which is trivially aligned and says nothing about
  // route entries — thinly sampled per-destination balancing would
  // otherwise masquerade as customer sub-blocks.
  for (const AddressGroup& group : groups) {
    if (group.members.size() < 2) return false;
  }
  // Pairwise disjoint ranges.
  std::vector<const AddressGroup*> sorted;
  sorted.reserve(groups.size());
  for (const AddressGroup& g : groups) sorted.push_back(&g);
  std::sort(sorted.begin(), sorted.end(),
            [](const AddressGroup* a, const AddressGroup* b) {
              return a->min < b->min;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i]->min <= sorted[i - 1]->max) return false;
  }
  // Aligned: each spanning subnet contains only its own group's members.
  for (const AddressGroup* g : sorted) {
    netsim::Prefix span_prefix = netsim::SpanningPrefix(g->min, g->max);
    for (const AddressGroup* other : sorted) {
      if (other == g) continue;
      // Testing the other group's extremes suffices: the spanning prefix
      // is an interval, so if it contains any member of `other` it must
      // contain other->min or other->max (otherwise `other`'s range would
      // straddle this group's range, contradicting disjointness).
      if (span_prefix.Contains(other->min) ||
          span_prefix.Contains(other->max)) {
        return false;
      }
    }
  }
  return true;
}

std::vector<int> SubBlockComposition(std::span<const AddressGroup> groups) {
  std::vector<int> lengths;
  lengths.reserve(groups.size());
  for (const AddressGroup& g : groups) {
    lengths.push_back(netsim::SpanningPrefix(g.min, g.max).length());
  }
  std::sort(lengths.begin(), lengths.end());
  return lengths;
}

}  // namespace hobbit::core
