#include "hobbit/resultio.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

namespace hobbit::core {
namespace {

constexpr std::string_view kHeader = "HobbitResults v1";

std::optional<int> ParseInt(std::string_view text) {
  int value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

bool Fail(std::string* error, int line, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + message;
  }
  return false;
}

}  // namespace

std::string_view ClassificationToken(Classification c) {
  switch (c) {
    case Classification::kTooFewActive: return "too-few-active";
    case Classification::kUnresponsiveLastHop: return "unresponsive";
    case Classification::kSameLastHop: return "same-last-hop";
    case Classification::kNonHierarchical: return "non-hierarchical";
    case Classification::kDifferentButHierarchical: return "hierarchical";
  }
  return "?";
}

std::optional<Classification> ParseClassificationToken(
    std::string_view token) {
  for (int c = 0; c < 5; ++c) {
    auto classification = static_cast<Classification>(c);
    if (ClassificationToken(classification) == token) {
      return classification;
    }
  }
  return std::nullopt;
}

void WriteResults(std::ostream& os, std::span<const BlockResult> results) {
  os << kHeader << "\n";
  os << "# prefix\tclass\tactive\tusable\tprobes\tlast-hops\n";
  for (const BlockResult& r : results) {
    os << r.prefix.ToString() << '\t' << ClassificationToken(r.classification)
       << '\t' << r.active_in_snapshot << '\t' << r.observations.size()
       << '\t' << r.probes_used << '\t';
    for (std::size_t i = 0; i < r.last_hop_set.size(); ++i) {
      if (i > 0) os << ',';
      os << r.last_hop_set[i].ToString();
    }
    if (r.last_hop_set.empty()) os << '-';
    os << '\n';
  }
}

std::optional<std::vector<ResultRecord>> ReadResults(std::istream& is,
                                                     std::string* error) {
  std::vector<ResultRecord> records;
  std::string line;
  int line_number = 0;
  bool saw_header = false;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != kHeader) {
        Fail(error, line_number, "missing 'HobbitResults v1' header");
        return std::nullopt;
      }
      saw_header = true;
      continue;
    }
    // Split on tabs.
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (start <= line.size()) {
      std::size_t tab = line.find('\t', start);
      if (tab == std::string::npos) {
        fields.push_back(line.substr(start));
        break;
      }
      fields.push_back(line.substr(start, tab - start));
      start = tab + 1;
    }
    if (fields.size() != 6) {
      Fail(error, line_number, "expected 6 tab-separated fields");
      return std::nullopt;
    }
    ResultRecord record;
    auto prefix = netsim::Prefix::Parse(fields[0]);
    if (!prefix || prefix->length() != 24) {
      Fail(error, line_number, "bad /24 prefix: " + fields[0]);
      return std::nullopt;
    }
    record.prefix = *prefix;
    auto classification = ParseClassificationToken(fields[1]);
    if (!classification) {
      Fail(error, line_number, "bad classification: " + fields[1]);
      return std::nullopt;
    }
    record.classification = *classification;
    auto active = ParseInt(fields[2]);
    auto usable = ParseInt(fields[3]);
    auto probes = ParseInt(fields[4]);
    if (!active || !usable || !probes) {
      Fail(error, line_number, "bad numeric field");
      return std::nullopt;
    }
    record.active_in_snapshot = *active;
    record.usable_observations = *usable;
    record.probes_used = *probes;
    if (fields[5] != "-") {
      std::istringstream hops(fields[5]);
      std::string hop;
      while (std::getline(hops, hop, ',')) {
        auto address = netsim::Ipv4Address::Parse(hop);
        if (!address) {
          Fail(error, line_number, "bad last-hop address: " + hop);
          return std::nullopt;
        }
        record.last_hop_set.push_back(*address);
      }
    }
    records.push_back(std::move(record));
  }
  if (!saw_header) {
    Fail(error, line_number, "empty input");
    return std::nullopt;
  }
  return records;
}

}  // namespace hobbit::core
