// hierarchy_generic.h — the Hobbit hierarchy machinery, generic over the
// address type.
//
// Hobbit's core argument never uses anything IPv4-specific: it needs a
// totally ordered address space in which route entries are contiguous
// ranges.  The generic implementation below serves both the IPv4 study
// (hierarchy.h) and the IPv6 pilot (ipv6_pilot.h, the paper's stated
// future work).
#pragma once

#include <algorithm>
#include <iterator>
#include <map>
#include <span>
#include <vector>

namespace hobbit::core {

/// One last-hop group over an arbitrary ordered address type.
template <typename Address>
struct BasicAddressGroup {
  Address router;
  std::vector<Address> members;  // sorted
  Address min;
  Address max;
};

/// Groups observations (anything with `.address` and a sorted
/// `.last_hops` container of Address) by last-hop router.
template <typename Address, typename Observation>
std::vector<BasicAddressGroup<Address>> GroupByLastHopGeneric(
    std::span<const Observation> observations) {
  std::map<Address, std::vector<Address>> by_router;
  for (const Observation& obs : observations) {
    for (const Address& router : obs.last_hops) {
      by_router[router].push_back(obs.address);
    }
  }
  std::vector<BasicAddressGroup<Address>> groups;
  groups.reserve(by_router.size());
  for (auto& [router, members] : by_router) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    BasicAddressGroup<Address> group;
    group.router = router;
    group.min = members.front();
    group.max = members.back();
    group.members = std::move(members);
    groups.push_back(std::move(group));
  }
  return groups;
}

/// Laminar-family check: every pair of group ranges disjoint or nested.
template <typename Address>
bool GroupsAreHierarchicalGeneric(
    std::span<const BasicAddressGroup<Address>> groups) {
  if (groups.size() < 2) return true;
  struct Range {
    Address min, max;
  };
  std::vector<Range> ranges;
  ranges.reserve(groups.size());
  for (const auto& group : groups) ranges.push_back({group.min, group.max});
  std::sort(ranges.begin(), ranges.end(),
            [](const Range& a, const Range& b) {
              if (a.min < b.min) return true;
              if (b.min < a.min) return false;
              return b.max < a.max;  // wider first on equal min
            });
  std::vector<Range> stack;
  for (const Range& cur : ranges) {
    while (!stack.empty() && stack.back().max < cur.min) stack.pop_back();
    if (!stack.empty() && stack.back().max < cur.max) return false;
    stack.push_back(cur);
  }
  return true;
}

/// True when some last-hop router appears in every observation.
template <typename Address, typename Observation>
bool HaveCommonLastHopGeneric(std::span<const Observation> observations) {
  if (observations.empty()) return false;
  std::vector<Address> common(observations.front().last_hops.begin(),
                              observations.front().last_hops.end());
  for (const Observation& obs : observations) {
    if (common.empty()) return false;
    std::vector<Address> next;
    std::set_intersection(common.begin(), common.end(),
                          obs.last_hops.begin(), obs.last_hops.end(),
                          std::back_inserter(next));
    common = std::move(next);
  }
  return !common.empty();
}

/// Hobbit's homogeneity verdict: one group, a common last hop, or a
/// non-hierarchical grouping.
template <typename Address, typename Observation>
bool HobbitVerdictGeneric(std::span<const Observation> observations) {
  auto groups = GroupByLastHopGeneric<Address>(observations);
  if (groups.empty()) return false;
  if (groups.size() == 1) return true;
  if (HaveCommonLastHopGeneric<Address>(observations)) return true;
  return !GroupsAreHierarchicalGeneric<Address>(
      std::span<const BasicAddressGroup<Address>>(groups));
}

}  // namespace hobbit::core
