// hierarchy_generic.h — the Hobbit hierarchy machinery, generic over the
// address type.
//
// Hobbit's core argument never uses anything IPv4-specific: it needs a
// totally ordered address space in which route entries are contiguous
// ranges.  The generic implementation below serves both the IPv4 study
// (hierarchy.h) and the IPv6 pilot (ipv6_pilot.h, the paper's stated
// future work).
#pragma once

#include <algorithm>
#include <iterator>
#include <map>
#include <span>
#include <vector>

namespace hobbit::core {

/// One last-hop group over an arbitrary ordered address type.
template <typename Address>
struct BasicAddressGroup {
  Address router;
  std::vector<Address> members;  // sorted
  Address min;
  Address max;
};

/// Groups observations (anything with `.address` and a sorted
/// `.last_hops` container of Address) by last-hop router.
template <typename Address, typename Observation>
std::vector<BasicAddressGroup<Address>> GroupByLastHopGeneric(
    std::span<const Observation> observations) {
  std::map<Address, std::vector<Address>> by_router;
  for (const Observation& obs : observations) {
    for (const Address& router : obs.last_hops) {
      by_router[router].push_back(obs.address);
    }
  }
  std::vector<BasicAddressGroup<Address>> groups;
  groups.reserve(by_router.size());
  for (auto& [router, members] : by_router) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    BasicAddressGroup<Address> group;
    group.router = router;
    group.min = members.front();
    group.max = members.back();
    group.members = std::move(members);
    groups.push_back(std::move(group));
  }
  return groups;
}

/// A contiguous address range (both ends inclusive).
template <typename Address>
struct MinMaxRange {
  Address min, max;
};

/// Laminar-family check over bare ranges: true when every pair is disjoint
/// or nested.  Sorts `ranges` in place (callers pass scratch storage).
template <typename Address>
bool RangesAreLaminar(std::vector<MinMaxRange<Address>>& ranges) {
  if (ranges.size() < 2) return true;
  using Range = MinMaxRange<Address>;
  std::sort(ranges.begin(), ranges.end(),
            [](const Range& a, const Range& b) {
              if (a.min < b.min) return true;
              if (b.min < a.min) return false;
              return b.max < a.max;  // wider first on equal min
            });
  std::vector<Range> stack;
  for (const Range& cur : ranges) {
    while (!stack.empty() && stack.back().max < cur.min) stack.pop_back();
    if (!stack.empty() && stack.back().max < cur.max) return false;
    stack.push_back(cur);
  }
  return true;
}

/// Laminar-family check: every pair of group ranges disjoint or nested.
template <typename Address>
bool GroupsAreHierarchicalGeneric(
    std::span<const BasicAddressGroup<Address>> groups) {
  if (groups.size() < 2) return true;
  std::vector<MinMaxRange<Address>> ranges;
  ranges.reserve(groups.size());
  for (const auto& group : groups) ranges.push_back({group.min, group.max});
  return RangesAreLaminar(ranges);
}

/// Keeps `common` (sorted unique) to its intersection with `other` (also
/// sorted unique), writing the survivors in place — no allocation.
template <typename Container, typename OtherContainer>
void IntersectSortedInPlace(Container& common, const OtherContainer& other) {
  auto out = common.begin();
  auto a = common.begin();
  const auto a_end = common.end();
  auto b = std::begin(other);
  const auto b_end = std::end(other);
  while (a != a_end && b != b_end) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      *out++ = *a;
      ++a;
      ++b;
    }
  }
  common.erase(out, a_end);
}

/// Incremental equivalent of GroupByLastHopGeneric +
/// GroupsAreHierarchicalGeneric for the adaptive probing loop (§3.3).
///
/// The batch pipeline regroups ALL observations after every probe —
/// O(n log n) each time, O(n^2 log n) per block.  But the hierarchy
/// verdict only reads each group's [min, max] range, and a new
/// observation can only *extend* ranges it touches, so per observation we
/// maintain one map entry per last-hop interface: O(log g) with g =
/// distinct last hops (single digits in practice).
///
/// The laminar verdict itself is NOT monotone — two partially overlapping
/// ranges can become nested again once one of them grows — so it cannot
/// be latched false; instead a dirty flag triggers a lazy O(g log g)
/// recompute, and ranges change only O(log n) times each in expectation
/// under random probe order (running-extremum updates), keeping the
/// amortized cost per observation near-constant.
///
/// Equivalence with the batch path holds by construction: duplicate
/// members never move a min or max, multi-interface observations join
/// every touched group (same as the batch grouping), and group count
/// equals the number of distinct last-hop interfaces either way.  The
/// differential test (tests/test_incremental_grouping.cpp) checks this on
/// randomized sequences.
template <typename Address>
class BasicIncrementalGrouping {
 public:
  /// Folds one observation (anything with `.address` and an iterable
  /// `.last_hops`) into the grouping state.
  template <typename Observation>
  void Add(const Observation& obs) {
    for (const Address& router : obs.last_hops) {
      auto [it, inserted] =
          ranges_.try_emplace(router, MinMaxRange<Address>{obs.address,
                                                           obs.address});
      if (inserted) {
        dirty_ = true;
        continue;
      }
      MinMaxRange<Address>& range = it->second;
      if (obs.address < range.min) {
        range.min = obs.address;
        dirty_ = true;
      }
      if (range.max < obs.address) {
        range.max = obs.address;
        dirty_ = true;
      }
    }
  }

  /// Number of distinct last-hop interfaces seen so far.
  std::size_t group_count() const { return ranges_.size(); }

  /// Matches GroupsAreHierarchicalGeneric(GroupByLastHopGeneric(all
  /// observations added so far)).  Lazily recomputed; cached between
  /// range changes.
  bool Hierarchical() const {
    if (dirty_) {
      scratch_.clear();
      scratch_.reserve(ranges_.size());
      for (const auto& [router, range] : ranges_) scratch_.push_back(range);
      hierarchical_ = RangesAreLaminar(scratch_);
      dirty_ = false;
    }
    return hierarchical_;
  }

  void Clear() {
    ranges_.clear();
    dirty_ = false;
    hierarchical_ = true;
  }

 private:
  std::map<Address, MinMaxRange<Address>> ranges_;
  mutable std::vector<MinMaxRange<Address>> scratch_;
  mutable bool dirty_ = false;
  mutable bool hierarchical_ = true;  // vacuously, for < 2 groups
};

/// True when some last-hop router appears in every observation.
template <typename Address, typename Observation>
bool HaveCommonLastHopGeneric(std::span<const Observation> observations) {
  if (observations.empty()) return false;
  std::vector<Address> common(observations.front().last_hops.begin(),
                              observations.front().last_hops.end());
  for (const Observation& obs : observations) {
    if (common.empty()) return false;
    std::vector<Address> next;
    std::set_intersection(common.begin(), common.end(),
                          obs.last_hops.begin(), obs.last_hops.end(),
                          std::back_inserter(next));
    common = std::move(next);
  }
  return !common.empty();
}

/// Hobbit's homogeneity verdict: one group, a common last hop, or a
/// non-hierarchical grouping.
template <typename Address, typename Observation>
bool HobbitVerdictGeneric(std::span<const Observation> observations) {
  auto groups = GroupByLastHopGeneric<Address>(observations);
  if (groups.empty()) return false;
  if (groups.size() == 1) return true;
  if (HaveCommonLastHopGeneric<Address>(observations)) return true;
  return !GroupsAreHierarchicalGeneric<Address>(
      std::span<const BasicAddressGroup<Address>>(groups));
}

}  // namespace hobbit::core
