// hierarchy.h — the heart of Hobbit (paper §2.3).
//
// Group probed addresses by last-hop router and represent each group by
// the numeric range [min, max] of its members.  Distinct route entries are
// prefix-based, so ranges caused by *routing* form a laminar family: any
// two are disjoint or nested.  Load-balancer hashes interleave addresses,
// so a *non-hierarchical* (partially overlapping) pair of ranges is
// positive evidence that the last-hop differences are load balancing —
// i.e. that the block is homogeneous.
#pragma once

#include <span>
#include <vector>

#include "hobbit/hierarchy_generic.h"
#include "hobbit/types.h"
#include "netsim/ipv4.h"

namespace hobbit::core {

/// One last-hop group: the addresses that share a last-hop interface.
/// (An instantiation of the generic machinery; the IPv6 pilot uses the
/// same template over 128-bit addresses.)
using AddressGroup = BasicAddressGroup<netsim::Ipv4Address>;

/// Incremental grouping + hierarchy state for the adaptive probing loop
/// (see BasicIncrementalGrouping for the equivalence argument).
using IncrementalGrouping = BasicIncrementalGrouping<netsim::Ipv4Address>;

/// Builds groups from observations.  An address with several last-hop
/// interfaces joins every corresponding group.  Observations with no
/// identified last hop are skipped.  Groups come back sorted by router.
std::vector<AddressGroup> GroupByLastHop(
    std::span<const AddressObservation> observations);

/// True when every pair of group ranges is hierarchical (disjoint or one
/// containing the other).  Vacuously true for fewer than two groups.
bool GroupsAreHierarchical(std::span<const AddressGroup> groups);

/// True when some last-hop interface appears in EVERY observation — the
/// paper's "all the addresses have a common last-hop router" condition.
/// (Per-flow load balancing at the final hop gives each address several
/// last-hop interfaces; sharing one is enough.)
bool HaveCommonLastHop(std::span<const AddressObservation> observations);

/// Hobbit's homogeneity verdict on a set of observations: a common
/// last-hop router shared by all addresses, or a non-hierarchical
/// grouping.
bool HobbitSaysHomogeneous(std::span<const AddressObservation> observations);

/// The §4.2 "very likely heterogeneous" test: at least two groups, each
/// with at least two members (singleton /32 spans carry no route-entry
/// evidence), all pairwise *disjoint*, and *aligned* — each group's
/// spanning subnet (the longest-common-prefix subnet of its members)
/// contains no member of any other group.
bool IsAlignedDisjoint(std::span<const AddressGroup> groups);

/// Sub-block composition of an aligned-disjoint /24 (Table 2): the
/// spanning-prefix lengths of the groups, sorted ascending (so {/25,/26,
/// /26} prints in the paper's order).
std::vector<int> SubBlockComposition(std::span<const AddressGroup> groups);

}  // namespace hobbit::core
