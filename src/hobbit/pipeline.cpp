#include "hobbit/pipeline.h"

#include <algorithm>
#include <chrono>

#include "common/parallel.h"

namespace hobbit::core {

std::string ToString(Classification c) {
  switch (c) {
    case Classification::kTooFewActive: return "Too few active";
    case Classification::kUnresponsiveLastHop: return "Unresponsive last-hop";
    case Classification::kSameLastHop: return "Same last-hop router";
    case Classification::kNonHierarchical: return "Non-hierarchical";
    case Classification::kDifferentButHierarchical:
      return "Different but hierarchical";
  }
  return "?";
}

std::array<std::size_t, 5> PipelineResult::classification_counts() const {
  std::array<std::size_t, 5> counts{};
  for (const BlockResult& r : results) {
    counts[static_cast<std::size_t>(r.classification)]++;
  }
  return counts;
}

std::vector<const BlockResult*> PipelineResult::HomogeneousBlocks() const {
  std::vector<const BlockResult*> out;
  for (const BlockResult& r : results) {
    if (IsHomogeneous(r.classification)) out.push_back(&r);
  }
  return out;
}

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

CampaignSetup PrepareCampaign(const netsim::Internet& internet,
                              const PipelineConfig& config,
                              const netsim::Simulator* simulator,
                              common::ThreadPool* pool) {
  if (simulator == nullptr) simulator = internet.simulator.get();
  CampaignSetup setup;
  // The root RNG is never advanced, only forked: every stage derives its
  // stream from (seed, constant), so stages can be re-run or resumed
  // independently without replaying the streams of earlier ones.
  const netsim::Rng rng(config.seed);

  // Stage 0: snapshot + universe selection (liveness read through the
  // chosen simulator's epoch).
  const auto snapshot_start = std::chrono::steady_clock::now();
  probing::ZmapSnapshot snapshot =
      probing::RunZmapScan(internet, internet.study_24s, simulator);
  setup.stats.snapshot_active_addresses = snapshot.ActiveCount();
  setup.stats.candidate_24s = snapshot.blocks.size();
  setup.study_blocks = probing::SelectStudyBlocks(snapshot);
  setup.stats.study_24s = setup.study_blocks.size();
  setup.stats.snapshot_seconds = SecondsSince(snapshot_start);

  // Stage 1: calibration — exhaustively probe a uniform sample.
  const auto calibration_start = std::chrono::steady_clock::now();
  {
    const std::uint64_t before = simulator->probes_sent();
    const std::size_t universe = setup.study_blocks.size();
    std::size_t want = std::min<std::size_t>(
        universe, static_cast<std::size_t>(std::max(0,
                                                    config.calibration_blocks)));
    // Uniform sample without replacement via partial Fisher-Yates over
    // indices.
    std::vector<std::uint32_t> indices(universe);
    for (std::size_t i = 0; i < universe; ++i) {
      indices[i] = static_cast<std::uint32_t>(i);
    }
    netsim::Rng sample_rng = rng.Fork(0xCA11BULL);
    for (std::size_t i = 0; i < want; ++i) {
      std::size_t j = i + sample_rng.NextBelow(universe - i);
      std::swap(indices[i], indices[j]);
    }
    setup.calibration.resize(want);
    // One prober per shard, reused across that shard's contiguous run of
    // blocks: the prober carries warm per-campaign state (its route
    // memo), and each block's result depends only on its own RNG fork,
    // so the chunk->block assignment cannot change any output (see
    // tests/test_concurrency.cpp).  Contiguous chunks keep each shard
    // writing adjacent result slots instead of striding the array.
    pool->ForEachChunk(want, 1, [&](common::ChunkRange chunk) {
      BlockProber shard_prober(simulator, nullptr, config.prober);
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        setup.calibration[i] = shard_prober.ProbeBlockFully(
            setup.study_blocks[indices[i]], rng.Fork(indices[i]));
      }
    });
    setup.stats.probes_sent += simulator->probes_sent() - before;
  }
  setup.table = ConfidenceTable::Build(setup.calibration,
                                       rng.Fork(0x7AB1EULL),
                                       config.samples_per_block);
  setup.stats.calibration_seconds = SecondsSince(calibration_start);
  return setup;
}

PipelineResult RunPipeline(const netsim::Internet& internet,
                           const PipelineConfig& config,
                           const netsim::Simulator* simulator) {
  if (simulator == nullptr) simulator = internet.simulator.get();

  // One pool for the whole campaign, reused across the calibration and
  // measurement stages (and shareable with the clustering stages via
  // config.pool).  The pool clamps degenerate thread counts itself.
  common::PoolRef pool(config.pool, config.threads);

  PipelineResult result;
  {
    CampaignSetup setup =
        PrepareCampaign(internet, config, simulator, pool.get());
    result.study_blocks = std::move(setup.study_blocks);
    result.calibration = std::move(setup.calibration);
    result.table = std::move(setup.table);
    result.stats = setup.stats;
  }

  // Stage 2: the main measurement.
  const auto measurement_start = std::chrono::steady_clock::now();
  {
    const std::uint64_t before = simulator->probes_sent();
    result.results.resize(result.study_blocks.size());
    const std::size_t block_count = result.study_blocks.size();
    pool->ForEachChunk(block_count, 1, [&](common::ChunkRange chunk) {
      BlockProber shard_prober(simulator, &result.table, config.prober);
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        result.results[i] = shard_prober.ProbeBlock(
            result.study_blocks[i], MeasurementRng(config.seed, i));
      }
    });
    result.stats.probes_sent += simulator->probes_sent() - before;
  }
  result.stats.measurement_seconds = SecondsSince(measurement_start);
  return result;
}

BlockResult ReprobeBlock(const netsim::Internet& internet,
                         const probing::ZmapBlock& block,
                         std::uint64_t seed) {
  ProberOptions options;
  options.reprobe_strategy = true;
  BlockProber prober(internet.simulator.get(), nullptr, options);
  return prober.ProbeBlock(block, netsim::Rng(seed));
}

}  // namespace hobbit::core
