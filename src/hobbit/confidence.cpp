#include "hobbit/confidence.h"

#include <algorithm>
#include <iterator>

#include "hobbit/hierarchy.h"

namespace hobbit::core {

void ConfidenceTable::Record(int cardinality, int probed, bool success) {
  Cell& cell = At(cardinality, probed);
  ++cell.trials;
  if (success) ++cell.successes;
}

std::optional<double> ConfidenceTable::Confidence(
    int cardinality, int probed, std::uint32_t min_trials) const {
  const Cell& cell = At(cardinality, probed);
  if (cell.trials < min_trials || cell.trials == 0) return std::nullopt;
  return static_cast<double>(cell.successes) / cell.trials;
}

std::uint64_t ConfidenceTable::Trials(int cardinality, int probed) const {
  return At(cardinality, probed).trials;
}

std::optional<int> ConfidenceTable::RequiredProbes(
    int cardinality, double level, std::uint32_t min_trials) const {
  for (int n = 1; n <= kMaxProbed; ++n) {
    auto c = Confidence(cardinality, n, min_trials);
    if (c && *c >= level) return n;
  }
  return std::nullopt;
}

ConfidenceTable ConfidenceTable::Build(
    std::span<const FullyProbedBlock> dataset, netsim::Rng rng,
    int samples_per_block) {
  // Hobbit declares homogeneity the moment a *prefix* of the probing
  // sequence groups non-hierarchically; non-laminarity is not monotone
  // (growing ranges can nest again), so the success probability of the
  // real prober is a first-passage probability over probing orders — not
  // the probability that a random subset looks non-hierarchical.  Each
  // sample therefore walks one random permutation of the block's
  // observations and records, for every prefix length k, whether the walk
  // has passed by k, keyed by the cardinality *observed at k* (all the
  // prober can see when it consults the table).
  ConfidenceTable table;
  std::vector<std::uint32_t> indices;
  // Same incremental machinery the prober runs, so the table is trained
  // on exactly the statistic the prober consults.
  IncrementalGrouping grouping;
  for (const FullyProbedBlock& block : dataset) {
    if (!block.homogeneous) continue;
    const auto total = static_cast<std::uint32_t>(block.observations.size());
    if (total < 4) continue;
    indices.resize(total);
    for (std::uint32_t i = 0; i < total; ++i) indices[i] = i;
    const auto walk_limit =
        std::min<std::uint32_t>(total, ConfidenceTable::kMaxProbed);
    for (int s = 0; s < samples_per_block; ++s) {
      for (std::uint32_t i = 0; i + 1 < total; ++i) {
        auto j = static_cast<std::uint32_t>(i + rng.NextBelow(total - i));
        std::swap(indices[i], indices[j]);
      }
      grouping.Clear();
      bool passed = false;
      LastHopSet common;
      for (std::uint32_t k = 0; k < walk_limit; ++k) {
        const AddressObservation& obs = block.observations[indices[k]];
        if (k == 0) {
          common = obs.last_hops;
        } else if (!common.empty()) {
          IntersectSortedInPlace(common, obs.last_hops);
        }
        grouping.Add(obs);
        if (!passed && grouping.group_count() >= 2) {
          passed = !grouping.Hierarchical();
        }
        const int probed = static_cast<int>(k) + 1;
        // Record only the states in which the prober actually consults
        // the table: no common last hop across the addresses so far (a
        // shared interface triggers the six-destination rule instead).
        if (probed >= 4 && common.empty()) {
          table.Record(static_cast<int>(grouping.group_count()), probed,
                       passed);
        }
      }
    }
  }
  return table;
}

}  // namespace hobbit::core
