// resultio.h — serialising per-/24 measurement results.
//
// The companion to cluster/blockio.h: where block lists carry the final
// aggregation, this format carries the raw classification study (Table 1's
// underlying data) so it can be archived, diffed across epochs, or
// post-processed without re-probing.  Tab-separated, one /24 per line:
//
//   HobbitResults v1
//   # prefix <tab> class <tab> active <tab> usable <tab> probes <tab> hops
//   20.0.1.0/24  non-hierarchical  57  9  83  10.0.0.7,10.0.0.8
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hobbit/types.h"

namespace hobbit::core {

/// Stable short token for a classification (used in the file format).
std::string_view ClassificationToken(Classification c);

/// Inverse of ClassificationToken.
std::optional<Classification> ParseClassificationToken(
    std::string_view token);

/// A deserialised record (observations are not archived — only the
/// aggregate facts downstream consumers need).
struct ResultRecord {
  netsim::Prefix prefix;
  Classification classification = Classification::kTooFewActive;
  int active_in_snapshot = 0;
  int usable_observations = 0;
  int probes_used = 0;
  std::vector<netsim::Ipv4Address> last_hop_set;
};

/// Writes results in the v1 format.
void WriteResults(std::ostream& os, std::span<const BlockResult> results);

/// Parses a v1 results file; nullopt on any syntax error (line-anchored
/// message in *error when given).
std::optional<std::vector<ResultRecord>> ReadResults(
    std::istream& is, std::string* error = nullptr);

}  // namespace hobbit::core
