// pipeline.h — the end-to-end measurement campaign.
//
// Mirrors the paper's workflow:
//   1. ZMap snapshot over the candidate space; keep /24s whose every /26
//      has an active address (§3.3).
//   2. Calibration: exhaustively probe a sample of blocks and build the
//      <cardinality, probes> confidence table (§3.2, Fig 4).
//   3. Main measurement: adaptively probe every study /24 (§3.5) and
//      classify it (Table 1).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hobbit/confidence.h"
#include "hobbit/prober.h"
#include "hobbit/types.h"
#include "netsim/internet.h"
#include "probing/zmap.h"

namespace hobbit::common {
class ThreadPool;
}

namespace hobbit::core {

struct PipelineConfig {
  std::uint64_t seed = 1;
  /// Worker threads for the probing stages, run on a
  /// common::ThreadPool.  Results are bit-identical for any thread count
  /// (each block's probing is self-contained and deterministically
  /// seeded); values < 1 clamp to 1.  Ignored when `pool` is set.
  int threads = 1;
  /// Optional externally owned pool shared with the clustering stages;
  /// when null, RunPipeline creates its own from `threads`.
  common::ThreadPool* pool = nullptr;
  /// Blocks probed exhaustively in the calibration stage.
  int calibration_blocks = 1500;
  /// Random destination subsets evaluated per calibration block.
  int samples_per_block = 64;
  ProberOptions prober;
};

struct PipelineStats {
  std::uint64_t snapshot_active_addresses = 0;
  std::size_t candidate_24s = 0;   ///< /24s with any snapshot responder
  std::size_t study_24s = 0;       ///< /24s passing the /26 criterion
  std::uint64_t probes_sent = 0;   ///< calibration + measurement packets
  // Wall-clock breakdown of the campaign, for the perf benchmarks
  // (bench/bench_pipeline_scaling.cpp).
  double snapshot_seconds = 0.0;     ///< stage 0: zmap scan + selection
  double calibration_seconds = 0.0;  ///< stage 1 incl. the table build
  double measurement_seconds = 0.0;  ///< stage 2: the main campaign
};

struct PipelineResult {
  /// The study universe (sorted by prefix) and its snapshot records.
  std::vector<probing::ZmapBlock> study_blocks;
  /// Main-measurement outcome, parallel to study_blocks.
  std::vector<BlockResult> results;
  /// Calibration dataset (exhaustively probed blocks).
  std::vector<FullyProbedBlock> calibration;
  ConfidenceTable table;
  PipelineStats stats;

  /// Counts per Classification value, Table 1 style.
  std::array<std::size_t, 5> classification_counts() const;

  /// The homogeneous blocks (same-last-hop or non-hierarchical), each with
  /// its observed last-hop set — the input to aggregation (§5).
  std::vector<const BlockResult*> HomogeneousBlocks() const;
};

/// Stages 0 + 1 of a campaign as a resumable unit: the zmap snapshot and
/// universe selection, then the calibration sample and confidence table.
/// Both the batch RunPipeline and the streaming campaign driver
/// (src/stream) start from this, so their measurement inputs — study
/// list, table, per-block RNG forks — are identical by construction.
struct CampaignSetup {
  /// The study universe (sorted by prefix) and its snapshot records.
  std::vector<probing::ZmapBlock> study_blocks;
  /// Calibration dataset (exhaustively probed blocks).
  std::vector<FullyProbedBlock> calibration;
  ConfidenceTable table;
  /// snapshot_* / calibration fields filled; measurement fields are the
  /// caller's to add.
  PipelineStats stats;
};

/// Runs stages 0 + 1.  `simulator` selects the probed view (nullptr =
/// the internet's primary); `pool` must be non-null (callers hold a
/// PoolRef).  Deterministic in (config.seed, world); thread-count
/// invariant like every stage.
CampaignSetup PrepareCampaign(const netsim::Internet& internet,
                              const PipelineConfig& config,
                              const netsim::Simulator* simulator,
                              common::ThreadPool* pool);

/// The per-block RNG of the main measurement: a pure function of the
/// campaign seed and the block's index in the sorted study list.  Batch
/// and streaming measurement both fork from here, which is what makes
/// their classifications bit-identical regardless of stage shape,
/// thread count or arrival order.
inline netsim::Rng MeasurementRng(std::uint64_t seed, std::size_t index) {
  return netsim::Rng(seed).Fork(0xB10CULL + index);
}

/// Runs the campaign.  `simulator` overrides the internet's primary
/// simulator (another vantage or a later epoch); nullptr uses the
/// default.
PipelineResult RunPipeline(const netsim::Internet& internet,
                           const PipelineConfig& config,
                           const netsim::Simulator* simulator = nullptr);

/// §6.5 reprobing: re-measures one /24 with the modified strategy (no
/// early stop, MDA-confident exhaustion of its last-hop set) and returns
/// the full observation set.
BlockResult ReprobeBlock(const netsim::Internet& internet,
                         const probing::ZmapBlock& block, std::uint64_t seed);

}  // namespace hobbit::core
