// confidence.h — the empirical stopping table of Figure 4.
//
// Hobbit can mistake a homogeneous /24 for hierarchical when the
// load-balancer hash happens to split the probed addresses into nested or
// disjoint ranges ("false hierarchy").  The failure probability falls as
// more addresses are probed and rises with cardinality (the number of
// distinct last-hop routers).  The paper estimates the success probability
// empirically: for every <cardinality, probes> cell, sample random
// combinations of destinations from exhaustively-probed homogeneous /24s
// and count how often Hobbit still recognises them.  The prober then stops
// as soon as its current cell clears the confidence level.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "hobbit/types.h"
#include "netsim/rng.h"

namespace hobbit::core {

/// Sparse-ish 2D success/trial table keyed by
/// (cardinality, number of probed addresses).
class ConfidenceTable {
 public:
  /// Cells outside these bounds are folded into the boundary cell.
  static constexpr int kMaxCardinality = 64;
  static constexpr int kMaxProbed = 256;

  void Record(int cardinality, int probed, bool success);

  /// Success ratio of a cell, or nullopt when the cell has fewer than
  /// `min_trials` samples (the paper's "no confidence value present").
  std::optional<double> Confidence(int cardinality, int probed,
                                   std::uint32_t min_trials = 1) const;

  std::uint64_t Trials(int cardinality, int probed) const;

  /// Smallest number of probed addresses whose confidence at this
  /// cardinality reaches `level`; nullopt when no such cell exists.
  std::optional<int> RequiredProbes(int cardinality, double level,
                                    std::uint32_t min_trials = 1) const;

  /// Builds the table from exhaustively probed blocks (only those Hobbit
  /// judged homogeneous on full information are used).  For every block,
  /// `samples_per_block` random probing *orders* are walked; every prefix
  /// of a walk contributes one trial to the cell
  /// <cardinality observed at that prefix, prefix length>, successful when
  /// the walk has already passed a non-hierarchical grouping (or still
  /// sees a single last hop).  This first-passage semantics matches the
  /// prober's stop-at-first-non-hierarchy behaviour exactly.
  static ConfidenceTable Build(std::span<const FullyProbedBlock> dataset,
                               netsim::Rng rng, int samples_per_block);

 private:
  struct Cell {
    std::uint32_t successes = 0;
    std::uint32_t trials = 0;
  };
  static int ClampC(int c) {
    return c < 1 ? 1 : (c > kMaxCardinality ? kMaxCardinality : c);
  }
  static int ClampN(int n) {
    return n < 1 ? 1 : (n > kMaxProbed ? kMaxProbed : n);
  }
  Cell& At(int c, int n) {
    return cells_[static_cast<std::size_t>(ClampC(c) - 1) * kMaxProbed +
                  (ClampN(n) - 1)];
  }
  const Cell& At(int c, int n) const {
    return cells_[static_cast<std::size_t>(ClampC(c) - 1) * kMaxProbed +
                  (ClampN(n) - 1)];
  }

  std::vector<Cell> cells_ = std::vector<Cell>(
      static_cast<std::size_t>(kMaxCardinality) * kMaxProbed);
};

}  // namespace hobbit::core
