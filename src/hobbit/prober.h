// prober.h — adaptive measurement of one /24 block (paper §3.3–§3.5).
//
// Destination selection: the snapshot's active addresses, grouped by /26
// and probed round-robin across /26s (order reshuffled each round) so the
// observations represent the whole /24, not one corner of it.
//
// Termination (standard strategy):
//   * a non-hierarchical grouping appears          -> homogeneous, stop;
//   * six destinations probed, all one last hop    -> homogeneous, stop
//     (the 95 % single-next-hop rule of Paris-traceroute MDA);
//   * the confidence table clears 95 % for the current
//     <cardinality, probed> cell                   -> stop; hierarchical
//     groups now mean "different but hierarchical";
//   * active addresses exhausted                   -> not analyzable.
//
// The *reprobe* strategy (§6.5) disables the early stops and keeps probing
// until MdaProbeCount(cardinality) consecutive destinations reveal no new
// last-hop router — maximising the chance of enumerating the complete
// last-hop set at the cost of extra load.
#pragma once

#include <cstdint>

#include "hobbit/confidence.h"
#include "hobbit/types.h"
#include "netsim/rng.h"
#include "netsim/route_memo.h"
#include "netsim/simulator.h"
#include "probing/last_hop.h"
#include "probing/zmap.h"

namespace hobbit::core {

struct ProberOptions {
  /// Minimum usable destinations before a block is analyzable.
  int min_active = 4;
  /// The single-last-hop early-stop threshold.
  int same_last_hop_stop = 6;
  double confidence_level = 0.95;
  /// A confidence cell participates only with at least this many trials
  /// (the paper's 16,588-sample criterion, scaled by the caller).
  std::uint32_t min_cell_trials = 200;
  /// Reprobing mode: no early stops, MDA-style exhaustion of last hops.
  bool reprobe_strategy = false;
  /// Maintain grouping state incrementally (O(log g) per observation)
  /// instead of regrouping every observation after every probe.  The
  /// classifications are identical; the toggle exists so differential
  /// tests can compare against the reference batch path.
  bool incremental_grouping = true;
  /// Memoize FIB resolutions across a prober's probes (route_memo.h).
  /// Probe replies are bit-identical either way; toggleable likewise.
  bool route_memo = true;
  /// Enumerate last-hop interfaces under the MDA-Lite 90 % stopping rule
  /// (probing::MdaLiteProbeCount) instead of full MDA — cheaper per
  /// destination, may miss interfaces of wide hops.  Off by default; the
  /// full-MDA path is the differential reference (bench_scenario sweeps
  /// the accuracy-vs-cost trade-off).
  bool mda_lite = false;
};

/// Probes /24 blocks through a Simulator.  The confidence table may be
/// null (calibration stage), in which case every active address is probed.
class BlockProber {
 public:
  BlockProber(const netsim::Simulator* simulator,
              const ConfidenceTable* table, ProberOptions options)
      : simulator_(simulator), table_(table), options_(options) {}

  /// Measures one /24 given its snapshot scan record.
  BlockResult ProbeBlock(const probing::ZmapBlock& block, netsim::Rng rng);

  /// Exhaustive variant: probes every active address, ignoring all
  /// termination rules.  Used to build calibration datasets.
  FullyProbedBlock ProbeBlockFully(const probing::ZmapBlock& block,
                                   netsim::Rng rng);

  std::uint64_t probes_sent() const { return probes_sent_; }

 private:
  /// The probing loop proper.  Deliberately does NOT touch any probe
  /// accounting: ProbeBlock records `probes_used` and `probes_sent_`
  /// exactly once, after this returns, no matter which termination rule
  /// fired (early returns inside the loop used to duplicate — and one
  /// path skip — the bookkeeping).
  BlockResult ProbeBlockImpl(const probing::ZmapBlock& block,
                             netsim::Rng rng,
                             probing::LastHopProber& prober);

  const netsim::Simulator* simulator_;
  const ConfidenceTable* table_;
  ProberOptions options_;
  /// Per-prober route memo — single-owner mutable state, so a prober must
  /// not be shared across threads (the Simulator it probes through may
  /// be).  Reused across blocks: the memo's exactness guarantee makes
  /// cross-block reuse safe and is what amortizes the FIB searches.
  netsim::RouteMemo memo_;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace hobbit::core
