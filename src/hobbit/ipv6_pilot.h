// ipv6_pilot.h — Hobbit over IPv6 (the paper's first future-work item:
// "we intend to apply Hobbit to IPv6 networks").
//
// The natural IPv6 measurement unit is the /64 (one subnet's interface
// identifier space).  The hierarchy argument carries over verbatim: IPv6
// route entries are prefix-based, so genuinely distinct entries group a
// /64's addresses into nested-or-disjoint ranges, while load-balancer
// hashes interleave them.  This header instantiates the generic machinery
// for 128-bit addresses; probing IPv6 networks (hitlists instead of
// exhaustive scans, MDA over flow labels) is intentionally out of scope
// for the pilot.
#pragma once

#include <span>
#include <vector>

#include "hobbit/hierarchy_generic.h"
#include "netsim/ipv6.h"

namespace hobbit::core {

/// One probed IPv6 destination and its last-hop interface set (sorted).
struct Ipv6Observation {
  netsim::Ipv6Address address;
  std::vector<netsim::Ipv6Address> last_hops;
};

using Ipv6AddressGroup = BasicAddressGroup<netsim::Ipv6Address>;

inline std::vector<Ipv6AddressGroup> GroupByLastHop6(
    std::span<const Ipv6Observation> observations) {
  return GroupByLastHopGeneric<netsim::Ipv6Address>(observations);
}

inline bool GroupsAreHierarchical6(
    std::span<const Ipv6AddressGroup> groups) {
  return GroupsAreHierarchicalGeneric<netsim::Ipv6Address>(groups);
}

inline bool HaveCommonLastHop6(
    std::span<const Ipv6Observation> observations) {
  return HaveCommonLastHopGeneric<netsim::Ipv6Address>(observations);
}

/// Hobbit's homogeneity verdict for one /64's observations.
inline bool HobbitSaysHomogeneous6(
    std::span<const Ipv6Observation> observations) {
  return HobbitVerdictGeneric<netsim::Ipv6Address>(observations);
}

}  // namespace hobbit::core
