// last_hop.h — efficient last-hop router identification (paper §3.4).
//
// Hobbit only needs the *last-hop router* of each destination, so instead
// of tracerouting from TTL 1 it:
//   1. pings the destination and reads the reply TTL;
//   2. infers the host's default TTL (64/128/192/255 buckets) and thereby
//      the hop distance of the last router;
//   3. probes straight at that TTL, halving first_ttl whenever the
//      estimate overshoots (asymmetric reverse paths, nonstandard default
//      TTLs), then walks forward to the destination;
//   4. enumerates the interfaces at the last hop with the MDA stopping
//      rule, to catch per-flow diversity that survives to the final hop.
#pragma once

#include <cstdint>

#include "common/small_vector.h"
#include "netsim/ipv4.h"
#include "netsim/simulator.h"
#include "probing/traceroute.h"

namespace hobbit::probing {

/// A destination's last-hop interface set.  Almost always size 1 (a handful
/// under per-flow diversity at the final hop), so the storage is inline —
/// no heap traffic on the measurement hot path.
using LastHopSet = common::SmallVector<netsim::Ipv4Address, 4>;

enum class LastHopStatus : std::uint8_t {
  kOk,                    ///< at least one last-hop interface identified
  kHostUnresponsive,      ///< the destination never answered the echo
  kLastHopUnresponsive,   ///< destination answers but its last hop is silent
};

struct LastHopResult {
  LastHopStatus status = LastHopStatus::kHostUnresponsive;
  /// Sorted unique last-hop interfaces (non-empty iff status == kOk).
  LastHopSet last_hops;
  /// Hop distance of the destination host (1-based; 0 when unknown).
  int host_hop = 0;
  int probes_used = 0;
};

/// Infers the sender's default TTL from an observed reply TTL, using the
/// paper's bucket rule: <64 -> 64, <128 -> 128, <192 -> 192, else 255.
constexpr int InferDefaultTtl(int reply_ttl) {
  if (reply_ttl < 64) return 64;
  if (reply_ttl < 128) return 128;
  if (reply_ttl < 192) return 192;
  return 255;
}

/// Identifies last-hop routers.  Stateful only in the probe serial counter
/// (so a campaign shares one packet sequence).  An optional RouteMemo
/// (owned by the caller, single-threaded use) memoizes FIB resolutions
/// across the probes; results are identical with and without one.
class LastHopProber {
 public:
  /// `mda` selects the stopping rule of step 4's interface enumeration
  /// (full MDA by default; MdaMode::kLite for the cheaper 90 % rule).
  explicit LastHopProber(const netsim::Simulator* simulator,
                         netsim::RouteMemo* memo = nullptr,
                         MdaMode mda = MdaMode::kFull)
      : simulator_(simulator), memo_(memo), mda_(mda) {}

  LastHopResult Probe(netsim::Ipv4Address destination);

  std::uint64_t probes_sent() const { return serial_ - 1; }

 private:
  const netsim::Simulator* simulator_;
  netsim::RouteMemo* memo_;
  MdaMode mda_;
  std::uint64_t serial_ = 1;
};

}  // namespace hobbit::probing
