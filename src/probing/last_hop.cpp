#include "probing/last_hop.h"

#include "probing/traceroute.h"

namespace hobbit::probing {
namespace {

struct SingleProbe {
  netsim::ReplyKind kind;
  netsim::Ipv4Address responder;
  int reply_ttl;
};

SingleProbe SendOne(const netsim::Simulator& simulator,
                    netsim::Ipv4Address destination, int ttl,
                    std::uint16_t flow, std::uint64_t& serial,
                    netsim::RouteMemo* memo) {
  netsim::ProbeSpec probe;
  probe.destination = destination;
  probe.ttl = ttl;
  probe.flow_id = flow;
  probe.serial = serial++;
  netsim::ProbeReply reply = simulator.Send(probe, memo);
  return {reply.kind, reply.responder, reply.reply_ttl};
}

}  // namespace

LastHopResult LastHopProber::Probe(netsim::Ipv4Address destination) {
  LastHopResult result;
  const std::uint64_t serial_before = serial_;

  // Step 1-2: echo, infer hop distance of the last router.
  SingleProbe echo = SendOne(*simulator_, destination, 64, 0, serial_, memo_);
  if (echo.kind != netsim::ReplyKind::kEchoReply) {
    result.status = LastHopStatus::kHostUnresponsive;
    result.probes_used = static_cast<int>(serial_ - serial_before);
    return result;
  }
  int first_ttl = InferDefaultTtl(echo.reply_ttl) - echo.reply_ttl;
  if (first_ttl < 1) first_ttl = 1;

  // Step 3: find the destination's hop by probing at first_ttl and either
  // halving (overshoot: the echo answered, so we were past the last
  // router) or walking forward until the destination answers.
  int host_hop = 0;
  constexpr int kMaxWalk = 48;
  while (host_hop == 0) {
    SingleProbe at =
        SendOne(*simulator_, destination, first_ttl, 1, serial_, memo_);
    if (at.kind == netsim::ReplyKind::kEchoReply && first_ttl > 1) {
      first_ttl /= 2;  // overestimate: halve and retry (paper §3.4)
      continue;
    }
    if (at.kind == netsim::ReplyKind::kEchoReply) {
      host_hop = 1;  // destination one hop away
      break;
    }
    // Inside the path (TTL exceeded, or a silent router): walk forward.
    for (int ttl = first_ttl + 1; ttl <= first_ttl + kMaxWalk; ++ttl) {
      SingleProbe step =
          SendOne(*simulator_, destination, ttl, 1, serial_, memo_);
      if (step.kind == netsim::ReplyKind::kEchoReply) {
        host_hop = ttl;
        break;
      }
    }
    if (host_hop == 0) {
      // The host answered the plain echo but not the walk — treat as
      // unresponsive (availability changed mid-measurement).
      result.status = LastHopStatus::kHostUnresponsive;
      result.probes_used = static_cast<int>(serial_ - serial_before);
      return result;
    }
  }
  result.host_hop = host_hop;

  // Step 4: enumerate last-hop interfaces at host_hop - 1.
  if (host_hop <= 1) {
    // Destination is directly connected to the vantage; no last-hop
    // router exists to speak of.
    result.status = LastHopStatus::kLastHopUnresponsive;
    result.probes_used = static_cast<int>(serial_ - serial_before);
    return result;
  }
  HopInterfaces last = EnumerateHopInterfaces(
      *simulator_, destination, host_hop - 1, serial_,
      /*max_interfaces_hint=*/16, memo_, mda_);
  result.probes_used = static_cast<int>(serial_ - serial_before);
  if (last.interfaces.empty()) {
    result.status = LastHopStatus::kLastHopUnresponsive;
    return result;
  }
  result.status = LastHopStatus::kOk;
  result.last_hops = std::move(last.interfaces);
  return result;
}

}  // namespace hobbit::probing
