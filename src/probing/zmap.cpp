#include "probing/zmap.h"

namespace hobbit::probing {

ZmapSnapshot RunZmapScan(const netsim::Internet& internet,
                         std::span<const netsim::Prefix> target_24s,
                         const netsim::Simulator* simulator) {
  if (simulator == nullptr) simulator = internet.simulator.get();
  const netsim::Topology& topology = internet.topology;
  const netsim::HostModel& hosts = simulator->host_model();

  ZmapSnapshot snapshot;
  for (const netsim::Prefix& slash24 : target_24s) {
    ZmapBlock block;
    block.prefix = slash24;
    // Subnets may subdivide the /24; resolve per sub-covering prefix to
    // avoid 256 full lookups.
    netsim::Ipv4Address cursor = slash24.base();
    while (slash24.Contains(cursor)) {
      netsim::SubnetId id = topology.FindSubnet(cursor);
      if (id == netsim::kNoSubnet) break;  // unallocated tail
      const netsim::Subnet& subnet = topology.subnet(id);
      netsim::Ipv4Address stop = subnet.prefix.Last() < slash24.Last()
                                     ? subnet.prefix.Last()
                                     : slash24.Last();
      for (std::uint32_t a = cursor.value(); a <= stop.value(); ++a) {
        netsim::Ipv4Address address(a);
        if (hosts.ActiveInSnapshot(address, subnet)) {
          block.active_octets.push_back(
              static_cast<std::uint8_t>(a & 0xFF));
        }
      }
      if (stop == slash24.Last()) break;
      cursor = netsim::Ipv4Address(stop.value() + 1);
    }
    if (!block.active_octets.empty()) {
      snapshot.blocks.push_back(std::move(block));
    }
  }
  return snapshot;
}

bool MeetsSlash26Criterion(const ZmapBlock& block) {
  bool quarter[4] = {false, false, false, false};
  for (std::uint8_t octet : block.active_octets) quarter[octet >> 6] = true;
  return quarter[0] && quarter[1] && quarter[2] && quarter[3];
}

std::vector<ZmapBlock> SelectStudyBlocks(const ZmapSnapshot& snapshot) {
  std::vector<ZmapBlock> out;
  for (const ZmapBlock& block : snapshot.blocks) {
    if (MeetsSlash26Criterion(block)) out.push_back(block);
  }
  return out;
}

}  // namespace hobbit::probing
