#include "probing/traceroute.h"

#include <algorithm>
#include <cmath>

namespace hobbit::probing {

bool RoutesEqualWithWildcards(const Route& a, const Route& b) {
  if (a.reached_destination != b.reached_destination) return false;
  if (a.hops.size() != b.hops.size()) return false;
  for (std::size_t i = 0; i < a.hops.size(); ++i) {
    const Hop& ha = a.hops[i];
    const Hop& hb = b.hops[i];
    if (ha.responsive && hb.responsive && ha.address != hb.address) {
      return false;
    }
  }
  return true;
}

bool RouteSetsShareARoute(const std::vector<Route>& a,
                          const std::vector<Route>& b, bool wildcards) {
  for (const Route& ra : a) {
    for (const Route& rb : b) {
      if (wildcards ? RoutesEqualWithWildcards(ra, rb) : ra == rb) {
        return true;
      }
    }
  }
  return false;
}

int MdaProbeCount(int k) {
  // Published table for alpha = 0.05 (Augustin et al., "Multipath tracing
  // with Paris traceroute").  Index 1-based by hypothesis k.
  static constexpr int kTable[] = {0,  6,  11, 16, 21, 27, 33, 38, 44,
                                   51, 57, 63, 70, 76, 83, 90, 96};
  constexpr int kTableMax = static_cast<int>(std::size(kTable)) - 1;
  if (k <= 0) return kTable[1];
  if (k <= kTableMax) return kTable[k];
  // Extension by the underlying bound: smallest n with (k/(k+1))^n < 0.05/k.
  double n = std::log(0.05 / k) /
             std::log(static_cast<double>(k) / (k + 1));
  return static_cast<int>(std::ceil(n));
}

int MdaLiteProbeCount(int k) {
  // smallest n with (k/(k+1))^n < 0.1 — the 90 % bound without the
  // union correction, precomputed for the k the hop walks actually see.
  static constexpr int kTable[] = {0,  4,  6,  9,  11, 13, 15, 18, 20,
                                   22, 25, 27, 29, 32, 34, 36, 38};
  constexpr int kTableMax = static_cast<int>(std::size(kTable)) - 1;
  if (k <= 0) return kTable[1];
  if (k <= kTableMax) return kTable[k];
  double n = std::log(0.1) /
             std::log(static_cast<double>(k) / (k + 1));
  return static_cast<int>(std::ceil(n));
}

Route ParisTraceroute(const netsim::Simulator& simulator,
                      netsim::Ipv4Address destination, std::uint16_t flow_id,
                      std::uint64_t& serial, const TracerouteOptions& options) {
  Route route;
  int consecutive_gaps = 0;
  for (int ttl = options.first_ttl; ttl <= options.max_ttl; ++ttl) {
    bool answered = false;
    for (int attempt = 0; attempt < options.attempts_per_hop; ++attempt) {
      netsim::ProbeSpec probe;
      probe.destination = destination;
      probe.ttl = ttl;
      probe.flow_id = flow_id;
      probe.serial = serial++;
      netsim::ProbeReply reply = simulator.Send(probe);
      if (reply.kind == netsim::ReplyKind::kEchoReply) {
        route.reached_destination = true;
        return route;
      }
      if (reply.kind == netsim::ReplyKind::kTtlExceeded) {
        route.hops.push_back({true, reply.responder});
        answered = true;
        break;
      }
    }
    if (!answered) {
      route.hops.push_back({});
      if (++consecutive_gaps >= options.gap_limit) break;
    } else {
      consecutive_gaps = 0;
    }
  }
  // Ran off max_ttl or hit the gap limit without an echo reply.
  // Trim trailing wildcard hops — they carry no information.
  while (!route.hops.empty() && !route.hops.back().responsive) {
    route.hops.pop_back();
  }
  return route;
}

std::vector<Route> EnumerateRoutes(const netsim::Simulator& simulator,
                                   netsim::Ipv4Address destination,
                                   std::uint64_t& serial,
                                   const TracerouteOptions& options) {
  std::vector<Route> found;
  int since_new = 0;
  std::uint16_t flow = 1;
  // Fresh flow identifiers until MdaProbeCount(k) consecutive traces add
  // nothing, where k = number of routes found so far.
  while (true) {
    Route route =
        ParisTraceroute(simulator, destination, flow++, serial, options);
    bool is_new = false;
    if (route.reached_destination) {
      if (std::find(found.begin(), found.end(), route) == found.end()) {
        found.push_back(route);
        is_new = true;
      }
    }
    since_new = is_new ? 0 : since_new + 1;
    int k = std::max<int>(1, static_cast<int>(found.size()));
    if (since_new >= MdaProbeCount(k)) break;
    if (flow > 2048) break;  // safety valve; never hit in practice
  }
  return found;
}

HopInterfaces EnumerateHopInterfaces(const netsim::Simulator& simulator,
                                     netsim::Ipv4Address destination, int ttl,
                                     std::uint64_t& serial,
                                     int max_interfaces_hint,
                                     netsim::RouteMemo* memo, MdaMode mode) {
  HopInterfaces result;
  int since_new = 0;
  std::uint16_t flow = 1;
  while (true) {
    netsim::ProbeSpec probe;
    probe.destination = destination;
    probe.ttl = ttl;
    probe.flow_id = flow++;
    probe.serial = serial++;
    ++result.probes_sent;
    netsim::ProbeReply reply = simulator.Send(probe, memo);
    bool is_new = false;
    if (reply.kind == netsim::ReplyKind::kTtlExceeded) {
      auto pos = std::lower_bound(result.interfaces.begin(),
                                  result.interfaces.end(), reply.responder);
      if (pos == result.interfaces.end() || *pos != reply.responder) {
        result.interfaces.insert(pos, reply.responder);
        is_new = true;
      }
    } else {
      ++result.wildcard_probes;
    }
    since_new = is_new ? 0 : since_new + 1;
    int k = std::max<int>(1, static_cast<int>(result.interfaces.size()));
    const int stop = mode == MdaMode::kLite ? MdaLiteProbeCount(k)
                                            : MdaProbeCount(k);
    if (since_new >= stop) break;
    if (static_cast<int>(result.interfaces.size()) >= max_interfaces_hint) {
      break;
    }
    if (flow > 2048) break;
  }
  return result;
}

}  // namespace hobbit::probing
