// zmap.h — Internet-wide ICMP echo scanning.
//
// Stand-in for the scans.io "Full IPv4 ICMP Echo Request" dataset the paper
// bootstraps from (§2.1): an exhaustive sweep recording which addresses
// answered.  The snapshot is taken at *snapshot time*, one availability
// epoch before probing, so an address that is "active" here may already be
// gone when the Hobbit prober reaches it — exactly the paper's §3.3
// caveat.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netsim/internet.h"
#include "netsim/ipv4.h"

namespace hobbit::probing {

/// Scan result for one /24: the list of responsive final octets, ordered.
struct ZmapBlock {
  netsim::Prefix prefix;  // a /24
  std::vector<std::uint8_t> active_octets;
};

/// The snapshot: one entry per scanned /24 that had at least one
/// responsive address, sorted by prefix.
struct ZmapSnapshot {
  std::vector<ZmapBlock> blocks;

  /// Total responsive addresses across all blocks.
  std::uint64_t ActiveCount() const {
    std::uint64_t n = 0;
    for (const ZmapBlock& b : blocks) n += b.active_octets.size();
    return n;
  }
};

/// Sweeps every address of every target /24 and records responders.
/// Deterministic; reads the snapshot-epoch liveness model.  `simulator`
/// selects whose epoch/liveness view is scanned (nullptr = the
/// internet's primary simulator).
ZmapSnapshot RunZmapScan(const netsim::Internet& internet,
                         std::span<const netsim::Prefix> target_24s,
                         const netsim::Simulator* simulator = nullptr);

/// The paper's destination-selection criterion (§3.3): a /24 qualifies for
/// the study when every /26 inside it has at least one active address
/// (which also implies >= 4 active addresses).
bool MeetsSlash26Criterion(const ZmapBlock& block);

/// Filters a snapshot down to the study universe.
std::vector<ZmapBlock> SelectStudyBlocks(const ZmapSnapshot& snapshot);

}  // namespace hobbit::probing
