// traceroute.h — Paris traceroute and the Multipath Detection Algorithm.
//
// Paris traceroute holds the flow identifier constant across TTLs so every
// probe of one trace follows the same path through per-flow load
// balancers.  MDA re-runs traces under systematically varied flow
// identifiers with the 95 %-confidence stopping rule of Augustin et al.
// (E2EMON 2007) to enumerate all per-flow load-balanced routes toward a
// destination.  Per-destination balancing is invisible to both — the gap
// Hobbit exists to close.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/small_vector.h"
#include "netsim/ipv4.h"
#include "netsim/simulator.h"

namespace hobbit::probing {

/// One traceroute hop.  Unresponsive hops ("*") carry no address.
struct Hop {
  bool responsive = false;
  netsim::Ipv4Address address;

  friend bool operator==(const Hop&, const Hop&) = default;
  friend auto operator<=>(const Hop&, const Hop&) = default;
};

/// An IP-level route: hops 1..n, where hop n is the last-hop router when
/// `reached_destination` is true.  The destination itself is not a hop.
struct Route {
  std::vector<Hop> hops;
  bool reached_destination = false;

  /// The last-hop router of a completed route (may be unresponsive).
  const Hop* LastHop() const {
    return reached_destination && !hops.empty() ? &hops.back() : nullptr;
  }

  friend bool operator==(const Route&, const Route&) = default;
  friend auto operator<=>(const Route&, const Route&) = default;
};

/// True when the routes are equal treating unresponsive hops as wildcards
/// that match any address (§2.1's rate-limiting correction).  Lengths must
/// still agree.
bool RoutesEqualWithWildcards(const Route& a, const Route& b);

/// True when the two route *sets* share at least one route (the paper's
/// generous identity criterion for the §2 preliminary study).
bool RouteSetsShareARoute(const std::vector<Route>& a,
                          const std::vector<Route>& b,
                          bool wildcards = false);

/// MDA stopping rule: number of probes that must all land on already-known
/// successors to conclude, at 95 % confidence, that a node has exactly `k`
/// successors (k >= 1).  Table from Augustin et al.; extended by formula
/// beyond its published end.
int MdaProbeCount(int k);

/// MDA-Lite stopping rule (Vermeulen et al., "Multilevel MDA-Lite Paris
/// Traceroute"): a relaxed 90 %-confidence bound without the per-k
/// union correction — smallest n with (k/(k+1))^n < 0.1.  Strictly
/// cheaper than MdaProbeCount at every k (4 vs 6 at k=1, 6 vs 11 at
/// k=2, ...), at the cost of occasionally missing an interface of a
/// wide hop.
int MdaLiteProbeCount(int k);

/// Which stopping rule hop-level enumeration runs under.  Full MDA is
/// the default everywhere and stays the differential reference for the
/// lite mode (see bench_scenario's accuracy-vs-cost matrix).
enum class MdaMode : std::uint8_t {
  kFull,  ///< Augustin et al. 95 % rule (MdaProbeCount)
  kLite,  ///< MDA-Lite 90 % rule (MdaLiteProbeCount)
};

struct TracerouteOptions {
  int first_ttl = 1;
  int max_ttl = 40;
  /// Traceroute gives up after this many consecutive unanswered TTLs
  /// (standard gap limit — distinguishes a dead destination from a silent
  /// router).
  int gap_limit = 4;
  /// Retransmissions per TTL before declaring the hop unresponsive.
  int attempts_per_hop = 2;
};

/// One Paris traceroute with a fixed flow identifier.
/// `serial` is advanced past every probe sent.
Route ParisTraceroute(const netsim::Simulator& simulator,
                      netsim::Ipv4Address destination, std::uint16_t flow_id,
                      std::uint64_t& serial,
                      const TracerouteOptions& options = {});

/// Route-level MDA: enumerates the distinct per-flow routes toward
/// `destination`.  Keeps launching Paris traceroutes under fresh flow
/// identifiers until MdaProbeCount(#routes) consecutive traces reveal
/// nothing new.  Routes that failed to reach the destination are dropped.
std::vector<Route> EnumerateRoutes(const netsim::Simulator& simulator,
                                   netsim::Ipv4Address destination,
                                   std::uint64_t& serial,
                                   const TracerouteOptions& options = {});

/// Hop-level MDA at one TTL: enumerates the interfaces answering at
/// distance `ttl` under varied flow identifiers, with the stopping rule
/// selected by `mode` (full MDA by default; MdaMode::kLite trades
/// completeness for probe savings).  `wildcards` counts probes that got
/// no answer.  `memo`, when non-null, memoizes FIB resolutions
/// (identical replies either way).
struct HopInterfaces {
  /// Sorted, unique.  Inline small-vector storage: a hop almost always
  /// has 1-2 interfaces, and this struct is built once per probed
  /// destination on the measurement hot path.
  common::SmallVector<netsim::Ipv4Address, 4> interfaces;
  int wildcard_probes = 0;
  int probes_sent = 0;
};
HopInterfaces EnumerateHopInterfaces(const netsim::Simulator& simulator,
                                     netsim::Ipv4Address destination, int ttl,
                                     std::uint64_t& serial,
                                     int max_interfaces_hint = 16,
                                     netsim::RouteMemo* memo = nullptr,
                                     MdaMode mode = MdaMode::kFull);

}  // namespace hobbit::probing
