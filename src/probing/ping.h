// ping.h — ICMP echo probing.
//
// Thin client over the simulator: single echos (for liveness and TTL
// readback) and ping trains (for the cellular first-RTT experiment,
// Fig 6).  All probing tools in this library observe the network only
// through `Simulator::Send` — never through ground truth.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netsim/simulator.h"

namespace hobbit::probing {

/// What one answered echo looks like at the source.
struct EchoResult {
  double rtt_ms = 0.0;
  /// TTL field of the reply — the input to default-TTL inference.
  int reply_ttl = 0;
};

/// Stateful pinger; owns the probe serial counter shared by a measurement
/// campaign so per-packet load balancing and rate limiting see a global
/// packet sequence.
class Pinger {
 public:
  explicit Pinger(const netsim::Simulator* simulator)
      : simulator_(simulator) {}

  /// One echo request.  nullopt == timeout.
  std::optional<EchoResult> Ping(netsim::Ipv4Address destination) {
    netsim::ProbeSpec probe;
    probe.destination = destination;
    probe.ttl = 64;
    probe.flow_id = 0;
    probe.serial = next_serial_++;
    probe.train_sequence = 0;
    probe.train_id = static_cast<std::uint32_t>(next_train_++);
    netsim::ProbeReply reply = simulator_->Send(probe);
    if (reply.kind != netsim::ReplyKind::kEchoReply) return std::nullopt;
    return EchoResult{reply.rtt_ms, reply.reply_ttl};
  }

  /// A back-to-back train of `count` echos; unanswered probes yield no
  /// entry (so the result may be shorter than `count`).  Used by the
  /// cellular-delay analysis: the first probe of a train is the one that
  /// pays the radio wake-up.
  std::vector<EchoResult> PingTrain(netsim::Ipv4Address destination,
                                    int count) {
    std::vector<EchoResult> out;
    auto train = static_cast<std::uint32_t>(next_train_++);
    for (int i = 0; i < count; ++i) {
      netsim::ProbeSpec probe;
      probe.destination = destination;
      probe.ttl = 64;
      probe.serial = next_serial_++;
      probe.train_sequence = static_cast<std::uint32_t>(i);
      probe.train_id = train;
      netsim::ProbeReply reply = simulator_->Send(probe);
      if (reply.kind == netsim::ReplyKind::kEchoReply) {
        out.push_back({reply.rtt_ms, reply.reply_ttl});
      }
    }
    return out;
  }

  std::uint64_t next_serial() { return next_serial_++; }

 private:
  const netsim::Simulator* simulator_;
  std::uint64_t next_serial_ = 1;
  std::uint64_t next_train_ = 1;
};

}  // namespace hobbit::probing
