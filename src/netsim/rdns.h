// rdns.h — reverse-DNS name synthesis.
//
// Three of the paper's experiments read reverse DNS: classifying the top-15
// blocks (§5.2: "ec2", "wsip", datacenter region keywords), extracting
// cellular naming rules (§7.2: tele2's "m[0-9].+\.cust\.tele2" and OCN's
// "omed"), and the stratified-sampling experiment over Time-Warner-Cable's
// documented naming schemes (Fig 12).  Each subnet carries an
// `rdns_scheme` id; this module renders concrete names and exposes the
// underlying pattern for analysis code that would, in the real world,
// recover it by generalising observed names.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "netsim/ipv4.h"

namespace hobbit::netsim {

/// Naming-scheme families.  Values above kTwcBase encode one of the many
/// Time-Warner-style patterns: scheme = kTwcBase + pattern index.
enum RdnsScheme : std::uint32_t {
  kRdnsNone = 0,        ///< no PTR record
  kRdnsGenericIsp,      ///< "host-a-b-c-d.example-isp.net"
  kRdnsTele2Cellular,   ///< "m123-a-b-c-d.cust.tele2.net"
  kRdnsOcnCellular,     ///< "p-a-b-c-d.omed01.ocn.ne.jp"
  kRdnsVerizonCellular, ///< "a-b-c-d.mycingular-style.vzwnet.com"
  kRdnsAmazonEc2Tokyo,  ///< "ec2-a-b-c-d.ap-northeast-1.compute.amazonaws.com"
  kRdnsAmazonEc2UsWest, ///< "ec2-a-b-c-d.us-west-1.compute.amazonaws.com"
  kRdnsAmazonEc2Dublin, ///< "ec2-a-b-c-d.eu-west-1.compute.amazonaws.com"
  kRdnsCoxBusiness,     ///< "wsip-a-b-c-d.ph.ph.cox.net"
  kRdnsCoxResidential,  ///< "ip-a-b-c-d.ph.ph.cox.net"
  kRdnsGenericHosting,  ///< "server-a-b-c-d.fasthost.example"
  kRdnsRouterInfra,     ///< router interface names (never an end host)
  kRdnsBitcoinHost,     ///< residential host known to run a Bitcoin node
  kRdnsTwcBase = 1000,  ///< + i: i-th Time-Warner naming scheme
};

/// Number of distinct Time-Warner-style patterns generated (region ×
/// service-class grid, mirroring the published rr.com scheme list).
inline constexpr std::uint32_t kTwcPatternCount = 36;

/// Renders the PTR name for `address` under `scheme`.
/// Returns nullopt when the scheme is kRdnsNone.
std::optional<std::string> RdnsName(std::uint32_t scheme, Ipv4Address address);

/// The generalised pattern of a scheme — what a measurement analyst would
/// write after collapsing the variable fields of observed names (regex-ish,
/// as in the paper's "^m[0-9].+\.cust\.tele2").  Unique per scheme.
std::optional<std::string> RdnsPattern(std::uint32_t scheme);

/// True when `name` matches the tele2 cellular rule the paper extracts.
bool MatchesTele2CellularRule(const std::string& name);

/// True when `name` matches the OCN "omed" keyword rule.
bool MatchesOcnCellularRule(const std::string& name);

}  // namespace hobbit::netsim
