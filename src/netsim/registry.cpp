#include "netsim/registry.h"

#include <algorithm>
#include <cassert>

namespace hobbit::netsim {

std::string ToString(OrgType type) {
  switch (type) {
    case OrgType::kBroadbandIsp: return "Broadband ISP";
    case OrgType::kHosting: return "Hosting";
    case OrgType::kHostingCloud: return "Hosting/Cloud";
    case OrgType::kMobileIsp: return "Mobile ISP";
    case OrgType::kFixedIsp: return "Fixed ISP";
  }
  return "Unknown";
}

std::uint32_t Registry::AddAs(AsInfo info) {
  for (std::size_t i = 0; i < ases_.size(); ++i) {
    if (ases_[i].asn == info.asn) return static_cast<std::uint32_t>(i);
  }
  ases_.push_back(std::move(info));
  return static_cast<std::uint32_t>(ases_.size() - 1);
}

void Registry::AddAllocation(const Prefix& prefix, std::uint32_t as_index) {
  assert(!sealed_);
  allocations_.push_back({prefix, as_index});
}

void Registry::AddWhois(WhoisRecord record) {
  assert(!sealed_);
  whois_.push_back(std::move(record));
}

void Registry::Seal() {
  std::sort(allocations_.begin(), allocations_.end(),
            [](const Allocation& a, const Allocation& b) {
              return a.prefix < b.prefix;
            });
  allocation_lengths_ = 0;
  for (const Allocation& a : allocations_) {
    allocation_lengths_ |= std::uint64_t{1} << a.prefix.length();
  }
  std::sort(whois_.begin(), whois_.end(),
            [](const WhoisRecord& a, const WhoisRecord& b) {
              return a.prefix < b.prefix;
            });
  sealed_ = true;
}

std::optional<std::uint32_t> Registry::AsOf(Ipv4Address address) const {
  assert(sealed_);
  // Allocations may nest (an AS-level block containing customer blocks):
  // longest-prefix match via per-length binary search, most-specific
  // first.
  for (int length = 32; length >= 0; --length) {
    if ((allocation_lengths_ & (std::uint64_t{1} << length)) == 0) continue;
    const Prefix probe = Prefix::Of(address, length);
    auto pos = std::lower_bound(
        allocations_.begin(), allocations_.end(), probe,
        [](const Allocation& a, const Prefix& p) { return a.prefix < p; });
    if (pos != allocations_.end() && pos->prefix == probe) {
      return pos->as_index;
    }
  }
  return std::nullopt;
}

std::vector<WhoisRecord> Registry::WhoisLookup(const Prefix& query) const {
  assert(sealed_);
  std::vector<WhoisRecord> out;
  auto pos = std::lower_bound(
      whois_.begin(), whois_.end(), query.base(),
      [](const WhoisRecord& r, Ipv4Address a) { return r.prefix.base() < a; });
  for (; pos != whois_.end() && pos->prefix.base() <= query.Last(); ++pos) {
    if (query.Contains(pos->prefix)) out.push_back(*pos);
  }
  return out;
}

}  // namespace hobbit::netsim
