#include "netsim/simulator.h"

#include <cassert>

namespace hobbit::netsim {

Simulator::Simulator(const Topology* topology, RouterId source_router,
                     Ipv4Address source_address, HostModel host_model,
                     RttModel rtt_model, SimulatorConfig config)
    : topology_(topology),
      source_router_(source_router),
      source_address_(source_address),
      host_model_(std::move(host_model)),
      rtt_model_(std::move(rtt_model)),
      config_(config) {
  assert(topology_ != nullptr && topology_->sealed());
}

RouterId Simulator::PickNextHop(RouterId router, const EcmpGroup& group,
                                Ipv4Address dst, std::uint16_t flow_id,
                                std::uint64_t serial) const {
  assert(!group.next_hops.empty());
  if (group.next_hops.size() == 1) return group.next_hops.front();
  std::uint64_t h = 0;
  // Each router salts the hash with its own id so cascaded balancers make
  // independent choices (this is what multiplies cardinality, §3.1).
  switch (group.policy) {
    case LbPolicy::kPerFlow:
      h = StableHash({config_.seed, router, dst.value(),
                      source_address_.value(), flow_id});
      break;
    case LbPolicy::kPerDestination:
      h = StableHash({config_.seed, router, dst.value()});
      break;
    case LbPolicy::kPerDestinationCyclic:
      // Randomized per 8-address block, cycling within it: adjacent
      // destinations almost always map to different next hops.
      h = StableHash({config_.seed, router, dst.value() >> 3}) +
          dst.value();
      break;
    case LbPolicy::kPerDestAndSrc:
      h = StableHash({config_.seed, router, dst.value(),
                      source_address_.value()});
      break;
    case LbPolicy::kPerPacket:
      h = StableHash({config_.seed, router, dst.value(), serial,
                      0xBEEFULL});
      break;
  }
  return group.next_hops[h % group.next_hops.size()];
}

std::vector<RouterId> Simulator::ResolvePath(Ipv4Address destination,
                                             std::uint16_t flow_id,
                                             std::uint64_t serial) const {
  SubnetId subnet_id = topology_->FindSubnet(destination);
  if (subnet_id == kNoSubnet) return {};
  const auto& gateways = topology_->subnet(subnet_id).gateways;

  std::vector<RouterId> path;
  RouterId current = source_router_;
  for (int hop = 0; hop < config_.max_hops; ++hop) {
    path.push_back(current);
    // Direct attachment ends the walk: `current` is the last-hop router.
    for (RouterId gw : gateways) {
      if (gw == current) return path;
    }
    const Router& router = topology_->router(current);
    const EcmpGroup* group = router.fib.Lookup(destination);
    if (group == nullptr || group->next_hops.empty()) return {};
    current = PickNextHop(current, *group, destination, flow_id, serial);
  }
  return {};  // forwarding loop or absurdly long path
}

RouterId Simulator::GroundTruthLastHop(Ipv4Address destination,
                                       std::uint16_t flow_id) const {
  std::vector<RouterId> path = ResolvePath(destination, flow_id, 0);
  return path.empty() ? kNoRouter : path.back();
}

bool Simulator::RouterResponds(RouterId router,
                               Ipv4Address destination) const {
  const ResponseModel& model = topology_->router(router).response;
  if (model.respond_probability >= 1.0) return true;
  if (model.respond_probability <= 0.0) return false;
  // Rate limiting is bursty, not i.i.d. per packet: a limited router
  // stays silent for the whole episode of probing one destination.
  // Model it as a deterministic draw per (router, destination).
  double u = HashToUnit(
      StableHash({config_.seed, router, destination.value(), 0x4E590ULL}));
  return u < model.respond_probability;
}

int Simulator::ReverseHops(Ipv4Address destination, int forward_hops) const {
  double u = HashToUnit(StableHash(
      {config_.seed, destination.value(), 0x4E7E45EULL}));
  if (u >= config_.p_reverse_asymmetry) return forward_hops;
  // Deterministic per-destination extra length in [1, max].
  int extra = 1 + static_cast<int>(
                      HashToUnit(StableHash({config_.seed,
                                             destination.value(),
                                             0xA57AULL})) *
                      config_.max_reverse_extra_hops);
  return forward_hops + extra;
}

ProbeReply Simulator::Send(const ProbeSpec& probe) const {
  probes_sent_.fetch_add(1, std::memory_order_relaxed);
  std::vector<RouterId> path =
      ResolvePath(probe.destination, probe.flow_id, probe.serial);
  if (path.empty()) return {};  // unroutable: timeout

  // The destination host sits one hop beyond the last router, so the
  // probe reaches the host when ttl > path length.
  const int host_hop = static_cast<int>(path.size()) + 1;
  if (probe.ttl < host_hop) {
    // TTL expires at router path[ttl - 1] (hop `ttl`).
    RouterId expiring = path[static_cast<std::size_t>(probe.ttl) - 1];
    if (!RouterResponds(expiring, probe.destination)) return {};
    ProbeReply reply;
    reply.kind = ReplyKind::kTtlExceeded;
    reply.responder = topology_->router(expiring).reply_address;
    reply.hop = probe.ttl;
    reply.rtt_ms = rtt_model_.RouterRtt(reply.responder, probe.ttl,
                                        static_cast<std::uint32_t>(probe.serial));
    // Reply TTL of time-exceeded messages is not used by the tools here.
    reply.reply_ttl = 255 - probe.ttl;
    return reply;
  }

  SubnetId subnet_id = topology_->FindSubnet(probe.destination);
  if (subnet_id == kNoSubnet) return {};
  const Subnet& subnet = topology_->subnet(subnet_id);
  if (!host_model_.ActiveAtProbeTime(probe.destination, subnet)) return {};
  if (outage_ != nullptr && outage_->IsDown(probe.destination)) return {};

  ProbeReply reply;
  reply.kind = ReplyKind::kEchoReply;
  reply.responder = probe.destination;
  reply.hop = host_hop;
  const int reverse_hops = ReverseHops(probe.destination, host_hop - 1);
  reply.reply_ttl =
      host_model_.DefaultTtl(probe.destination) - reverse_hops;
  if (reply.reply_ttl < 1) reply.reply_ttl = 1;
  reply.rtt_ms = rtt_model_.EchoRtt(probe.destination, subnet, host_hop,
                                    probe.train_sequence, probe.train_id);
  return reply;
}

}  // namespace hobbit::netsim
