#include "netsim/simulator.h"

#include <cassert>

namespace hobbit::netsim {

Simulator::Simulator(const Topology* topology, RouterId source_router,
                     Ipv4Address source_address, HostModel host_model,
                     RttModel rtt_model, SimulatorConfig config)
    : topology_(topology),
      source_router_(source_router),
      source_address_(source_address),
      host_model_(std::move(host_model)),
      rtt_model_(std::move(rtt_model)),
      config_(config),
      seed_hash_state_(StableHashFrom(kStableHashInit, {config.seed})) {
  assert(topology_ != nullptr && topology_->sealed());
}

RouterId Simulator::PickNextHop(RouterId router, const EcmpGroup& group,
                                Ipv4Address dst, std::uint16_t flow_id,
                                std::uint64_t serial) const {
  assert(!group.next_hops.empty());
  if (group.next_hops.size() == 1) return group.next_hops.front();
  std::uint64_t h = 0;
  // Each router salts the hash with its own id so cascaded balancers make
  // independent choices (this is what multiplies cardinality, §3.1).
  switch (group.policy) {
    case LbPolicy::kPerFlow:
      h = StableHashFrom(seed_hash_state_,
                         {router, dst.value(), source_address_.value(),
                          flow_id});
      break;
    case LbPolicy::kPerDestination:
      h = StableHashFrom(seed_hash_state_, {router, dst.value()});
      break;
    case LbPolicy::kPerDestinationCyclic:
      // Randomized per 8-address block, cycling within it: adjacent
      // destinations almost always map to different next hops.
      h = StableHashFrom(seed_hash_state_, {router, dst.value() >> 3}) +
          dst.value();
      break;
    case LbPolicy::kPerDestAndSrc:
      h = StableHashFrom(seed_hash_state_,
                         {router, dst.value(), source_address_.value()});
      break;
    case LbPolicy::kPerPacket:
      h = StableHashFrom(seed_hash_state_,
                         {router, dst.value(), serial, 0xBEEFULL});
      break;
  }
  return group.next_hops[h % group.next_hops.size()];
}

std::vector<RouterId> Simulator::ResolvePath(Ipv4Address destination,
                                             std::uint16_t flow_id,
                                             std::uint64_t serial,
                                             RouteMemo* memo) const {
  if (memo != nullptr) {
    if (const RouteMemo::PathSlot* cached =
            memo->FindPath(*topology_, destination, flow_id)) {
      return std::vector<RouterId>(cached->hops.begin(),
                                   cached->hops.begin() + cached->length);
    }
  }
  RouterId unused = kNoRouter;
  std::vector<RouterId> path;
  const int length =
      WalkForward(destination, flow_id, serial, memo, 0, &unused, &path);
  if (length == 0) return {};
  return path;
}

int Simulator::WalkForward(Ipv4Address destination, std::uint16_t flow_id,
                           std::uint64_t serial, RouteMemo* memo,
                           int want_hop, RouterId* at_hop,
                           std::vector<RouterId>* full_path) const {
  if (memo == nullptr) {
    // Lean reference walk: no recording overhead.
    SubnetId subnet_id = topology_->FindSubnet(destination);
    if (subnet_id == kNoSubnet) return 0;
    const auto& gateways = topology_->subnet(subnet_id).gateways;
    RouterId current = source_router_;
    for (int hop = 1; hop <= config_.max_hops; ++hop) {
      if (hop == want_hop) *at_hop = current;
      if (full_path != nullptr) full_path->push_back(current);
      for (RouterId gw : gateways) {
        if (gw == current) return hop;
      }
      const FibEntry* entry =
          topology_->router(current).fib.LookupEntry(destination);
      if (entry == nullptr || entry->group.next_hops.empty()) break;
      current =
          PickNextHop(current, entry->group, destination, flow_id, serial);
    }
    if (full_path != nullptr) full_path->clear();
    return 0;  // unroutable, a dead end, or a forwarding loop
  }

  if (full_path == nullptr) {
    if (const RouteMemo::PathSlot* cached =
            memo->FindPath(*topology_, destination, flow_id)) {
      if (want_hop >= 1 && want_hop <= cached->length) {
        *at_hop = cached->hops[want_hop - 1];
      }
      return cached->length;
    }
  }
  SubnetId subnet_id = memo->FindSubnet(*topology_, destination);
  if (subnet_id == kNoSubnet) {
    memo->StorePath(*topology_, destination, flow_id, nullptr, 0);
    return 0;
  }
  const auto& gateways = topology_->subnet(subnet_id).gateways;

  // Record the walk for the memo as it happens.  Walks whose next hop
  // ever depends on the probe serial (multi-next-hop per-packet
  // balancers) or that outrun the slot's capacity are left uncached.
  std::array<RouterId, RouteMemo::kMaxCachedHops> trail;
  bool cacheable = true;

  RouterId current = source_router_;
  int length = 0;
  for (int hop = 1; hop <= config_.max_hops; ++hop) {
    if (hop == want_hop) *at_hop = current;
    if (hop <= RouteMemo::kMaxCachedHops) {
      trail[hop - 1] = current;
    } else {
      cacheable = false;
    }
    if (full_path != nullptr) full_path->push_back(current);
    bool terminal = false;
    for (RouterId gw : gateways) {
      if (gw == current) terminal = true;
    }
    if (terminal) {
      length = hop;
      break;
    }
    const FibEntry* entry = memo->Lookup(*topology_, current, destination);
    if (entry == nullptr || entry->group.next_hops.empty()) break;
    if (entry->group.policy == LbPolicy::kPerPacket &&
        entry->group.next_hops.size() > 1) {
      cacheable = false;
    }
    current =
        PickNextHop(current, entry->group, destination, flow_id, serial);
  }
  // length stays 0 on a dead end or a forwarding loop / absurdly long
  // path — deterministically per (destination, flow), so cacheable too.
  if (cacheable) {
    memo->StorePath(*topology_, destination, flow_id, trail.data(), length);
  }
  if (length == 0 && full_path != nullptr) full_path->clear();
  return length;
}

RouterId Simulator::GroundTruthLastHop(Ipv4Address destination,
                                       std::uint16_t flow_id) const {
  std::vector<RouterId> path = ResolvePath(destination, flow_id, 0);
  return path.empty() ? kNoRouter : path.back();
}

bool Simulator::RouterResponds(RouterId router,
                               Ipv4Address destination) const {
  const ResponseModel& model = topology_->router(router).response;
  if (model.respond_probability >= 1.0) return true;
  if (model.respond_probability <= 0.0) return false;
  // Rate limiting is bursty, not i.i.d. per packet: a limited router
  // stays silent for the whole episode of probing one destination.
  // Model it as a deterministic draw per (router, destination).
  double u = HashToUnit(StableHashFrom(
      seed_hash_state_, {router, destination.value(), 0x4E590ULL}));
  return u < model.respond_probability;
}

int Simulator::ReverseHops(Ipv4Address destination, int forward_hops) const {
  double u = HashToUnit(StableHashFrom(
      seed_hash_state_, {destination.value(), 0x4E7E45EULL}));
  if (u >= config_.p_reverse_asymmetry) return forward_hops;
  // Deterministic per-destination extra length in [1, max].
  int extra = 1 + static_cast<int>(
                      HashToUnit(StableHashFrom(
                          seed_hash_state_,
                          {destination.value(), 0xA57AULL})) *
                      config_.max_reverse_extra_hops);
  return forward_hops + extra;
}

ProbeReply Simulator::Send(const ProbeSpec& probe, RouteMemo* memo) const {
  probes_sent_.fetch_add(1, std::memory_order_relaxed);
  ArtifactContext context;
  ProbeReply reply = SendImpl(probe, memo, &context.path_length);
  // The single artifact application point: every termination path of
  // SendImpl (unroutable, silent router, TTL exceeded, inactive host,
  // outage, echo) flows through here exactly once.
  if (artifacts_ != nullptr) artifacts_->Rewrite(probe, context, reply);
  return reply;
}

ProbeReply Simulator::SendImpl(const ProbeSpec& probe, RouteMemo* memo,
                               int* path_length_out) const {
  RouterId expiring = kNoRouter;
  const int path_length = WalkForward(probe.destination, probe.flow_id,
                                      probe.serial, memo, probe.ttl,
                                      &expiring);
  *path_length_out = path_length;
  if (path_length == 0) return {};  // unroutable: timeout

  // The destination host sits one hop beyond the last router, so the
  // probe reaches the host when ttl > path length.
  const int host_hop = path_length + 1;
  if (probe.ttl < host_hop) {
    // TTL expires at the router at hop `ttl` (recorded by the walk).
    if (!RouterResponds(expiring, probe.destination)) return {};
    ProbeReply reply;
    reply.kind = ReplyKind::kTtlExceeded;
    reply.responder = topology_->router(expiring).reply_address;
    reply.hop = probe.ttl;
    reply.rtt_ms = rtt_model_.RouterRtt(reply.responder, probe.ttl,
                                        static_cast<std::uint32_t>(probe.serial));
    // Reply TTL of time-exceeded messages is not used by the tools here.
    reply.reply_ttl = 255 - probe.ttl;
    return reply;
  }

  SubnetId subnet_id = memo != nullptr
                           ? memo->FindSubnet(*topology_, probe.destination)
                           : topology_->FindSubnet(probe.destination);
  if (subnet_id == kNoSubnet) return {};
  const Subnet& subnet = topology_->subnet(subnet_id);
  if (!host_model_.ActiveAtProbeTime(probe.destination, subnet)) return {};
  if (outage_ != nullptr && outage_->IsDown(probe.destination)) return {};

  ProbeReply reply;
  reply.kind = ReplyKind::kEchoReply;
  reply.responder = probe.destination;
  reply.hop = host_hop;
  const int reverse_hops = ReverseHops(probe.destination, host_hop - 1);
  reply.reply_ttl =
      host_model_.DefaultTtl(probe.destination) - reverse_hops;
  if (reply.reply_ttl < 1) reply.reply_ttl = 1;
  reply.rtt_ms = rtt_model_.EchoRtt(probe.destination, subnet, host_hop,
                                    probe.train_sequence, probe.train_id);
  return reply;
}

}  // namespace hobbit::netsim
