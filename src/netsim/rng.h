// rng.h — deterministic pseudo-randomness for the simulator.
//
// Everything in the synthetic Internet must be reproducible from a single
// seed: topology generation, host liveness, load-balancer hashing and RTT
// jitter.  Two facilities live here:
//
//  * `Rng` — a SplitMix64 stream generator used for *generation-time*
//    decisions (it is consumed sequentially).
//  * `StableHash*` — stateless mixing functions used for *forwarding-time*
//    decisions, where the outcome must depend only on the inputs (e.g. a
//    per-destination load balancer must send the same destination the same
//    way every time, which a sequential stream cannot provide).
#pragma once

#include <cstdint>
#include <initializer_list>

namespace hobbit::netsim {

/// Mixes a 64-bit value through the SplitMix64 finalizer.  Good avalanche
/// behaviour; the basis of both the stream RNG and the stable hashes.
constexpr std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Initial folding state of StableHash; the seed of every stable hash.
inline constexpr std::uint64_t kStableHashInit = 0x2545f4914f6cdd1dULL;

/// Continues a stable hash from an already-folded prefix state.  Because
/// StableHash folds its parts strictly left to right, a caller that
/// always hashes `{constant..., varying...}` can fold the constant prefix
/// once and reuse it: `StableHashFrom(prefix, {varying...})` equals
/// `StableHash({constant..., varying...})` bit for bit.
constexpr std::uint64_t StableHashFrom(
    std::uint64_t state, std::initializer_list<std::uint64_t> parts) {
  for (std::uint64_t p : parts) state = Mix64(state ^ p);
  return state;
}

/// Stateless stable hash of a sequence of 64-bit words.  Used for hashing
/// flow tuples in load balancers and for deciding per-entity properties
/// (responsiveness draws, OS choice) without consuming stream state.
constexpr std::uint64_t StableHash(std::initializer_list<std::uint64_t> parts) {
  return StableHashFrom(kStableHashInit, parts);
}

/// Maps a stable hash to a uniform double in [0, 1).
constexpr double HashToUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// SplitMix64 sequential generator.  Satisfies the essentials of
/// UniformRandomBitGenerator so it can also feed <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Rng(std::uint64_t seed) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr std::uint64_t operator()() { return Next(); }

  constexpr std::uint64_t Next() { return Mix64(state_++); }

  /// Uniform double in [0, 1).
  constexpr double NextUnit() { return HashToUnit(Next()); }

  /// Uniform integer in [0, bound).  Precondition: bound > 0.
  constexpr std::uint64_t NextBelow(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used here (all far below 2^32).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.  Precondition: lo <= hi.
  constexpr std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBelow(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw.
  constexpr bool NextBool(double probability) {
    return NextUnit() < probability;
  }

  /// Derives an independent child generator; used to give each /24 or
  /// router its own stream so generation order does not matter.
  constexpr Rng Fork(std::uint64_t salt) const {
    return Rng(StableHash({state_, salt, 0xf0e1d2c3b4a59687ULL}));
  }

 private:
  std::uint64_t state_;
};

}  // namespace hobbit::netsim
