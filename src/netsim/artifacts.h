// artifacts.h — the measurement-artifact hook on the probe path.
//
// Real traceroute campaigns never see the clean replies the Simulator
// synthesises: probes get dropped, rate-limited routers go silent for
// whole episodes, forwarding loops answer from the wrong place.  The
// scenario subsystem (src/scenario) models those pathologies as a
// *decorator over replies* rather than a fork of the forwarding walk:
// `Simulator::Send` computes the clean reply as always and then hands it
// — together with the probe and a little walk context — to an installed
// `ReplyArtifacts` implementation, which may rewrite it in place.
//
// Contract:
//   * Rewrite is const and must be thread-safe: Send is called from many
//     measurement threads at once.  Implementations must be pure
//     functions of (their own config/seed, probe, context, clean reply)
//     — typically via netsim's StableHash — so campaigns stay
//     deterministic and thread-count invariant.
//   * A zero-intensity implementation must leave the reply untouched;
//     the scenario differential tests pin installed-but-idle hooks to
//     bit-identical pipeline output.
//   * The hook only sees measurement probes (Send).  Ground-truth
//     helpers (ResolvePath, GroundTruthLastHop) and the zmap snapshot
//     (which reads the HostModel directly) stay artifact-free.
#pragma once

namespace hobbit::netsim {

struct ProbeSpec;
struct ProbeReply;

/// Walk facts the rewrite may condition on but cannot learn from the
/// reply alone (a timeout carries no addresses).
struct ArtifactContext {
  /// Forward routers traversed toward the destination; 0 when the
  /// destination is unroutable (such timeouts are usually left alone —
  /// there was no path to perturb).
  int path_length = 0;
};

/// Installed via Simulator::SetReplyArtifacts; see the file comment for
/// the thread-safety and determinism contract.
class ReplyArtifacts {
 public:
  virtual ~ReplyArtifacts() = default;

  /// May rewrite `reply` in place (e.g. to a timeout, or to a
  /// TTL-exceeded from a synthetic loop router).
  virtual void Rewrite(const ProbeSpec& probe, const ArtifactContext& context,
                       ProbeReply& reply) const = 0;
};

}  // namespace hobbit::netsim
