// topology.h — routers, forwarding tables and subnets of the synthetic
// Internet.
//
// The paper's central distinction — route differences caused by *distinct
// route entries* versus those caused by *load-balancing* — is modelled
// directly: every router owns a longest-prefix-match FIB whose entries point
// at ECMP groups, and every ECMP group carries the hashing policy a real
// load-balancer would use (per-flow, per-destination or per-packet).
// Ground-truth colocation lives in `Subnet`: all addresses covered by one
// subnet are attached to the same place, however many gateway routers reach
// it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "netsim/ipv4.h"

namespace hobbit::netsim {

/// Index of a router within a Topology.  Dense, starting at zero.
using RouterId = std::uint32_t;
inline constexpr RouterId kNoRouter = ~RouterId{0};

/// Index of a subnet within a Topology.
using SubnetId = std::uint32_t;
inline constexpr SubnetId kNoSubnet = ~SubnetId{0};

/// How an ECMP group selects among its next hops — which header fields the
/// hash covers.  This is exactly the distinction Paris-traceroute MDA can
/// and cannot see through: varying the flow identifier explores PerFlow
/// groups but never PerDestination ones.
enum class LbPolicy : std::uint8_t {
  kPerFlow,         ///< hash(src, dst, flow id): MDA-enumerable
  kPerDestination,  ///< hash(dst), uniform: differs across a /24's addresses
  /// hash sensitive to the destination's low bits: numerically adjacent
  /// addresses usually take different next hops, and the choice
  /// interleaves finely across a /24 (some ECMP implementations behave
  /// this way; it is what makes interleaved last-hop groups so common).
  kPerDestinationCyclic,
  kPerDestAndSrc,   ///< hash(src, dst): per-destination seen from one vantage
  kPerPacket,       ///< random each packet (rare; breaks traceroute)
};

/// A set of equal-cost next hops plus the policy used to pick one.
struct EcmpGroup {
  std::vector<RouterId> next_hops;
  LbPolicy policy = LbPolicy::kPerFlow;
};

/// One forwarding entry: packets matching `prefix` are handed to `group`.
struct FibEntry {
  Prefix prefix;
  EcmpGroup group;
};

/// A longest-prefix-match forwarding table.
///
/// Entries are kept sorted by (base, length).  `Lookup` runs LPM by binary
/// searching each prefix length that actually occurs in the table, longest
/// first — O(lengths-present × log n), which is fast even for the core
/// routers whose tables carry an entry per allocated address run.
class Fib {
 public:
  /// Inserts or replaces the entry for `prefix`.
  void Add(const Prefix& prefix, EcmpGroup group);

  /// Convenience: single next hop, default (per-flow) policy irrelevant for
  /// width-1 groups.
  void AddSingle(const Prefix& prefix, RouterId next_hop);

  /// Longest-prefix match.  Returns nullptr when no entry covers `dst`
  /// (no default route installed).
  const EcmpGroup* Lookup(Ipv4Address dst) const;

  /// The matched entry itself (prefix + group); nullptr when no match.
  const FibEntry* LookupEntry(Ipv4Address dst) const;

  /// Longest prefix length present in the table (0 for an empty table or
  /// one holding only a default route).  Two destinations sharing their
  /// canonical /max_length() prefix provably resolve to the same entry,
  /// which is the exactness guarantee RouteMemo builds on.
  int max_length() const;

  std::size_t size() const { return entries_.size(); }
  const std::vector<FibEntry>& entries() const { return entries_; }

 private:
  std::vector<FibEntry> entries_;  // sorted by (base, length)
  std::uint64_t lengths_present_ = 0;  // bit l set when a /l entry exists
};

/// How willing a router is to source ICMP time-exceeded messages.  The
/// paper's "Unresponsive last-hop" class (16.8 % of measurable /24s) and
/// its wildcard route matching both stem from this behaviour.
struct ResponseModel {
  /// Probability that any given TTL-exceeded probe is answered.
  double respond_probability = 1.0;
  /// Above this many answers per "probe burst" the router rate-limits and
  /// stays silent; 0 disables rate limiting.
  std::uint32_t rate_limit_per_burst = 0;
};

/// A router: a reply address (its identity in traceroute output), a FIB and
/// a response model.  `name` is for diagnostics only.
struct Router {
  Ipv4Address reply_address;
  Fib fib;
  ResponseModel response;
  std::string name;
};

/// Broad service categories; they steer RTT behaviour, reverse-DNS naming
/// and the registry join used by Tables 3 and 5.
enum class SubnetKind : std::uint8_t {
  kResidential,
  kBusiness,
  kDatacenter,
  kCellular,
  kHosting,
};

/// Ground truth: one route entry's worth of addresses, attached to a fixed
/// set of gateway (last-hop) routers.  Two addresses are *truly
/// homogeneous* iff they belong to the same subnet (or to subnets with
/// identical gateway sets, for aggregate blocks).
struct Subnet {
  Prefix prefix;
  /// All routers directly attaching this subnet.  Width > 1 means a
  /// per-destination load balancer upstream spreads addresses across
  /// gateways — different measured last-hops with no heterogeneity.
  std::vector<RouterId> gateways;
  /// Index of the owning autonomous system in the registry.
  std::uint32_t as_index = 0;
  SubnetKind kind = SubnetKind::kResidential;
  /// Fraction of addresses that exist and answer pings, before churn.
  double occupancy = 0.5;
  /// Base one-way propagation component of RTT, in milliseconds.
  double base_rtt_ms = 40.0;
  /// Identifier of the reverse-DNS naming scheme used by this subnet.
  std::uint32_t rdns_scheme = 0;
  /// Geographic coordinates in an abstract unit square (per-PoP, with
  /// per-customer scatter for split /24s) — the ground truth behind the
  /// EDNS-client-subnet experiment.
  double geo_x = 0.5;
  double geo_y = 0.5;
};

/// The router graph plus the subnet map.  Addresses resolve to subnets via
/// a sorted prefix table (subnenet prefixes never overlap).
class Topology {
 public:
  Topology() = default;
  // Copies and moves bump the mutation epoch of the destination so that a
  // RouteMemo attached to a Topology whose storage was replaced in place
  // (e.g. `internet = std::move(other)`) can never read stale entries.
  Topology(const Topology& other)
      : routers_(other.routers_),
        subnets_(other.subnets_),
        subnet_index_(other.subnet_index_),
        sealed_(other.sealed_),
        mutation_epoch_(other.mutation_epoch_ + 1) {}
  Topology(Topology&& other) noexcept { *this = std::move(other); }
  Topology& operator=(const Topology& other) {
    if (this != &other) {
      routers_ = other.routers_;
      subnets_ = other.subnets_;
      subnet_index_ = other.subnet_index_;
      sealed_ = other.sealed_;
      mutation_epoch_ =
          std::max(mutation_epoch_, other.mutation_epoch_) + 1;
    }
    return *this;
  }
  Topology& operator=(Topology&& other) noexcept {
    if (this != &other) {
      routers_ = std::move(other.routers_);
      subnets_ = std::move(other.subnets_);
      subnet_index_ = std::move(other.subnet_index_);
      sealed_ = other.sealed_;
      mutation_epoch_ =
          std::max(mutation_epoch_, other.mutation_epoch_) + 1;
    }
    return *this;
  }

  RouterId AddRouter(Router router);
  SubnetId AddSubnet(Subnet subnet);

  /// Must be called once after all subnets are added and before lookups.
  /// Sorts the subnet index; verifies prefixes do not overlap.
  void Seal();

  /// The non-const accessor conservatively counts as a mutation: any code
  /// path that can reach a FIB must bump the epoch before the change so
  /// route memos re-resolve.  Holding the returned reference across
  /// measurement and mutating later is unsupported (re-fetch instead).
  Router& router(RouterId id) {
    ++mutation_epoch_;
    return routers_[id];
  }
  const Router& router(RouterId id) const { return routers_[id]; }
  std::size_t router_count() const { return routers_.size(); }

  const Subnet& subnet(SubnetId id) const { return subnets_[id]; }
  Subnet& subnet(SubnetId id) {
    ++mutation_epoch_;
    return subnets_[id];
  }
  std::size_t subnet_count() const { return subnets_.size(); }

  /// The subnet containing `address`, or kNoSubnet.
  SubnetId FindSubnet(Ipv4Address address) const;

  bool sealed() const { return sealed_; }

  /// Monotonic counter of potential mutations; RouteMemo compares it to
  /// decide whether cached FIB resolutions are still valid.
  std::uint64_t mutation_epoch() const { return mutation_epoch_; }

 private:
  std::vector<Router> routers_;
  std::vector<Subnet> subnets_;
  /// Subnet ids sorted by prefix base, for binary-search lookup.
  std::vector<SubnetId> subnet_index_;
  bool sealed_ = false;
  std::uint64_t mutation_epoch_ = 0;
};

}  // namespace hobbit::netsim
