// route_memo.h — exact per-campaign memoization of FIB resolutions.
//
// The simulator resolves a probe's path by running a longest-prefix-match
// binary search in every router's FIB along the way.  A measurement
// campaign re-traces the same /24 dozens of times (the §3.3 schedule, MDA
// flow variation, the TTL walk), so the vast majority of those searches
// repeat earlier ones with the same answer.  RouteMemo caches them.
//
// Correctness is exact, not heuristic.  `Fib::LookupEntry` probes, for
// every prefix length present in the table, the canonical prefix of the
// destination at that length.  Two destinations that share their
// canonical prefix at the table's *longest* present length therefore make
// the identical probe sequence and get the identical result (including
// "no match").  The memo keys each cached resolution by that canonical
// prefix — `dst >> (32 - fib.max_length())` — so a hit is provably the
// answer the search would have produced.  Load-balancing policy is
// irrelevant here: the memo caches the *matched entry*, and the per-flow
// next-hop choice is still made per probe by the simulator.
//
// Invalidation: the memo snapshots Topology::mutation_epoch() and drops
// everything whenever the counter (or the topology identity) changes, so
// dynamic-topology tests that edit FIBs mid-run stay correct.
//
// Threading: a RouteMemo is single-owner mutable state.  Give each
// measurement thread (or each BlockProber) its own; the shared Simulator
// stays const and is never written through this path.
#pragma once

#include <array>
#include <cstdint>

#include "common/arena.h"
#include "netsim/rng.h"
#include "netsim/topology.h"

namespace hobbit::netsim {

class RouteMemo {
 public:
  /// A memoized forward walk: the router at every hop of the path from
  /// the vantage to `dst` for one flow, or length 0 for an unroutable
  /// destination.  Exact, because the walk is a pure function of
  /// (destination, flow) at a fixed topology epoch: every FIB match keys
  /// on the destination alone and every load-balancer policy hashes only
  /// (router, destination, source, flow) — except kPerPacket, whose picks
  /// depend on the probe serial, so walks through a multi-next-hop
  /// per-packet balancer are never stored (see Simulator::WalkForward).
  static constexpr int kMaxCachedHops = 24;
  struct PathSlot {
    std::uint32_t dst = 0;
    std::uint16_t flow = 0;
    bool filled = false;
    std::uint8_t length = 0;  // hops to the last-hop router; 0 = unroutable
    std::array<RouterId, kMaxCachedHops> hops;
  };

  /// Memoized equivalent of `topology.router(router).fib.LookupEntry(dst)`.
  const FibEntry* Lookup(const Topology& topology, RouterId router,
                         Ipv4Address dst) {
    Validate(topology);
    const Fib& fib = topology.router(router).fib;
    if (fib.size() == 0) return nullptr;
    const int max_length = fib.max_length();
    const std::uint32_t key =
        max_length == 0 ? 0u : dst.value() >> (32 - max_length);
    Slot& slot = caches_[router].slots[key & (kWays - 1)];
    if (slot.filled && slot.key == key) {
      ++hits_;
      return slot.entry;
    }
    ++misses_;
    slot.key = key;
    slot.entry = fib.LookupEntry(dst);
    slot.filled = true;
    return slot.entry;
  }

  /// The cached walk for (dst, flow), or nullptr on a miss.  The pointer
  /// is invalidated by the next StorePath/Lookup/FindPath call.
  const PathSlot* FindPath(const Topology& topology, Ipv4Address dst,
                           std::uint16_t flow) {
    Validate(topology);
    const PathSlot& slot = paths_[PathIndex(dst, flow)];
    if (slot.filled && slot.dst == dst.value() && slot.flow == flow) {
      ++path_hits_;
      return &slot;
    }
    ++path_misses_;
    return nullptr;
  }

  /// Records a completed walk.  `length` 0 marks an unroutable
  /// destination; `hops[i]` is the router at hop i + 1 (only the first
  /// `length` entries are read back).  Callers must not store
  /// serial-dependent walks (kPerPacket fan-out on the path).
  void StorePath(const Topology& topology, Ipv4Address dst,
                 std::uint16_t flow, const RouterId* hops, int length) {
    Validate(topology);
    PathSlot& slot = paths_[PathIndex(dst, flow)];
    slot.dst = dst.value();
    slot.flow = flow;
    slot.length = static_cast<std::uint8_t>(length);
    for (int i = 0; i < length; ++i) slot.hops[i] = hops[i];
    slot.filled = true;
  }

  /// Memoized equivalent of `topology.FindSubnet(dst)`.  Keyed by the
  /// full destination address, so a hit is trivially the same answer the
  /// lookup would have produced.
  SubnetId FindSubnet(const Topology& topology, Ipv4Address dst) {
    Validate(topology);
    SubnetSlot& slot = subnets_[static_cast<std::size_t>(
                                    Mix64(dst.value())) &
                                (kSubnetSlots - 1)];
    if (!slot.filled || slot.dst != dst.value()) {
      slot.dst = dst.value();
      slot.subnet = topology.FindSubnet(dst);
      slot.filled = true;
    }
    return slot.subnet;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t path_hits() const { return path_hits_; }
  std::uint64_t path_misses() const { return path_misses_; }

 private:
  void Validate(const Topology& topology) {
    if (topology_ == &topology && epoch_ == topology.mutation_epoch()) {
      return;
    }
    topology_ = &topology;
    epoch_ = topology.mutation_epoch();
    // All three tables live in one per-memo arena: an epoch bump (route
    // churn in a streaming campaign re-validates every wave) rewinds the
    // arena and re-carves the same retained chunks — zero-filled slot
    // arrays laid out back to back, no allocator round trips.  All slot
    // types are trivially destructible, which AllocateArray enforces.
    arena_.Reset();
    caches_ = arena_.AllocateArray<RouterCache>(topology.router_count());
    paths_ = arena_.AllocateArray<PathSlot>(kPathSlots);
    subnets_ = arena_.AllocateArray<SubnetSlot>(kSubnetSlots);
  }

  static std::size_t PathIndex(Ipv4Address dst, std::uint16_t flow) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(dst.value()) << 16) | flow;
    return static_cast<std::size_t>(Mix64(key)) & (kPathSlots - 1);
  }

  // Plenty for one block's schedule (a /24 touches at most a few dozen
  // (destination, flow) pairs at a time) while staying cache-resident.
  static constexpr std::size_t kPathSlots = 512;

  static constexpr std::size_t kSubnetSlots = 256;
  struct SubnetSlot {
    std::uint32_t dst = 0;
    SubnetId subnet = kNoSubnet;
    bool filled = false;
  };

  // Direct-mapped, 4-way by the key's low bits: a /24 campaign round-robins
  // across its four /26s, and edge FIBs carry up to /26 entries, so the
  // four in-flight keys land in distinct slots instead of evicting each
  // other.
  static constexpr std::size_t kWays = 4;
  struct Slot {
    std::uint32_t key = 0;
    const FibEntry* entry = nullptr;
    bool filled = false;
  };
  struct RouterCache {
    std::array<Slot, kWays> slots;
  };

  const Topology* topology_ = nullptr;
  std::uint64_t epoch_ = 0;
  common::Arena arena_;
  RouterCache* caches_ = nullptr;
  PathSlot* paths_ = nullptr;
  SubnetSlot* subnets_ = nullptr;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t path_hits_ = 0;
  std::uint64_t path_misses_ = 0;
};

}  // namespace hobbit::netsim
