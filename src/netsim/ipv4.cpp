#include "netsim/ipv4.h"

#include <charconv>

namespace hobbit::netsim {
namespace {

// Parses a decimal octet at the front of `text`, advancing it.  Returns
// nullopt unless one to three digits encoding a value <= 255 are present.
std::optional<std::uint8_t> ConsumeOctet(std::string_view& text) {
  unsigned value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
  if (ptr - begin > 3) return std::nullopt;  // reject "0000" style padding
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return static_cast<std::uint8_t>(value);
}

bool ConsumeChar(std::string_view& text, char expected) {
  if (text.empty() || text.front() != expected) return false;
  text.remove_prefix(1);
  return true;
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0 && !ConsumeChar(text, '.')) return std::nullopt;
    auto octet = ConsumeOctet(text);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Address(value);
}

std::string Ipv4Address::ToString() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(Octet(i));
  }
  return out;
}

std::optional<Prefix> Prefix::Parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto base = Ipv4Address::Parse(text.substr(0, slash));
  if (!base) return std::nullopt;
  std::string_view length_text = text.substr(slash + 1);
  unsigned length = 0;
  auto [ptr, ec] = std::from_chars(
      length_text.data(), length_text.data() + length_text.size(), length);
  if (ec != std::errc{} || ptr != length_text.data() + length_text.size() ||
      length > 32) {
    return std::nullopt;
  }
  Prefix canonical = Prefix::Of(*base, static_cast<int>(length));
  if (canonical.base() != *base) return std::nullopt;  // host bits set
  return canonical;
}

std::string Prefix::ToString() const {
  return base_.ToString() + "/" + std::to_string(length_);
}

}  // namespace hobbit::netsim
