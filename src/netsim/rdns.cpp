#include "netsim/rdns.h"

#include <array>

#include "netsim/rng.h"

namespace hobbit::netsim {
namespace {

std::string Dashed(Ipv4Address a) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('-');
    out += std::to_string(a.Octet(i));
  }
  return out;
}

// Time-Warner grid: regions × service classes, in the spirit of the
// published rr.com reverse-DNS scheme list.
constexpr std::array<const char*, 9> kTwcRegions = {
    "nyc",  "austin", "socal", "carolina", "neo",
    "kc",   "hawaii", "maine", "rochester"};
constexpr std::array<const char*, 4> kTwcClasses = {"res", "biz", "wifi",
                                                    "static"};

struct TwcParts {
  const char* region;
  const char* service;
};

TwcParts TwcPartsOf(std::uint32_t scheme) {
  std::uint32_t index = (scheme - kRdnsTwcBase) % kTwcPatternCount;
  return {kTwcRegions[index % kTwcRegions.size()],
          kTwcClasses[(index / kTwcRegions.size()) % kTwcClasses.size()]};
}

}  // namespace

std::optional<std::string> RdnsName(std::uint32_t scheme,
                                    Ipv4Address address) {
  switch (scheme) {
    case kRdnsNone:
      return std::nullopt;
    case kRdnsGenericIsp:
      return "host-" + Dashed(address) + ".example-isp.net";
    case kRdnsTele2Cellular: {
      // "m" + digit(s) + per-host suffix, under cust.tele2.net.
      std::uint64_t h = StableHash({address.value(), 0x7E1E2ULL});
      return "m" + std::to_string(1 + h % 9) + "-" + Dashed(address) +
             ".cust.tele2.net";
    }
    case kRdnsOcnCellular: {
      std::uint64_t h = StableHash({address.value(), 0x0C4ULL});
      return "p" + Dashed(address) + ".omed" +
             std::to_string(1 + h % 20) + ".ocn.ne.jp";
    }
    case kRdnsVerizonCellular:
      return Dashed(address) + ".pools.vzwnet.com";
    case kRdnsAmazonEc2Tokyo:
      return "ec2-" + Dashed(address) + ".ap-northeast-1.compute.amazonaws.com";
    case kRdnsAmazonEc2UsWest:
      return "ec2-" + Dashed(address) + ".us-west-1.compute.amazonaws.com";
    case kRdnsAmazonEc2Dublin:
      return "ec2-" + Dashed(address) + ".eu-west-1.compute.amazonaws.com";
    case kRdnsCoxBusiness:
      return "wsip-" + Dashed(address) + ".ph.ph.cox.net";
    case kRdnsCoxResidential:
      return "ip" + Dashed(address) + ".ph.ph.cox.net";
    case kRdnsGenericHosting:
      return "server-" + Dashed(address) + ".fasthost.example";
    case kRdnsRouterInfra: {
      std::uint64_t h = StableHash({address.value(), 0x40075ULL});
      return "ae-" + std::to_string(h % 16) + "-" + Dashed(address) +
             ".core.backbone.example";
    }
    case kRdnsBitcoinHost:
      return "ip" + Dashed(address) + ".ph.ph.cox.net";
    default:
      break;
  }
  if (scheme >= kRdnsTwcBase &&
      scheme < kRdnsTwcBase + kTwcPatternCount) {
    TwcParts parts = TwcPartsOf(scheme);
    return "cpe-" + Dashed(address) + "." + parts.region + "." +
           parts.service + ".rr.com";
  }
  return std::nullopt;
}

std::optional<std::string> RdnsPattern(std::uint32_t scheme) {
  switch (scheme) {
    case kRdnsNone:
      return std::nullopt;
    case kRdnsGenericIsp:
      return "^host-.*\\.example-isp\\.net";
    case kRdnsTele2Cellular:
      return "^m[0-9].+\\.cust\\.tele2";
    case kRdnsOcnCellular:
      return "^p.*\\.omed[0-9]+\\.ocn\\.ne\\.jp";
    case kRdnsVerizonCellular:
      return "^.*\\.pools\\.vzwnet\\.com";
    case kRdnsAmazonEc2Tokyo:
      return "^ec2-.*\\.ap-northeast-1\\.compute\\.amazonaws\\.com";
    case kRdnsAmazonEc2UsWest:
      return "^ec2-.*\\.us-west-1\\.compute\\.amazonaws\\.com";
    case kRdnsAmazonEc2Dublin:
      return "^ec2-.*\\.eu-west-1\\.compute\\.amazonaws\\.com";
    case kRdnsCoxBusiness:
      return "^wsip-.*\\.cox\\.net";
    case kRdnsCoxResidential:
      return "^ip.*\\.cox\\.net";
    case kRdnsGenericHosting:
      return "^server-.*\\.fasthost\\.example";
    case kRdnsRouterInfra:
      return "^ae-.*\\.core\\.backbone\\.example";
    case kRdnsBitcoinHost:
      return "^ip.*\\.cox\\.net";
    default:
      break;
  }
  if (scheme >= kRdnsTwcBase &&
      scheme < kRdnsTwcBase + kTwcPatternCount) {
    TwcParts parts = TwcPartsOf(scheme);
    return std::string("^cpe-.*\\.") + parts.region + "\\." + parts.service +
           "\\.rr\\.com";
  }
  return std::nullopt;
}

bool MatchesTele2CellularRule(const std::string& name) {
  // ^m[0-9].+\.cust\.tele2 — hand-rolled to avoid <regex> in a hot loop.
  if (name.size() < 3 || name[0] != 'm' || name[1] < '0' || name[1] > '9') {
    return false;
  }
  return name.find(".cust.tele2") != std::string::npos;
}

bool MatchesOcnCellularRule(const std::string& name) {
  return name.find("omed") != std::string::npos;
}

}  // namespace hobbit::netsim
