#include "netsim/topology.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace hobbit::netsim {

void Fib::Add(const Prefix& prefix, EcmpGroup group) {
  FibEntry entry{prefix, std::move(group)};
  auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), entry,
      [](const FibEntry& a, const FibEntry& b) { return a.prefix < b.prefix; });
  if (pos != entries_.end() && pos->prefix == entry.prefix) {
    *pos = std::move(entry);
  } else {
    entries_.insert(pos, std::move(entry));
  }
  lengths_present_ |= std::uint64_t{1} << prefix.length();
}

void Fib::AddSingle(const Prefix& prefix, RouterId next_hop) {
  Add(prefix, EcmpGroup{{next_hop}, LbPolicy::kPerFlow});
}

const FibEntry* Fib::LookupEntry(Ipv4Address dst) const {
  // Longest prefix first: for every length present in the table, binary
  // search for the exact canonical prefix of `dst` at that length.
  for (int length = 32; length >= 0; --length) {
    if ((lengths_present_ & (std::uint64_t{1} << length)) == 0) continue;
    const Prefix probe = Prefix::Of(dst, length);
    auto pos = std::lower_bound(
        entries_.begin(), entries_.end(), probe,
        [](const FibEntry& e, const Prefix& p) { return e.prefix < p; });
    if (pos != entries_.end() && pos->prefix == probe) return &*pos;
  }
  return nullptr;
}

const EcmpGroup* Fib::Lookup(Ipv4Address dst) const {
  const FibEntry* entry = LookupEntry(dst);
  return entry == nullptr ? nullptr : &entry->group;
}

int Fib::max_length() const {
  return lengths_present_ == 0
             ? 0
             : 63 - std::countl_zero(lengths_present_);
}

RouterId Topology::AddRouter(Router router) {
  ++mutation_epoch_;
  routers_.push_back(std::move(router));
  return static_cast<RouterId>(routers_.size() - 1);
}

SubnetId Topology::AddSubnet(Subnet subnet) {
  assert(!sealed_);
  ++mutation_epoch_;
  subnets_.push_back(std::move(subnet));
  return static_cast<SubnetId>(subnets_.size() - 1);
}

void Topology::Seal() {
  ++mutation_epoch_;
  subnet_index_.resize(subnets_.size());
  for (std::size_t i = 0; i < subnets_.size(); ++i) {
    subnet_index_[i] = static_cast<SubnetId>(i);
  }
  std::sort(subnet_index_.begin(), subnet_index_.end(),
            [this](SubnetId a, SubnetId b) {
              return subnets_[a].prefix < subnets_[b].prefix;
            });
  for (std::size_t i = 1; i < subnet_index_.size(); ++i) {
    const Prefix& prev = subnets_[subnet_index_[i - 1]].prefix;
    const Prefix& cur = subnets_[subnet_index_[i]].prefix;
    if (!prev.DisjointFrom(cur)) {
      throw std::logic_error("Topology: overlapping subnets " +
                             prev.ToString() + " and " + cur.ToString());
    }
  }
  sealed_ = true;
}

SubnetId Topology::FindSubnet(Ipv4Address address) const {
  assert(sealed_);
  // Find the last subnet whose base is <= address; disjointness guarantees
  // it is the only candidate.
  auto pos = std::upper_bound(
      subnet_index_.begin(), subnet_index_.end(), address,
      [this](Ipv4Address a, SubnetId id) { return a < subnets_[id].prefix.base(); });
  if (pos == subnet_index_.begin()) return kNoSubnet;
  SubnetId candidate = *std::prev(pos);
  return subnets_[candidate].prefix.Contains(address) ? candidate : kNoSubnet;
}

}  // namespace hobbit::netsim
