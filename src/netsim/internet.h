// internet.h — generation of a complete synthetic Internet.
//
// `BuildInternet` assembles everything the measurement study needs from a
// single seed: a router graph with per-flow ECMP in the core and
// per-destination load balancing toward the edge, ground-truth route
// entries (subnets), an address registry, host liveness, and a packet
// simulator — the stand-in for the real IPv4 Internet the paper probed
// from UMD (see DESIGN.md for the substitution rationale).
//
// The generated world is *shaped like the paper's findings* so the whole
// pipeline can be exercised end to end: Korean broadband ASes split /24s
// into sub-blocks (Tables 2–4), hosting/cloud and cellular giants own huge
// single-location blocks built from scattered contiguous runs (Table 5,
// Figs 5, 7, 8), and an ISP with documented reverse-DNS schemes supports
// the sampling experiment (Fig 12).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netsim/host_model.h"
#include "netsim/ipv4.h"
#include "netsim/rdns.h"
#include "netsim/registry.h"
#include "netsim/rtt_model.h"
#include "netsim/simulator.h"
#include "netsim/topology.h"

namespace hobbit::netsim {

/// How one organization's address space and attachment structure is
/// generated.
struct OrgProfile {
  AsInfo as;
  SubnetKind kind = SubnetKind::kResidential;

  /// Total /24 blocks owned (scaled by InternetConfig::scale).
  int total_24s = 100;

  /// Contiguous allocation runs the space is split into.  Blocks larger
  /// than one run become numerically discontiguous (Figure 7b/8).
  int runs = 4;

  /// Points of presence.  Each PoP owns a pool of gateway routers, and
  /// every /24 of the PoP attaches to a subset of that pool.  When zero,
  /// a PoP count is derived from pop_24s_*.
  int pops = 0;
  /// Exact /24 counts per PoP (scaled like total_24s).  When set, overrides
  /// `pops`/`pop_24s_*` and `total_24s` becomes their sum — used to pin the
  /// paper's Table 5 block sizes.
  std::vector<int> pop_sizes;
  /// Inclusive range of /24s served by one PoP (log-uniform draw) when
  /// `pops` is zero.
  int pop_24s_min = 1;
  int pop_24s_max = 32;

  /// Gateway pool per PoP and attachment-set width per /24.
  int gateway_pool_min = 2;
  int gateway_pool_max = 5;
  /// Probability that a /24 attaches to more than one gateway (i.e. sits
  /// behind a non-converging per-destination load balancer).
  double p_multi_gateway = 0.75;

  /// Probability that a whole PoP's gateways never answer TTL-exceeded
  /// probes (the paper's "Unresponsive last-hop" class).
  double p_silent_pop = 0.23;

  /// Probability that a /24 is split into differently-routed sub-blocks
  /// (ground-truth heterogeneity, Table 2 compositions — aligned-disjoint,
  /// the kind §4.2's criteria confirm).
  double p_split_24 = 0.0;

  /// Probability that a single-gateway /24 has a smaller customer block
  /// *carved out* of it (a nested route entry).  Also ground-truth
  /// heterogeneity, but the inclusive kind: Hobbit files it under
  /// "different but hierarchical" and §4.2's aligned-disjoint criteria
  /// correctly do NOT flag it.
  double p_carve_24 = 0.0;

  /// When true every /24 attaches to the PoP's whole gateway pool (used
  /// for the Table 5 giants, which are one block by construction).
  bool full_pool_attachment = false;

  /// Host occupancy: with probability p_sparse a /24 draws occupancy from
  /// the sparse range (addresses enough to pass the snapshot criterion but
  /// often not enough to analyse — the paper's "Too few active" class),
  /// otherwise from the dense range.
  double p_sparse = 0.74;
  double sparse_occupancy_min = 0.009;
  double sparse_occupancy_max = 0.034;
  double dense_occupancy_min = 0.06;
  double dense_occupancy_max = 0.55;

  /// Base RTT range in milliseconds (distance of the org from the
  /// vantage).
  double base_rtt_min_ms = 15.0;
  double base_rtt_max_ms = 120.0;

  /// Reverse-DNS scheme.  For kRdnsTwcBase the generator assigns one of
  /// the TWC patterns per PoP (so naming correlates with topology, which
  /// is what makes stratified sampling win in Fig 12).
  std::uint32_t rdns_scheme = kRdnsGenericIsp;

  /// Mid-path diversity: number of parallel distribution routers between
  /// the AS border and each PoP (per-destination balanced, converging).
  int dist_width_min = 1;
  int dist_width_max = 3;

  /// Extra fixed-chain hops inside the AS (varies path length).
  int chain_min = 0;
  int chain_max = 3;
};

/// Global generation parameters.
struct InternetConfig {
  std::uint64_t seed = 42;
  /// Multiplier applied to every profile's total_24s (tests use ~0.05).
  double scale = 1.0;

  /// Additional vantage points (§6.1: probing from several sources sees
  /// through source-sensitive per-destination balancers).  Each gets its
  /// own access chain into the core; build simulators for them with
  /// Internet::MakeSimulatorAt.
  int extra_vantages = 0;

  /// Core ECMP stages between the vantage and the AS borders:
  /// stage widths of per-flow balanced tier-1 routers.
  std::vector<int> core_stage_widths = {3, 3, 2};

  /// Response model for core/mid routers.
  double core_respond_probability = 0.97;

  HostModelConfig host;
  RttModelConfig rtt;
  SimulatorConfig sim;

  /// The organizations to generate.  Empty means "use the default
  /// paper-shaped census" (see DefaultProfiles()).
  std::vector<OrgProfile> profiles;
};

/// Ground truth about one /24 of the study universe, derivable from the
/// topology but collected here for convenient validation.
struct TruthRecord {
  Prefix prefix;                     ///< the /24
  bool heterogeneous = false;        ///< covered by >1 route entry
  std::uint32_t as_index = 0;
  /// Identifier of the ground-truth homogeneous block this /24 belongs to
  /// (same id == identical gateway set).  Heterogeneous /24s get ~0.
  std::uint64_t truth_block = 0;
};

/// The generated world.
///
/// Movable but not copyable: the simulator holds a pointer into
/// `topology`, which the move operations re-bind.
struct Internet {
  Topology topology;
  Registry registry;
  std::unique_ptr<Simulator> simulator;
  RouterId source_router = 0;

  Internet() = default;
  Internet(const Internet&) = delete;
  Internet& operator=(const Internet&) = delete;
  Internet(Internet&& other) noexcept { *this = std::move(other); }
  Internet& operator=(Internet&& other) noexcept {
    topology = std::move(other.topology);
    registry = std::move(other.registry);
    simulator = std::move(other.simulator);
    source_router = other.source_router;
    study_24s = std::move(other.study_24s);
    truth = std::move(other.truth);
    extra_vantages = std::move(other.extra_vantages);
    host_config = other.host_config;
    rtt_config = other.rtt_config;
    sim_config = other.sim_config;
    if (simulator) simulator->RebindTopology(&topology);
    return *this;
  }

  /// Every allocated /24, sorted — the candidate universe (before the
  /// ZMap-derived /26-coverage filter).
  std::vector<Prefix> study_24s;

  /// Ground truth per /24, parallel to study_24s.
  std::vector<TruthRecord> truth;

  /// Extra vantage points (router id + source address), one per
  /// InternetConfig::extra_vantages.
  struct Vantage {
    RouterId router = kNoRouter;
    Ipv4Address address;
  };
  std::vector<Vantage> extra_vantages;

  /// Model configurations the world was built with (so additional
  /// simulators share the same deterministic draws).
  HostModelConfig host_config;
  RttModelConfig rtt_config;
  SimulatorConfig sim_config;

  /// Builds a simulator probing from the given vantage.  The returned
  /// simulator points into `topology`: build it after the Internet has
  /// reached its final location and do not move the Internet afterwards.
  std::unique_ptr<Simulator> MakeSimulatorAt(const Vantage& vantage) const;

  /// Builds a simulator for a later measurement epoch (availability
  /// re-drawn, churned addresses renumbered) at the primary vantage —
  /// the substrate for longitudinal re-measurement.
  std::unique_ptr<Simulator> MakeEpochSimulator(std::uint32_t epoch) const;

  /// Reverse-DNS scheme of an address (kRdnsNone when unallocated).
  std::uint32_t RdnsSchemeOf(Ipv4Address address) const;

  /// Ground-truth record for a /24; nullptr when not in the universe.
  const TruthRecord* TruthOf(const Prefix& slash24) const;
};

/// The default organization census described in DESIGN.md: Table 3's
/// splitters, Table 5's giants, a TWC-style ISP and generic filler.
std::vector<OrgProfile> DefaultProfiles();

/// Generates the world.  Deterministic in `config`.
Internet BuildInternet(const InternetConfig& config);

/// A small config for unit tests: few organizations, ~threehundred /24s.
InternetConfig TinyConfig(std::uint64_t seed = 7);

}  // namespace hobbit::netsim
