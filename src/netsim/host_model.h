// host_model.h — per-address host behaviour: existence, liveness and
// operating-system defaults.
//
// Everything is a pure function of (seed, address) via stable hashing, so
// the ZMap scanner, the Hobbit prober and tests all see one consistent
// world without storing per-address state for millions of addresses.
//
// Liveness is two-stage to reproduce the paper's §3.3 caveat that some
// addresses active in the ZMap snapshot were gone by probe time: an address
// has a *base* existence draw, then independent availability draws for the
// snapshot epoch and the probing epoch.
#pragma once

#include <cstdint>

#include "netsim/ipv4.h"
#include "netsim/rng.h"
#include "netsim/topology.h"

namespace hobbit::netsim {

/// Default initial TTL families observed in the wild (paper §3.4 cites 64,
/// 128 and 255 as commonplace; 32 models legacy/embedded gear that breaks
/// the inference and exercises Hobbit's first_ttl halving fallback).
enum class TtlFamily : std::uint8_t {
  kUnix64,       ///< Linux/macOS style
  kWindows128,   ///< Windows style
  kNetwork255,   ///< routers, some embedded stacks
  kLegacy32,     ///< non-standard; defeats the TTL heuristic
};

constexpr int DefaultTtlOf(TtlFamily family) {
  switch (family) {
    case TtlFamily::kUnix64: return 64;
    case TtlFamily::kWindows128: return 128;
    case TtlFamily::kNetwork255: return 255;
    case TtlFamily::kLegacy32: return 32;
  }
  return 64;
}

/// Tunables for the host population.
struct HostModelConfig {
  std::uint64_t seed = 1;
  /// Measurement epoch.  Availability draws are re-rolled per epoch, and
  /// a churn fraction of addresses changes occupants entirely (DHCP
  /// renumbering) — the substrate for longitudinal analyses (the paper's
  /// future work).
  std::uint32_t epoch = 0;
  /// Fraction of addresses whose existence re-rolls every epoch.
  double p_address_churn = 0.12;
  /// P(host answers pings at snapshot time | host exists).
  double snapshot_availability = 0.92;
  /// P(host answers pings at probe time | host exists).  Lower than the
  /// snapshot's: the paper notes availability varies between the snapshot
  /// day and the measurement (§2.1 footnote, §3.3).
  double probe_availability = 0.76;
  /// OS mix.
  double p_unix = 0.55;
  double p_windows = 0.35;
  double p_network = 0.08;  // remainder is kLegacy32
};

/// Deterministic host-population oracle.
class HostModel {
 public:
  explicit HostModel(HostModelConfig config) : config_(config) {}

  /// Whether the address is populated at all (a machine is plugged in).
  /// Drawn against the subnet's occupancy.  A churn share of addresses
  /// re-rolls per epoch (dynamic assignment); the rest is epoch-stable.
  bool Exists(Ipv4Address address, const Subnet& subnet) const {
    const bool churns = Draw(address, 0xC4324ULL) < config_.p_address_churn;
    const std::uint64_t salt =
        0xE15ULL + (churns ? config_.epoch : 0u) * 0x9E37ULL;
    return Draw(address, salt) < subnet.occupancy;
  }

  /// Active in the ZMap snapshot taken the day before the measurement.
  bool ActiveInSnapshot(Ipv4Address address, const Subnet& subnet) const {
    return Exists(address, subnet) &&
           Draw(address, 0x54AFULL + config_.epoch * 0x51DULL) <
               config_.snapshot_availability;
  }

  /// Responsive when the Hobbit prober actually sends packets.
  bool ActiveAtProbeTime(Ipv4Address address, const Subnet& subnet) const {
    return Exists(address, subnet) &&
           Draw(address, 0x9206EULL + config_.epoch * 0x51DULL) <
               config_.probe_availability;
  }

  /// Operating-system family (determines the default TTL of replies).
  TtlFamily OsOf(Ipv4Address address) const {
    double u = Draw(address, 0x05F4ULL);
    if (u < config_.p_unix) return TtlFamily::kUnix64;
    u -= config_.p_unix;
    if (u < config_.p_windows) return TtlFamily::kWindows128;
    u -= config_.p_windows;
    if (u < config_.p_network) return TtlFamily::kNetwork255;
    return TtlFamily::kLegacy32;
  }

  int DefaultTtl(Ipv4Address address) const {
    return DefaultTtlOf(OsOf(address));
  }

 private:
  double Draw(Ipv4Address address, std::uint64_t salt) const {
    return HashToUnit(StableHash({config_.seed, address.value(), salt}));
  }

  HostModelConfig config_;
};

}  // namespace hobbit::netsim
