// outage.h — injecting outages into the synthetic Internet.
//
// The paper's first motivation is Trinocular, which "tracks outages for
// /24 blocks" and "may fail to detect outages if a few addresses within a
// /24 block have an outage while others are normally up."  An
// OutageOverlay silences the hosts of chosen prefixes; the simulator
// consults it before answering echo probes, so outage-detection
// experiments can inject whole-block and partial-block failures with
// exact ground truth.
#pragma once

#include <algorithm>
#include <vector>

#include "netsim/ipv4.h"

namespace hobbit::netsim {

/// A set of downed prefixes.  Cheap to query; rebuild to change.
class OutageOverlay {
 public:
  OutageOverlay() = default;

  /// Marks every host under `prefix` as down.
  void Fail(const Prefix& prefix) {
    down_.push_back(prefix);
    std::sort(down_.begin(), down_.end());
  }

  void Clear() { down_.clear(); }

  /// True when `address` lies in any downed prefix.
  bool IsDown(Ipv4Address address) const {
    // Downed prefixes are few per experiment; scan is fine and keeps the
    // structure trivially correct even with nested prefixes.
    for (const Prefix& prefix : down_) {
      if (prefix.Contains(address)) return true;
    }
    return false;
  }

  const std::vector<Prefix>& downed() const { return down_; }

 private:
  std::vector<Prefix> down_;
};

}  // namespace hobbit::netsim
