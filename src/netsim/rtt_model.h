// rtt_model.h — round-trip-time synthesis.
//
// RTTs matter for one experiment only, but it is a distinctive one:
// Figure 6 identifies cellular blocks by the extra delay of the *first*
// probe in a train (radio wake-up), following Padmanabhan et al.'s
// "Timeouts: Beware surprisingly high delay" observation.  The model is
// base propagation (per subnet) + per-hop serialisation + lognormal-ish
// jitter + a first-probe surcharge for cellular subnets.
#pragma once

#include <cmath>
#include <cstdint>

#include "netsim/ipv4.h"
#include "netsim/rng.h"
#include "netsim/topology.h"

namespace hobbit::netsim {

struct RttModelConfig {
  std::uint64_t seed = 1;
  double per_hop_ms = 0.35;           ///< serialisation/queueing per hop
  double jitter_scale_ms = 2.0;       ///< scale of the heavy-ish tail
  /// Cellular radio wake-up: additional delay on the first probe of a
  /// train when the radio is idle — shifted-exponential so that, with the
  /// defaults, ~50 % of cellular addresses show > 0.5 s extra first-RTT
  /// and ~10 % show >= 1 s (paper Fig 6's shape).
  double cellular_wakeup_min_ms = 300.0;
  double cellular_wakeup_mean_extra_ms = 350.0;
  double cellular_wakeup_cap_ms = 3000.0;
  /// Fraction of cellular hosts whose radio happens to be already active
  /// (no surcharge) when the train starts.
  double cellular_radio_active_probability = 0.25;
};

/// Deterministic RTT oracle.  `train_sequence` is the index of the probe
/// within a back-to-back train to the same address (0 = first).
class RttModel {
 public:
  explicit RttModel(RttModelConfig config) : config_(config) {}

  double EchoRtt(Ipv4Address dst, const Subnet& subnet, int hop_count,
                 std::uint32_t train_sequence, std::uint32_t train_id) const {
    double rtt = subnet.base_rtt_ms + config_.per_hop_ms * hop_count;
    rtt += Jitter(dst, train_sequence, train_id);
    if (subnet.kind == SubnetKind::kCellular && train_sequence == 0 &&
        !RadioActive(dst, train_id)) {
      rtt += Wakeup(dst, train_id);
    }
    return rtt;
  }

  /// RTT of an ICMP time-exceeded reply from a router `hop_count` hops out.
  double RouterRtt(Ipv4Address router, int hop_count,
                   std::uint32_t probe_serial) const {
    return 2.0 + config_.per_hop_ms * hop_count +
           Jitter(router, probe_serial, 0);
  }

 private:
  double Unit(Ipv4Address a, std::uint64_t s1, std::uint64_t s2,
              std::uint64_t salt) const {
    return HashToUnit(StableHash({config_.seed, a.value(), s1, s2, salt}));
  }

  // Exponential-tailed jitter: -scale * ln(1-u).
  double Jitter(Ipv4Address a, std::uint32_t seq, std::uint32_t train) const {
    double u = Unit(a, seq, train, 0x3177E8ULL);
    return -config_.jitter_scale_ms * std::log1p(-u * 0.999);
  }

  bool RadioActive(Ipv4Address a, std::uint32_t train) const {
    return Unit(a, train, 0, 0x8AD10ULL) <
           config_.cellular_radio_active_probability;
  }

  double Wakeup(Ipv4Address a, std::uint32_t train) const {
    double u = Unit(a, train, 0, 0x3A4EULL);
    double wakeup = config_.cellular_wakeup_min_ms -
                    config_.cellular_wakeup_mean_extra_ms *
                        std::log1p(-u * 0.9999);
    return wakeup < config_.cellular_wakeup_cap_ms
               ? wakeup
               : config_.cellular_wakeup_cap_ms;
  }

  RttModelConfig config_;
};

}  // namespace hobbit::netsim
