// simulator.h — the packet-level probe engine.
//
// `Simulator` answers the one question every measurement tool asks: "if I
// send this probe, what comes back?"  It walks the router graph hop by hop,
// resolving each ECMP choice with the group's load-balancing policy, and
// synthesises ICMP echo replies, time-exceeded messages or silence.
//
// The walk is purely deterministic in (topology, seed, probe header), which
// is what makes per-destination load balancing *look* like path diversity
// to the tools above: re-sending the same header always takes the same
// path, while changing the destination (or, for per-flow groups, the flow
// identifier) may not.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "netsim/artifacts.h"
#include "netsim/host_model.h"
#include "netsim/ipv4.h"
#include "netsim/outage.h"
#include "netsim/rng.h"
#include "netsim/route_memo.h"
#include "netsim/rtt_model.h"
#include "netsim/topology.h"

namespace hobbit::netsim {

/// A probe as the measurement tools describe it.  `flow_id` stands for the
/// header fields Paris-traceroute varies (ports/checksum); `serial` is a
/// global packet counter used for per-packet balancing and rate limiting;
/// `train_sequence`/`train_id` describe ping trains for the RTT model.
struct ProbeSpec {
  Ipv4Address destination;
  int ttl = 64;
  std::uint16_t flow_id = 0;
  std::uint64_t serial = 0;
  std::uint32_t train_sequence = 0;
  std::uint32_t train_id = 0;
};

enum class ReplyKind : std::uint8_t {
  kEchoReply,     ///< destination answered
  kTtlExceeded,   ///< router at the expiring hop answered
  kTimeout,       ///< nothing came back
};

struct ProbeReply {
  ReplyKind kind = ReplyKind::kTimeout;
  /// Responder: destination for echo replies, router reply address for
  /// TTL-exceeded.  Unset for timeouts.
  Ipv4Address responder;
  /// TTL field of the reply as observed at the source (echo replies only;
  /// this is what Hobbit's hop-count inference reads).
  int reply_ttl = 0;
  double rtt_ms = 0.0;
  /// Forward hop index (1-based) at which the reply was generated.
  int hop = 0;
};

/// Per-simulator knobs.
struct SimulatorConfig {
  std::uint64_t seed = 1;
  /// Maximum forward path length before the walk is declared broken.
  int max_hops = 64;
  /// Fraction of destinations whose reverse path is longer than the
  /// forward one (hop-count asymmetry defeats naive TTL inference and
  /// exercises Hobbit's first_ttl halving loop).
  double p_reverse_asymmetry = 0.08;
  int max_reverse_extra_hops = 3;
};

/// Deterministic hop-by-hop forwarding over a sealed Topology.
class Simulator {
 public:
  /// The topology must outlive the simulator and must be sealed.
  Simulator(const Topology* topology, RouterId source_router,
            Ipv4Address source_address, HostModel host_model,
            RttModel rtt_model, SimulatorConfig config);

  /// Sends one probe and returns what the source observes.  `memo`, when
  /// non-null, caches FIB resolutions across calls (see route_memo.h);
  /// replies are bit-identical with and without it.  The memo must be
  /// owned by the calling thread — the simulator itself stays const.
  ProbeReply Send(const ProbeSpec& probe, RouteMemo* memo = nullptr) const;

  /// The forward router path the given header would take, ending with the
  /// last-hop router.  Empty when the destination is not routable.  This
  /// is ground truth used by tests and by the internal walk — measurement
  /// tools must not call it.
  std::vector<RouterId> ResolvePath(Ipv4Address destination,
                                    std::uint16_t flow_id,
                                    std::uint64_t serial,
                                    RouteMemo* memo = nullptr) const;

  /// Ground-truth last-hop router for a header, or kNoRouter.
  RouterId GroundTruthLastHop(Ipv4Address destination,
                              std::uint16_t flow_id) const;

  const Topology& topology() const { return *topology_; }

  /// Re-points the simulator at a relocated topology (used by Internet's
  /// move operations; the topology contents must be identical).
  void RebindTopology(const Topology* topology) { topology_ = topology; }

  /// Installs (or clears, with nullptr) an outage overlay: hosts under a
  /// downed prefix stop answering echo probes.  The overlay must outlive
  /// its installation.
  void SetOutageOverlay(const OutageOverlay* overlay) { outage_ = overlay; }

  /// Installs (or clears, with nullptr) a measurement-artifact hook:
  /// every Send reply is routed through ReplyArtifacts::Rewrite before
  /// the caller sees it (see artifacts.h for the determinism contract).
  /// The hook must outlive its installation; install/clear only while no
  /// probe is in flight.
  void SetReplyArtifacts(const ReplyArtifacts* artifacts) {
    artifacts_ = artifacts;
  }
  const ReplyArtifacts* reply_artifacts() const { return artifacts_; }

  const HostModel& host_model() const { return host_model_; }
  const RttModel& rtt_model() const { return rtt_model_; }
  Ipv4Address source_address() const { return source_address_; }

  /// Number of probes this simulator has answered (measurement-load
  /// accounting for the efficiency experiments).  Atomic: Send is const
  /// and safe to call from several measurement threads.
  std::uint64_t probes_sent() const {
    return probes_sent_.load(std::memory_order_relaxed);
  }
  void ResetProbeCounter() {
    probes_sent_.store(0, std::memory_order_relaxed);
  }

 private:
  /// Picks the next hop from an ECMP group at `router` for the header.
  RouterId PickNextHop(RouterId router, const EcmpGroup& group,
                       Ipv4Address dst, std::uint16_t flow_id,
                       std::uint64_t serial) const;

  /// Allocation-free forward walk used by Send: returns the path length
  /// (routers traversed, 0 when unroutable) and, when `want_hop` lies on
  /// the path, stores the router at that 1-based hop in `*at_hop`.
  /// Identical routing decisions to ResolvePath.  With a memo, whole
  /// walks are served from (and recorded into) its path cache; pass
  /// `full_path` to additionally collect every hop (disables the cached
  /// fast path for this call).
  int WalkForward(Ipv4Address destination, std::uint16_t flow_id,
                  std::uint64_t serial, RouteMemo* memo, int want_hop,
                  RouterId* at_hop,
                  std::vector<RouterId>* full_path = nullptr) const;

  /// Send minus the probe counter and the artifact hook: computes the
  /// clean reply and reports the walk's path length (0 = unroutable) for
  /// the hook's ArtifactContext.  Every return path of Send funnels
  /// through exactly one Rewrite application in Send itself.
  ProbeReply SendImpl(const ProbeSpec& probe, RouteMemo* memo,
                      int* path_length_out) const;

  bool RouterResponds(RouterId router, Ipv4Address destination) const;

  int ReverseHops(Ipv4Address destination, int forward_hops) const;

  const Topology* topology_;
  RouterId source_router_;
  Ipv4Address source_address_;
  HostModel host_model_;
  RttModel rtt_model_;
  SimulatorConfig config_;
  // StableHash({config_.seed, ...}) pre-folded through its first part;
  // every forwarding-time hash starts from this state (see StableHashFrom).
  std::uint64_t seed_hash_state_;
  const OutageOverlay* outage_ = nullptr;
  const ReplyArtifacts* artifacts_ = nullptr;
  mutable std::atomic<std::uint64_t> probes_sent_{0};
};

}  // namespace hobbit::netsim
