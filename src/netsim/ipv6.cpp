#include "netsim/ipv6.h"

#include <array>
#include <charconv>

#include "netsim/ipv4.h"

namespace hobbit::netsim {
namespace {

/// Parses one hex group (1-4 digits) at the front of `text`.
std::optional<std::uint16_t> ConsumeGroup(std::string_view& text) {
  unsigned value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value, 16);
  if (ec != std::errc{} || ptr == begin || ptr - begin > 4 ||
      value > 0xFFFF) {
    return std::nullopt;
  }
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return static_cast<std::uint16_t>(value);
}

}  // namespace

std::optional<Ipv6Address> Ipv6Address::Parse(std::string_view text) {
  // Collect groups before and after a single "::".
  std::array<std::uint16_t, 8> head{}, tail{};
  int head_count = 0, tail_count = 0;
  bool seen_gap = false;

  if (text.empty()) return std::nullopt;
  if (text.substr(0, 2) == "::") {
    seen_gap = true;
    text.remove_prefix(2);
  }

  bool expect_group = !text.empty();
  while (!text.empty()) {
    // Embedded IPv4 tail: the remaining text contains a dot.
    if (text.find('.') != std::string_view::npos &&
        text.find(':') == std::string_view::npos) {
      auto v4 = Ipv4Address::Parse(text);
      if (!v4) return std::nullopt;
      auto push = [&](std::uint16_t group) {
        if (seen_gap) {
          if (tail_count >= 8) return false;
          tail[tail_count++] = group;
        } else {
          if (head_count >= 8) return false;
          head[head_count++] = group;
        }
        return true;
      };
      if (!push(static_cast<std::uint16_t>(v4->value() >> 16)) ||
          !push(static_cast<std::uint16_t>(v4->value() & 0xFFFF))) {
        return std::nullopt;
      }
      text = {};
      expect_group = false;
      break;
    }
    auto group = ConsumeGroup(text);
    if (!group) return std::nullopt;
    if (seen_gap) {
      if (tail_count >= 8) return std::nullopt;
      tail[tail_count++] = *group;
    } else {
      if (head_count >= 8) return std::nullopt;
      head[head_count++] = *group;
    }
    expect_group = false;
    if (text.empty()) break;
    if (text.substr(0, 2) == "::") {
      if (seen_gap) return std::nullopt;  // at most one gap
      seen_gap = true;
      text.remove_prefix(2);
      continue;  // gap may legally end the address
    }
    if (text.front() == ':') {
      text.remove_prefix(1);
      expect_group = true;
      continue;
    }
    return std::nullopt;  // stray character
  }
  if (expect_group) return std::nullopt;  // dangling single ':'

  const int total = head_count + tail_count;
  if (seen_gap ? total >= 8 : total != 8) return std::nullopt;

  std::array<std::uint16_t, 8> groups{};
  for (int i = 0; i < head_count; ++i) groups[i] = head[i];
  for (int i = 0; i < tail_count; ++i) {
    groups[8 - tail_count + i] = tail[i];
  }
  std::uint64_t high = 0, low = 0;
  for (int i = 0; i < 4; ++i) high = (high << 16) | groups[i];
  for (int i = 4; i < 8; ++i) low = (low << 16) | groups[i];
  return Ipv6Address(high, low);
}

std::string Ipv6Address::ToString() const {
  std::array<std::uint16_t, 8> groups;
  for (int i = 0; i < 8; ++i) groups[static_cast<std::size_t>(i)] = Group(i);

  // RFC 5952: find the longest run of zero groups (length >= 2),
  // leftmost wins ties.
  int best_start = -1, best_length = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_length) {
      best_start = i;
      best_length = j - i;
    }
    i = j;
  }
  if (best_length < 2) best_start = -1;

  std::string out;
  auto append_hex = [&out](std::uint16_t value) {
    char buffer[5];
    auto [ptr, ec] = std::to_chars(buffer, buffer + 5, value, 16);
    (void)ec;
    out.append(buffer, ptr);
  };
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_length;
      continue;
    }
    if (!out.empty() && out.back() != ':') out.push_back(':');
    append_hex(groups[static_cast<std::size_t>(i)]);
    ++i;
  }
  return out;
}

std::optional<Ipv6Prefix> Ipv6Prefix::Parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto base = Ipv6Address::Parse(text.substr(0, slash));
  if (!base) return std::nullopt;
  std::string_view length_text = text.substr(slash + 1);
  unsigned length = 0;
  auto [ptr, ec] = std::from_chars(
      length_text.data(), length_text.data() + length_text.size(), length);
  if (ec != std::errc{} || ptr != length_text.data() + length_text.size() ||
      length > 128) {
    return std::nullopt;
  }
  Ipv6Prefix canonical = Ipv6Prefix::Of(*base, static_cast<int>(length));
  if (canonical.base() != *base) return std::nullopt;
  return canonical;
}

std::string Ipv6Prefix::ToString() const {
  return base_.ToString() + "/" + std::to_string(length_);
}

}  // namespace hobbit::netsim
