#include "netsim/internet.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <numeric>
#include <stdexcept>

#include "netsim/rdns.h"
#include "netsim/rng.h"

namespace hobbit::netsim {
namespace {

// ---------------------------------------------------------------------------
// Address-space allocation
// ---------------------------------------------------------------------------

/// Allocates runs of consecutive /24 blocks out of the public unicast
/// space, avoiding reserved ranges and the vantage network.  Runs land at
/// random bases so one organization's space is numerically scattered —
/// the effect behind Figures 7b and 8.
class Slash24Allocator {
 public:
  explicit Slash24Allocator(Rng rng) : rng_(rng) {
    // Reserve (as [first24, last24) intervals of /24 numbers):
    Reserve(0, 1 << 16);                       // 0.0.0.0/8
    Reserve(10 << 16, 11 << 16);               // 10/8 (router interfaces)
    Reserve(100 << 16, 101 << 16);             // CGNAT-ish, keep clear
    Reserve(127 << 16, 128 << 16);             // loopback
    Reserve((128 << 16) + (8 << 8), (128 << 16) + (9 << 8));  // 128.8/16 UMD
    Reserve((169 << 16) + (254 << 8), (169 << 16) + (255 << 8));
    Reserve((172 << 16) + (16 << 8), (172 << 16) + (32 << 8));
    Reserve((192 << 16) + (168 << 8), (192 << 16) + (169 << 8));
    Reserve(224 << 16, 1 << 24);               // multicast + reserved
  }

  /// Allocates `length` consecutive /24s; returns the first /24 number.
  std::uint32_t AllocateRun(std::uint32_t length) {
    assert(length > 0);
    for (int attempt = 0; attempt < 512; ++attempt) {
      auto base = static_cast<std::uint32_t>(
          rng_.NextBelow((1 << 24) - length));
      if (Free(base, base + length)) {
        Reserve(base, base + length);
        return base;
      }
    }
    // Extremely unlikely fallback: first-fit scan.
    std::uint32_t cursor = 1 << 16;
    for (auto& [start, end] : intervals_) {
      if (start >= cursor + length) break;
      cursor = std::max(cursor, end);
    }
    if (cursor + length > (1u << 24)) {
      throw std::runtime_error("Slash24Allocator: address space exhausted");
    }
    Reserve(cursor, cursor + length);
    return cursor;
  }

 private:
  bool Free(std::uint32_t first, std::uint32_t last) const {
    auto pos = intervals_.upper_bound(first);
    if (pos != intervals_.begin()) {
      auto prev = std::prev(pos);
      if (prev->second > first) return false;
    }
    return pos == intervals_.end() || pos->first >= last;
  }

  void Reserve(std::uint32_t first, std::uint32_t last) {
    intervals_[first] = last;  // runs never merge; map stays small
  }

  Rng rng_;
  std::map<std::uint32_t, std::uint32_t> intervals_;  // start24 -> end24
};

/// Decomposes [first24, first24+length) of /24 numbers into maximal CIDR
/// prefixes (for FIB entries and registry allocations).
std::vector<Prefix> CidrChunks(std::uint32_t first24, std::uint32_t length) {
  std::vector<Prefix> out;
  std::uint32_t cursor = first24;
  std::uint32_t remaining = length;
  while (remaining > 0) {
    // Largest power of two that both aligns with cursor and fits.
    std::uint32_t align = cursor == 0 ? remaining : (cursor & ~(cursor - 1));
    std::uint32_t size = std::min(align, remaining);
    // Round size down to a power of two.
    while ((size & (size - 1)) != 0) size &= size - 1;
    int length_bits = 24;
    for (std::uint32_t s = size; s > 1; s >>= 1) --length_bits;
    out.push_back(Prefix::Of(Ipv4Address(cursor << 8), length_bits));
    cursor += size;
    remaining -= size;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sub-/24 split compositions (Table 2 ground truth)
// ---------------------------------------------------------------------------

struct Composition {
  std::vector<int> lengths;  // prefix lengths, summing to a full /24
  double probability;
};

const std::vector<Composition>& Table2Compositions() {
  static const std::vector<Composition> kCompositions = {
      {{25, 25}, 0.5048},
      {{25, 26, 26}, 0.2065},
      {{26, 26, 26, 26}, 0.1579},
      {{25, 26, 27, 27}, 0.0592},
      {{26, 26, 26, 27, 27}, 0.0463},
      {{26, 26, 27, 27, 27, 27}, 0.0113},
      {{25, 26, 27, 28, 28}, 0.0081},
      {{25, 27, 27, 27, 27}, 0.0058},
  };
  return kCompositions;
}

const Composition& DrawComposition(Rng& rng) {
  double u = rng.NextUnit();
  double total = 0.0;
  for (const Composition& c : Table2Compositions()) total += c.probability;
  u *= total;
  for (const Composition& c : Table2Compositions()) {
    u -= c.probability;
    if (u <= 0) return c;
  }
  return Table2Compositions().front();
}

/// The prefixes covering `outer` minus `inner`: the siblings along the
/// path from outer down to inner.  Used to give a carved-out customer
/// block its complement.
std::vector<Prefix> ComplementWithin(const Prefix& outer,
                                     const Prefix& inner) {
  std::vector<Prefix> out;
  for (int len = outer.length() + 1; len <= inner.length(); ++len) {
    std::uint32_t on_path = Prefix::Of(inner.base(), len).base().value();
    std::uint32_t sibling = on_path ^ (1u << (32 - len));
    out.push_back(Prefix::Of(Ipv4Address(sibling), len));
  }
  return out;
}

/// Packs a composition into concrete sub-prefixes of `slash24`.
/// Larger blocks first gives a valid aligned packing for every Table 2
/// composition.
std::vector<Prefix> PackComposition(const Prefix& slash24,
                                    std::vector<int> lengths) {
  std::sort(lengths.begin(), lengths.end());
  std::vector<Prefix> out;
  std::uint32_t offset = 0;  // in addresses
  for (int len : lengths) {
    out.push_back(Prefix::Of(Ipv4Address(slash24.base().value() + offset),
                             len));
    offset += std::uint32_t{1} << (32 - len);
  }
  assert(offset == 256);
  return out;
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

class Builder {
 public:
  explicit Builder(const InternetConfig& config)
      : config_(config),
        rng_(config.seed),
        allocator_(Rng(config.seed).Fork(0xA110CULL)) {}

  Internet Build();

 private:
  Ipv4Address NextRouterAddress() {
    // Router interfaces live in 10/8, outside the destination universe.
    ++router_address_counter_;
    return Ipv4Address((10u << 24) + router_address_counter_);
  }

  RouterId MakeRouter(std::string name, double respond_probability) {
    Router router;
    router.reply_address = NextRouterAddress();
    router.response.respond_probability = respond_probability;
    router.name = std::move(name);
    return topology_.AddRouter(std::move(router));
  }

  void BuildCore();
  void BuildOrg(const OrgProfile& profile);

  /// Installs `prefix -> group` into every last-stage core router.
  void AnnounceToCore(const Prefix& prefix, RouterId border) {
    for (RouterId r : core_last_stage_) {
      topology_.router(r).fib.AddSingle(prefix, border);
    }
  }

  const InternetConfig& config_;
  Rng rng_;
  Slash24Allocator allocator_;
  Topology topology_;
  Registry registry_;
  std::uint32_t router_address_counter_ = 0;

  RouterId source_router_ = kNoRouter;
  std::vector<Internet::Vantage> extra_vantages_;
  std::vector<RouterId> core_last_stage_;

  std::vector<Prefix> study_24s_;
  std::vector<TruthRecord> truth_;
};

void Builder::BuildCore() {
  source_router_ = MakeRouter("vantage-gw", 1.0);
  RouterId campus = MakeRouter("campus-core", config_.core_respond_probability);
  RouterId edge = MakeRouter("isp-edge", config_.core_respond_probability);
  topology_.router(source_router_)
      .fib.AddSingle(Prefix::Of(Ipv4Address(0), 0), campus);
  topology_.router(campus).fib.AddSingle(Prefix::Of(Ipv4Address(0), 0), edge);

  // Additional vantage points: own access router, own source address,
  // joining the shared core at the campus aggregation.
  for (int v = 0; v < config_.extra_vantages; ++v) {
    RouterId gw = MakeRouter("vantage-" + std::to_string(v + 1) + "-gw",
                             1.0);
    topology_.router(gw).fib.AddSingle(Prefix::Of(Ipv4Address(0), 0),
                                       campus);
    extra_vantages_.push_back(
        {gw, Ipv4Address::FromOctets(
                 128, static_cast<std::uint8_t>(9 + v), 1, 22)});
  }

  std::vector<RouterId> previous = {edge};
  for (std::size_t stage = 0; stage < config_.core_stage_widths.size();
       ++stage) {
    std::vector<RouterId> current;
    int width = std::max(1, config_.core_stage_widths[stage]);
    current.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      current.push_back(MakeRouter(
          "tier1-s" + std::to_string(stage) + "-" + std::to_string(i),
          config_.core_respond_probability));
    }
    EcmpGroup group{current, LbPolicy::kPerFlow};
    for (RouterId r : previous) {
      topology_.router(r).fib.Add(Prefix::Of(Ipv4Address(0), 0), group);
    }
    previous = std::move(current);
  }
  core_last_stage_ = previous;
}

void Builder::BuildOrg(const OrgProfile& profile) {
  Rng org_rng = rng_.Fork(StableHash({profile.as.asn,
                                      profile.rdns_scheme,
                                      static_cast<std::uint64_t>(
                                          profile.total_24s)}));
  std::uint32_t as_index = registry_.AddAs(profile.as);

  // --- decide PoP sizes ------------------------------------------------
  auto scaled = [&](int n) {
    int v = static_cast<int>(std::lround(n * config_.scale));
    return std::max(1, v);
  };
  std::vector<int> pop_sizes;
  int total = 0;
  if (!profile.pop_sizes.empty()) {
    for (int s : profile.pop_sizes) pop_sizes.push_back(scaled(s));
    total = std::accumulate(pop_sizes.begin(), pop_sizes.end(), 0);
  } else {
    total = scaled(profile.total_24s);
    int assigned = 0;
    while (assigned < total) {
      // Log-uniform PoP size in [pop_24s_min, pop_24s_max].
      double lo = std::log(static_cast<double>(std::max(1, profile.pop_24s_min)));
      double hi = std::log(static_cast<double>(std::max(1, profile.pop_24s_max)));
      int size = static_cast<int>(
          std::lround(std::exp(lo + (hi - lo) * org_rng.NextUnit())));
      size = std::max(1, std::min(size, total - assigned));
      pop_sizes.push_back(size);
      assigned += size;
    }
  }

  // --- allocate address runs ------------------------------------------
  int runs = std::max(1, profile.runs);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> run_spans;  // base,len
  {
    int remaining = total;
    for (int r = 0; r < runs && remaining > 0; ++r) {
      int want = (r == runs - 1)
                     ? remaining
                     : std::max(1, remaining / (runs - r) +
                                       static_cast<int>(org_rng.NextInRange(
                                           -remaining / (4 * runs),
                                           remaining / (4 * runs))));
      want = std::min(want, remaining);
      auto base = allocator_.AllocateRun(static_cast<std::uint32_t>(want));
      run_spans.emplace_back(base, static_cast<std::uint32_t>(want));
      remaining -= want;
    }
  }

  // --- AS border router + core announcement ----------------------------
  RouterId border = MakeRouter(profile.as.organization + "-border",
                               config_.core_respond_probability);
  for (auto& [base, len] : run_spans) {
    for (const Prefix& chunk : CidrChunks(base, len)) {
      AnnounceToCore(chunk, border);
      registry_.AddAllocation(chunk, as_index);
      registry_.AddWhois(WhoisRecord{
          chunk, profile.as.organization, "ALLOCATED",
          profile.as.country, "00000",
          "200" + std::to_string(chunk.base().value() % 10) + "0101"});
    }
  }

  // --- deal /24s of the runs out to PoPs, a few slices each ------------
  // Round-robin over run cursors in chunks, so each PoP is made of a few
  // contiguous slices drawn from scattered runs.
  std::vector<std::uint32_t> cursor(run_spans.size());
  std::vector<std::uint32_t> left(run_spans.size());
  for (std::size_t i = 0; i < run_spans.size(); ++i) left[i] = run_spans[i].second;
  std::size_t run_cursor = 0;

  auto take_slice = [&](int want) -> std::vector<std::uint32_t> {
    std::vector<std::uint32_t> slots;  // /24 numbers
    while (want > 0) {
      while (left[run_cursor] == 0) run_cursor = (run_cursor + 1) % run_spans.size();
      auto take = static_cast<std::uint32_t>(
          std::min<std::uint32_t>(static_cast<std::uint32_t>(want),
                                  left[run_cursor]));
      // Cap each slice so every PoP of two or more /24s draws from at
      // least two (scattered) runs — homogeneous blocks end up numerically
      // discontiguous, as in Figure 7b.
      // Small PoPs stay contiguous; anything from ~10 /24s up splits.
      const auto half_want = static_cast<std::uint32_t>(
          want >= 10 ? (want + 1) / 2 : want);
      take = std::max<std::uint32_t>(
          1, std::min({take, half_want,
                       std::max<std::uint32_t>(
                           1, run_spans[run_cursor].second / 2)}));
      std::uint32_t base = run_spans[run_cursor].first + cursor[run_cursor];
      for (std::uint32_t i = 0; i < take; ++i) slots.push_back(base + i);
      cursor[run_cursor] += take;
      left[run_cursor] -= take;
      want -= static_cast<int>(take);
      run_cursor = (run_cursor + 1) % run_spans.size();
    }
    return slots;
  };

  // --- build each PoP ----------------------------------------------------
  for (std::size_t pop = 0; pop < pop_sizes.size(); ++pop) {
    Rng pop_rng = org_rng.Fork(pop + 1);
    std::vector<std::uint32_t> slots = take_slice(pop_sizes[pop]);

    const std::string pop_name =
        profile.as.organization + "-pop" + std::to_string(pop);

    // Distribution layer (converging per-destination diversity).
    int dist_width = static_cast<int>(pop_rng.NextInRange(
        profile.dist_width_min, profile.dist_width_max));
    std::vector<RouterId> dist;
    for (int i = 0; i < std::max(1, dist_width); ++i) {
      dist.push_back(MakeRouter(pop_name + "-dist" + std::to_string(i),
                                config_.core_respond_probability));
    }
    LbPolicy dist_policy = pop_rng.NextBool(0.7)
                               ? LbPolicy::kPerDestination
                               : LbPolicy::kPerFlow;
    if (dist_policy == LbPolicy::kPerDestination && pop_rng.NextBool(0.3)) {
      dist_policy = LbPolicy::kPerDestAndSrc;
    }

    // Metro layer: a SECOND per-destination ECMP stage.  Cascaded
    // per-destination balancers multiply the number of distinct routes
    // (paper §3.1: "the cardinality multiplicatively increases as the
    // number of load-balancers increases") while still converging on the
    // same gateways.
    int metro_width = 2 + static_cast<int>(pop_rng.NextBelow(3));
    std::vector<RouterId> metro;
    for (int i = 0; i < metro_width; ++i) {
      metro.push_back(MakeRouter(pop_name + "-metro" + std::to_string(i),
                                 config_.core_respond_probability));
    }
    // A second per-destination metro stage for some PoPs: three cascaded
    // per-destination balancers push the per-/24 route cardinality toward
    // the number of addresses, which is where route-level comparison (and
    // route-level Hobbit) breaks down.
    std::vector<RouterId> metro2;
    if (pop_rng.NextBool(0.4)) {
      int metro2_width = 2 + static_cast<int>(pop_rng.NextBelow(2));
      for (int i = 0; i < metro2_width; ++i) {
        metro2.push_back(MakeRouter(
            pop_name + "-metro2-" + std::to_string(i),
            config_.core_respond_probability));
      }
    }

    // Optional extra chain between metro and aggregation.
    int chain_len = static_cast<int>(
        pop_rng.NextInRange(profile.chain_min, profile.chain_max));
    std::vector<RouterId> chain;
    for (int i = 0; i < chain_len; ++i) {
      chain.push_back(MakeRouter(pop_name + "-c" + std::to_string(i),
                                 config_.core_respond_probability));
    }
    RouterId agg = MakeRouter(pop_name + "-agg",
                              config_.core_respond_probability);

    // Wire: border -> dist (ECMP) -> metro (per-dest ECMP)
    //        [-> metro2 (per-dest ECMP)] -> chain -> agg.
    RouterId below_metros = chain.empty() ? agg : chain.front();
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      topology_.router(chain[i]).fib.AddSingle(Prefix::Of(Ipv4Address(0), 0),
                                               chain[i + 1]);
    }
    if (!chain.empty()) {
      topology_.router(chain.back())
          .fib.AddSingle(Prefix::Of(Ipv4Address(0), 0), agg);
    }
    if (!metro2.empty()) {
      for (RouterId m : metro2) {
        topology_.router(m).fib.AddSingle(Prefix::Of(Ipv4Address(0), 0),
                                          below_metros);
      }
      for (RouterId m : metro) {
        topology_.router(m).fib.Add(
            Prefix::Of(Ipv4Address(0), 0),
            EcmpGroup{metro2, LbPolicy::kPerDestination});
      }
    } else {
      for (RouterId m : metro) {
        topology_.router(m).fib.AddSingle(Prefix::Of(Ipv4Address(0), 0),
                                          below_metros);
      }
    }
    const LbPolicy metro_policy = pop_rng.NextBool(0.85)
                                      ? LbPolicy::kPerDestination
                                      : LbPolicy::kPerFlow;
    for (RouterId d : dist) {
      topology_.router(d).fib.Add(Prefix::Of(Ipv4Address(0), 0),
                                  EcmpGroup{metro, metro_policy});
    }

    // Gateway pool.  A silent PoP reproduces "Unresponsive last-hop".
    bool silent = pop_rng.NextBool(profile.p_silent_pop);
    int pool_size = static_cast<int>(pop_rng.NextInRange(
        profile.gateway_pool_min, profile.gateway_pool_max));
    pool_size = std::max(1, pool_size);
    std::vector<RouterId> pool;
    for (int i = 0; i < pool_size; ++i) {
      pool.push_back(MakeRouter(pop_name + "-gw" + std::to_string(i),
                                silent ? 0.0 : 0.93));
    }

    // Announce the PoP's slices from the border through the dist layer.
    {
      // Group consecutive slots into spans for compact FIB entries.
      std::size_t i = 0;
      while (i < slots.size()) {
        std::size_t j = i + 1;
        while (j < slots.size() && slots[j] == slots[j - 1] + 1) ++j;
        for (const Prefix& chunk :
             CidrChunks(slots[i], static_cast<std::uint32_t>(j - i))) {
          topology_.router(border).fib.Add(chunk,
                                           EcmpGroup{dist, dist_policy});
        }
        i = j;
      }
    }

    // Gateway ECMP hashing: some routers hash the full 5-tuple (per-flow
    // — MDA's flow variation then reveals every gateway for each single
    // destination, so addresses share a common last-hop set), others hash
    // the destination only (per-destination — each address pins to one
    // gateway and only probing many addresses reveals the set).
    LbPolicy gateway_policy = LbPolicy::kPerDestination;
    if (!profile.full_pool_attachment) {
      double u = pop_rng.NextUnit();
      if (u < 0.18) {
        gateway_policy = LbPolicy::kPerFlow;
      } else if (u < 0.62) {
        gateway_policy = LbPolicy::kPerDestinationCyclic;
      } else if (u < 0.80) {
        // Source-sensitive per-destination hashing: looks identical to
        // plain per-destination from one vantage, but a second vantage
        // sees a different address-to-gateway mapping (§6.1).
        gateway_policy = LbPolicy::kPerDestAndSrc;
      }
    }

    // Multi-gateway attachment sets: the distinct ECMP groups this PoP's
    // route entries point at.  At most two, sharing at most one gateway —
    // distinct route entries in the wild target substantially different
    // gateway sets, while /24s under ONE entry share an identical set.
    std::vector<std::vector<RouterId>> attach_sets;
    if (profile.full_pool_attachment) {
      attach_sets.push_back(pool);
    } else if (pool_size >= 2) {
      int w0 = 2;
      if (pool_size >= 3 && pop_rng.NextBool(0.7)) ++w0;
      if (pool_size >= 4 && pop_rng.NextBool(0.45)) ++w0;
      if (pool_size >= 5 && pop_rng.NextBool(0.25)) ++w0;
      w0 = std::min(w0, pool_size);
      attach_sets.emplace_back(pool.begin(), pool.begin() + w0);
      const int remaining = pool_size - w0;
      if (remaining >= 1 && pop_rng.NextBool(0.5)) {
        // Second set: the rest of the pool, possibly sharing one gateway.
        int start = w0 - (pop_rng.NextBool(0.4) ? 1 : 0);
        if (pool_size - start >= 2) {
          attach_sets.emplace_back(pool.begin() + start, pool.end());
        }
      }
    }

    double pop_rtt =
        profile.base_rtt_min_ms +
        pop_rng.NextUnit() * (profile.base_rtt_max_ms - profile.base_rtt_min_ms);
    const double pop_geo_x = pop_rng.NextUnit();
    const double pop_geo_y = pop_rng.NextUnit();

    std::uint32_t pop_scheme = profile.rdns_scheme;
    if (pop_scheme == kRdnsTwcBase) {
      // Large PoPs share a small pool of common naming schemes; small
      // PoPs carry the rare ones.  This skew is what makes stratified
      // sampling beat random sampling in Fig 12: random draws keep
      // hitting the common schemes.
      if (slots.size() >= 8) {
        pop_scheme = kRdnsTwcBase +
                     static_cast<std::uint32_t>(
                         pop_rng.NextBelow(kTwcPatternCount / 3));
      } else {
        pop_scheme = kRdnsTwcBase + kTwcPatternCount / 3 +
                     static_cast<std::uint32_t>(pop_rng.NextBelow(
                         kTwcPatternCount - kTwcPatternCount / 3));
      }
    }

    // --- create subnets for each /24 of the PoP -------------------------
    for (std::uint32_t slot : slots) {
      Prefix slash24 = Prefix::Of(Ipv4Address(slot << 8), 24);
      Rng b_rng = pop_rng.Fork(slot);

      // Reverse-DNS naming correlates with the PoP but is not perfectly
      // aligned with it: a minority of /24s carry a different scheme of
      // the same ISP (why a single stratified pass covers only part of
      // the patterns in Fig 12).
      std::uint32_t scheme = pop_scheme;
      if (profile.rdns_scheme == kRdnsTwcBase && b_rng.NextBool(0.15)) {
        scheme = kRdnsTwcBase +
                 static_cast<std::uint32_t>(b_rng.NextBelow(kTwcPatternCount));
      }

      double occupancy =
          b_rng.NextBool(profile.p_sparse)
              ? profile.sparse_occupancy_min +
                    b_rng.NextUnit() * (profile.sparse_occupancy_max -
                                        profile.sparse_occupancy_min)
              : profile.dense_occupancy_min +
                    b_rng.NextUnit() * (profile.dense_occupancy_max -
                                        profile.dense_occupancy_min);

      bool split = b_rng.NextBool(profile.p_split_24);
      bool carve = !split && b_rng.NextBool(profile.p_carve_24);
      TruthRecord record;
      record.prefix = slash24;
      record.as_index = as_index;
      record.heterogeneous = split || carve;

      if (split) {
        // Sub-assigned customer blocks are occupied: redraw occupancy
        // from the dense range so the split is actually measurable.
        occupancy = profile.dense_occupancy_min +
                    b_rng.NextUnit() * (profile.dense_occupancy_max -
                                        profile.dense_occupancy_min);
      }

      if (carve) {
        // Nested route entry: a small customer block inside an otherwise
        // single-gateway /24.  LPM makes the carved entry win inside its
        // prefix.
        // Mostly /26 carves: larger carved blocks hold more active hosts,
        // as real customer assignments do.
        const double carve_u = b_rng.NextUnit();
        const int carve_len = carve_u < 0.5 ? 26 : (carve_u < 0.85 ? 27 : 28);
        const auto carve_index = static_cast<std::uint32_t>(
            b_rng.NextBelow(std::uint64_t{1} << (carve_len - 24)));
        const Prefix carved = slash24.Child(carve_len, carve_index);
        RouterId base_gw = pool[b_rng.NextBelow(pool.size())];
        RouterId carve_gw = MakeRouter(
            pop_name + "-carve-gw-" + carved.ToString(),
            silent ? 0.0 : 0.93);
        topology_.router(agg).fib.Add(slash24,
                                      EcmpGroup{{base_gw}, dist_policy});
        topology_.router(agg).fib.Add(carved,
                                      EcmpGroup{{carve_gw}, dist_policy});
        auto add_subnet = [&](const Prefix& p, RouterId gw) {
          Subnet subnet;
          subnet.prefix = p;
          subnet.gateways = {gw};
          subnet.as_index = as_index;
          subnet.kind = profile.kind;
          subnet.occupancy = occupancy;
          subnet.base_rtt_ms = pop_rtt;
          subnet.rdns_scheme = scheme;
          subnet.geo_x = pop_geo_x;
          subnet.geo_y = pop_geo_y;
          topology_.AddSubnet(subnet);
        };
        for (const Prefix& rest : ComplementWithin(slash24, carved)) {
          add_subnet(rest, base_gw);
        }
        add_subnet(carved, carve_gw);
        registry_.AddWhois(WhoisRecord{
            carved, profile.as.organization + " Customer-" +
                        std::to_string(slot % 997) + "-carved",
            "CUSTOMER",
            "Carved assignment, " + profile.as.country,
            std::to_string(360000 + slot % 9000),
            std::string("2015") + "0" + std::to_string(1 + (slot % 9)) +
                "21"});
        record.truth_block = StableHash({slash24.base().value(), 0xCA4EULL});
      } else if (split) {
        // Ground-truth heterogeneous: differently-routed sub-blocks, each
        // with its own single gateway and WHOIS customer record.
        const Composition& comp = DrawComposition(b_rng);
        std::vector<Prefix> subs = PackComposition(slash24, comp.lengths);
        int customer = 0;
        for (const Prefix& sub : subs) {
          RouterId gw = MakeRouter(
              pop_name + "-cust-gw-" + sub.ToString(),
              silent ? 0.0 : 0.93);
          topology_.router(agg).fib.Add(sub, EcmpGroup{{gw}, dist_policy});
          Subnet subnet;
          subnet.prefix = sub;
          subnet.gateways = {gw};
          subnet.as_index = as_index;
          subnet.kind = profile.kind;
          subnet.occupancy = occupancy;
          // Customers of a split /24 sit in different towns (Table 4's
          // KRNIC assignments): scatter their coordinates around the PoP.
          subnet.base_rtt_ms =
              pop_rtt + b_rng.NextUnit() * 12.0;
          subnet.geo_x = pop_geo_x + (b_rng.NextUnit() - 0.5) * 0.35;
          subnet.geo_y = pop_geo_y + (b_rng.NextUnit() - 0.5) * 0.35;
          subnet.rdns_scheme = scheme;
          topology_.AddSubnet(subnet);
          registry_.AddWhois(WhoisRecord{
              sub, profile.as.organization + " Customer-" +
                       std::to_string(slot % 997) + "-" +
                       std::to_string(customer),
              "CUSTOMER",
              "Assignment-site " + std::to_string(customer) + ", " +
                  profile.as.country,
              std::to_string(360000 + (slot + static_cast<std::uint32_t>(customer)) % 9000),
              std::string("201") + std::to_string(5 + customer % 2) +
                  "0" + std::to_string(1 + (slot % 9)) +
                  (customer % 2 ? "17" : "12")});
          ++customer;
        }
        record.truth_block = StableHash({slash24.base().value(), 0x5917ULL});
      } else {
        // Homogeneous /24: one subnet, attached either to one of the
        // PoP's attachment sets (per-destination balanced) or to a single
        // gateway.
        std::vector<RouterId> gateways;
        if (!attach_sets.empty() &&
            (profile.full_pool_attachment ||
             b_rng.NextBool(profile.p_multi_gateway))) {
          gateways = attach_sets[b_rng.NextBelow(attach_sets.size())];
        } else {
          gateways = {pool[b_rng.NextBelow(pool.size())]};
        }
        Subnet subnet;
        subnet.prefix = slash24;
        subnet.gateways = gateways;
        subnet.as_index = as_index;
        subnet.kind = profile.kind;
        subnet.occupancy = occupancy;
        subnet.base_rtt_ms = pop_rtt;
        subnet.rdns_scheme = scheme;
        subnet.geo_x = pop_geo_x;
        subnet.geo_y = pop_geo_y;
        topology_.AddSubnet(subnet);
        topology_.router(agg).fib.Add(slash24,
                                      EcmpGroup{gateways, gateway_policy});
        std::uint64_t h = 0x81A5ULL;
        for (std::uint64_t id : gateways) h = StableHash({h, id});
        record.truth_block = h;
      }

      study_24s_.push_back(slash24);
      truth_.push_back(record);
    }
  }
}

Internet Builder::Build() {
  BuildCore();
  const std::vector<OrgProfile>& profiles =
      config_.profiles.empty() ? DefaultProfiles() : config_.profiles;
  for (const OrgProfile& profile : profiles) BuildOrg(profile);

  topology_.Seal();
  registry_.Seal();

  // Sort the universe (and keep truth parallel).
  std::vector<std::size_t> order(study_24s_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return study_24s_[a] < study_24s_[b];
  });
  std::vector<Prefix> sorted_24s;
  std::vector<TruthRecord> sorted_truth;
  sorted_24s.reserve(order.size());
  sorted_truth.reserve(order.size());
  for (std::size_t i : order) {
    sorted_24s.push_back(study_24s_[i]);
    sorted_truth.push_back(truth_[i]);
  }

  Internet internet;
  internet.topology = std::move(topology_);
  internet.registry = std::move(registry_);
  internet.source_router = source_router_;
  internet.study_24s = std::move(sorted_24s);
  internet.truth = std::move(sorted_truth);

  HostModelConfig host = config_.host;
  host.seed = StableHash({config_.seed, 0x4057ULL});
  RttModelConfig rtt = config_.rtt;
  rtt.seed = StableHash({config_.seed, 0x477ULL});
  SimulatorConfig sim = config_.sim;
  sim.seed = StableHash({config_.seed, 0x51ULL});
  internet.host_config = host;
  internet.rtt_config = rtt;
  internet.sim_config = sim;
  internet.extra_vantages = std::move(extra_vantages_);
  internet.simulator = std::make_unique<Simulator>(
      &internet.topology, internet.source_router,
      Ipv4Address::FromOctets(128, 8, 128, 22), HostModel(host),
      RttModel(rtt), sim);
  return internet;
}

}  // namespace

std::unique_ptr<Simulator> Internet::MakeSimulatorAt(
    const Vantage& vantage) const {
  return std::make_unique<Simulator>(&topology, vantage.router,
                                     vantage.address,
                                     HostModel(host_config),
                                     RttModel(rtt_config), sim_config);
}

std::unique_ptr<Simulator> Internet::MakeEpochSimulator(
    std::uint32_t epoch) const {
  HostModelConfig host = host_config;
  host.epoch = epoch;
  return std::make_unique<Simulator>(&topology, source_router,
                                     simulator->source_address(),
                                     HostModel(host), RttModel(rtt_config),
                                     sim_config);
}

std::uint32_t Internet::RdnsSchemeOf(Ipv4Address address) const {
  SubnetId id = topology.FindSubnet(address);
  return id == kNoSubnet ? kRdnsNone : topology.subnet(id).rdns_scheme;
}

const TruthRecord* Internet::TruthOf(const Prefix& slash24) const {
  auto pos = std::lower_bound(
      study_24s.begin(), study_24s.end(), slash24);
  if (pos == study_24s.end() || *pos != slash24) return nullptr;
  return &truth[static_cast<std::size_t>(pos - study_24s.begin())];
}

std::vector<OrgProfile> DefaultProfiles() {
  std::vector<OrgProfile> profiles;

  auto giant = [](AsInfo as, SubnetKind kind, std::vector<int> pop_sizes,
                  std::uint32_t rdns, double rtt_lo, double rtt_hi) {
    OrgProfile p;
    p.as = std::move(as);
    p.kind = kind;
    p.pop_sizes = std::move(pop_sizes);
    p.runs = 6;
    p.gateway_pool_min = 3;
    p.gateway_pool_max = 3;
    p.p_multi_gateway = 1.0;
    p.full_pool_attachment = true;  // one block by construction
    p.p_silent_pop = 0.0;  // the famous blocks were all measurable
    p.p_sparse = 0.08;
    p.dense_occupancy_min = 0.12;
    p.dense_occupancy_max = 0.6;
    p.base_rtt_min_ms = rtt_lo;
    p.base_rtt_max_ms = rtt_hi;
    p.rdns_scheme = rdns;
    p.dist_width_min = 1;
    p.dist_width_max = 2;
    return p;
  };

  // --- Table 5 giants ----------------------------------------------------
  profiles.push_back(giant({18779, "EGIHosting", "US", OrgType::kHosting},
                           SubnetKind::kHosting, {1251},
                           kRdnsGenericHosting, 18, 30));
  profiles.push_back(giant({1257, "Tele2", "Sweden", OrgType::kBroadbandIsp},
                           SubnetKind::kCellular, {1187, 857},
                           kRdnsTele2Cellular, 85, 110));
  // Amazon: Tokyo + US-West blocks, plus the Dublin block that only MCL
  // reassembles (wide gateway set + sparse hosts => partial last-hop sets).
  profiles.push_back(giant({16509, "Amazon.com", "Japan",
                            OrgType::kHostingCloud},
                           SubnetKind::kDatacenter, {1122},
                           kRdnsAmazonEc2Tokyo, 150, 170));
  profiles.push_back(giant({16509, "Amazon.com", "US",
                            OrgType::kHostingCloud},
                           SubnetKind::kDatacenter, {835},
                           kRdnsAmazonEc2UsWest, 60, 75));
  {
    OrgProfile dublin = giant({16509, "Amazon.com", "Ireland",
                               OrgType::kHostingCloud},
                              SubnetKind::kDatacenter, {1217},
                              kRdnsAmazonEc2Dublin, 80, 95);
    dublin.gateway_pool_min = 4;
    dublin.gateway_pool_max = 4;
    dublin.p_sparse = 0.0;
    // Enough hosts that exhaustive reprobing recovers the full gateway
    // set, but few enough that the adaptive prober's early stop usually
    // leaves the measured set partial — the §6 motivation.
    dublin.dense_occupancy_min = 0.18;
    dublin.dense_occupancy_max = 0.28;
    profiles.push_back(dublin);
  }
  profiles.push_back(giant({2914, "NTT America", "US",
                            OrgType::kHostingCloud},
                           SubnetKind::kDatacenter, {1071},
                           kRdnsGenericHosting, 25, 40));
  profiles.push_back(giant({32392, "OPENTRANSFER", "US", OrgType::kHosting},
                           SubnetKind::kHosting, {940, 698},
                           kRdnsGenericHosting, 20, 35));
  profiles.push_back(giant({4713, "OCN", "Japan", OrgType::kBroadbandIsp},
                           SubnetKind::kCellular, {840, 783},
                           kRdnsOcnCellular, 150, 170));
  profiles.push_back(giant({9506, "SingTel", "Singapore",
                            OrgType::kBroadbandIsp},
                           SubnetKind::kDatacenter, {732},
                           kRdnsGenericIsp, 210, 230));
  profiles.push_back(giant({17676, "SoftBank", "Japan",
                            OrgType::kBroadbandIsp},
                           SubnetKind::kDatacenter, {731},
                           kRdnsGenericIsp, 150, 170));
  profiles.push_back(giant({26496, "GoDaddy.com", "US", OrgType::kHosting},
                           SubnetKind::kHosting, {703},
                           kRdnsGenericHosting, 35, 50));
  profiles.push_back(giant({22394, "Verizon Wireless", "US",
                            OrgType::kMobileIsp},
                           SubnetKind::kCellular, {699},
                           kRdnsVerizonCellular, 40, 60));
  profiles.push_back(giant({22773, "Cox Communications", "US",
                            OrgType::kFixedIsp},
                           SubnetKind::kDatacenter, {679},
                           kRdnsCoxBusiness, 45, 60));
  {
    // Residential Cox space: the Bitcoin-node hosts of §5.2/§7.2.
    OrgProfile cox_res;
    cox_res.as = {22773, "Cox Communications", "US", OrgType::kFixedIsp};
    cox_res.kind = SubnetKind::kResidential;
    cox_res.total_24s = 220;
    cox_res.runs = 3;
    cox_res.pop_24s_min = 1;
    cox_res.pop_24s_max = 16;
    cox_res.rdns_scheme = kRdnsCoxResidential;
    cox_res.base_rtt_min_ms = 45;
    cox_res.base_rtt_max_ms = 70;
    profiles.push_back(cox_res);
  }

  // --- Table 3 splitters ---------------------------------------------------
  auto splitter = [](AsInfo as, int total, double p_split) {
    OrgProfile p;
    p.as = std::move(as);
    p.kind = SubnetKind::kResidential;
    p.total_24s = total;
    p.runs = 8;
    p.pop_24s_min = 1;
    p.pop_24s_max = 24;
    p.p_split_24 = p_split;
    p.p_carve_24 = 0.24;
    p.rdns_scheme = kRdnsGenericIsp;
    p.base_rtt_min_ms = 60;
    p.base_rtt_max_ms = 240;
    return p;
  };
  profiles.push_back(splitter(
      {4766, "Korea Telecom", "Korea", OrgType::kBroadbandIsp}, 2600, 0.056));
  profiles.push_back(splitter(
      {9318, "SK Broadband", "Korea", OrgType::kBroadbandIsp}, 1100, 0.029));
  profiles.push_back(splitter(
      {15557, "SFR", "France", OrgType::kBroadbandIsp}, 900, 0.010));
  profiles.push_back(splitter(
      {3292, "TDC A/S", "Denmark", OrgType::kBroadbandIsp}, 800, 0.011));
  profiles.push_back(splitter(
      {4788, "TM Net", "Malaysia", OrgType::kBroadbandIsp}, 700, 0.0062));
  profiles.push_back(splitter(
      {9158, "Telenor A/S", "Denmark", OrgType::kBroadbandIsp}, 600, 0.005));
  {
    OrgProfile colo = splitter(
        {36352, "ColoCrossing", "US", OrgType::kHosting}, 300, 0.0074);
    colo.kind = SubnetKind::kHosting;
    colo.rdns_scheme = kRdnsGenericHosting;
    colo.base_rtt_min_ms = 20;
    colo.base_rtt_max_ms = 45;
    profiles.push_back(colo);
  }
  profiles.push_back(splitter(
      {28751, "Caucasus Online", "Georgia", OrgType::kBroadbandIsp}, 350,
      0.0059));
  // The paper's table row for AS20751 has an unreadable organization name
  // in the source text; "Magti" is used as a Georgian-operator stand-in.
  profiles.push_back(splitter(
      {20751, "Magti", "Georgia", OrgType::kBroadbandIsp}, 350, 0.0055));
  profiles.push_back(splitter(
      {35632, "IRIS 64", "France", OrgType::kBroadbandIsp}, 300, 0.0063));

  // --- Time-Warner-style ISP for the sampling experiment (Fig 12) --------
  {
    OrgProfile twc;
    twc.as = {11351, "Time Warner Cable", "US", OrgType::kBroadbandIsp};
    twc.kind = SubnetKind::kResidential;
    twc.total_24s = 3000;
    twc.runs = 10;
    // Large PoPs, each one ground-truth block: the stratified sample of
    // Fig 12 stays small relative to the population, which is what makes
    // random sampling miss the rare naming schemes.
    twc.pop_24s_min = 4;
    twc.pop_24s_max = 128;
    twc.gateway_pool_min = 2;
    twc.gateway_pool_max = 3;
    twc.full_pool_attachment = true;
    twc.p_silent_pop = 0.10;
    twc.p_sparse = 0.45;
    twc.p_carve_24 = 0.0;
    twc.rdns_scheme = kRdnsTwcBase;  // one dominant pattern per PoP
    twc.base_rtt_min_ms = 25;
    twc.base_rtt_max_ms = 80;
    profiles.push_back(twc);
  }

  // --- generic filler ISPs -------------------------------------------------
  const char* countries[] = {"US",     "Germany", "Brazil", "India",
                             "UK",     "Japan",   "Canada", "Poland",
                             "Spain",  "Italy",   "Mexico", "Australia",
                             "France", "Turkey",  "Egypt",  "Vietnam"};
  for (int i = 0; i < 30; ++i) {
    OrgProfile p;
    p.as = {static_cast<std::uint32_t>(64500 + i),
            "Filler Networks " + std::to_string(i + 1),
            countries[i % 16], OrgType::kBroadbandIsp};
    p.kind = (i % 7 == 3) ? SubnetKind::kBusiness : SubnetKind::kResidential;
    p.total_24s = 1700 + 194 * (i % 9);
    p.runs = 4 + i % 6;
    p.pop_24s_min = 1;
    p.pop_24s_max = 8 + (i % 4) * 16;
    p.p_split_24 = 0.0006;
    p.p_carve_24 = 0.24;
    p.rdns_scheme = (i % 5 == 0) ? kRdnsNone : kRdnsGenericIsp;
    p.base_rtt_min_ms = 15 + 10 * (i % 8);
    p.base_rtt_max_ms = 80 + 15 * (i % 10);
    profiles.push_back(p);
  }
  // A few pure hosting fillers (small, dense, single-gateway heavy).
  for (int i = 0; i < 6; ++i) {
    OrgProfile p;
    p.as = {static_cast<std::uint32_t>(64800 + i),
            "HostCo " + std::to_string(i + 1), countries[(i * 3) % 16],
            OrgType::kHosting};
    p.kind = SubnetKind::kHosting;
    p.total_24s = 250 + 40 * i;
    p.runs = 3;
    p.pop_24s_min = 1;
    p.pop_24s_max = 24;
    p.p_multi_gateway = 0.35;
    p.dense_occupancy_min = 0.15;
    p.dense_occupancy_max = 0.6;
    p.p_sparse = 0.12;
    p.rdns_scheme = kRdnsGenericHosting;
    p.base_rtt_min_ms = 18;
    p.base_rtt_max_ms = 60;
    profiles.push_back(p);
  }
  return profiles;
}

Internet BuildInternet(const InternetConfig& config) {
  return Builder(config).Build();
}

InternetConfig TinyConfig(std::uint64_t seed) {
  InternetConfig config;
  config.seed = seed;
  config.scale = 1.0;
  config.core_stage_widths = {2, 2};

  OrgProfile a;
  a.as = {65001, "TestNet A", "US", OrgType::kBroadbandIsp};
  a.total_24s = 120;
  a.runs = 3;
  a.pop_24s_min = 1;
  a.pop_24s_max = 12;
  a.p_split_24 = 0.05;
  config.profiles.push_back(a);

  OrgProfile b;
  b.as = {65002, "TestHost B", "Germany", OrgType::kHosting};
  b.kind = SubnetKind::kDatacenter;
  b.total_24s = 80;
  b.runs = 2;
  b.pop_sizes = {60, 20};
  b.gateway_pool_min = 2;
  b.gateway_pool_max = 2;
  b.full_pool_attachment = true;
  b.p_silent_pop = 0.0;
  b.rdns_scheme = kRdnsGenericHosting;
  config.profiles.push_back(b);

  OrgProfile c;
  c.as = {65003, "TestCell C", "Sweden", OrgType::kBroadbandIsp};
  c.kind = SubnetKind::kCellular;
  c.total_24s = 60;
  c.runs = 2;
  c.pop_sizes = {60};
  c.rdns_scheme = kRdnsTele2Cellular;
  config.profiles.push_back(c);

  return config;
}

}  // namespace hobbit::netsim
