// registry.h — who owns which addresses.
//
// Stand-in for the external databases the paper joins against: the Maxmind
// GeoLite AS/organization/geolocation database (Tables 3 and 5) and the
// KRNIC WHOIS registry with its sub-/24 customer assignments (Table 4).
// The generator fills it with ground truth as it allocates address space,
// so lookups are exact rather than probabilistic — the join logic in the
// analysis layer is what is being reproduced, not database fuzziness.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netsim/ipv4.h"

namespace hobbit::netsim {

/// Organization categories as the paper's tables print them.
enum class OrgType : std::uint8_t {
  kBroadbandIsp,   ///< fixed + mobile broadband
  kHosting,
  kHostingCloud,
  kMobileIsp,
  kFixedIsp,
};

std::string ToString(OrgType type);

/// One autonomous system: the unit of Tables 3 and 5.
struct AsInfo {
  std::uint32_t asn = 0;
  std::string organization;
  std::string country;
  OrgType type = OrgType::kBroadbandIsp;
};

/// A WHOIS assignment record, KRNIC style (Table 4): one allocated block
/// with customer details.  Split /24s produce several records under one
/// /24.
struct WhoisRecord {
  Prefix prefix;
  std::string organization_name;
  std::string network_type;     // e.g. "CUSTOMER"
  std::string address;          // street-level assignment address
  std::string zip_code;
  std::string registration_date;  // YYYYMMDD
};

/// Registry of ASes, address-to-AS mapping and WHOIS records.
class Registry {
 public:
  /// Registers an AS; returns its dense index (the Subnet::as_index key).
  /// Calling again with an already-registered ASN returns the existing
  /// index, so multiple generation profiles can share one AS.
  std::uint32_t AddAs(AsInfo info);

  /// Records that `prefix` belongs to AS `as_index` (for the geo join).
  void AddAllocation(const Prefix& prefix, std::uint32_t as_index);

  /// Adds a WHOIS assignment record.
  void AddWhois(WhoisRecord record);

  /// Must be called after all allocations are added, before lookups.
  void Seal();

  const AsInfo& as_info(std::uint32_t as_index) const {
    return ases_[as_index];
  }
  std::size_t as_count() const { return ases_.size(); }

  /// AS index owning `address`, or nullopt for unallocated space.
  std::optional<std::uint32_t> AsOf(Ipv4Address address) const;

  /// All WHOIS records whose prefix lies inside `query` (most-specific
  /// assignments for a /24, Table 4 style), sorted by prefix.
  std::vector<WhoisRecord> WhoisLookup(const Prefix& query) const;

 private:
  struct Allocation {
    Prefix prefix;
    std::uint32_t as_index;
  };

  std::vector<AsInfo> ases_;
  std::vector<Allocation> allocations_;  // sorted by prefix after Seal
  std::uint64_t allocation_lengths_ = 0;  // bit l set when a /l exists
  std::vector<WhoisRecord> whois_;       // sorted by prefix after Seal
  bool sealed_ = false;
};

}  // namespace hobbit::netsim
