// ipv6.h — IPv6 addresses and prefixes.
//
// The paper's stated future work is applying Hobbit to IPv6 networks
// ("As future work, we intend to apply Hobbit to IPv6").  The hierarchy
// machinery only needs totally ordered addresses with prefix containment
// and longest-common-prefix arithmetic; these types provide exactly that
// for 128-bit addresses, with RFC 4291 parsing and RFC 5952 canonical
// formatting, so a /64-granularity Hobbit can be built on top.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hobbit::netsim {

/// A 128-bit IPv6 address as two host-order 64-bit halves.
class Ipv6Address {
 public:
  constexpr Ipv6Address() = default;
  constexpr Ipv6Address(std::uint64_t high, std::uint64_t low)
      : high_(high), low_(low) {}

  /// Parses RFC 4291 text: full form, "::" compression, and the embedded
  /// IPv4 dotted tail ("::ffff:192.0.2.1").  Zone ids are not supported.
  static std::optional<Ipv6Address> Parse(std::string_view text);

  constexpr std::uint64_t high() const { return high_; }
  constexpr std::uint64_t low() const { return low_; }

  /// The i-th 16-bit group, 0 being the most significant.
  constexpr std::uint16_t Group(int i) const {
    std::uint64_t half = i < 4 ? high_ : low_;
    int shift = 48 - 16 * (i & 3);
    return static_cast<std::uint16_t>(half >> shift);
  }

  /// RFC 5952 canonical text: lowercase hex, longest zero run (of length
  /// >= 2) compressed to "::", leftmost run on ties.
  std::string ToString() const;

  friend constexpr auto operator<=>(Ipv6Address, Ipv6Address) = default;

 private:
  std::uint64_t high_ = 0;
  std::uint64_t low_ = 0;
};

/// An IPv6 CIDR prefix: base address + length in [0, 128].
/// Canonicalised like the IPv4 Prefix; same ordering contract.
class Ipv6Prefix {
 public:
  constexpr Ipv6Prefix() = default;

  static constexpr Ipv6Prefix Of(Ipv6Address base, int length) {
    auto [mask_high, mask_low] = MaskFor(length);
    return Ipv6Prefix(
        Ipv6Address(base.high() & mask_high, base.low() & mask_low),
        length);
  }

  /// The enclosing /64 — the natural IPv6 analogue of the /24 unit.
  static constexpr Ipv6Prefix Slash64Of(Ipv6Address address) {
    return Of(address, 64);
  }

  /// Parses "addr/len"; rejects host bits set below the mask.
  static std::optional<Ipv6Prefix> Parse(std::string_view text);

  constexpr Ipv6Address base() const { return base_; }
  constexpr int length() const { return length_; }

  constexpr Ipv6Address First() const { return base_; }
  constexpr Ipv6Address Last() const {
    auto [mask_high, mask_low] = MaskFor(length_);
    return Ipv6Address(base_.high() | ~mask_high, base_.low() | ~mask_low);
  }

  constexpr bool Contains(Ipv6Address address) const {
    auto [mask_high, mask_low] = MaskFor(length_);
    return (address.high() & mask_high) == base_.high() &&
           (address.low() & mask_low) == base_.low();
  }

  constexpr bool Contains(const Ipv6Prefix& other) const {
    return other.length_ >= length_ && Contains(other.base_);
  }

  constexpr bool DisjointFrom(const Ipv6Prefix& other) const {
    return !Contains(other) && !other.Contains(*this);
  }

  std::string ToString() const;

  friend constexpr auto operator<=>(const Ipv6Prefix&,
                                    const Ipv6Prefix&) = default;

 private:
  constexpr Ipv6Prefix(Ipv6Address base, int length)
      : base_(base), length_(length) {}

  /// Mask halves for a prefix length.
  struct Mask {
    std::uint64_t high;
    std::uint64_t low;
  };
  static constexpr Mask MaskFor(int length) {
    if (length <= 0) return {0, 0};
    if (length >= 128) return {~0ULL, ~0ULL};
    if (length <= 64) {
      return {length == 64 ? ~0ULL : ~0ULL << (64 - length), 0};
    }
    return {~0ULL, ~0ULL << (128 - length)};
  }

  Ipv6Address base_;
  int length_ = 0;
};

/// Bits of common prefix between two IPv6 addresses, in [0, 128].
constexpr int LongestCommonPrefixLength(Ipv6Address a, Ipv6Address b) {
  auto leading = [](std::uint64_t x) {
    int n = 0;
    for (std::uint64_t probe = 0x8000000000000000ULL; probe != 0 &&
                                                      (x & probe) == 0;
         probe >>= 1) {
      ++n;
    }
    return n;
  };
  if (a.high() != b.high()) return leading(a.high() ^ b.high());
  if (a.low() != b.low()) return 64 + leading(a.low() ^ b.low());
  return 128;
}

/// Narrowest prefix covering both addresses.
constexpr Ipv6Prefix SpanningPrefix(Ipv6Address a, Ipv6Address b) {
  return Ipv6Prefix::Of(a, LongestCommonPrefixLength(a, b));
}

}  // namespace hobbit::netsim
