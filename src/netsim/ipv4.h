// ipv4.h — strongly typed IPv4 addresses and CIDR prefixes.
//
// These are the vocabulary types of the whole library: every probing tool,
// the Hobbit classifier and the aggregation layer exchange addresses and
// prefixes in these forms.  Both types are trivially copyable values with
// total ordering so they can live in sorted containers and be used as keys.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hobbit::netsim {

/// An IPv4 address held as a host-order 32-bit integer.
///
/// The numeric ordering of `Ipv4Address` equals the lexicographic ordering
/// of the dotted-decimal form, which is what the Hobbit hierarchy test
/// relies on when it represents a group of addresses by the range
/// [min, max].
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}

  /// Builds an address from its four dotted-decimal octets,
  /// most significant first (a.b.c.d).
  static constexpr Ipv4Address FromOctets(std::uint8_t a, std::uint8_t b,
                                          std::uint8_t c, std::uint8_t d) {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses "a.b.c.d".  Returns nullopt on any syntax error (missing octet,
  /// value > 255, stray characters).
  static std::optional<Ipv4Address> Parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }

  /// The i-th octet, 0 being the most significant ("a" in a.b.c.d).
  constexpr std::uint8_t Octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Dotted-decimal rendering, e.g. "192.0.2.7".
  std::string ToString() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix: a base address plus a length in [0, 32].
///
/// Invariant: the host bits of `base` below `length` are zero; the factory
/// functions canonicalise.  Prefixes order first by base address then by
/// length, so sorting a list of prefixes puts parents immediately before
/// their first child.
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Canonicalising constructor: masks `base` down to `length` bits.
  static constexpr Prefix Of(Ipv4Address base, int length) {
    return Prefix(Ipv4Address(base.value() & MaskFor(length)), length);
  }

  /// The /24 containing `address` — the paper's unit of study.
  static constexpr Prefix Slash24Of(Ipv4Address address) {
    return Of(address, 24);
  }

  /// Parses "a.b.c.d/len".  Returns nullopt on syntax errors or when the
  /// base has non-zero host bits (e.g. "10.0.0.1/24").
  static std::optional<Prefix> Parse(std::string_view text);

  constexpr Ipv4Address base() const { return base_; }
  constexpr int length() const { return length_; }

  /// The network mask as an integer, e.g. 0xFFFFFF00 for a /24.
  constexpr std::uint32_t Mask() const { return MaskFor(length_); }

  /// Number of addresses covered: 2^(32-length).  Returned as uint64 so a
  /// /0 does not overflow.
  constexpr std::uint64_t Size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  /// First address of the prefix (== base()).
  constexpr Ipv4Address First() const { return base_; }

  /// Last address of the prefix.
  constexpr Ipv4Address Last() const {
    return Ipv4Address(base_.value() | ~Mask());
  }

  constexpr bool Contains(Ipv4Address address) const {
    return (address.value() & Mask()) == base_.value();
  }

  /// True when `other` lies entirely within this prefix (including equal).
  constexpr bool Contains(const Prefix& other) const {
    return other.length_ >= length_ && Contains(other.base_);
  }

  /// True when the two prefixes share no address.
  constexpr bool DisjointFrom(const Prefix& other) const {
    return !Contains(other) && !other.Contains(*this);
  }

  /// The i-th sub-prefix of the given (longer) length; e.g. a /24 has four
  /// /26 children indexed 0..3.  Precondition: child_length >= length().
  constexpr Prefix Child(int child_length, std::uint32_t index) const {
    return Prefix(
        Ipv4Address(base_.value() | (index << (32 - child_length))),
        child_length);
  }

  /// "a.b.c.d/len" rendering.
  std::string ToString() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  constexpr Prefix(Ipv4Address base, int length)
      : base_(base), length_(length) {}

  static constexpr std::uint32_t MaskFor(int length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

  Ipv4Address base_;
  int length_ = 0;
};

/// Length of the longest common prefix of two addresses, in bits [0, 32].
constexpr int LongestCommonPrefixLength(Ipv4Address a, Ipv4Address b) {
  std::uint32_t diff = a.value() ^ b.value();
  if (diff == 0) return 32;
  int length = 0;
  for (std::uint32_t probe = 0x80000000u; (diff & probe) == 0; probe >>= 1) {
    ++length;
  }
  return length;
}

/// Longest common prefix length between two /24 blocks measured on their
/// /24 identifiers, i.e. clamped to [0, 24] — the metric of Figure 7.
constexpr int LongestCommonPrefixLength(const Prefix& a, const Prefix& b) {
  int bits = LongestCommonPrefixLength(a.base(), b.base());
  int limit = a.length() < b.length() ? a.length() : b.length();
  return bits < limit ? bits : limit;
}

/// The narrowest single prefix covering both addresses.
constexpr Prefix SpanningPrefix(Ipv4Address a, Ipv4Address b) {
  return Prefix::Of(a, LongestCommonPrefixLength(a, b));
}

}  // namespace hobbit::netsim
