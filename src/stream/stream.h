// stream.h — the streaming campaign: bounded-memory pipeline stages.
//
// The batch pipeline (hobbit/pipeline.h) materializes every /24's full
// BlockResult — observations included — before anything downstream runs,
// so a campaign's resident set is O(world).  The streaming driver keeps
// the same stages but runs them as producers and a consumer joined by a
// fixed-capacity queue (common/bounded_queue.h):
//
//   driver ──ForEachChunk──▶ probe workers ──BoundedQueue──▶ aggregator
//   (segments of the          (stage 2, on the   (capacity =   (grouping +
//    study list)               shared pool)       window)       classify +
//                                                               aggregate +
//                                                               publish)
//
// The aggregator consumes each BlockResult as it arrives: it keeps the
// classification tally, the per-/24 record, and the identical-last-hop
// groups (hobbit §5), then *drops the observations*.  Backpressure does
// the rest: a worker that outruns the aggregator parks in Push, so the
// number of full BlockResults resident at any instant is bounded by
//
//   window + worker threads + 1 (the item being consumed)
//
// regardless of world size — the O(in-flight) guarantee, asserted by
// bench_stream and StreamStats::peak_inflight_results.
//
// Determinism: measurement inputs come from core::PrepareCampaign and
// every /24 is probed with core::MeasurementRng(seed, index), so each
// classification is a pure function of (world-at-its-segment, seed,
// index) — bit-identical to the batch pipeline and invariant under
// thread count and arrival order.  The aggregator's state is keyed maps,
// so its published output is arrival-order independent too.
//
// Publishing: with a SnapshotStore attached the aggregator publishes the
// evolving state — a full snapshot first, then HSPT delta patches
// (serve/delta.h) every `publish_every` classified blocks — while
// readers keep querying through the store's RCU swap.  Each published
// state can be differentially checked against a full recompile
// (`verify_full_reference`), which is the byte-identity gate.
//
// Churn: `on_segment_boundary` fires between probe waves with no probe
// in flight; it may mutate the topology (InjectRouteChurn flips ECMP
// next-hop orders, bumping Topology::mutation_epoch so route memos
// re-resolve).  Segment boundaries sit at fixed indices, so churned
// campaigns stay thread-count invariant.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/aggregate.h"
#include "common/bounded_queue.h"
#include "hobbit/pipeline.h"
#include "netsim/internet.h"
#include "scenario/artifacts.h"
#include "serve/store.h"

namespace hobbit::stream {

struct StreamConfig {
  std::uint64_t seed = 1;
  /// Probe worker threads (ignored when `pool` is set); the aggregator
  /// runs on its own dedicated thread either way.
  int threads = 1;
  /// Optional externally owned pool shared with other stages.
  common::ThreadPool* pool = nullptr;
  /// Stage-0/1 knobs, as in core::PipelineConfig.
  int calibration_blocks = 1500;
  int samples_per_block = 64;
  core::ProberOptions prober;

  /// Capacity of the probe→aggregate queue.  The in-flight bound —
  /// the most full BlockResults ever resident — is
  /// window + worker threads + 1.
  std::size_t window = 256;
  /// Blocks per probe wave; the segment boundary callback fires between
  /// waves.  0 = one wave over the whole study list (no boundaries).
  std::size_t segment = 0;
  /// Publish a delta snapshot every this many classified blocks
  /// (requires `store`); 0 = publish only the final state.
  std::size_t publish_every = 0;
  /// Destination of the published snapshots; null = no live publishing
  /// (the final snapshot is still compiled into StreamResult).
  serve::SnapshotStore* store = nullptr;
  /// Epoch of the first published snapshot; each further publish
  /// increments by one.
  std::uint64_t epoch_base = 1;
  /// After every publish, recompile the full snapshot of the same state
  /// and byte-compare against what the store serves.  The differential
  /// gate for the delta path; costs O(state) per publish.
  bool verify_full_reference = false;
  /// Called between probe waves (segment index 1, 2, ...) with no probe
  /// in flight; may mutate the world (e.g. InjectRouteChurn).
  std::function<void(std::size_t)> on_segment_boundary;
};

/// Per-stage counters of one streaming campaign.
struct StreamStats {
  /// Stage-0/1 numbers from PrepareCampaign (snapshot_* / calibration).
  core::PipelineStats setup;
  std::size_t measured_24s = 0;
  std::uint64_t probes_sent = 0;  ///< measurement stage only
  /// Most full BlockResults resident at once, and the configured cap.
  std::size_t peak_inflight_results = 0;
  std::size_t inflight_bound = 0;
  /// Probe→aggregate queue telemetry (backpressure visibility).
  common::QueueCounters results_queue;
  std::size_t publishes = 0;        ///< total snapshot publishes
  std::size_t delta_publishes = 0;  ///< of which HSPT patches
  std::uint64_t delta_entries = 0;  ///< cumulative patch upserts+removes
  std::size_t publish_failures = 0; ///< store rejected a publish (bug)
  /// High-water capacity of the aggregator's member-list arena — the
  /// retained per-group state, bump-allocated instead of malloc'd.
  std::size_t aggregator_arena_reserved_bytes = 0;
  /// verify_full_reference: publishes whose served bytes differed from
  /// the full recompile.  Anything nonzero is a delta-path bug.
  std::size_t reference_mismatches = 0;
  double measurement_seconds = 0.0;
};

/// The compact per-/24 outcome the aggregator retains (observations are
/// dropped at consumption — that is the whole point).
struct StreamRecord {
  netsim::Prefix prefix;
  core::Classification classification = core::Classification::kTooFewActive;
  int probes_used = 0;
};

struct StreamResult {
  /// Every measured /24, sorted by prefix.
  std::vector<StreamRecord> records;
  /// Identical-last-hop aggregates of the final state, in
  /// cluster::AggregateIdentical's canonical order.
  std::vector<cluster::AggregateBlock> blocks;
  /// Tally per core::Classification value.
  std::array<std::size_t, 5> classification_counts{};
  /// The final published snapshot (HSNP bytes).  With a store attached
  /// this is what the store serves after the last publish; without one
  /// it is compiled directly.
  std::vector<std::byte> final_snapshot;
  StreamStats stats;
};

/// Runs a full streaming campaign over `internet`'s study universe.
/// Deterministic in (config.seed, world, segment/churn schedule); the
/// records, blocks and final snapshot are invariant under thread count
/// and queue timing.
StreamResult RunStreamCampaign(const netsim::Internet& internet,
                               const StreamConfig& config);

/// Route churn now lives with the other world mutators in the scenario
/// subsystem (scenario/artifacts.h); re-exported here for existing
/// streaming callers.
using scenario::InjectRouteChurn;

}  // namespace hobbit::stream
