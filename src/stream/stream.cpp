#include "stream/stream.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "common/arena.h"
#include "common/parallel.h"
#include "serve/delta.h"
#include "serve/snapshot.h"

namespace hobbit::stream {
namespace {

/// One probed block travelling probe→aggregate.  Carries the full
/// BlockResult (observations included) — exactly the payload whose
/// resident count the queue bounds.
struct ResultItem {
  std::size_t index = 0;
  core::BlockResult result;
};

/// The consumer stage: classification tally, per-/24 records, §5
/// identical-last-hop grouping, and snapshot publishing.  Single-owner
/// state — only the aggregator thread touches it until Join.
class Aggregator {
 public:
  Aggregator(const StreamConfig& config, StreamResult* out)
      : config_(config), out_(out) {}

  void Consume(ResultItem item) {
    // Take ownership so the observation buffers die at scope exit; only
    // the compact record survives.
    core::BlockResult result = std::move(item.result);
    out_->classification_counts[static_cast<std::size_t>(
        result.classification)]++;
    records_[result.prefix.base().value()] =
        StreamRecord{result.prefix, result.classification,
                     result.probes_used};
    if (core::IsHomogeneous(result.classification) &&
        !result.last_hop_set.empty()) {
      // Member lists live in the arena: growth is a pointer bump (a
      // segment chain, so no reallocation copies either) and the whole
      // per-campaign state is freed in one shot.  The map node itself
      // stays heap-side — it owns the non-trivially-destructible key.
      auto [it, inserted] = groups_.try_emplace(result.last_hop_set, nullptr);
      if (inserted) {
        void* slot = arena_.Allocate(sizeof(MemberList), alignof(MemberList));
        it->second = new (slot) MemberList(&arena_);
      }
      it->second->push_back(result.prefix);
    }
    ++since_publish_;
    if (config_.store != nullptr && config_.publish_every > 0 &&
        since_publish_ >= config_.publish_every) {
      Publish();
      since_publish_ = 0;
    }
  }

  /// Final state: records/blocks into the result, the closing publish,
  /// and the final snapshot bytes.
  void Finish() {
    out_->records.reserve(records_.size());
    for (const auto& [key, record] : records_) out_->records.push_back(record);
    out_->blocks = BuildBlocks();
    out_->stats.aggregator_arena_reserved_bytes = arena_.reserved_bytes();
    if (config_.store != nullptr) {
      // Publish the final state unless the last periodic publish already
      // covered it (then the served snapshot IS the final state).
      if (since_publish_ > 0 || out_->stats.publishes == 0) Publish();
      if (std::shared_ptr<const serve::Snapshot> current =
              config_.store->Current()) {
        std::span<const std::byte> bytes = current->bytes();
        out_->final_snapshot.assign(bytes.begin(), bytes.end());
      }
    } else {
      out_->final_snapshot = serve::CompileSnapshot(
          out_->blocks, Classified(), config_.epoch_base);
      out_->stats.publishes++;
    }
  }

 private:
  /// The groups lowered into cluster::AggregateIdentical's canonical
  /// form: members sorted, blocks by descending member count (ties by
  /// first prefix).  Keyed maps make this arrival-order independent.
  std::vector<cluster::AggregateBlock> BuildBlocks() const {
    std::vector<cluster::AggregateBlock> blocks;
    blocks.reserve(groups_.size());
    for (const auto& [set, members] : groups_) {
      cluster::AggregateBlock block;
      block.last_hops = set;
      block.member_24s.reserve(members->size());
      members->AppendTo(block.member_24s);
      std::sort(block.member_24s.begin(), block.member_24s.end());
      blocks.push_back(std::move(block));
    }
    std::sort(blocks.begin(), blocks.end(),
              [](const cluster::AggregateBlock& a,
                 const cluster::AggregateBlock& b) {
                if (a.member_24s.size() != b.member_24s.size()) {
                  return a.member_24s.size() > b.member_24s.size();
                }
                return a.member_24s.front() < b.member_24s.front();
              });
    return blocks;
  }

  std::vector<serve::ClassifiedPrefix> Classified() const {
    std::vector<serve::ClassifiedPrefix> classified;
    classified.reserve(records_.size());
    for (const auto& [key, record] : records_) {
      classified.push_back(
          {record.prefix,
           static_cast<std::uint8_t>(record.classification)});
    }
    return classified;
  }

  void Publish() {
    StreamStats& stats = out_->stats;
    const std::uint64_t epoch = config_.epoch_base + stats.publishes;
    const std::vector<cluster::AggregateBlock> blocks = BuildBlocks();
    const std::vector<serve::ClassifiedPrefix> classified = Classified();
    bool ok = false;
    if (base_ == nullptr) {
      // Bootstrap: the store has nothing of ours to patch against.
      std::vector<std::byte> bytes =
          serve::CompileSnapshot(blocks, classified, epoch);
      std::optional<serve::Snapshot> snapshot =
          serve::Snapshot::FromBuffer(std::move(bytes));
      if (snapshot) {
        config_.store->Swap(
            std::make_shared<const serve::Snapshot>(*std::move(snapshot)));
        ok = true;
      }
    } else {
      serve::DeltaStats delta;
      std::vector<std::byte> patch =
          serve::CompileDelta(*base_, blocks, classified, epoch, &delta);
      ok = config_.store->PublishPatch(patch);
      if (ok) {
        stats.delta_publishes++;
        stats.delta_entries += delta.upserts + delta.removes;
      }
    }
    if (!ok) {
      stats.publish_failures++;
      return;
    }
    stats.publishes++;
    base_ = config_.store->Current();
    if (config_.verify_full_reference) {
      const std::vector<std::byte> reference =
          serve::CompileSnapshot(blocks, classified, epoch);
      std::span<const std::byte> served = base_->bytes();
      if (served.size() != reference.size() ||
          !std::equal(served.begin(), served.end(), reference.begin())) {
        stats.reference_mismatches++;
      }
    }
  }

  /// Arena-resident growable member list (netsim::Prefix is trivially
  /// destructible, so it satisfies the arena's no-destructor rule).
  using MemberList = common::ArenaVector<netsim::Prefix>;

  const StreamConfig& config_;
  StreamResult* out_;
  /// Per-group /24 member lists, bump-allocated in arena_.  This is the
  /// aggregator's retained (per-campaign) state; the *in-flight* probe
  /// results stay bounded by the queue exactly as before — the PR 7
  /// residency assertion (peak_inflight_results <= inflight_bound) is
  /// re-checked by tests/test_stream.cpp and gated by bench_stream.
  common::Arena arena_{
      common::Arena::Options{common::Arena::kDefaultChunkBytes,
                             /*huge_pages=*/true}};
  std::map<std::vector<netsim::Ipv4Address>, MemberList*> groups_;
  std::map<std::uint32_t, StreamRecord> records_;
  std::size_t since_publish_ = 0;
  /// The snapshot the next patch diffs against (what the store serves).
  std::shared_ptr<const serve::Snapshot> base_;
};

}  // namespace

StreamResult RunStreamCampaign(const netsim::Internet& internet,
                               const StreamConfig& config) {
  const netsim::Simulator* simulator = internet.simulator.get();
  common::PoolRef pool(config.pool, config.threads);

  core::PipelineConfig setup_config;
  setup_config.seed = config.seed;
  setup_config.calibration_blocks = config.calibration_blocks;
  setup_config.samples_per_block = config.samples_per_block;
  setup_config.prober = config.prober;
  core::CampaignSetup setup =
      core::PrepareCampaign(internet, setup_config, simulator, pool.get());

  StreamResult result;
  result.stats.setup = setup.stats;
  result.stats.measured_24s = setup.study_blocks.size();

  common::BoundedQueue<ResultItem> queue(config.window);
  // The O(in-flight) guarantee: at most `capacity` queued results plus
  // one under construction per worker plus one being consumed.  (The
  // queue clamps capacity 0 to 1, hence capacity() not config.window.)
  result.stats.inflight_bound =
      queue.capacity() + static_cast<std::size_t>(pool->thread_count()) + 1;
  std::atomic<std::size_t> inflight{0};
  std::atomic<std::size_t> peak_inflight{0};

  Aggregator aggregator(config, &result);
  std::thread consumer([&] {
    while (std::optional<ResultItem> item = queue.Pop()) {
      aggregator.Consume(*std::move(item));
      inflight.fetch_sub(1, std::memory_order_relaxed);
    }
  });

  const auto measurement_start = std::chrono::steady_clock::now();
  const std::uint64_t probes_before = simulator->probes_sent();
  const std::size_t total = setup.study_blocks.size();
  const std::size_t segment =
      config.segment == 0 ? (total == 0 ? 1 : total) : config.segment;
  std::size_t done = 0;
  std::size_t segment_index = 0;
  while (done < total) {
    if (segment_index > 0 && config.on_segment_boundary) {
      // No probe is in flight here (the previous wave's ForEachChunk has
      // returned), so the callback may mutate the world.
      config.on_segment_boundary(segment_index);
    }
    const std::size_t count = std::min(segment, total - done);
    const std::size_t base = done;
    pool->ForEachChunk(count, 1, [&](common::ChunkRange chunk) {
      core::BlockProber prober(simulator, &setup.table, config.prober);
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        const std::size_t index = base + i;
        const std::size_t now =
            inflight.fetch_add(1, std::memory_order_relaxed) + 1;
        std::size_t peak = peak_inflight.load(std::memory_order_relaxed);
        while (now > peak && !peak_inflight.compare_exchange_weak(
                                 peak, now, std::memory_order_relaxed)) {
        }
        ResultItem item;
        item.index = index;
        item.result = prober.ProbeBlock(setup.study_blocks[index],
                                        core::MeasurementRng(config.seed,
                                                             index));
        // Push parks here when the aggregator lags — the backpressure
        // that bounds resident observations.
        queue.Push(std::move(item));
      }
    });
    done += count;
    ++segment_index;
  }
  queue.Close();
  consumer.join();

  result.stats.probes_sent = simulator->probes_sent() - probes_before;
  result.stats.measurement_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    measurement_start)
          .count();
  result.stats.peak_inflight_results =
      peak_inflight.load(std::memory_order_relaxed);
  result.stats.results_queue = queue.counters();

  aggregator.Finish();
  return result;
}

}  // namespace hobbit::stream
