#include "analysis/outage_detection.h"

#include <algorithm>

#include "probing/ping.h"

namespace hobbit::analysis {

WatchedBlock MakeWatchedBlock(
    const netsim::Simulator& simulator,
    const std::vector<netsim::Ipv4Address>& candidates) {
  WatchedBlock block;
  probing::Pinger pinger(&simulator);
  for (netsim::Ipv4Address address : candidates) {
    if (pinger.Ping(address).has_value()) block.actives.push_back(address);
  }
  if (!candidates.empty()) {
    block.baseline_availability =
        std::max(0.05, static_cast<double>(block.actives.size()) /
                           static_cast<double>(candidates.size()));
  }
  return block;
}

DetectionResult DetectOutage(const netsim::Simulator& simulator,
                             const WatchedBlock& block,
                             const DetectionParams& params,
                             netsim::Rng rng) {
  DetectionResult result;
  result.belief_up = params.prior_up;
  if (block.actives.empty()) {
    result.verdict = OutageVerdict::kUndecided;
    return result;
  }

  // Probe known-active addresses in random order, updating the posterior
  // after each probe (Trinocular's short-term belief update).
  std::vector<netsim::Ipv4Address> order = block.actives;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    std::swap(order[i], order[i + rng.NextBelow(order.size() - i)]);
  }
  probing::Pinger pinger(&simulator);
  // P(response | up): a known-active answers with (churn-adjusted)
  // probability close to 1; Trinocular uses the block's A for fresh
  // addresses.  Use a conservative blend.
  const double p_response_up =
      std::min(0.95, 0.5 + 0.5 * block.baseline_availability);

  const int budget =
      std::min<int>(params.max_probes, static_cast<int>(order.size()));
  for (int i = 0; i < budget; ++i) {
    const bool answered = pinger.Ping(order[static_cast<std::size_t>(i)])
                              .has_value();
    ++result.probes_used;
    const double like_up =
        answered ? p_response_up : 1.0 - p_response_up;
    const double like_down = answered ? params.response_if_down
                                      : 1.0 - params.response_if_down;
    const double numerator = like_up * result.belief_up;
    result.belief_up =
        numerator / (numerator + like_down * (1.0 - result.belief_up));
    if (result.belief_up >= params.up_threshold) {
      result.verdict = OutageVerdict::kUp;
      return result;
    }
    if (result.belief_up <= params.down_threshold) {
      result.verdict = OutageVerdict::kDown;
      return result;
    }
  }
  result.verdict = OutageVerdict::kUndecided;
  return result;
}

}  // namespace hobbit::analysis
