#include "analysis/evaluation.h"

#include <algorithm>
#include <map>

#include "hobbit/hierarchy.h"

namespace hobbit::analysis {

VerdictEvaluation EvaluateVerdicts(const netsim::Internet& internet,
                                   const core::PipelineResult& result) {
  VerdictEvaluation evaluation;
  for (const core::BlockResult& r : result.results) {
    if (!core::IsAnalyzable(r.classification)) {
      ++evaluation.not_analyzable;
      continue;
    }
    const netsim::TruthRecord* truth = internet.TruthOf(r.prefix);
    if (truth == nullptr) continue;
    const bool said_homogeneous = core::IsHomogeneous(r.classification);
    if (said_homogeneous && !truth->heterogeneous) {
      ++evaluation.true_homogeneous;
    } else if (said_homogeneous && truth->heterogeneous) {
      ++evaluation.false_homogeneous;
    } else if (!said_homogeneous && truth->heterogeneous) {
      ++evaluation.true_heterogeneous;
    } else {
      ++evaluation.false_heterogeneous;
    }
  }
  return evaluation;
}

FlagEvaluation EvaluateAlignedDisjointFlag(
    const netsim::Internet& internet, const core::PipelineResult& result) {
  FlagEvaluation evaluation;
  for (std::size_t i = 0; i < result.results.size(); ++i) {
    const core::BlockResult& r = result.results[i];
    if (r.classification !=
        core::Classification::kDifferentButHierarchical) {
      continue;
    }
    core::BlockResult full = core::ReprobeBlock(
        internet, result.study_blocks[i], 0xF1A6ULL + i);
    auto groups = core::GroupByLastHop(full.observations);
    if (!core::IsAlignedDisjoint(groups)) continue;
    ++evaluation.flagged;
    const netsim::TruthRecord* truth = internet.TruthOf(r.prefix);
    if (truth != nullptr && truth->heterogeneous) {
      ++evaluation.flagged_truly_heterogeneous;
    }
  }
  return evaluation;
}

AggregationEvaluation EvaluateAggregation(
    const netsim::Internet& internet,
    std::span<const cluster::AggregateBlock> blocks) {
  AggregationEvaluation evaluation;

  // Purity, plus per-truth-block membership for completeness.
  std::map<std::uint64_t, std::map<const cluster::AggregateBlock*,
                                   std::uint64_t>>
      truth_membership;
  for (const cluster::AggregateBlock& block : blocks) {
    ++evaluation.blocks;
    std::uint64_t first_truth = 0;
    bool pure = true, first = true;
    for (const netsim::Prefix& p : block.member_24s) {
      const netsim::TruthRecord* truth = internet.TruthOf(p);
      if (truth == nullptr) continue;
      ++truth_membership[truth->truth_block][&block];
      if (first) {
        first_truth = truth->truth_block;
        first = false;
      } else if (truth->truth_block != first_truth) {
        pure = false;
      }
    }
    evaluation.pure_blocks += pure ? 1 : 0;
  }

  // Completeness: for every ground-truth block with >= 2 measured member
  // /24s, the largest fraction landing in one measured block.
  double total = 0.0;
  std::uint64_t counted = 0;
  for (const auto& [truth_id, membership] : truth_membership) {
    std::uint64_t members = 0, largest = 0;
    for (const auto& [block, count] : membership) {
      members += count;
      largest = std::max(largest, count);
    }
    if (members < 2) continue;
    total += static_cast<double>(largest) / static_cast<double>(members);
    ++counted;
  }
  evaluation.mean_completeness = counted == 0 ? 0.0 : total / counted;
  return evaluation;
}

}  // namespace hobbit::analysis
