#include "analysis/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace hobbit::analysis {

std::string Fmt(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string Pct(double ratio) { return Fmt(ratio * 100.0, 1) + "%"; }

void PrintCdfSummary(std::ostream& os, const std::string& label,
                     const Ecdf& ecdf) {
  os << label << ": n=" << ecdf.size();
  if (!ecdf.empty()) {
    os << " min=" << Fmt(ecdf.Min()) << " p10=" << Fmt(ecdf.Quantile(0.1))
       << " p25=" << Fmt(ecdf.Quantile(0.25))
       << " p50=" << Fmt(ecdf.Quantile(0.5))
       << " p75=" << Fmt(ecdf.Quantile(0.75))
       << " p90=" << Fmt(ecdf.Quantile(0.9)) << " max=" << Fmt(ecdf.Max())
       << " mean=" << Fmt(ecdf.Mean());
  }
  os << "\n";
}

void PrintCdfSeries(std::ostream& os, const std::string& label,
                    const Ecdf& ecdf, std::span<const double> xs) {
  os << label << ":";
  for (double x : xs) {
    os << "  " << Fmt(x) << "->" << Fmt(ecdf.At(x));
  }
  os << "\n";
}

void PrintLog2Histogram(std::ostream& os, const std::string& label,
                        const Log2Histogram& histogram) {
  os << label << "\n";
  std::uint64_t peak = 1;
  for (std::uint64_t count : histogram.counts) {
    peak = std::max(peak, count);
  }
  for (std::size_t k = 0; k < histogram.counts.size(); ++k) {
    const auto bar = static_cast<std::size_t>(
        histogram.counts[k] * 48 / peak);
    os << "  [2^" << std::setw(2) << k << ", 2^" << std::setw(2) << k + 1
       << "): " << std::setw(8) << histogram.counts[k] << "  "
       << std::string(bar, '#') << "\n";
  }
}

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << rows_[r][c];
    }
    os << "\n";
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t w : widths) total += w + 2;
      os << std::string(total, '-') << "\n";
    }
  }
}

}  // namespace hobbit::analysis
