// stats.h — small statistics toolkit used across the experiments: ECDFs
// (most of the paper's figures are CDFs), log2 histograms (Figs 5 and 10),
// and the sample-size arithmetic behind the paper's 16,588-sample
// criterion.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace hobbit::analysis {

/// Empirical CDF over doubles.
class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> values) : values_(std::move(values)) {
    std::sort(values_.begin(), values_.end());
  }

  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }

  /// Fraction of samples <= x.
  double At(double x) const {
    if (values_.empty()) return 0.0;
    auto pos = std::upper_bound(values_.begin(), values_.end(), x);
    return static_cast<double>(pos - values_.begin()) / values_.size();
  }

  /// q-quantile (0 <= q <= 1), nearest-rank.
  double Quantile(double q) const {
    if (values_.empty()) return 0.0;
    double rank = q * static_cast<double>(values_.size() - 1);
    auto idx = static_cast<std::size_t>(rank);
    return values_[std::min(idx, values_.size() - 1)];
  }

  double Min() const { return values_.empty() ? 0.0 : values_.front(); }
  double Max() const { return values_.empty() ? 0.0 : values_.back(); }

  double Mean() const {
    if (values_.empty()) return 0.0;
    double sum = 0.0;
    for (double v : values_) sum += v;
    return sum / static_cast<double>(values_.size());
  }

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

/// Histogram over power-of-two buckets [2^k, 2^(k+1)), as Figures 5 and 10
/// draw cluster sizes.
struct Log2Histogram {
  /// counts[k] covers sizes in [2^k, 2^(k+1)).
  std::vector<std::uint64_t> counts;

  static Log2Histogram Of(std::span<const std::size_t> sizes) {
    Log2Histogram h;
    for (std::size_t s : sizes) {
      if (s == 0) continue;
      int bucket = 0;
      for (std::size_t v = s; v > 1; v >>= 1) ++bucket;
      if (static_cast<std::size_t>(bucket) >= h.counts.size()) {
        h.counts.resize(static_cast<std::size_t>(bucket) + 1, 0);
      }
      ++h.counts[static_cast<std::size_t>(bucket)];
    }
    return h;
  }
};

/// Cochran sample-size formula the paper cites for its 16,588 samples per
/// confidence cell: n = z^2 p (1-p) / e^2.
inline int RequiredSampleSize(double confidence_z, double margin,
                              double proportion = 0.5) {
  return static_cast<int>(std::ceil(confidence_z * confidence_z *
                                    proportion * (1.0 - proportion) /
                                    (margin * margin)));
}

/// z for the 99 % two-sided level (the paper's choice).
inline constexpr double kZ99 = 2.5758293035489004;

}  // namespace hobbit::analysis
