#include "analysis/sampling.h"

#include <algorithm>
#include <unordered_set>

namespace hobbit::analysis {

double MeanDistinctPatternsStratified(
    std::span<const std::uint32_t> pattern_ids,
    std::span<const std::vector<std::uint32_t>> strata, int repetitions,
    netsim::Rng rng) {
  if (repetitions <= 0) return 0.0;
  double total = 0.0;
  std::unordered_set<std::uint32_t> seen;
  for (int r = 0; r < repetitions; ++r) {
    seen.clear();
    for (const auto& stratum : strata) {
      if (stratum.empty()) continue;
      std::uint32_t pick = stratum[rng.NextBelow(stratum.size())];
      seen.insert(pattern_ids[pick]);
    }
    total += static_cast<double>(seen.size());
  }
  return total / repetitions;
}

double MeanDistinctPatternsRandom(
    std::span<const std::uint32_t> pattern_ids, std::size_t sample_size,
    int repetitions, netsim::Rng rng) {
  if (repetitions <= 0 || pattern_ids.empty()) return 0.0;
  sample_size = std::min(sample_size, pattern_ids.size());
  std::vector<std::uint32_t> indices(pattern_ids.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<std::uint32_t>(i);
  }
  double total = 0.0;
  std::unordered_set<std::uint32_t> seen;
  for (int r = 0; r < repetitions; ++r) {
    seen.clear();
    // Partial Fisher-Yates: the first `sample_size` entries become the
    // sample (without replacement).
    for (std::size_t i = 0; i < sample_size; ++i) {
      std::size_t j = i + rng.NextBelow(indices.size() - i);
      std::swap(indices[i], indices[j]);
      seen.insert(pattern_ids[indices[i]]);
    }
    total += static_cast<double>(seen.size());
  }
  return total / repetitions;
}

std::size_t TotalDistinctPatterns(
    std::span<const std::uint32_t> pattern_ids) {
  std::unordered_set<std::uint32_t> seen(pattern_ids.begin(),
                                         pattern_ids.end());
  return seen.size();
}

}  // namespace hobbit::analysis
