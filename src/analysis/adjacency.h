// adjacency.h — numerical adjacency of the /24s inside aggregated blocks
// (paper §5.3, Figures 7 and 8).
//
// Blocks that are topologically one place need not be numerically one
// range: the paper finds most large blocks are several contiguous runs
// separated in address space.  Adjacency is measured by the longest common
// prefix (LCP) length between /24 identifiers — 23 means consecutive
// twins, 0 means opposite halves of the address space.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "cluster/aggregate.h"
#include "netsim/ipv4.h"

namespace hobbit::analysis {

/// LCP lengths between numerically neighbouring /24s of one block
/// (Fig 7a's population, per block).  Empty for single-member blocks.
std::vector<int> AdjacentLcpLengths(const cluster::AggregateBlock& block);

/// LCP length between the smallest and the largest /24 (Fig 7b).
int EndToEndLcpLength(const cluster::AggregateBlock& block);

/// Figure 8's drawing positions: x_1 = 1 and
/// x_i = x_{i-1} + (24 - LCP(p_{i-1}, p_i)); large gaps mean low
/// adjacency.
std::vector<double> AdjacencyPositions(const cluster::AggregateBlock& block);

/// Contiguous runs of consecutive /24s within the block, as
/// (first /24, count) — the "segments" visible in Figure 8.
struct ContiguousRun {
  netsim::Prefix first;
  std::size_t count;
};
std::vector<ContiguousRun> ContiguousRuns(const cluster::AggregateBlock& block);

/// ASCII rendition of Figure 8 for one block: a line of cells where '#'
/// marks member /24s and '.' compresses gaps (log-scaled).
std::string RenderAdjacencyStrip(const cluster::AggregateBlock& block,
                                 std::size_t width = 72);

}  // namespace hobbit::analysis
