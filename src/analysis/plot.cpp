#include "analysis/plot.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "analysis/stats.h"

namespace hobbit::analysis {
namespace {

struct Range {
  double lo = 0.0, hi = 1.0;

  int ToCell(double v, int cells) const {
    if (hi <= lo) return 0;
    double t = (v - lo) / (hi - lo);
    int cell = static_cast<int>(std::floor(t * cells));
    return std::clamp(cell, 0, cells - 1);
  }
};

std::string FormatTick(double v) {
  std::ostringstream os;
  if (std::abs(v) >= 1000) {
    os << std::fixed << std::setprecision(0) << v;
  } else {
    os << std::fixed << std::setprecision(2) << v;
  }
  return os.str();
}

}  // namespace

void RenderPlot(std::ostream& os, const std::vector<PlotSeries>& series,
                const PlotOptions& options) {
  const int width = std::max(8, options.width);
  const int height = std::max(4, options.height);

  // Fit axes.
  Range x{options.x_min, options.x_max};
  Range y{options.y_min, options.y_max};
  bool auto_x = options.x_min == PlotOptions::kAuto ||
                options.x_max == PlotOptions::kAuto;
  bool auto_y = options.y_min == PlotOptions::kAuto ||
                options.y_max == PlotOptions::kAuto;
  if (auto_x || auto_y) {
    double x_lo = 1e300, x_hi = -1e300, y_lo = 1e300, y_hi = -1e300;
    for (const PlotSeries& s : series) {
      for (auto [px, py] : s.points) {
        x_lo = std::min(x_lo, px);
        x_hi = std::max(x_hi, px);
        y_lo = std::min(y_lo, py);
        y_hi = std::max(y_hi, py);
      }
    }
    if (x_lo > x_hi) {
      x_lo = 0;
      x_hi = 1;
    }
    if (y_lo > y_hi) {
      y_lo = 0;
      y_hi = 1;
    }
    if (auto_x) x = {x_lo, x_hi == x_lo ? x_lo + 1 : x_hi};
    if (auto_y) y = {y_lo, y_hi == y_lo ? y_lo + 1 : y_hi};
  }

  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  for (const PlotSeries& s : series) {
    // Draw with linear interpolation between consecutive points so sparse
    // series still read as curves.
    for (std::size_t i = 0; i < s.points.size(); ++i) {
      auto [px, py] = s.points[i];
      int col = x.ToCell(px, width);
      int row = height - 1 - y.ToCell(py, height);
      canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          s.glyph;
      if (i + 1 < s.points.size()) {
        auto [nx, ny] = s.points[i + 1];
        int col2 = x.ToCell(nx, width);
        int steps = std::abs(col2 - col);
        for (int step = 1; step < steps; ++step) {
          double t = static_cast<double>(step) / steps;
          double iy = py + t * (ny - py);
          int c = col + (col2 > col ? step : -step);
          int r = height - 1 - y.ToCell(iy, height);
          char& cell = canvas[static_cast<std::size_t>(r)]
                             [static_cast<std::size_t>(c)];
          if (cell == ' ') cell = s.glyph;
        }
      }
    }
  }

  // Borders + y ticks.
  const std::string top_tick = FormatTick(y.hi);
  const std::string bottom_tick = FormatTick(y.lo);
  const std::size_t margin =
      std::max(top_tick.size(), bottom_tick.size()) + 1;
  for (int row = 0; row < height; ++row) {
    std::string tick;
    if (row == 0) tick = top_tick;
    if (row == height - 1) tick = bottom_tick;
    os << std::setw(static_cast<int>(margin)) << tick << " |"
       << canvas[static_cast<std::size_t>(row)] << "|\n";
  }
  os << std::string(margin + 1, ' ') << '+'
     << std::string(static_cast<std::size_t>(width), '-') << "+\n";
  const std::string x_lo_tick = FormatTick(x.lo);
  const std::string x_hi_tick = FormatTick(x.hi);
  os << std::string(margin + 2, ' ') << x_lo_tick
     << std::string(std::max<std::size_t>(
                        1, static_cast<std::size_t>(width) -
                               x_lo_tick.size() - x_hi_tick.size()),
                    ' ')
     << x_hi_tick;
  if (!options.x_label.empty()) os << "   " << options.x_label;
  os << "\n";
  for (const PlotSeries& s : series) {
    os << std::string(margin + 2, ' ') << s.glyph << " = " << s.label
       << "\n";
  }
  if (!options.y_label.empty()) {
    os << std::string(margin + 2, ' ') << "y: " << options.y_label << "\n";
  }
}

void RenderCdfPlot(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::vector<double>>>& samples,
    const PlotOptions& options) {
  static constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@'};
  std::vector<PlotSeries> series;
  double x_lo = 1e300, x_hi = -1e300;
  for (const auto& [label, values] : samples) {
    Ecdf ecdf(values);
    if (ecdf.empty()) continue;
    x_lo = std::min(x_lo, ecdf.Min());
    x_hi = std::max(x_hi, ecdf.Max());
  }
  if (x_lo > x_hi) return;
  PlotOptions opts = options;
  if (opts.y_min == PlotOptions::kAuto) opts.y_min = 0.0;
  if (opts.y_max == PlotOptions::kAuto) opts.y_max = 1.0;
  if (opts.y_label.empty()) opts.y_label = "CDF";
  std::size_t index = 0;
  for (const auto& [label, values] : samples) {
    Ecdf ecdf(values);
    if (ecdf.empty()) continue;
    PlotSeries s;
    s.label = label;
    s.glyph = kGlyphs[index++ % sizeof(kGlyphs)];
    const int kPoints = 96;
    for (int i = 0; i <= kPoints; ++i) {
      double xv = x_lo + (x_hi - x_lo) * i / kPoints;
      s.points.emplace_back(xv, ecdf.At(xv));
    }
    series.push_back(std::move(s));
  }
  RenderPlot(os, series, opts);
}

}  // namespace hobbit::analysis
