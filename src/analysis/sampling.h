// sampling.h — stratified vs simple random sampling (paper §7.3, Fig 12).
//
// A sample is "more representative" when it hits more distinct host
// types; host types are proxied by reverse-DNS naming patterns (Time
// Warner Cable publishes its schemes).  Stratified sampling draws one
// element per Hobbit block; simple random sampling draws uniformly, at
// 1×/2×/4× the stratified sample size.  The experiment is generic over
// "population elements with a pattern id" and "strata as index lists" so
// tests can drive it synthetically.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netsim/rng.h"

namespace hobbit::analysis {

/// Mean (over `repetitions`) number of distinct pattern ids in a sample
/// drawn with one uniformly random element per stratum.
double MeanDistinctPatternsStratified(
    std::span<const std::uint32_t> pattern_ids,
    std::span<const std::vector<std::uint32_t>> strata, int repetitions,
    netsim::Rng rng);

/// Mean number of distinct pattern ids in a uniform random sample of
/// `sample_size` elements (without replacement).
double MeanDistinctPatternsRandom(
    std::span<const std::uint32_t> pattern_ids, std::size_t sample_size,
    int repetitions, netsim::Rng rng);

/// Number of distinct pattern ids in the whole population.
std::size_t TotalDistinctPatterns(std::span<const std::uint32_t> pattern_ids);

}  // namespace hobbit::analysis
