#include "analysis/topo_discovery.h"

#include <algorithm>
#include <unordered_set>

#include "probing/traceroute.h"

namespace hobbit::analysis {

TracerouteCorpus CollectCorpus(
    const netsim::Simulator& simulator,
    std::span<const netsim::Ipv4Address> destinations) {
  TracerouteCorpus corpus;
  corpus.entries.reserve(destinations.size());
  std::uint64_t serial = 1;
  std::unordered_set<std::uint64_t> all_links;
  for (netsim::Ipv4Address destination : destinations) {
    // Vary the flow identifier per destination so per-flow diversity
    // shows up across the corpus.
    auto flow = static_cast<std::uint16_t>(
        netsim::StableHash({destination.value(), 0xF10ULL}) & 0xFFFF);
    probing::Route route =
        probing::ParisTraceroute(simulator, destination, flow, serial);
    if (!route.reached_destination) continue;
    CorpusEntry entry;
    entry.destination = destination;
    for (std::size_t i = 1; i < route.hops.size(); ++i) {
      const probing::Hop& a = route.hops[i - 1];
      const probing::Hop& b = route.hops[i];
      if (!a.responsive || !b.responsive) continue;
      std::uint64_t link = (std::uint64_t{a.address.value()} << 32) |
                           b.address.value();
      entry.links.push_back(link);
      all_links.insert(link);
    }
    // Router-router links only: destination attachment edges are unique
    // per address by construction, so counting them would reward nothing
    // but raw probe volume.
    corpus.entries.push_back(std::move(entry));
  }
  corpus.total_links = all_links.size();
  return corpus;
}

std::vector<SeriesPoint> DiscoverySeries(
    const TracerouteCorpus& corpus,
    std::span<const std::vector<std::uint32_t>> strata,
    std::size_t total_24s, netsim::Rng rng, double stop_ratio,
    int max_rounds) {
  std::vector<SeriesPoint> series;
  if (corpus.total_links == 0 || total_24s == 0) return series;

  // Shuffle each stratum once; round k takes its first k entries, so the
  // selection is cumulative across rounds (as repeated sampling in the
  // paper's "repeat to select more destinations" loop).
  std::vector<std::vector<std::uint32_t>> shuffled(strata.begin(),
                                                   strata.end());
  for (auto& s : shuffled) {
    for (std::size_t i = s.size(); i > 1; --i) {
      std::swap(s[i - 1], s[rng.NextBelow(i)]);
    }
  }

  std::unordered_set<std::uint64_t> covered;
  std::size_t selected = 0;
  for (int k = 1; k <= max_rounds; ++k) {
    bool any_new_selection = false;
    for (const auto& s : shuffled) {
      if (s.size() < static_cast<std::size_t>(k)) continue;
      any_new_selection = true;
      const CorpusEntry& entry =
          corpus.entries[s[static_cast<std::size_t>(k) - 1]];
      ++selected;
      for (std::uint64_t link : entry.links) covered.insert(link);
    }
    if (!any_new_selection) break;
    SeriesPoint point;
    point.avg_selected_per_24 =
        static_cast<double>(selected) / static_cast<double>(total_24s);
    point.link_ratio = static_cast<double>(covered.size()) /
                       static_cast<double>(corpus.total_links);
    series.push_back(point);
    if (point.link_ratio >= stop_ratio) break;
  }
  return series;
}

}  // namespace hobbit::analysis
