#include "analysis/cellular.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "netsim/rdns.h"
#include "netsim/rng.h"
#include "probing/ping.h"

namespace hobbit::analysis {
namespace {

/// Samples up to `want` member /24s of a block, uniformly.
std::vector<netsim::Prefix> SampleMembers(
    const cluster::AggregateBlock& block, std::size_t want,
    netsim::Rng& rng) {
  std::vector<netsim::Prefix> members = block.member_24s;
  if (members.size() <= want) return members;
  for (std::size_t i = 0; i < want; ++i) {
    std::size_t j = i + rng.NextBelow(members.size() - i);
    std::swap(members[i], members[j]);
  }
  members.resize(want);
  return members;
}

}  // namespace

std::vector<double> FirstRttDeltas(const netsim::Internet& internet,
                                   const cluster::AggregateBlock& block,
                                   int sample_24s, int pings_per_address,
                                   std::uint64_t seed) {
  netsim::Rng rng(seed);
  probing::Pinger pinger(internet.simulator.get());
  std::vector<double> deltas;
  for (const netsim::Prefix& slash24 :
       SampleMembers(block, static_cast<std::size_t>(sample_24s), rng)) {
    for (std::uint32_t a = slash24.base().value();
         a <= slash24.Last().value(); ++a) {
      netsim::Ipv4Address address(a);
      std::vector<probing::EchoResult> train =
          pinger.PingTrain(address, pings_per_address);
      if (train.size() < 2) continue;  // unresponsive or nearly so
      double rest_max = 0.0;
      for (std::size_t i = 1; i < train.size(); ++i) {
        rest_max = std::max(rest_max, train[i].rtt_ms);
      }
      deltas.push_back((train.front().rtt_ms - rest_max) / 1000.0);
    }
  }
  return deltas;
}

std::string GeneralizeName(const std::string& name) {
  std::string pattern;
  pattern.reserve(name.size());
  bool in_digits = false;
  for (char c : name) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      if (!in_digits) pattern.push_back('#');
      in_digits = true;
    } else {
      pattern.push_back(c);
      in_digits = false;
    }
  }
  return pattern;
}

bool NameMatchesPattern(const std::string& pattern,
                        const std::string& name) {
  return GeneralizeName(name) == pattern;
}

PatternExtraction ExtractDominantPattern(
    const std::vector<std::string>& names) {
  PatternExtraction out;
  out.names_seen = names.size();
  std::map<std::string, std::size_t> counts;
  for (const std::string& name : names) ++counts[GeneralizeName(name)];
  out.distinct_patterns = counts.size();
  std::size_t best = 0;
  for (const auto& [pattern, count] : counts) {
    if (count > best) {
      best = count;
      out.dominant_pattern = pattern;
    }
  }
  if (!names.empty()) {
    out.coverage = static_cast<double>(best) / names.size();
  }
  return out;
}

std::vector<std::string> CollectRdnsNames(
    const netsim::Internet& internet, const cluster::AggregateBlock& block,
    std::size_t max_names, std::uint64_t seed) {
  netsim::Rng rng(seed);
  const netsim::HostModel& hosts = internet.simulator->host_model();
  std::vector<std::string> names;
  for (const netsim::Prefix& slash24 : block.member_24s) {
    if (names.size() >= max_names) break;
    netsim::SubnetId subnet_id =
        internet.topology.FindSubnet(slash24.base());
    if (subnet_id == netsim::kNoSubnet) continue;
    const netsim::Subnet& subnet = internet.topology.subnet(subnet_id);
    for (std::uint32_t a = slash24.base().value();
         a <= slash24.Last().value() && names.size() < max_names; ++a) {
      netsim::Ipv4Address address(a);
      if (!hosts.ActiveInSnapshot(address, subnet)) continue;
      if (!rng.NextBool(0.5)) continue;  // spread samples across /24s
      auto name = netsim::RdnsName(subnet.rdns_scheme, address);
      if (name) names.push_back(std::move(*name));
    }
  }
  return names;
}

}  // namespace hobbit::analysis
