// outage_detection.h — a Trinocular-style adaptive outage detector.
//
// Trinocular (Quan et al., SIGCOMM 2013) watches /24 blocks with
// Bayesian adaptive probing: probe known-active addresses of a block
// until the belief that the block is up (or down) is strong enough.  The
// paper under reproduction motivates Hobbit with Trinocular's blind spot:
// when only a *part* of a /24 fails — exactly what happens when the /24
// is secretly several customer sub-blocks — the responding remainder
// keeps the belief "up" and the outage is missed.  Hobbit's sub-block
// structure fixes the watch granularity.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/ipv4.h"
#include "netsim/rng.h"
#include "netsim/simulator.h"

namespace hobbit::analysis {

/// A unit under outage watch: its known-active addresses and the fraction
/// of them expected to answer when the unit is up (Trinocular's A).
struct WatchedBlock {
  std::vector<netsim::Ipv4Address> actives;
  double baseline_availability = 0.9;
};

enum class OutageVerdict : std::uint8_t { kUp, kDown, kUndecided };

struct DetectionParams {
  /// Belief thresholds (posterior P(up)).
  double up_threshold = 0.9;
  double down_threshold = 0.1;
  /// Probe budget per round.
  int max_probes = 16;
  /// P(response | host's unit is down): background noise.
  double response_if_down = 0.01;
  double prior_up = 0.5;
};

struct DetectionResult {
  OutageVerdict verdict = OutageVerdict::kUndecided;
  double belief_up = 0.5;
  int probes_used = 0;
};

/// Builds a watch unit by probing every address once at baseline (no
/// outage installed) and keeping the responders.
WatchedBlock MakeWatchedBlock(
    const netsim::Simulator& simulator,
    const std::vector<netsim::Ipv4Address>& candidates);

/// One adaptive detection round against the current network state.
DetectionResult DetectOutage(const netsim::Simulator& simulator,
                             const WatchedBlock& block,
                             const DetectionParams& params, netsim::Rng rng);

}  // namespace hobbit::analysis
