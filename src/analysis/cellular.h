// cellular.h — identifying cellular address blocks (paper §5.2 Fig 6 and
// §7.2).
//
// Two independent signals:
//  * timing — cellular radios sleep, so the first probe of a ping train
//    pays a wake-up delay the rest do not (Padmanabhan et al.): the
//    distribution of (first RTT − max of the rest) separates cellular
//    blocks from datacenter blocks;
//  * naming — cellular pools carry distinctive reverse-DNS schemes; a
//    dominant pattern generalised from a known-cellular block becomes a
//    classifier for cellular addresses elsewhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/aggregate.h"
#include "netsim/internet.h"

namespace hobbit::analysis {

/// Sends ping trains into a block and returns, per responsive address,
/// first RTT minus the maximum of the remaining RTTs, in **seconds**
/// (Fig 6's x axis).  Samples `sample_24s` member /24s.
std::vector<double> FirstRttDeltas(const netsim::Internet& internet,
                                   const cluster::AggregateBlock& block,
                                   int sample_24s, int pings_per_address,
                                   std::uint64_t seed);

/// Generalises a set of reverse-DNS names into a pattern by collapsing
/// every maximal digit run into '#'.  ("m3-10-0-0-1.cust.tele2.net" ->
/// "m#-#-#-#-#.cust.tele2.net".)
std::string GeneralizeName(const std::string& name);

/// True when `name` matches `pattern` under the digit-run wildcard rules
/// of GeneralizeName: '#' consumes one maximal digit run.
bool NameMatchesPattern(const std::string& pattern, const std::string& name);

struct PatternExtraction {
  std::string dominant_pattern;
  /// Fraction of names the dominant pattern covers.
  double coverage = 0.0;
  std::size_t names_seen = 0;
  std::size_t distinct_patterns = 0;
};

/// Extracts the dominant generalized pattern from names.
PatternExtraction ExtractDominantPattern(
    const std::vector<std::string>& names);

/// Collects the reverse-DNS names of up to `max_names` snapshot-active
/// addresses of a block (addresses without PTR records are skipped).
std::vector<std::string> CollectRdnsNames(
    const netsim::Internet& internet, const cluster::AggregateBlock& block,
    std::size_t max_names, std::uint64_t seed);

}  // namespace hobbit::analysis
