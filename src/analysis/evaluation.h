// evaluation.h — scoring Hobbit against ground truth.
//
// The paper can only bound its error statistically (the 95 % stopping
// rule, the <0.1 % false-positive check of §4.2).  The simulator knows
// the route entries, so this module computes what the authors could not:
// the full confusion matrix of the homogeneity verdict, the precision of
// the aligned-disjoint heterogeneity flag, and the purity/completeness of
// the final aggregated blocks.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "cluster/aggregate.h"
#include "hobbit/pipeline.h"
#include "netsim/internet.h"

namespace hobbit::analysis {

/// Confusion matrix of the per-/24 homogeneity verdict, over analyzable
/// blocks only.
struct VerdictEvaluation {
  std::uint64_t true_homogeneous = 0;    ///< said homog, truth homog
  std::uint64_t false_homogeneous = 0;   ///< said homog, truth split
  std::uint64_t true_heterogeneous = 0;  ///< said hier, truth split
  std::uint64_t false_heterogeneous = 0; ///< said hier, truth homog
  std::uint64_t not_analyzable = 0;

  double HomogeneousPrecision() const {
    auto d = true_homogeneous + false_homogeneous;
    return d == 0 ? 0.0 : static_cast<double>(true_homogeneous) / d;
  }
  double HomogeneousRecall() const {
    auto d = true_homogeneous + false_heterogeneous;
    return d == 0 ? 0.0 : static_cast<double>(true_homogeneous) / d;
  }
  double HeterogeneousPrecision() const {
    auto d = true_heterogeneous + false_heterogeneous;
    return d == 0 ? 0.0 : static_cast<double>(true_heterogeneous) / d;
  }
  double HeterogeneousRecall() const {
    auto d = true_heterogeneous + false_homogeneous;
    return d == 0 ? 0.0 : static_cast<double>(true_heterogeneous) / d;
  }
  double Accuracy() const {
    auto correct = true_homogeneous + true_heterogeneous;
    auto total = correct + false_homogeneous + false_heterogeneous;
    return total == 0 ? 0.0 : static_cast<double>(correct) / total;
  }
};

/// Scores every analyzable verdict of a pipeline run.
VerdictEvaluation EvaluateVerdicts(const netsim::Internet& internet,
                                   const core::PipelineResult& result);

/// Precision of the §4.2 aligned-disjoint flag: of the /24s it marks
/// "very likely heterogeneous", how many truly are (the paper claims the
/// criteria's false-positive rate on homogeneous blocks is < 0.1 %).
struct FlagEvaluation {
  std::uint64_t flagged = 0;
  std::uint64_t flagged_truly_heterogeneous = 0;

  double Precision() const {
    return flagged == 0
               ? 0.0
               : static_cast<double>(flagged_truly_heterogeneous) / flagged;
  }
};
FlagEvaluation EvaluateAlignedDisjointFlag(
    const netsim::Internet& internet, const core::PipelineResult& result);

/// Purity/completeness of an aggregation: a block is *pure* when all its
/// member /24s share one ground-truth gateway set; completeness is the
/// average (over ground-truth blocks with >= 2 measured members) of the
/// largest fraction kept together.
struct AggregationEvaluation {
  std::uint64_t blocks = 0;
  std::uint64_t pure_blocks = 0;
  double mean_completeness = 0.0;

  double Purity() const {
    return blocks == 0 ? 0.0
                       : static_cast<double>(pure_blocks) / blocks;
  }
};
AggregationEvaluation EvaluateAggregation(
    const netsim::Internet& internet,
    std::span<const cluster::AggregateBlock> blocks);

}  // namespace hobbit::analysis
