// topo_discovery.h — the topology-discovery efficiency experiment
// (paper §7.1, Figure 11).
//
// Given traceroutes toward every active address of a set of homogeneous
// /24s, compare two destination-selection strategies: k destinations from
// every /24 versus k destinations from every *Hobbit block*.  The metric
// is the fraction of all distinct IP-level links the selected traceroutes
// cover, as a function of the average number of selected destinations per
// /24.  Hobbit wins when its blocks are larger than /24s: fewer
// destinations cover the same links.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netsim/ipv4.h"
#include "netsim/rng.h"
#include "netsim/simulator.h"

namespace hobbit::analysis {

/// Traceroute corpus entry: one destination and the links of its route.
/// Links are packed (hop_i, hop_i+1) address pairs; wildcard-adjacent
/// links are omitted.
struct CorpusEntry {
  netsim::Ipv4Address destination;
  std::vector<std::uint64_t> links;
};

struct TracerouteCorpus {
  std::vector<CorpusEntry> entries;
  /// Total distinct links across all entries.
  std::size_t total_links = 0;
};

/// Collects one Paris traceroute per destination (flow identifier varied
/// per destination, so per-flow path diversity appears across the corpus
/// as it did in the paper's MDA dataset).
TracerouteCorpus CollectCorpus(
    const netsim::Simulator& simulator,
    std::span<const netsim::Ipv4Address> destinations);

/// One point of a discovery curve.
struct SeriesPoint {
  double avg_selected_per_24 = 0.0;
  double link_ratio = 0.0;
};

/// Computes the discovered-links curve for a stratified selection: per
/// round k, pick min(k, |stratum|) random corpus entries from each
/// stratum and measure link coverage.  `strata` holds indices into
/// `corpus.entries`; `total_24s` normalises the x axis.  The curve stops
/// once coverage exceeds `stop_ratio`.
std::vector<SeriesPoint> DiscoverySeries(
    const TracerouteCorpus& corpus,
    std::span<const std::vector<std::uint32_t>> strata,
    std::size_t total_24s, netsim::Rng rng, double stop_ratio = 0.999,
    int max_rounds = 256);

}  // namespace hobbit::analysis
