#include "analysis/edns.h"

#include <algorithm>
#include <cmath>

namespace hobbit::analysis {

std::vector<FrontEnd> PlaceFrontEnds(int count, netsim::Rng rng) {
  std::vector<FrontEnd> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back({rng.NextUnit(), rng.NextUnit()});
  }
  return out;
}

double LatencyToFrontEnd(const netsim::Subnet& subnet,
                         const FrontEnd& front_end) {
  const double dx = subnet.geo_x - front_end.x;
  const double dy = subnet.geo_y - front_end.y;
  // Access component + wide-area propagation: the unit square spans
  // ~120 ms corner to corner.
  return 0.25 * subnet.base_rtt_ms + 85.0 * std::sqrt(dx * dx + dy * dy);
}

namespace {

/// Index of the lowest-latency front-end for a subnet.
std::size_t BestFrontEnd(const netsim::Subnet& subnet,
                         std::span<const FrontEnd> front_ends) {
  std::size_t best = 0;
  double best_latency = LatencyToFrontEnd(subnet, front_ends[0]);
  for (std::size_t f = 1; f < front_ends.size(); ++f) {
    double latency = LatencyToFrontEnd(subnet, front_ends[f]);
    if (latency < best_latency) {
      best_latency = latency;
      best = f;
    }
  }
  return best;
}

}  // namespace

MappingOutcome EvaluateMapping(
    const netsim::Internet& internet,
    std::span<const std::vector<netsim::Ipv4Address>> strata,
    std::span<const FrontEnd> front_ends, netsim::Rng rng) {
  MappingOutcome outcome;
  if (front_ends.empty()) return outcome;
  std::vector<double> penalties;
  for (const auto& clients : strata) {
    if (clients.empty()) continue;
    // The CDN measured one representative of the unit.
    netsim::Ipv4Address representative =
        clients[rng.NextBelow(clients.size())];
    netsim::SubnetId rep_subnet =
        internet.topology.FindSubnet(representative);
    if (rep_subnet == netsim::kNoSubnet) continue;
    std::size_t assigned =
        BestFrontEnd(internet.topology.subnet(rep_subnet), front_ends);
    for (netsim::Ipv4Address client : clients) {
      netsim::SubnetId subnet_id = internet.topology.FindSubnet(client);
      if (subnet_id == netsim::kNoSubnet) continue;
      const netsim::Subnet& subnet = internet.topology.subnet(subnet_id);
      std::size_t best = BestFrontEnd(subnet, front_ends);
      double penalty = LatencyToFrontEnd(subnet, front_ends[assigned]) -
                       LatencyToFrontEnd(subnet, front_ends[best]);
      penalties.push_back(penalty);
      outcome.misdirected_share += best != assigned ? 1.0 : 0.0;
    }
  }
  if (penalties.empty()) return outcome;
  outcome.clients = penalties.size();
  double sum = 0.0;
  for (double p : penalties) sum += p;
  outcome.mean_penalty_ms = sum / static_cast<double>(penalties.size());
  std::sort(penalties.begin(), penalties.end());
  outcome.p95_penalty_ms =
      penalties[static_cast<std::size_t>(0.95 * (penalties.size() - 1))];
  outcome.misdirected_share /= static_cast<double>(penalties.size());
  return outcome;
}

}  // namespace hobbit::analysis
