// report.h — plain-text renderers for the paper's tables and figures.
//
// Every bench binary prints its table/figure through these helpers so the
// output is uniform and diffable: fixed-width tables, CDFs sampled at
// fixed probe points, and log2 histograms.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "analysis/stats.h"

namespace hobbit::analysis {

/// Prints "name: p10=.. p25=.. p50=.. p75=.. p90=.. mean=.." style rows.
void PrintCdfSummary(std::ostream& os, const std::string& label,
                     const Ecdf& ecdf);

/// Prints an ECDF as "x cdf" pairs at the given x probe points.
void PrintCdfSeries(std::ostream& os, const std::string& label,
                    const Ecdf& ecdf, std::span<const double> xs);

/// Prints a Log2Histogram as "[2^k, 2^k+1): count" lines.
void PrintLog2Histogram(std::ostream& os, const std::string& label,
                        const Log2Histogram& histogram);

/// Simple fixed-width table printer: first call with the header, then with
/// rows; column widths derive from the widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
std::string Fmt(double value, int digits = 2);

/// Formats a ratio as a percentage with one decimal ("34.2%").
std::string Pct(double ratio);

}  // namespace hobbit::analysis
