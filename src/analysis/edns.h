// edns.h — the EDNS-client-subnet experiment (paper §1 motivation).
//
// The EDNS-Client-Subnet extension truncates the client's address to 24
// bits before it reaches an authoritative CDN resolver, which then maps
// the whole /24 to the front-end server best for a measured
// representative.  "The EDNS-Client-Subnet extension may also fail to
// find the single best server for addresses within a /24 block if some
// addresses are distant from each other" — i.e. if the /24 is secretly
// split across locations.  This module evaluates the latency penalty of
// mapping at a given aggregation granularity against the per-address
// optimum, over the simulator's ground-truth geography.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netsim/internet.h"
#include "netsim/ipv4.h"
#include "netsim/rng.h"

namespace hobbit::analysis {

/// A CDN front-end location in the abstract unit square.
struct FrontEnd {
  double x = 0.5;
  double y = 0.5;
};

/// Uniformly random front-end placement.
std::vector<FrontEnd> PlaceFrontEnds(int count, netsim::Rng rng);

/// Client-to-front-end latency: the subnet's access latency plus a
/// distance-proportional wide-area component.
double LatencyToFrontEnd(const netsim::Subnet& subnet,
                         const FrontEnd& front_end);

/// Outcome of mapping each stratum of clients to the front-end that is
/// best for one randomly chosen representative.
struct MappingOutcome {
  double mean_penalty_ms = 0.0;  ///< vs the per-client optimum
  double p95_penalty_ms = 0.0;
  double misdirected_share = 0.0;  ///< clients not given their true best
  std::size_t clients = 0;
};

/// Evaluates one granularity.  `strata` lists client addresses per
/// mapping unit; every client of a unit is directed to the front-end
/// optimal for the unit's representative.
MappingOutcome EvaluateMapping(
    const netsim::Internet& internet,
    std::span<const std::vector<netsim::Ipv4Address>> strata,
    std::span<const FrontEnd> front_ends, netsim::Rng rng);

}  // namespace hobbit::analysis
