#include "analysis/census.h"

#include <algorithm>
#include <map>

namespace hobbit::analysis {

std::vector<AsCountRow> CountByAs(const netsim::Registry& registry,
                                  std::span<const netsim::Prefix> prefixes) {
  std::map<std::uint32_t, std::size_t> counts;
  for (const netsim::Prefix& prefix : prefixes) {
    auto as_index = registry.AsOf(prefix.base());
    if (as_index) ++counts[*as_index];
  }
  std::vector<AsCountRow> rows;
  rows.reserve(counts.size());
  for (const auto& [as_index, count] : counts) {
    rows.push_back({registry.as_info(as_index), count});
  }
  std::sort(rows.begin(), rows.end(),
            [](const AsCountRow& a, const AsCountRow& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.info.asn < b.info.asn;
            });
  return rows;
}

const netsim::AsInfo* AsOfBlock(const netsim::Registry& registry,
                                const cluster::AggregateBlock& block) {
  if (block.member_24s.empty()) return nullptr;
  auto as_index = registry.AsOf(block.member_24s.front().base());
  if (!as_index) return nullptr;
  return &registry.as_info(*as_index);
}

netsim::SubnetKind DominantKind(const netsim::Internet& internet,
                                const cluster::AggregateBlock& block) {
  std::map<netsim::SubnetKind, std::size_t> counts;
  for (const netsim::Prefix& slash24 : block.member_24s) {
    netsim::SubnetId id = internet.topology.FindSubnet(slash24.base());
    if (id != netsim::kNoSubnet) {
      ++counts[internet.topology.subnet(id).kind];
    }
  }
  netsim::SubnetKind best = netsim::SubnetKind::kResidential;
  std::size_t best_count = 0;
  for (const auto& [kind, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best = kind;
    }
  }
  return best;
}

}  // namespace hobbit::analysis
