#include "analysis/adjacency.h"

#include <algorithm>
#include <cmath>

namespace hobbit::analysis {

std::vector<int> AdjacentLcpLengths(const cluster::AggregateBlock& block) {
  std::vector<int> lengths;
  const auto& members = block.member_24s;  // sorted by construction
  for (std::size_t i = 1; i < members.size(); ++i) {
    lengths.push_back(
        netsim::LongestCommonPrefixLength(members[i - 1], members[i]));
  }
  return lengths;
}

int EndToEndLcpLength(const cluster::AggregateBlock& block) {
  if (block.member_24s.size() < 2) return 24;
  return netsim::LongestCommonPrefixLength(block.member_24s.front(),
                                           block.member_24s.back());
}

std::vector<double> AdjacencyPositions(const cluster::AggregateBlock& block) {
  std::vector<double> xs;
  xs.reserve(block.member_24s.size());
  double x = 1.0;
  xs.push_back(x);
  for (std::size_t i = 1; i < block.member_24s.size(); ++i) {
    int lcp = netsim::LongestCommonPrefixLength(block.member_24s[i - 1],
                                                block.member_24s[i]);
    x += 24 - lcp;
    xs.push_back(x);
  }
  return xs;
}

std::vector<ContiguousRun> ContiguousRuns(
    const cluster::AggregateBlock& block) {
  std::vector<ContiguousRun> runs;
  const auto& members = block.member_24s;
  std::size_t i = 0;
  while (i < members.size()) {
    std::size_t j = i + 1;
    while (j < members.size() &&
           members[j].base().value() ==
               members[j - 1].base().value() + 256) {
      ++j;
    }
    runs.push_back({members[i], j - i});
    i = j;
  }
  return runs;
}

std::string RenderAdjacencyStrip(const cluster::AggregateBlock& block,
                                 std::size_t width) {
  std::vector<ContiguousRun> runs = ContiguousRuns(block);
  if (runs.empty()) return {};
  std::string strip;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (r > 0) {
      // Gap, log-compressed: one dot per factor of ~16 in /24 distance.
      std::uint32_t gap =
          (runs[r].first.base().value() -
           (runs[r - 1].first.base().value() +
            static_cast<std::uint32_t>(runs[r - 1].count) * 256)) /
          256;
      int dots = 1 + static_cast<int>(std::log2(static_cast<double>(gap) + 1) / 4);
      strip.append(static_cast<std::size_t>(dots), '.');
    }
    // One '#' per ~(total/width) member /24s, at least one.
    double scale = std::max(
        1.0, static_cast<double>(block.member_24s.size()) /
                 static_cast<double>(width));
    auto cells = static_cast<std::size_t>(
        std::max(1.0, std::round(static_cast<double>(runs[r].count) / scale)));
    strip.append(cells, '#');
  }
  return strip;
}

}  // namespace hobbit::analysis
