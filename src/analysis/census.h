// census.h — joining measurement results against the address registry,
// as the paper does with Maxmind/WHOIS for Tables 3, 4 and 5.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/aggregate.h"
#include "netsim/internet.h"
#include "netsim/ipv4.h"
#include "netsim/registry.h"

namespace hobbit::analysis {

/// One row of a per-AS ranking.
struct AsCountRow {
  netsim::AsInfo info;
  std::size_t count = 0;
};

/// Groups /24s by owning AS and returns rows sorted by descending count
/// (Table 3's layout).  Prefixes without a registry entry are skipped.
std::vector<AsCountRow> CountByAs(const netsim::Registry& registry,
                                  std::span<const netsim::Prefix> prefixes);

/// The AS owning an aggregate block, resolved via its first member
/// (Table 5's join; blocks never span ASes in practice).
const netsim::AsInfo* AsOfBlock(const netsim::Registry& registry,
                                const cluster::AggregateBlock& block);

/// Dominant subnet kind of a block (for the cellular/datacenter
/// discussion of §5.2): the kind of the majority of member /24s.
netsim::SubnetKind DominantKind(const netsim::Internet& internet,
                                const cluster::AggregateBlock& block);

}  // namespace hobbit::analysis
