// plot.h — terminal plots for the figure benches.
//
// Each bench regenerates a *figure*; a row of numbers hides the shape the
// paper drew.  This renderer draws simple ASCII charts: multiple series
// over a shared x axis, each series its own glyph, with axis labels.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hobbit::analysis {

/// One polyline: (x, y) points, drawn with `glyph`.
struct PlotSeries {
  std::string label;
  char glyph = '*';
  std::vector<std::pair<double, double>> points;
};

struct PlotOptions {
  int width = 64;   ///< interior columns
  int height = 16;  ///< interior rows
  std::string x_label;
  std::string y_label;
  /// Fixed axis ranges; NaN means auto-fit to the data.
  double x_min = kAuto, x_max = kAuto;
  double y_min = kAuto, y_max = kAuto;
  static constexpr double kAuto = -1e300;
};

/// Renders the series into `os` (bordered canvas + legend).
void RenderPlot(std::ostream& os, const std::vector<PlotSeries>& series,
                const PlotOptions& options = {});

/// Convenience: renders ECDF curves of several labelled samples.
void RenderCdfPlot(std::ostream& os,
                   const std::vector<std::pair<std::string,
                                               std::vector<double>>>& samples,
                   const PlotOptions& options = {});

}  // namespace hobbit::analysis
