// lookup.h — the query engine over a loaded snapshot.
//
// The hot path of the serving layer: given a validated serve::Snapshot,
// answer "which block (and classification) owns this /24" in O(log n) via
// binary search over the snapshot's packed key array, and answer
// covering-prefix queries ("which measured /24s does 20.0.0.0/16 cover")
// as one equal-range probe.  A batched entry point shards large query
// lists over the shared common::ThreadPool with the usual deterministic
// item->shard contract — output slot i always holds the answer for query
// i, whatever the thread count.
//
// The engine borrows the snapshot (no ownership): callers doing RCU
// hot-swap construct a fresh engine per acquired shared_ptr, which is one
// pointer copy — all state lives in the snapshot buffer.
//
// For snapshots large enough that the binary search's first probes are
// all cache misses, an optional EytzingerIndex accelerates the exact
// search: the same keys laid out in BFS (heap) order, so the first few
// levels of every descent share a handful of hot cache lines and deeper
// levels are prefetched ahead of the comparison that needs them.  The
// index is a pure accelerator — same answers as LowerBound by
// construction, pinned by differential tests — and is built once per
// published snapshot (LineService caches it per snapshot pointer).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/parallel.h"
#include "serve/snapshot.h"

namespace hobbit::serve {

/// The snapshot key array re-laid-out in Eytzinger (BFS heap) order:
/// node k has children 2k and 2k+1 (1-based), so a search descends by
/// index arithmetic alone and the top of the tree — the levels every
/// lookup traverses — occupies a few contiguous cache lines instead of
/// being scattered across the sorted array.  `ranks` maps each node back
/// to its sorted position, which is what the engine's range queries need.
class EytzingerIndex {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  /// Descents walked in lockstep by the batched entry points.  16
  /// independent descents keep ~16 cache misses in flight per tree
  /// level (memory-level parallelism), where a one-at-a-time descent
  /// serializes on each level's load.
  static constexpr std::size_t kBatchWidth = 16;

  EytzingerIndex() = default;

  /// Builds the index over `snapshot`'s key section.
  static EytzingerIndex Build(const Snapshot& snapshot);
  /// Builds over an already-sorted, duplicate-free key array.
  static EytzingerIndex Build(std::span<const std::uint32_t> sorted_keys);

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Sorted rank of the first key >= `key` (== count when all keys are
  /// smaller) — the LowerBound analogue.
  std::size_t LowerBoundRank(std::uint32_t key) const {
    const std::size_t k = Descend<false>(key);
    return k == 0 ? count_ : ranks_[k];
  }

  /// Sorted rank of the first key > `key`.
  std::size_t UpperBoundRank(std::uint32_t key) const {
    const std::size_t k = Descend<true>(key);
    return k == 0 ? count_ : ranks_[k];
  }

  /// Sorted rank of `key` exactly, or npos when absent.
  std::size_t Find(std::uint32_t key) const {
    const std::size_t k = Descend<false>(key);
    if (k == 0 || keys_[k] != key) return npos;
    return ranks_[k];
  }

  /// Batched LowerBoundRank: ranks[i] = LowerBoundRank(queries[i]) for
  /// all `count` queries, computed kBatchWidth descents at a time in
  /// lockstep (identical comparisons, so identical answers — pinned by
  /// differential tests).  The serve tier's BATCH path runs through
  /// this to amortize memory latency across keys.
  void LowerBoundRankBatch(const std::uint32_t* queries, std::size_t count,
                           std::size_t* ranks) const;

 private:
  /// Branchless heap descent.  Returns the 1-based node of the first key
  /// >= `key` (kUpper: > `key`), or 0 when no such key exists.
  template <bool kUpper>
  std::size_t Descend(std::uint32_t key) const;

  /// Lockstep descent of `count` (<= kBatchWidth) queries: one pass per
  /// tree level issues every live descent's load back to back, so the
  /// misses overlap instead of chaining.  nodes[i] gets Descend's
  /// result for queries[i].
  template <bool kUpper>
  void DescendBatch(const std::uint32_t* queries, std::size_t count,
                    std::size_t* nodes) const;

  /// keys_[1..count_] in BFS order; slot 0 unused.  ranks_[k] is the
  /// sorted index of keys_[k].
  std::vector<std::uint32_t> keys_;
  std::vector<std::uint32_t> ranks_;
  std::size_t count_ = 0;
};

/// Answer for one /24 (or address) query.
struct LookupResult {
  bool found = false;
  std::uint32_t key = 0;                    // matched /24 base address
  std::uint32_t block = kNoBlock;           // owning block id or kNoBlock
  std::uint8_t class_token = kNoClass;      // Classification or kNoClass
};

/// Half-open entry-index range [begin, end) — the covering-query answer.
struct EntryRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

class LookupEngine {
 public:
  /// `index`, when non-null, must have been built over this snapshot's
  /// keys; every search then descends the Eytzinger layout instead of
  /// binary-searching the sorted array (identical answers either way).
  explicit LookupEngine(const Snapshot& snapshot,
                        const EytzingerIndex* index = nullptr)
      : snapshot_(&snapshot),
        index_(index != nullptr && index->size() == snapshot.entry_count()
                   ? index
                   : nullptr) {}

  /// Exact lookup of the /24 containing `address`.
  LookupResult Lookup(netsim::Ipv4Address address) const {
    return LookupKey(address.value() & 0xFFFFFF00u);
  }

  /// Exact lookup of a /24 prefix.  Non-/24 prefixes miss by definition
  /// (use Covering for shorter prefixes).
  LookupResult Lookup(const netsim::Prefix& prefix) const {
    if (prefix.length() != 24) return LookupResult{};
    return LookupKey(prefix.base().value());
  }

  /// Entries whose /24 lies inside `prefix` (any length).  O(log n).
  EntryRange Covering(const netsim::Prefix& prefix) const;

  /// Distinct block ids (kNoBlock excluded) across an entry range.
  std::size_t DistinctBlocks(const EntryRange& range) const;

  /// Batched exact lookups: answers[i] is the result for keys[i] (each a
  /// /24 base address).  Shards over `pool`; null pool runs serial.
  void LookupBatch(std::span<const std::uint32_t> keys,
                   std::span<LookupResult> answers,
                   common::ThreadPool* pool = nullptr) const;

  const Snapshot& snapshot() const { return *snapshot_; }

 private:
  LookupResult LookupKey(std::uint32_t key) const;
  /// First entry index with key >= `key`.
  std::size_t LowerBound(std::uint32_t key) const;
  /// First entry index with key > `key`.
  std::size_t UpperBound(std::uint32_t key) const;

  const Snapshot* snapshot_;
  const EytzingerIndex* index_ = nullptr;
};

}  // namespace hobbit::serve
