// lookup.h — the query engine over a loaded snapshot.
//
// The hot path of the serving layer: given a validated serve::Snapshot,
// answer "which block (and classification) owns this /24" in O(log n) via
// binary search over the snapshot's packed key array, and answer
// covering-prefix queries ("which measured /24s does 20.0.0.0/16 cover")
// as one equal-range probe.  A batched entry point shards large query
// lists over the shared common::ThreadPool with the usual deterministic
// item->shard contract — output slot i always holds the answer for query
// i, whatever the thread count.
//
// The engine borrows the snapshot (no ownership): callers doing RCU
// hot-swap construct a fresh engine per acquired shared_ptr, which is one
// pointer copy — all state lives in the snapshot buffer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/parallel.h"
#include "serve/snapshot.h"

namespace hobbit::serve {

/// Answer for one /24 (or address) query.
struct LookupResult {
  bool found = false;
  std::uint32_t key = 0;                    // matched /24 base address
  std::uint32_t block = kNoBlock;           // owning block id or kNoBlock
  std::uint8_t class_token = kNoClass;      // Classification or kNoClass
};

/// Half-open entry-index range [begin, end) — the covering-query answer.
struct EntryRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

class LookupEngine {
 public:
  explicit LookupEngine(const Snapshot& snapshot) : snapshot_(&snapshot) {}

  /// Exact lookup of the /24 containing `address`.
  LookupResult Lookup(netsim::Ipv4Address address) const {
    return LookupKey(address.value() & 0xFFFFFF00u);
  }

  /// Exact lookup of a /24 prefix.  Non-/24 prefixes miss by definition
  /// (use Covering for shorter prefixes).
  LookupResult Lookup(const netsim::Prefix& prefix) const {
    if (prefix.length() != 24) return LookupResult{};
    return LookupKey(prefix.base().value());
  }

  /// Entries whose /24 lies inside `prefix` (any length).  O(log n).
  EntryRange Covering(const netsim::Prefix& prefix) const;

  /// Distinct block ids (kNoBlock excluded) across an entry range.
  std::size_t DistinctBlocks(const EntryRange& range) const;

  /// Batched exact lookups: answers[i] is the result for keys[i] (each a
  /// /24 base address).  Shards over `pool`; null pool runs serial.
  void LookupBatch(std::span<const std::uint32_t> keys,
                   std::span<LookupResult> answers,
                   common::ThreadPool* pool = nullptr) const;

  const Snapshot& snapshot() const { return *snapshot_; }

 private:
  LookupResult LookupKey(std::uint32_t key) const;
  /// First entry index with key >= `key`.
  std::size_t LowerBound(std::uint32_t key) const;

  const Snapshot* snapshot_;
};

}  // namespace hobbit::serve
