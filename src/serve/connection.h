// connection.h — per-connection protocol state for the multi-client server.
//
// The reactor (reactor.h) owns sockets and readiness; everything that can
// be reasoned about without a socket lives here, so the framing and the
// pipelined-command driver are plain functions of byte sequences — unit
// tested with strings and fuzzed with random byte streams, no loopback
// required.
//
// Three layers, composed bottom-up:
//
//  * `LineFramer` — splits an arbitrary byte stream into protocol lines.
//    Lines end in '\n' (an optional preceding '\r' is stripped, so CRLF
//    clients work); a line longer than `max_line_bytes` or containing a
//    NUL byte is a protocol violation that *poisons* the framer — once
//    hostile bytes have been seen there is no way to know where the next
//    line boundary was meant to be, so the only safe answer is to stop
//    parsing and hang up.
//  * `OutbufStream` — a std::ostream whose streambuf appends to a caller
//    owned std::string, so LineService's handlers (written against
//    ostream) emit straight into the connection's write buffer with no
//    intermediate stringstream copy.
//  * `Connection` — the protocol driver: feeds framed lines through a
//    LineService, holding back a pipelined `BATCH n` command until its n
//    query lines have arrived (they may trickle in over any number of
//    reads), accumulating replies in the write buffer, and exposing the
//    backpressure state the reactor acts on: when the write buffer
//    exceeds `write_buffer_cap` the connection reports `paused()` and
//    the reactor stops reading from the socket until the peer drains it
//    below `write_buffer_resume`.
//
// Ownership: Connection borrows the LineService (and through it the
// SnapshotStore / metrics / thread pool); it owns only its buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <streambuf>
#include <string>
#include <string_view>

#include "serve/service.h"

namespace hobbit::serve {

/// Protocol-level limits shared by every connection of a reactor.
struct ConnectionLimits {
  /// Longest accepted protocol line, terminator excluded.
  std::size_t max_line_bytes = 1u << 16;
  /// Backpressure high-water mark: when the pending write buffer
  /// exceeds this, the connection pauses reading.
  std::size_t write_buffer_cap = 4u << 20;
  /// Backpressure low-water mark: reading resumes once the pending
  /// write buffer drains below this.
  std::size_t write_buffer_resume = 1u << 20;
  /// Largest total query payload a single BATCH may accumulate while
  /// its lines trickle in (bounds in-buffer growth; kMaxBatch bounds the
  /// line count, this bounds the bytes).
  std::size_t max_batch_bytes = 16u << 20;
};

/// Splits a byte stream into lines.  See the file comment for the exact
/// grammar; errors are sticky.
class LineFramer {
 public:
  enum class Status {
    kLine,      ///< *line holds the next complete line
    kNeedMore,  ///< no complete line buffered yet
    kTooLong,   ///< line exceeded max_line_bytes (sticky)
    kBadByte,   ///< NUL byte inside a line (sticky)
  };

  explicit LineFramer(std::size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends raw bytes from the wire.
  void Append(std::string_view bytes);

  /// Extracts the next complete line into *line (terminator stripped).
  Status Next(std::string* line);

  /// Bytes buffered but not yet returned as lines.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

  bool poisoned() const { return poisoned_; }

 private:
  std::size_t max_line_bytes_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already returned
  bool poisoned_ = false;
  Status poison_status_ = Status::kNeedMore;  ///< sticky error, once set
};

/// std::ostream appending to a borrowed std::string.
class OutbufStream : public std::ostream {
 public:
  explicit OutbufStream(std::string* out)
      : std::ostream(nullptr), buffer_(out) {
    rdbuf(&buffer_);
  }

 private:
  class AppendBuf : public std::streambuf {
   public:
    explicit AppendBuf(std::string* out) : out_(out) {}

   protected:
    int_type overflow(int_type ch) override {
      if (ch != traits_type::eof()) {
        out_->push_back(static_cast<char>(ch));
      }
      return ch;
    }
    std::streamsize xsputn(const char* data,
                           std::streamsize count) override {
      out_->append(data, static_cast<std::size_t>(count));
      return count;
    }

   private:
    std::string* out_;
  };

  AppendBuf buffer_;
};

/// One client conversation: framing + pipelined command dispatch + write
/// buffering.  Transport-free; the reactor (or a test) moves the bytes.
class Connection {
 public:
  Connection(LineService* service, const ConnectionLimits& limits)
      : service_(service), limits_(limits), framer_(limits.max_line_bytes) {}

  /// Feeds bytes read from the wire, dispatching every command that
  /// completes.  Returns false once the connection should accept no more
  /// input — protocol violation, QUIT, or a batch overflow; the caller
  /// should flush the remaining output and then close.
  bool Ingest(std::string_view bytes);

  /// Peer half-closed its sending side: no further input will arrive.
  /// An unfinished pipelined BATCH gets its truncation error emitted.
  void OnEof();

  /// Pending reply bytes, starting at the unwritten position.
  std::string_view pending() const {
    return std::string_view(out_).substr(out_pos_);
  }
  /// Marks `n` pending bytes as written to the wire.
  void Consume(std::size_t n);

  /// True when the write buffer exceeds the cap — the reactor must stop
  /// reading until drained (hysteresis via write_buffer_resume).
  bool paused() const { return paused_; }

  /// True when the conversation is over (QUIT / error / EOF): flush
  /// `pending()` and close.
  bool done() const { return done_; }

  /// True when the session ended because of a protocol violation
  /// (oversized line, NUL byte, batch overflow) rather than QUIT/EOF.
  bool protocol_error() const { return protocol_error_; }

  std::uint64_t commands() const { return commands_; }

 private:
  /// Routes one complete line (skips blanks/comments, manages the
  /// batch-collection state machine, dispatches to the service).
  void HandleLine(std::string&& line);
  void Dispatch(const std::string& command_line,
                const std::string& batch_lines);
  void ProtocolError(std::string_view reason);
  void RecomputePause();

  LineService* service_;
  ConnectionLimits limits_;
  LineFramer framer_;

  // Pipelined-BATCH collection state: after "BATCH n" arrives, the next
  // n lines are queries, gathered here before the command dispatches as
  // one unit.
  std::string batch_header_;
  std::string batch_lines_;
  std::size_t batch_pending_ = 0;

  std::string out_;
  std::size_t out_pos_ = 0;
  bool paused_ = false;
  bool done_ = false;
  bool protocol_error_ = false;
  std::uint64_t commands_ = 0;
};

}  // namespace hobbit::serve
