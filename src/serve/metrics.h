// metrics.h — serving counters and latency percentiles.
//
// Everything here is written from the request path, so it is all relaxed
// atomics: counters tolerate reordering, and the latency histogram trades
// exactness for lock-freedom — samples land in power-of-two nanosecond
// buckets, and a percentile is reported as the geometric midpoint of the
// bucket containing that rank (within ~41% of the true value, plenty for
// "is p99 a microsecond or a millisecond").  STATS reads are torn-free
// per counter but not a consistent cross-counter snapshot, which is the
// usual contract for serving stats.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace hobbit::serve {

/// Lock-free log2-bucketed nanosecond histogram.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 48;

  void Record(std::uint64_t nanos) {
    buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Approximate value at quantile q in [0, 1]; 0 when empty.
  std::uint64_t Quantile(double q) const;

  std::uint64_t TotalCount() const;

 private:
  static int BucketOf(std::uint64_t nanos) {
    int bucket = 0;
    while (nanos > 1 && bucket < kBuckets - 1) {
      nanos >>= 1;
      ++bucket;
    }
    return bucket;
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

struct ServeMetrics {
  std::atomic<std::uint64_t> lookups{0};         ///< single + batched queries
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> batches{0};         ///< BATCH commands served
  std::atomic<std::uint64_t> covering_queries{0};
  std::atomic<std::uint64_t> reloads{0};         ///< successful swaps
  std::atomic<std::uint64_t> failed_reloads{0};
  LatencyHistogram latency;                      ///< one sample per command

  /// The STATS wire rendering (two lines, no trailing newline).
  /// `publish` / `delta_entries` carry the store's publish provenance
  /// (last publish kind and patch entry count) into the stats line.
  std::string Format(std::uint64_t generation, std::uint64_t epoch,
                     const char* publish = "none",
                     std::uint64_t delta_entries = 0) const;
};

}  // namespace hobbit::serve
