#include "serve/metrics.h"

#include <sstream>

namespace hobbit::serve {

std::uint64_t LatencyHistogram::TotalCount() const {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t LatencyHistogram::Quantile(double q) const {
  std::uint64_t total = TotalCount();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the requested sample, 1-based.
  std::uint64_t rank = static_cast<std::uint64_t>(q * (total - 1)) + 1;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Geometric midpoint of [2^b, 2^(b+1)): 2^b * 1.5, except the
      // first bucket which holds 0..1 ns.
      return b == 0 ? 1 : (std::uint64_t{1} << b) + (std::uint64_t{1} << (b - 1));
    }
  }
  return std::uint64_t{1} << (kBuckets - 1);
}

std::string ServeMetrics::Format(std::uint64_t generation, std::uint64_t epoch,
                                 const char* publish,
                                 std::uint64_t delta_entries) const {
  std::ostringstream os;
  os << "lookups=" << lookups.load(std::memory_order_relaxed)
     << " hits=" << hits.load(std::memory_order_relaxed)
     << " misses=" << misses.load(std::memory_order_relaxed)
     << " batches=" << batches.load(std::memory_order_relaxed)
     << " covering=" << covering_queries.load(std::memory_order_relaxed)
     << " reloads=" << reloads.load(std::memory_order_relaxed)
     << " failed_reloads=" << failed_reloads.load(std::memory_order_relaxed)
     << " generation=" << generation << " epoch=" << epoch
     << " publish=" << publish << " delta_entries=" << delta_entries << "\n";
  os << "latency_ns p50=" << latency.Quantile(0.50)
     << " p90=" << latency.Quantile(0.90)
     << " p99=" << latency.Quantile(0.99)
     << " samples=" << latency.TotalCount();
  return os.str();
}

}  // namespace hobbit::serve
