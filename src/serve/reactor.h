// reactor.h — the event-driven multi-client serving front-end.
//
// One thread, one readiness loop, many concurrent LineService
// conversations.  The reactor owns the listening socket and every client
// fd; per-connection protocol state (framing, pipelined-BATCH collection,
// the write buffer and its backpressure marks) lives in serve::Connection
// so it stays unit-testable without sockets.  The division of labour:
//
//   reactor  — readiness (epoll on Linux, poll() everywhere / on demand),
//              accept, read()/write() with EINTR/EAGAIN discipline,
//              interest updates, idle/slow-client deadlines, graceful
//              shutdown draining.
//   connection — bytes -> lines -> commands -> reply bytes.
//   service  — command semantics (LOOKUP/BATCH/RELOAD/STATS/QUIT) over
//              the RCU SnapshotStore; BATCH shards over the thread pool.
//
// Commands execute on the reactor thread; a RELOAD therefore briefly
// pauses event handling while the replacement snapshot is validated off
// to the side, but in-flight lookups on other *processes* of the store
// (and every connection's already-buffered replies) are untouched — the
// store's RCU swap keeps readers lock-free and a failed reload leaves
// the serving snapshot as it was.
//
// Backpressure: when a connection's pending write buffer exceeds its cap
// the reactor drops read interest for that fd — the kernel's receive
// buffer then fills and the peer's sends stall, which is exactly the
// flow-control signal a pipelining client needs.  Reading resumes once
// the buffer drains below the resume mark.
//
// Timeouts: every connection carries one deadline, refreshed by read or
// write *progress*.  A connection that is idle (nothing to say) or
// stuck (peer not draining its replies) past `idle_timeout` is evicted.
// The loop's wait timeout is the nearest deadline, so timers cost one
// O(connections) scan per wakeup and no extra data structure.
//
// Shutdown: Stop() (thread- and signal-safe: an atomic flag plus one
// write to a self-pipe) stops accepting and reading, then drains every
// pending write buffer for at most `drain_timeout` before closing — a
// client that already sent QUIT still gets its BYE.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/connection.h"
#include "serve/service.h"

namespace hobbit::serve {

struct ReactorOptions {
  /// IPv4 address to bind (Listen() only).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  int listen_backlog = 128;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 1024;
  /// Bytes read per read() call.
  std::size_t read_chunk_bytes = 64u * 1024;
  /// read() calls per readiness event, so one firehose connection
  /// cannot starve the rest (level-triggered readiness re-fires).
  int reads_per_event = 4;
  ConnectionLimits limits;
  /// Evict a connection after this long without read or write progress;
  /// <= 0 disables.
  std::chrono::milliseconds idle_timeout{60000};
  /// Shutdown grace: how long Stop() keeps flushing pending replies.
  std::chrono::milliseconds drain_timeout{5000};
  /// Force the poll() backend even where epoll is available (the
  /// fallback path is always buildable and testable).
  bool use_poll = false;
};

/// Loop counters.  Relaxed atomics: written by the reactor thread,
/// readable from anywhere (tests poll them while the loop runs).
struct ReactorStats {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> adopted{0};
  std::atomic<std::uint64_t> closed{0};
  std::atomic<std::uint64_t> rejected_over_capacity{0};
  std::atomic<std::uint64_t> idle_closes{0};
  std::atomic<std::uint64_t> protocol_closes{0};
  std::atomic<std::uint64_t> backpressure_pauses{0};
  std::atomic<std::uint64_t> commands{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> open{0};  ///< currently open connections
};

class Reactor {
 public:
  /// Borrows store/metrics/pool (pool may be null: serial batches).
  Reactor(SnapshotStore* store, ServeMetrics* metrics,
          common::ThreadPool* pool, ReactorOptions options = {});
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Binds and listens per the options.  False (with *error) on any
  /// socket failure — including environments with no loopback network,
  /// which callers surface as a skip, not a crash.
  bool Listen(std::string* error);

  /// Port actually bound (after Listen with port 0).
  std::uint16_t port() const { return port_; }

  /// Hands an already-connected socket (e.g. one end of a socketpair)
  /// to the reactor, which takes ownership and makes it non-blocking.
  /// Thread-safe; may be called before or while Run() is looping.
  bool Adopt(int fd, std::string* error = nullptr);

  /// Serves until Stop().  Returns 0 on a clean (drained) shutdown, 1
  /// when the drain deadline expired with replies still unsent.
  int Run();

  /// Requests shutdown; safe from other threads and signal handlers.
  void Stop();

  /// Number of currently open connections (approximate while running).
  std::size_t open_connections() const {
    return static_cast<std::size_t>(
        stats_.open.load(std::memory_order_relaxed));
  }

  const ReactorStats& stats() const { return stats_; }

  /// The shared protocol driver, e.g. to set RELOAD load options before
  /// Run().  Not safe to reconfigure while the loop is running.
  LineService* service() { return &service_; }

 private:
  struct Channel;
  class Poller;
  class PollPoller;
#ifdef __linux__
  class EpollPoller;
#endif

  void Wake();
  void AcceptReady(std::chrono::steady_clock::time_point now);
  void DrainAdopted(std::chrono::steady_clock::time_point now);
  void AddChannel(int fd, std::chrono::steady_clock::time_point now,
                  std::atomic<std::uint64_t>* counter);
  void HandleReadable(Channel* channel,
                      std::chrono::steady_clock::time_point now);
  void FlushWrites(Channel* channel,
                   std::chrono::steady_clock::time_point now);
  /// Re-registers interest from the channel's protocol state; marks
  /// channels that are done and drained as dead (reaped end-of-wave).
  void SyncChannel(Channel* channel);
  void BeginDrain(std::chrono::steady_clock::time_point now);
  void EvictExpired(std::chrono::steady_clock::time_point now);
  void ReapDead();
  void CloseAll();
  int NextTimeoutMs(std::chrono::steady_clock::time_point now) const;

  ReactorOptions options_;
  LineService service_;

  std::unique_ptr<Poller> poller_;
  std::unordered_map<int, std::unique_ptr<Channel>> channels_;
  std::vector<char> read_scratch_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};

  std::mutex adopt_mutex_;
  std::vector<int> adopted_fds_;
  std::atomic<bool> adopt_pending_{false};

  ReactorStats stats_;
};

}  // namespace hobbit::serve
