#include "serve/reactor.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace hobbit::serve {

namespace {

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

// ---------------------------------------------------------------------------
// Readiness backends.  Both are level-triggered: a fd with unread input or
// unwritten output space keeps firing, which lets the per-event read budget
// simply stop mid-stream and rely on the next wave.

class Reactor::Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
  };

  virtual ~Poller() = default;
  virtual bool Add(int fd, bool read, bool write) = 0;
  virtual bool Update(int fd, bool read, bool write) = 0;
  virtual void Remove(int fd) = 0;
  /// Fills *out; returns false only on an unrecoverable backend error
  /// (EINTR is retried by returning an empty wave).
  virtual bool Wait(int timeout_ms, std::vector<Event>* out) = 0;
};

/// poll(2): the always-available fallback, and the only backend off
/// Linux.  O(n) per wait, fine for the connection counts a test or a
/// modest deployment sees.
class Reactor::PollPoller : public Reactor::Poller {
 public:
  bool Add(int fd, bool read, bool write) override {
    index_[fd] = fds_.size();
    fds_.push_back({fd, Mask(read, write), 0});
    return true;
  }

  bool Update(int fd, bool read, bool write) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return false;
    fds_[it->second].events = Mask(read, write);
    return true;
  }

  void Remove(int fd) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return;
    std::size_t pos = it->second;
    index_.erase(it);
    fds_[pos] = fds_.back();
    fds_.pop_back();
    if (pos < fds_.size()) index_[fds_[pos].fd] = pos;
  }

  bool Wait(int timeout_ms, std::vector<Event>* out) override {
    out->clear();
    int n = ::poll(fds_.data(), static_cast<nfds_t>(fds_.size()),
                   timeout_ms);
    if (n < 0) {
      return errno == EINTR;  // spurious wakeup: empty wave, loop retries
    }
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      Event event;
      event.fd = p.fd;
      // Errors and hangups surface as readability so the read path can
      // collect the real errno / EOF.
      event.readable =
          (p.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) != 0;
      event.writable = (p.revents & POLLOUT) != 0;
      out->push_back(event);
      if (static_cast<int>(out->size()) == n) break;
    }
    return true;
  }

 private:
  static short Mask(bool read, bool write) {
    return static_cast<short>((read ? POLLIN : 0) | (write ? POLLOUT : 0));
  }

  std::vector<pollfd> fds_;
  std::unordered_map<int, std::size_t> index_;
};

#ifdef __linux__
class Reactor::EpollPoller : public Reactor::Poller {
 public:
  EpollPoller() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  bool valid() const { return epoll_fd_ >= 0; }

  bool Add(int fd, bool read, bool write) override {
    return Ctl(EPOLL_CTL_ADD, fd, read, write);
  }
  bool Update(int fd, bool read, bool write) override {
    return Ctl(EPOLL_CTL_MOD, fd, read, write);
  }
  void Remove(int fd) override {
    epoll_event unused{};
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &unused);
  }

  bool Wait(int timeout_ms, std::vector<Event>* out) override {
    out->clear();
    epoll_event events[kMaxEvents];
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) return errno == EINTR;
    for (int i = 0; i < n; ++i) {
      Event event;
      event.fd = events[i].data.fd;
      event.readable =
          (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0;
      event.writable = (events[i].events & EPOLLOUT) != 0;
      out->push_back(event);
    }
    return true;
  }

 private:
  static constexpr int kMaxEvents = 128;

  bool Ctl(int op, int fd, bool read, bool write) {
    epoll_event event{};
    event.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
    event.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, op, fd, &event) == 0;
  }

  int epoll_fd_;
};
#endif  // __linux__

// ---------------------------------------------------------------------------

/// One socket + its protocol state + its registered interest.
struct Reactor::Channel {
  Channel(int fd, LineService* service, const ConnectionLimits& limits)
      : fd(fd), conn(service, limits) {}

  int fd;
  Connection conn;
  std::chrono::steady_clock::time_point deadline{};
  std::uint64_t counted_commands = 0;  ///< already added to stats
  bool registered_read = true;
  bool registered_write = false;
  bool saw_eof = false;
  bool io_error = false;
  bool dead = false;
};

Reactor::Reactor(SnapshotStore* store, ServeMetrics* metrics,
                 common::ThreadPool* pool, ReactorOptions options)
    : options_(std::move(options)), service_(store, metrics, pool) {
#ifdef __linux__
  if (!options_.use_poll) {
    auto epoll = std::make_unique<EpollPoller>();
    if (epoll->valid()) poller_ = std::move(epoll);
  }
#endif
  if (poller_ == nullptr) poller_ = std::make_unique<PollPoller>();
  read_scratch_.resize(options_.read_chunk_bytes > 0
                           ? options_.read_chunk_bytes
                           : 1);
  // The self-pipe lets Stop() (any thread, or a signal handler) wake a
  // blocked Wait with one write().
  int pipe_fds[2] = {-1, -1};
#ifdef __linux__
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) == 0) {
#else
  if (::pipe(pipe_fds) == 0 && SetNonBlocking(pipe_fds[0]) &&
      SetNonBlocking(pipe_fds[1])) {
#endif
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_ = pipe_fds[1];
    poller_->Add(wake_read_fd_, /*read=*/true, /*write=*/false);
  }
}

Reactor::~Reactor() {
  CloseAll();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  std::lock_guard<std::mutex> lock(adopt_mutex_);
  for (int fd : adopted_fds_) ::close(fd);
}

bool Reactor::Listen(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = Errno("socket");
    return false;
  }
  if (!SetNonBlocking(listen_fd_)) {
    if (error != nullptr) *error = Errno("fcntl");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &address.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "bad bind address: " + options_.bind_address;
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, options_.listen_backlog) != 0) {
    if (error != nullptr) *error = Errno("bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t length = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &length) == 0) {
    port_ = ntohs(address.sin_port);
  }
  poller_->Add(listen_fd_, /*read=*/true, /*write=*/false);
  return true;
}

bool Reactor::Adopt(int fd, std::string* error) {
  if (fd < 0) {
    if (error != nullptr) *error = "bad fd";
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(adopt_mutex_);
    adopted_fds_.push_back(fd);
  }
  adopt_pending_.store(true, std::memory_order_release);
  Wake();
  return true;
}

void Reactor::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  Wake();
}

void Reactor::Wake() {
  // One byte down the self-pipe; write(2) is async-signal-safe, so a
  // signal handler may call Stop() directly.
  if (wake_write_fd_ >= 0) {
    char byte = 0;
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

int Reactor::Run() {
  std::vector<Poller::Event> events;
  for (;;) {
    auto now = std::chrono::steady_clock::now();
    if (!poller_->Wait(NextTimeoutMs(now), &events)) return 2;
    now = std::chrono::steady_clock::now();

    bool accept_ready = false;
    for (const Poller::Event& event : events) {
      if (event.fd == wake_read_fd_) {
        char sink[64];
        while (::read(wake_read_fd_, sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      if (event.fd == listen_fd_) {
        accept_ready = true;
        continue;
      }
      auto it = channels_.find(event.fd);
      if (it == channels_.end()) continue;  // closed earlier this wave
      Channel* channel = it->second.get();
      if (event.readable) HandleReadable(channel, now);
      if (event.writable) FlushWrites(channel, now);
      SyncChannel(channel);
    }

    // New fds enter only after every channel event was handled, so a fd
    // number freed this wave cannot be confused with a fresh connection.
    if (accept_ready && !draining_) AcceptReady(now);
    if (adopt_pending_.load(std::memory_order_acquire)) DrainAdopted(now);
    if (stop_requested_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain(now);
    }
    EvictExpired(now);
    ReapDead();
    if (draining_) {
      if (channels_.empty()) return 0;
      if (now >= drain_deadline_) {
        CloseAll();
        return 1;
      }
    }
  }
}

void Reactor::AcceptReady(std::chrono::steady_clock::time_point now) {
  for (;;) {
#ifdef __linux__
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
#else
    int fd = ::accept(listen_fd_, nullptr, nullptr);
#endif
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EAGAIN/EWOULDBLOCK or a transient accept failure
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    AddChannel(fd, now, &stats_.accepted);
  }
}

void Reactor::DrainAdopted(std::chrono::steady_clock::time_point now) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(adopt_mutex_);
    fds.swap(adopted_fds_);
    adopt_pending_.store(false, std::memory_order_release);
  }
  for (int fd : fds) {
    if (draining_) {
      ::close(fd);
      continue;
    }
    AddChannel(fd, now, &stats_.adopted);
  }
}

void Reactor::AddChannel(int fd, std::chrono::steady_clock::time_point now,
                         std::atomic<std::uint64_t>* counter) {
  if (channels_.size() >= options_.max_connections || !SetNonBlocking(fd)) {
    ::close(fd);
    stats_.rejected_over_capacity.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto channel = std::make_unique<Channel>(fd, &service_, options_.limits);
  channel->deadline = now + options_.idle_timeout;
  if (!poller_->Add(fd, /*read=*/true, /*write=*/false)) {
    ::close(fd);
    stats_.rejected_over_capacity.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  counter->fetch_add(1, std::memory_order_relaxed);
  stats_.open.fetch_add(1, std::memory_order_relaxed);
  channels_.emplace(fd, std::move(channel));
}

void Reactor::HandleReadable(Channel* channel,
                             std::chrono::steady_clock::time_point now) {
  if (channel->dead || channel->saw_eof || channel->conn.done()) return;
  for (int round = 0; round < options_.reads_per_event; ++round) {
    ssize_t n =
        ::read(channel->fd, read_scratch_.data(), read_scratch_.size());
    if (n > 0) {
      stats_.bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      channel->deadline = now + options_.idle_timeout;
      bool more = channel->conn.Ingest(
          std::string_view(read_scratch_.data(),
                           static_cast<std::size_t>(n)));
      std::uint64_t total = channel->conn.commands();
      stats_.commands.fetch_add(total - channel->counted_commands,
                                std::memory_order_relaxed);
      channel->counted_commands = total;
      if (!more) {
        if (channel->conn.protocol_error()) {
          stats_.protocol_closes.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      if (channel->conn.paused()) {
        stats_.backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (static_cast<std::size_t>(n) < read_scratch_.size()) break;
    } else if (n == 0) {
      channel->saw_eof = true;
      channel->conn.OnEof();
      break;
    } else {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      channel->io_error = true;
      break;
    }
  }
  // Replies usually fit the socket buffer: try the cheap immediate
  // flush before asking the poller for writability.
  FlushWrites(channel, now);
}

void Reactor::FlushWrites(Channel* channel,
                          std::chrono::steady_clock::time_point now) {
  if (channel->dead || channel->io_error) return;
  for (;;) {
    std::string_view pending = channel->conn.pending();
    if (pending.empty()) return;
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE here instead of
    // killing the process, whatever the SIGPIPE disposition is.
    ssize_t n =
        ::send(channel->fd, pending.data(), pending.size(), MSG_NOSIGNAL);
    if (n > 0) {
      stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                 std::memory_order_relaxed);
      channel->deadline = now + options_.idle_timeout;
      channel->conn.Consume(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    channel->io_error = true;  // EPIPE/ECONNRESET: peer is gone
    return;
  }
}

void Reactor::SyncChannel(Channel* channel) {
  if (channel->dead) return;
  const bool drained = channel->conn.pending().empty();
  const bool finished =
      channel->conn.done() || channel->saw_eof || draining_;
  if (channel->io_error || (finished && drained)) {
    channel->dead = true;
    return;
  }
  const bool want_read =
      !finished && !channel->conn.paused() && !channel->saw_eof;
  const bool want_write = !drained;
  if (want_read != channel->registered_read ||
      want_write != channel->registered_write) {
    poller_->Update(channel->fd, want_read, want_write);
    channel->registered_read = want_read;
    channel->registered_write = want_write;
  }
}

void Reactor::BeginDrain(std::chrono::steady_clock::time_point now) {
  draining_ = true;
  drain_deadline_ = now + options_.drain_timeout;
  if (listen_fd_ >= 0) {
    poller_->Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [fd, channel] : channels_) {
    // No more input; finish writing what is already owed.
    ::shutdown(fd, SHUT_RD);
    SyncChannel(channel.get());
  }
}

void Reactor::EvictExpired(std::chrono::steady_clock::time_point now) {
  if (options_.idle_timeout.count() <= 0) return;
  for (auto& [fd, channel] : channels_) {
    if (!channel->dead && now >= channel->deadline) {
      stats_.idle_closes.fetch_add(1, std::memory_order_relaxed);
      channel->dead = true;
    }
  }
}

void Reactor::ReapDead() {
  for (auto it = channels_.begin(); it != channels_.end();) {
    if (it->second->dead) {
      poller_->Remove(it->first);
      ::close(it->first);
      stats_.closed.fetch_add(1, std::memory_order_relaxed);
      stats_.open.fetch_sub(1, std::memory_order_relaxed);
      it = channels_.erase(it);
    } else {
      ++it;
    }
  }
}

void Reactor::CloseAll() {
  for (auto& [fd, channel] : channels_) {
    poller_->Remove(fd);
    ::close(fd);
    stats_.closed.fetch_add(1, std::memory_order_relaxed);
    stats_.open.fetch_sub(1, std::memory_order_relaxed);
  }
  channels_.clear();
}

int Reactor::NextTimeoutMs(
    std::chrono::steady_clock::time_point now) const {
  std::chrono::steady_clock::time_point nearest{};
  bool have = false;
  if (options_.idle_timeout.count() > 0) {
    for (const auto& [fd, channel] : channels_) {
      if (!have || channel->deadline < nearest) {
        nearest = channel->deadline;
        have = true;
      }
    }
  }
  if (draining_ && (!have || drain_deadline_ < nearest)) {
    nearest = drain_deadline_;
    have = true;
  }
  if (!have) return -1;  // block until a fd fires or Stop() wakes us
  auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
      nearest - now);
  if (delta.count() <= 0) return 0;
  // +1 rounds up so a deadline 0.4ms away does not busy-spin at 0ms.
  return static_cast<int>(std::min<long long>(delta.count() + 1, 60'000));
}

}  // namespace hobbit::serve
