#include "serve/store.h"

namespace hobbit::serve {

bool SnapshotStore::ReloadFromFile(const std::string& path,
                                   std::string* error) {
  std::optional<Snapshot> loaded = Snapshot::FromFile(path, error);
  if (!loaded) {
    failed_reloads_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Swap(std::make_shared<const Snapshot>(*std::move(loaded)));
  return true;
}

}  // namespace hobbit::serve
