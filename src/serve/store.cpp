#include "serve/store.h"

#include "serve/delta.h"
#include "serve/wire.h"

namespace hobbit::serve {

const char* ToString(PublishKind kind) {
  switch (kind) {
    case PublishKind::kNone: return "none";
    case PublishKind::kFull: return "full";
    case PublishKind::kDelta: return "delta";
  }
  return "?";
}

bool SnapshotStore::ReloadFromFile(const std::string& path, std::string* error,
                                   const SnapshotLoadOptions& options) {
  std::optional<Snapshot> loaded = Snapshot::FromFile(path, error, options);
  if (!loaded) {
    failed_reloads_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Swap(std::make_shared<const Snapshot>(*std::move(loaded)));
  return true;
}

bool SnapshotStore::PublishPatch(std::span<const std::byte> patch,
                                 std::string* error) {
  // Pin the base once: concurrent full swaps between here and the
  // publish would change the base out from under the patch, but the
  // patch's base_checksum check already rejects that case explicitly.
  std::shared_ptr<const Snapshot> base = Current();
  if (base == nullptr) {
    if (error != nullptr) *error = "no base snapshot published yet";
    failed_reloads_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::optional<std::vector<std::byte>> patched =
      ApplyPatch(*base, patch, error);
  if (!patched) {
    failed_reloads_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::optional<Snapshot> loaded =
      Snapshot::FromBuffer(*std::move(patched), error);
  if (!loaded) {
    failed_reloads_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // upsert_count + remove_count, straight from the validated header.
  const std::uint64_t delta_entries =
      std::uint64_t{wire::ReadU32(patch.data() + 12)} +
      wire::ReadU32(patch.data() + 16);
  SwapWithKind(std::make_shared<const Snapshot>(*std::move(loaded)),
               PublishKind::kDelta, delta_entries);
  return true;
}

}  // namespace hobbit::serve
