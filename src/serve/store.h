// store.h — RCU-style hot-swap of the serving snapshot.
//
// The serving loop must keep answering while an epoch rolls over.  The
// read-copy-update shape: a reader grabs one refcounted handle to the
// current immutable Snapshot and then works on it for as long as it
// likes; a reloader validates the *entire* new file off to the side
// (Snapshot::FromFile re-checks magic, version, checksum, sortedness)
// and only then publishes it.  A reader that grabbed the old snapshot
// just before a swap finishes its queries on the old data, and the old
// buffer is freed by shared_ptr refcounting when the last such reader
// drops it — no quiescence tracking needed, no reader ever waits on a
// reload.
//
// Implementation note: the publish point is a shared_ptr guarded by a
// std::shared_mutex rather than std::atomic<std::shared_ptr>.  The
// libstdc++ (12) _Sp_atomic unlocks its reader-side spinlock with a
// relaxed fetch_sub, so a reader's unprotected read of the stored
// pointer has no happens-before edge to the next store's write of it —
// ThreadSanitizer reports that (correctly, by the letter of the memory
// model) as a data race.  The shared lock is held only for the pointer
// copy (two uncontended atomic RMWs); all query work happens outside it.
//
// Failed reloads leave the current snapshot untouched (and are counted),
// so a corrupt or half-written file can never take the service down.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>

#include "serve/snapshot.h"

namespace hobbit::serve {

/// How the served snapshot last arrived, for STATS provenance.
enum class PublishKind : std::uint8_t {
  kNone,  ///< nothing published yet (or store taken offline)
  kFull,  ///< whole-snapshot Swap / ReloadFromFile
  kDelta  ///< PublishPatch applied to the previous snapshot
};

const char* ToString(PublishKind kind);

class SnapshotStore {
 public:
  SnapshotStore() = default;

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// The currently served snapshot; null until the first Swap/Reload.
  /// Readers only ever contend on the refcount and (briefly) a reloading
  /// writer — never on each other's queries.
  std::shared_ptr<const Snapshot> Current() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return current_;
  }

  /// Publishes `snapshot` (may be null to take the store offline) and
  /// returns the new generation number.  Generation 0 == never loaded.
  std::uint64_t Swap(std::shared_ptr<const Snapshot> snapshot) {
    const PublishKind kind =
        snapshot == nullptr ? PublishKind::kNone : PublishKind::kFull;
    return SwapWithKind(std::move(snapshot), kind, 0);
  }

  /// Validates `path` as a snapshot (v1 or v2) and swaps it in on
  /// success.  `options` selects mmap zero-copy and/or deferred payload
  /// verification (see SnapshotLoadOptions); the default is the owned,
  /// fully-verified read.  On failure returns false, stores a message in
  /// *error (when non-null) and leaves the served snapshot untouched.
  bool ReloadFromFile(const std::string& path, std::string* error = nullptr,
                      const SnapshotLoadOptions& options = {});

  /// Applies an HSPT patch (serve/delta.h) to the current snapshot and
  /// publishes the result.  Validation is end-to-end: the patch itself
  /// (checksums, base identity, key discipline) and then the patched
  /// buffer through the full Snapshot::FromBuffer gauntlet.  Any failure
  /// returns false, counts as a failed reload, and leaves the served
  /// snapshot untouched — a corrupt patch can never take the store down
  /// or publish a half-applied state.  Fails when nothing is published
  /// yet (a patch needs a base; bootstrap with Swap/ReloadFromFile).
  bool PublishPatch(std::span<const std::byte> patch,
                    std::string* error = nullptr);

  /// Monotonic count of successful swaps.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  /// Count of rejected reloads (validation failures).
  std::uint64_t failed_reloads() const {
    return failed_reloads_.load(std::memory_order_relaxed);
  }
  /// How the served snapshot last arrived (full swap vs delta patch).
  PublishKind last_publish_kind() const {
    return last_kind_.load(std::memory_order_acquire);
  }
  /// Entry-level size (upserts + removes) of the last applied patch;
  /// 0 after a full publish.
  std::uint64_t last_delta_entries() const {
    return last_delta_entries_.load(std::memory_order_acquire);
  }

 private:
  std::uint64_t SwapWithKind(std::shared_ptr<const Snapshot> snapshot,
                             PublishKind kind, std::uint64_t delta_entries) {
    // The old snapshot's release (possibly the last reference) runs
    // outside the lock, after the swap is visible.
    std::shared_ptr<const Snapshot> retired;
    std::uint64_t generation;
    {
      std::unique_lock<std::shared_mutex> lock(mutex_);
      retired = std::move(current_);
      current_ = std::move(snapshot);
      generation = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
      last_kind_.store(kind, std::memory_order_release);
      last_delta_entries_.store(delta_entries, std::memory_order_release);
    }
    return generation;
  }

  mutable std::shared_mutex mutex_;
  std::shared_ptr<const Snapshot> current_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> failed_reloads_{0};
  std::atomic<PublishKind> last_kind_{PublishKind::kNone};
  std::atomic<std::uint64_t> last_delta_entries_{0};
};

}  // namespace hobbit::serve
