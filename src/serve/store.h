// store.h — RCU-style hot-swap of the serving snapshot.
//
// The serving loop must keep answering while an epoch rolls over.  The
// read-copy-update shape: a reader grabs one refcounted handle to the
// current immutable Snapshot and then works on it for as long as it
// likes; a reloader validates the *entire* new file off to the side
// (Snapshot::FromFile re-checks magic, version, checksum, sortedness)
// and only then publishes it.  A reader that grabbed the old snapshot
// just before a swap finishes its queries on the old data, and the old
// buffer is freed by shared_ptr refcounting when the last such reader
// drops it — no quiescence tracking needed, no reader ever waits on a
// reload.
//
// Implementation note: the publish point is a shared_ptr guarded by a
// std::shared_mutex rather than std::atomic<std::shared_ptr>.  The
// libstdc++ (12) _Sp_atomic unlocks its reader-side spinlock with a
// relaxed fetch_sub, so a reader's unprotected read of the stored
// pointer has no happens-before edge to the next store's write of it —
// ThreadSanitizer reports that (correctly, by the letter of the memory
// model) as a data race.  The shared lock is held only for the pointer
// copy (two uncontended atomic RMWs); all query work happens outside it.
//
// Failed reloads leave the current snapshot untouched (and are counted),
// so a corrupt or half-written file can never take the service down.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "serve/snapshot.h"

namespace hobbit::serve {

class SnapshotStore {
 public:
  SnapshotStore() = default;

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// The currently served snapshot; null until the first Swap/Reload.
  /// Readers only ever contend on the refcount and (briefly) a reloading
  /// writer — never on each other's queries.
  std::shared_ptr<const Snapshot> Current() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return current_;
  }

  /// Publishes `snapshot` (may be null to take the store offline) and
  /// returns the new generation number.  Generation 0 == never loaded.
  std::uint64_t Swap(std::shared_ptr<const Snapshot> snapshot) {
    // The old snapshot's release (possibly the last reference) runs
    // outside the lock, after the swap is visible.
    std::shared_ptr<const Snapshot> retired;
    std::uint64_t generation;
    {
      std::unique_lock<std::shared_mutex> lock(mutex_);
      retired = std::move(current_);
      current_ = std::move(snapshot);
      generation = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
    }
    return generation;
  }

  /// Validates `path` as a v1 snapshot and swaps it in on success.  On
  /// failure returns false, stores a message in *error (when non-null)
  /// and leaves the served snapshot untouched.
  bool ReloadFromFile(const std::string& path, std::string* error = nullptr);

  /// Monotonic count of successful swaps.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  /// Count of rejected reloads (validation failures).
  std::uint64_t failed_reloads() const {
    return failed_reloads_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::shared_mutex mutex_;
  std::shared_ptr<const Snapshot> current_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> failed_reloads_{0};
};

}  // namespace hobbit::serve
