// service.h — the hobbit_serve line protocol, as a library.
//
// One command per line on the input stream, one reply (or a reply block)
// on the output stream — the transport-agnostic core that tools/
// hobbit_serve.cpp wires to stdin/stdout and tests drive with
// stringstreams.
//
//   LOOKUP <ip|prefix>   exact /24 membership (address or a.b.c.0/24), or
//                        a covering summary for shorter prefixes
//                          HIT 20.0.1.0/24 block=3 class=same-last-hop
//                              members=4 hops=2
//                          MISS 9.9.9.0/24
//                          COVER 20.0.0.0/16 entries=12 blocks=5
//   BATCH <n>            the next n lines are queries (ip or /24); n reply
//                        lines in input order, then "OK <n>".  Batches
//                        shard over the service's thread pool.
//   RELOAD <path>        validate + RCU-swap a new snapshot
//                          OK generation=2 entries=128 blocks=17 epoch=7
//                          ERR reload failed: payload checksum mismatch
//   STATS                counters + latency percentiles (two lines)
//   QUIT                 "BYE", end of session
//
// Anything else answers "ERR ..." and the session continues; blank lines
// and '#' comments are ignored (so a command file can be annotated).
// Queries against an empty store answer "ERR no snapshot loaded".
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/parallel.h"
#include "serve/lookup.h"
#include "serve/metrics.h"
#include "serve/store.h"

namespace hobbit::serve {

/// Largest accepted BATCH size — bounds per-command allocation.  Shared
/// with the reactor's connection driver, which must agree on what a
/// valid BATCH header is before it starts collecting query lines.
inline constexpr std::size_t kMaxBatch = 1u << 20;

/// Splits "CMD arg" on the first space; arg may itself contain spaces
/// (RELOAD paths), so no further splitting.
std::pair<std::string, std::string> SplitCommand(const std::string& line);

/// Parses a BATCH argument; *count is valid only for kOk.
enum class BatchSizeParse { kOk, kBadSyntax, kTooLarge };
BatchSizeParse ParseBatchSize(const std::string& arg, std::size_t* count);

class LineService {
 public:
  /// Borrows all three; `pool` may be null (serial batches).
  LineService(SnapshotStore* store, ServeMetrics* metrics,
              common::ThreadPool* pool = nullptr)
      : store_(store), metrics_(metrics), pool_(pool) {}

  /// Serves until EOF or QUIT.  Returns the number of commands handled.
  std::size_t Run(std::istream& in, std::ostream& out);

  /// Handles one command line; BATCH reads its query lines from `in`.
  /// Returns false when the session should end (QUIT).
  bool HandleCommand(const std::string& line, std::istream& in,
                     std::ostream& out);

  /// Options RELOAD passes to SnapshotStore::ReloadFromFile — set once
  /// at startup (hobbit_serve --mmap) so reloads keep the serving mode.
  void set_reload_options(const SnapshotLoadOptions& options) {
    reload_options_ = options;
  }

 private:
  void CmdLookup(const std::string& arg, std::ostream& out);
  void CmdBatch(const std::string& arg, std::istream& in, std::ostream& out);
  void CmdReload(const std::string& arg, std::ostream& out);
  void CmdStats(std::ostream& out);

  /// The Eytzinger index for `snapshot`, built lazily and cached per
  /// published snapshot: an RCU swap changes the pointer, which misses
  /// the one-entry cache and rebuilds.  Thread-safe (reactor tests drive
  /// one service from several simulated connections).
  std::shared_ptr<const EytzingerIndex> IndexFor(
      const std::shared_ptr<const Snapshot>& snapshot);

  SnapshotStore* store_;
  ServeMetrics* metrics_;
  common::ThreadPool* pool_;
  SnapshotLoadOptions reload_options_;

  std::mutex index_mutex_;
  std::shared_ptr<const Snapshot> index_snapshot_;
  std::shared_ptr<const EytzingerIndex> index_;
};

}  // namespace hobbit::serve
