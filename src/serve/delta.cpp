#include "serve/delta.h"

#include <cstring>

#include "serve/wire.h"

namespace hobbit::serve {
namespace {

using wire::AppendU32;
using wire::AppendU64;
using wire::PadTo4;
using wire::ReadU32;
using wire::ReadU64;

std::uint64_t PatchPayloadBytesFor(std::uint64_t u, std::uint64_t r,
                                   std::uint64_t m, std::uint64_t h) {
  return u * 4 + u * 4 + u + PadTo4(u) + r * 4 + m * 12 + h * 4;
}

bool PatchFail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::vector<std::byte> CompileDelta(
    const Snapshot& base, std::span<const cluster::AggregateBlock> blocks,
    std::span<const ClassifiedPrefix> classified, std::uint64_t new_epoch,
    DeltaStats* stats) {
  const std::vector<SnapshotEntry> next =
      BuildSnapshotEntries(blocks, classified);

  // Linear merge over the two sorted key sequences: entries only in
  // `next` or with a different (block, class) are upserts, entries only
  // in the base are removes.
  std::vector<SnapshotEntry> upserts;
  std::vector<std::uint32_t> removes;
  std::size_t unchanged = 0;
  std::size_t bi = 0;  // base index
  const std::size_t bn = base.entry_count();
  for (const SnapshotEntry& e : next) {
    while (bi < bn && base.EntryKey(bi) < e.key) {
      removes.push_back(base.EntryKey(bi));
      ++bi;
    }
    if (bi < bn && base.EntryKey(bi) == e.key) {
      if (base.EntryBlock(bi) != e.block || base.EntryClass(bi) != e.class_token) {
        upserts.push_back(e);
      } else {
        ++unchanged;
      }
      ++bi;
    } else {
      upserts.push_back(e);
    }
  }
  for (; bi < bn; ++bi) removes.push_back(base.EntryKey(bi));
  if (stats != nullptr) {
    stats->upserts = upserts.size();
    stats->removes = removes.size();
    stats->unchanged = unchanged;
  }

  std::vector<std::byte> blocktab;
  std::vector<std::byte> hops;
  AppendBlockTable(blocks, &blocktab, &hops);

  std::vector<std::byte> payload;
  payload.reserve(PatchPayloadBytesFor(upserts.size(), removes.size(),
                                       blocktab.size() / 12, hops.size() / 4));
  for (const SnapshotEntry& e : upserts) AppendU32(payload, e.key);
  for (const SnapshotEntry& e : upserts) AppendU32(payload, e.block);
  for (const SnapshotEntry& e : upserts) {
    payload.push_back(static_cast<std::byte>(e.class_token));
  }
  payload.resize(payload.size() + PadTo4(upserts.size()), std::byte{0});
  for (std::uint32_t key : removes) AppendU32(payload, key);
  payload.insert(payload.end(), blocktab.begin(), blocktab.end());
  payload.insert(payload.end(), hops.begin(), hops.end());

  std::vector<std::byte> out;
  out.reserve(kPatchHeaderBytes + payload.size());
  for (char c : kPatchMagic) out.push_back(static_cast<std::byte>(c));
  AppendU32(out, kPatchVersion);
  AppendU32(out, kPatchHeaderBytes);
  AppendU32(out, static_cast<std::uint32_t>(upserts.size()));
  AppendU32(out, static_cast<std::uint32_t>(removes.size()));
  AppendU32(out, static_cast<std::uint32_t>(blocktab.size() / 12));
  AppendU32(out, static_cast<std::uint32_t>(hops.size() / 4));
  AppendU32(out, 0);  // reserved
  AppendU64(out, base.checksum());
  AppendU64(out, new_epoch);
  AppendU64(out, payload.size());
  AppendU64(out, Fnv1a64(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<std::vector<std::byte>> ApplyPatch(
    const Snapshot& base, std::span<const std::byte> patch,
    std::string* error) {
  if (patch.size() < kPatchHeaderBytes) {
    PatchFail(error, "truncated patch header: " +
                         std::to_string(patch.size()) + " bytes");
    return std::nullopt;
  }
  const std::byte* p = patch.data();
  if (std::memcmp(p, kPatchMagic, 4) != 0) {
    PatchFail(error, "bad magic (not a HobbitSnapshotPatch)");
    return std::nullopt;
  }
  std::uint32_t version = ReadU32(p + 4);
  if (version != kPatchVersion) {
    PatchFail(error, "unsupported patch version " + std::to_string(version));
    return std::nullopt;
  }
  if (ReadU32(p + 8) != kPatchHeaderBytes) {
    PatchFail(error, "bad patch header size field");
    return std::nullopt;
  }
  const std::uint64_t u = ReadU32(p + 12);
  const std::uint64_t r = ReadU32(p + 16);
  const std::uint64_t m = ReadU32(p + 20);
  const std::uint64_t h = ReadU32(p + 24);
  if (ReadU32(p + 28) != 0) {
    PatchFail(error, "nonzero reserved field");
    return std::nullopt;
  }
  const std::uint64_t base_checksum = ReadU64(p + 32);
  const std::uint64_t new_epoch = ReadU64(p + 40);
  const std::uint64_t payload_bytes = ReadU64(p + 48);
  const std::uint64_t payload_checksum = ReadU64(p + 56);
  if (payload_bytes != PatchPayloadBytesFor(u, r, m, h)) {
    PatchFail(error, "patch payload size disagrees with section counts");
    return std::nullopt;
  }
  if (patch.size() != kPatchHeaderBytes + payload_bytes) {
    PatchFail(error, patch.size() < kPatchHeaderBytes + payload_bytes
                         ? "truncated patch payload"
                         : "trailing bytes after patch payload");
    return std::nullopt;
  }
  std::span<const std::byte> payload(p + kPatchHeaderBytes, payload_bytes);
  if (Fnv1a64(payload) != payload_checksum) {
    PatchFail(error, "patch payload checksum mismatch");
    return std::nullopt;
  }
  if (base_checksum != base.checksum()) {
    PatchFail(error, "patch targets a different base snapshot");
    return std::nullopt;
  }

  // Section offsets within the payload.
  const std::byte* upsert_keys = payload.data();
  const std::byte* upsert_blocks = upsert_keys + u * 4;
  const std::byte* upsert_classes = upsert_blocks + u * 4;
  const std::byte* remove_keys = upsert_classes + u + PadTo4(u);
  const std::byte* blocktab = remove_keys + r * 4;
  const std::byte* hops = blocktab + m * 12;

  for (std::uint64_t i = 0; i + 1 < u; ++i) {
    if (ReadU32(upsert_keys + i * 4) >= ReadU32(upsert_keys + (i + 1) * 4)) {
      PatchFail(error, "upsert keys not strictly ascending at index " +
                           std::to_string(i + 1));
      return std::nullopt;
    }
  }
  for (std::uint64_t i = 0; i + 1 < r; ++i) {
    if (ReadU32(remove_keys + i * 4) >= ReadU32(remove_keys + (i + 1) * 4)) {
      PatchFail(error, "remove keys not strictly ascending at index " +
                           std::to_string(i + 1));
      return std::nullopt;
    }
  }

  // Three-way sorted merge: base entries, minus removes, overridden /
  // extended by upserts.  Every remove must name a live base key and no
  // key may be both removed and upserted.
  std::vector<SnapshotEntry> merged;
  merged.reserve(base.entry_count() + u);
  std::uint64_t ui = 0;  // upsert cursor
  std::uint64_t ri = 0;  // remove cursor
  const std::size_t bn = base.entry_count();
  for (std::size_t bi = 0; bi < bn; ++bi) {
    const std::uint32_t key = base.EntryKey(bi);
    // Upserts strictly below this base key are pure inserts.
    while (ui < u && ReadU32(upsert_keys + ui * 4) < key) {
      const std::uint32_t ukey = ReadU32(upsert_keys + ui * 4);
      if (ri < r && ReadU32(remove_keys + ri * 4) == ukey) {
        PatchFail(error, "key both removed and upserted");
        return std::nullopt;
      }
      merged.push_back({ukey, ReadU32(upsert_blocks + ui * 4),
                        std::to_integer<std::uint8_t>(upsert_classes[ui])});
      ++ui;
    }
    if (ri < r && ReadU32(remove_keys + ri * 4) < key) {
      PatchFail(error, "remove key not present in base snapshot");
      return std::nullopt;
    }
    if (ri < r && ReadU32(remove_keys + ri * 4) == key) {
      ++ri;
      if (ui < u && ReadU32(upsert_keys + ui * 4) == key) {
        PatchFail(error, "key both removed and upserted");
        return std::nullopt;
      }
      continue;
    }
    if (ui < u && ReadU32(upsert_keys + ui * 4) == key) {
      merged.push_back({key, ReadU32(upsert_blocks + ui * 4),
                        std::to_integer<std::uint8_t>(upsert_classes[ui])});
      ++ui;
      continue;
    }
    merged.push_back({key, base.EntryBlock(bi), base.EntryClass(bi)});
  }
  for (; ui < u; ++ui) {
    const std::uint32_t ukey = ReadU32(upsert_keys + ui * 4);
    if (ri < r && ReadU32(remove_keys + ri * 4) == ukey) {
      PatchFail(error, "key both removed and upserted");
      return std::nullopt;
    }
    merged.push_back({ukey, ReadU32(upsert_blocks + ui * 4),
                      std::to_integer<std::uint8_t>(upsert_classes[ui])});
  }
  if (ri < r) {
    PatchFail(error, "remove key not present in base snapshot");
    return std::nullopt;
  }

  // The patched snapshot keeps the base's format version, so patched ==
  // full recompile holds for v1 and v2 bases alike.
  if (base.version() == kSnapshotVersion2) {
    return AssembleSnapshotV2(
        merged, std::span<const std::byte>(blocktab, m * 12),
        std::span<const std::byte>(hops, h * 4), new_epoch);
  }
  return AssembleSnapshot(
      merged, std::span<const std::byte>(blocktab, m * 12),
      std::span<const std::byte>(hops, h * 4), new_epoch);
}

}  // namespace hobbit::serve
