// wire.h — little-endian byte packing shared by the snapshot and patch
// compilers.  Kept out of snapshot.h so the two binary formats (HSNP
// snapshots, HSPT patches) provably serialize integers the same way —
// the delta path's byte-identity contract rests on both sides funnelling
// through these four functions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hobbit::serve::wire {

inline void AppendU32(std::vector<std::byte>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::byte>((value >> shift) & 0xFF));
  }
}

inline void AppendU64(std::vector<std::byte>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::byte>((value >> shift) & 0xFF));
  }
}

inline void StoreU32(std::byte* p, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((value >> (i * 8)) & 0xFF);
  }
}

inline void StoreU64(std::byte* p, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((value >> (i * 8)) & 0xFF);
  }
}

inline std::uint32_t ReadU32(const std::byte* p) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | std::to_integer<std::uint32_t>(p[i]);
  }
  return value;
}

inline std::uint64_t ReadU64(const std::byte* p) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | std::to_integer<std::uint64_t>(p[i]);
  }
  return value;
}

/// Zero bytes needed to realign `n` to a 4-byte boundary.
inline std::size_t PadTo4(std::size_t n) { return (4 - n % 4) % 4; }

}  // namespace hobbit::serve::wire
