#include "serve/service.h"

#include <chrono>
#include <istream>
#include <ostream>
#include <vector>

#include "hobbit/resultio.h"
#include "serve/lookup.h"

namespace hobbit::serve {
namespace {

std::string_view ClassName(std::uint8_t token) {
  if (token == kNoClass) return "-";
  return core::ClassificationToken(static_cast<core::Classification>(token));
}

/// A query is an address ("1.2.3.4") or a /24 ("1.2.3.0/24"); either way
/// the exact-lookup key is the covering /24's base.  Returns false on
/// syntax errors or non-/24 prefixes.
bool ParseExactQuery(const std::string& text, std::uint32_t* key) {
  if (auto address = netsim::Ipv4Address::Parse(text)) {
    *key = address->value() & 0xFFFFFF00u;
    return true;
  }
  if (auto prefix = netsim::Prefix::Parse(text)) {
    if (prefix->length() != 24) return false;
    *key = prefix->base().value();
    return true;
  }
  return false;
}

void PrintExact(std::ostream& out, const Snapshot& snapshot,
                const LookupResult& result, const std::string& shown) {
  if (!result.found) {
    out << "MISS " << shown << "\n";
    return;
  }
  out << "HIT "
      << netsim::Prefix::Of(netsim::Ipv4Address(result.key), 24).ToString()
      << " block=";
  if (result.block == kNoBlock) {
    out << "- class=" << ClassName(result.class_token)
        << " members=- hops=-\n";
  } else {
    out << result.block << " class=" << ClassName(result.class_token)
        << " members=" << snapshot.BlockMemberCount(result.block)
        << " hops=" << snapshot.BlockHopCount(result.block) << "\n";
  }
}

}  // namespace

std::pair<std::string, std::string> SplitCommand(const std::string& line) {
  std::size_t space = line.find(' ');
  if (space == std::string::npos) return {line, ""};
  std::size_t arg_start = line.find_first_not_of(' ', space);
  if (arg_start == std::string::npos) return {line.substr(0, space), ""};
  return {line.substr(0, space), line.substr(arg_start)};
}

BatchSizeParse ParseBatchSize(const std::string& arg, std::size_t* count) {
  std::size_t parsed = 0;
  try {
    parsed = std::stoul(arg);
  } catch (...) {
    return BatchSizeParse::kBadSyntax;
  }
  if (parsed > kMaxBatch) return BatchSizeParse::kTooLarge;
  *count = parsed;
  return BatchSizeParse::kOk;
}

std::size_t LineService::Run(std::istream& in, std::ostream& out) {
  std::size_t commands = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    ++commands;
    if (!HandleCommand(line, in, out)) break;
  }
  return commands;
}

bool LineService::HandleCommand(const std::string& line, std::istream& in,
                                std::ostream& out) {
  auto start = std::chrono::steady_clock::now();
  auto [command, arg] = SplitCommand(line);
  bool keep_going = true;
  if (command == "LOOKUP") {
    CmdLookup(arg, out);
  } else if (command == "BATCH") {
    CmdBatch(arg, in, out);
  } else if (command == "RELOAD") {
    CmdReload(arg, out);
  } else if (command == "STATS") {
    CmdStats(out);
  } else if (command == "QUIT") {
    out << "BYE\n";
    keep_going = false;
  } else {
    out << "ERR unknown command: " << command << "\n";
  }
  auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  metrics_->latency.Record(static_cast<std::uint64_t>(nanos));
  out.flush();
  return keep_going;
}

std::shared_ptr<const EytzingerIndex> LineService::IndexFor(
    const std::shared_ptr<const Snapshot>& snapshot) {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (index_snapshot_ != snapshot) {
    index_ = std::make_shared<const EytzingerIndex>(
        EytzingerIndex::Build(*snapshot));
    index_snapshot_ = snapshot;
  }
  return index_;
}

void LineService::CmdLookup(const std::string& arg, std::ostream& out) {
  std::shared_ptr<const Snapshot> snapshot = store_->Current();
  if (snapshot == nullptr) {
    out << "ERR no snapshot loaded\n";
    return;
  }
  std::shared_ptr<const EytzingerIndex> index = IndexFor(snapshot);
  LookupEngine engine(*snapshot, index.get());
  std::uint32_t key = 0;
  if (ParseExactQuery(arg, &key)) {
    metrics_->lookups.fetch_add(1, std::memory_order_relaxed);
    LookupResult result = engine.Lookup(netsim::Ipv4Address(key));
    (result.found ? metrics_->hits : metrics_->misses)
        .fetch_add(1, std::memory_order_relaxed);
    PrintExact(out, *snapshot, result, arg);
    return;
  }
  if (auto prefix = netsim::Prefix::Parse(arg);
      prefix && prefix->length() < 24) {
    metrics_->covering_queries.fetch_add(1, std::memory_order_relaxed);
    EntryRange range = engine.Covering(*prefix);
    out << "COVER " << prefix->ToString() << " entries=" << range.size()
        << " blocks=" << engine.DistinctBlocks(range) << "\n";
    return;
  }
  out << "ERR bad query: " << arg << "\n";
}

void LineService::CmdBatch(const std::string& arg, std::istream& in,
                           std::ostream& out) {
  std::size_t count = 0;
  switch (ParseBatchSize(arg, &count)) {
    case BatchSizeParse::kOk:
      break;
    case BatchSizeParse::kBadSyntax:
      out << "ERR bad batch size: " << arg << "\n";
      return;
    case BatchSizeParse::kTooLarge:
      out << "ERR batch too large: " << arg << "\n";
      return;
  }
  // The n query lines are consumed even when no snapshot is loaded, so
  // the stream stays in protocol sync.
  std::vector<std::string> queries(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, queries[i])) {
      out << "ERR batch truncated at query " << i << "\n";
      return;
    }
  }
  std::shared_ptr<const Snapshot> snapshot = store_->Current();
  if (snapshot == nullptr) {
    out << "ERR no snapshot loaded\n";
    return;
  }
  std::shared_ptr<const EytzingerIndex> index = IndexFor(snapshot);
  LookupEngine engine(*snapshot, index.get());
  // Parse up front; only well-formed queries enter the sharded batch.
  std::vector<std::uint32_t> keys(count, 0);
  std::vector<bool> valid(count, false);
  for (std::size_t i = 0; i < count; ++i) {
    valid[i] = ParseExactQuery(queries[i], &keys[i]);
  }
  std::vector<LookupResult> answers(count);
  engine.LookupBatch(keys, answers, pool_);
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (!valid[i]) {
      out << "ERR bad query: " << queries[i] << "\n";
      continue;
    }
    (answers[i].found ? hits : misses) += 1;
    PrintExact(out, *snapshot, answers[i], queries[i]);
  }
  metrics_->batches.fetch_add(1, std::memory_order_relaxed);
  metrics_->lookups.fetch_add(hits + misses, std::memory_order_relaxed);
  metrics_->hits.fetch_add(hits, std::memory_order_relaxed);
  metrics_->misses.fetch_add(misses, std::memory_order_relaxed);
  out << "OK " << count << "\n";
}

void LineService::CmdReload(const std::string& arg, std::ostream& out) {
  if (arg.empty()) {
    out << "ERR reload needs a path\n";
    return;
  }
  std::string error;
  if (!store_->ReloadFromFile(arg, &error, reload_options_)) {
    metrics_->failed_reloads.fetch_add(1, std::memory_order_relaxed);
    out << "ERR reload failed: " << error << "\n";
    return;
  }
  metrics_->reloads.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const Snapshot> snapshot = store_->Current();
  out << "OK generation=" << store_->generation()
      << " entries=" << snapshot->entry_count()
      << " blocks=" << snapshot->block_count()
      << " epoch=" << snapshot->epoch() << "\n";
}

void LineService::CmdStats(std::ostream& out) {
  std::shared_ptr<const Snapshot> snapshot = store_->Current();
  out << metrics_->Format(store_->generation(),
                          snapshot ? snapshot->epoch() : 0,
                          ToString(store_->last_publish_kind()),
                          store_->last_delta_entries())
      << "\n";
}

}  // namespace hobbit::serve
