#include "serve/connection.h"

#include <cstring>
#include <sstream>
#include <utility>

namespace hobbit::serve {

void LineFramer::Append(std::string_view bytes) {
  if (poisoned_) return;  // hostile stream: drop everything after the error
  // Compact once the consumed prefix dominates, so long sessions do not
  // grow the buffer without bound and per-line extraction stays O(1)
  // amortized.
  if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

LineFramer::Status LineFramer::Next(std::string* line) {
  if (poisoned_) return poison_status_;
  const char* base = buffer_.data() + consumed_;
  const std::size_t available = buffer_.size() - consumed_;
  const void* nl = std::memchr(base, '\n', available);
  if (nl == nullptr) {
    if (available > max_line_bytes_) {
      poisoned_ = true;
      poison_status_ = Status::kTooLong;
      return Status::kTooLong;
    }
    return Status::kNeedMore;
  }
  std::size_t length = static_cast<std::size_t>(
      static_cast<const char*>(nl) - base);
  std::size_t content = length;
  if (content > 0 && base[content - 1] == '\r') --content;  // CRLF
  if (content > max_line_bytes_) {
    poisoned_ = true;
    poison_status_ = Status::kTooLong;
    return Status::kTooLong;
  }
  if (std::memchr(base, '\0', length) != nullptr) {
    poisoned_ = true;
    poison_status_ = Status::kBadByte;
    return Status::kBadByte;
  }
  line->assign(base, content);
  consumed_ += length + 1;
  return Status::kLine;
}

bool Connection::Ingest(std::string_view bytes) {
  if (done_) return false;
  framer_.Append(bytes);
  std::string line;
  for (;;) {
    switch (framer_.Next(&line)) {
      case LineFramer::Status::kLine:
        HandleLine(std::move(line));
        if (done_) return false;
        break;
      case LineFramer::Status::kNeedMore:
        return true;
      case LineFramer::Status::kTooLong:
        ProtocolError("line too long");
        return false;
      case LineFramer::Status::kBadByte:
        ProtocolError("NUL byte in input");
        return false;
    }
  }
}

void Connection::OnEof() {
  if (done_) return;
  if (batch_pending_ > 0) {
    // The peer hung up mid-batch; report the truncation the way the
    // stream service does, so the client (if still reading) learns why.
    Dispatch(batch_header_, batch_lines_);
  }
  done_ = true;
}

void Connection::Consume(std::size_t n) {
  out_pos_ += n;
  if (out_pos_ == out_.size()) {
    out_.clear();
    out_pos_ = 0;
  } else if (out_pos_ > (1u << 20) && out_pos_ * 2 >= out_.size()) {
    out_.erase(0, out_pos_);
    out_pos_ = 0;
  }
  RecomputePause();
}

void Connection::HandleLine(std::string&& line) {
  if (batch_pending_ > 0) {
    batch_lines_.append(line);
    batch_lines_.push_back('\n');
    if (batch_lines_.size() > limits_.max_batch_bytes) {
      ProtocolError("batch payload too large");
      return;
    }
    if (--batch_pending_ == 0) {
      Dispatch(batch_header_, batch_lines_);
      batch_header_.clear();
      batch_lines_.clear();
    }
    return;
  }
  if (line.empty() || line[0] == '#') return;  // same skip rule as Run()
  auto [command, arg] = SplitCommand(line);
  std::size_t count = 0;
  if (command == "BATCH" &&
      ParseBatchSize(arg, &count) == BatchSizeParse::kOk && count > 0) {
    // Hold the command until its n query lines have arrived; they may
    // span any number of reads (pipelining).
    batch_header_ = std::move(line);
    batch_pending_ = count;
    return;
  }
  Dispatch(line, std::string());
}

void Connection::Dispatch(const std::string& command_line,
                          const std::string& batch_lines) {
  ++commands_;
  OutbufStream out(&out_);
  std::istringstream batch_in(batch_lines);
  if (!service_->HandleCommand(command_line, batch_in, out)) {
    done_ = true;  // QUIT: BYE is already buffered, close after flush
  }
  RecomputePause();
}

void Connection::ProtocolError(std::string_view reason) {
  out_.append("ERR protocol: ");
  out_.append(reason);
  out_.push_back('\n');
  done_ = true;
  protocol_error_ = true;
}

void Connection::RecomputePause() {
  const std::size_t pending_bytes = out_.size() - out_pos_;
  if (paused_) {
    if (pending_bytes < limits_.write_buffer_resume) paused_ = false;
  } else {
    if (pending_bytes > limits_.write_buffer_cap) paused_ = true;
  }
}

}  // namespace hobbit::serve
