#include "serve/lookup.h"

#include <algorithm>
#include <bit>

namespace hobbit::serve {
namespace {

/// In-order fill of the Eytzinger arrays: node k receives the next key
/// of the ascending sequence after its whole left subtree.  Recursion
/// depth is the tree height (log2 n), so the stack stays shallow even
/// at 100M keys.
template <typename NextKey>
void FillEytzinger(std::size_t k, std::size_t count, std::size_t* rank,
                   NextKey&& next_key, std::uint32_t* keys,
                   std::uint32_t* ranks) {
  if (k > count) return;
  FillEytzinger(2 * k, count, rank, next_key, keys, ranks);
  keys[k] = next_key(*rank);
  ranks[k] = static_cast<std::uint32_t>(*rank);
  ++*rank;
  FillEytzinger(2 * k + 1, count, rank, next_key, keys, ranks);
}

}  // namespace

template <bool kUpper>
std::size_t EytzingerIndex::Descend(std::uint32_t key) const {
  const std::uint32_t* keys = keys_.data();
  const std::size_t count = count_;
  std::size_t k = 1;
  while (k <= count) {
#if defined(__GNUC__) || defined(__clang__)
    // Pull the node four levels below into cache while the next four
    // comparisons resolve; the tail levels where k<<4 runs past the
    // array are a predictable, cheap branch.
    if ((k << 4) <= count) __builtin_prefetch(&keys[k << 4]);
#endif
    if constexpr (kUpper) {
      k = 2 * k + (keys[k] <= key);
    } else {
      k = 2 * k + (keys[k] < key);
    }
  }
  // Every right turn appended a 1 bit; shedding the trailing 1s (and one
  // more step up) lands on the last node where the search went left —
  // exactly the smallest key >= (resp. >) the probe.  k == 0 means the
  // search went right the whole way: no such key.
  k >>= static_cast<unsigned>(std::countr_one(k)) + 1;
  return k;
}

template std::size_t EytzingerIndex::Descend<false>(std::uint32_t) const;
template std::size_t EytzingerIndex::Descend<true>(std::uint32_t) const;

template <bool kUpper>
void EytzingerIndex::DescendBatch(const std::uint32_t* queries,
                                  std::size_t count,
                                  std::size_t* nodes) const {
  const std::uint32_t* keys = keys_.data();
  const std::size_t tree = count_;
  std::size_t k[kBatchWidth];
  for (std::size_t i = 0; i < count; ++i) k[i] = 1;
  // One pass per tree level: every live descent issues its level-load
  // before any of them blocks on a comparison, so up to `count` cache
  // misses are in flight at once.  Descents reaching a leaf early (the
  // tree's last level is ragged) go dormant and the pass cost shrinks.
  bool live = tree > 0;
  while (live) {
    live = false;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t node = k[i];
      if (node > tree) continue;
#if defined(__GNUC__) || defined(__clang__)
      if ((node << 4) <= tree) __builtin_prefetch(&keys[node << 4]);
#endif
      std::size_t next;
      if constexpr (kUpper) {
        next = 2 * node + (keys[node] <= queries[i]);
      } else {
        next = 2 * node + (keys[node] < queries[i]);
      }
      k[i] = next;
      live |= next <= tree;
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    // Same trailing-ones fixup as the single-key descent.
    nodes[i] = k[i] >> (static_cast<unsigned>(std::countr_one(k[i])) + 1);
  }
}

template void EytzingerIndex::DescendBatch<false>(const std::uint32_t*,
                                                  std::size_t,
                                                  std::size_t*) const;
template void EytzingerIndex::DescendBatch<true>(const std::uint32_t*,
                                                 std::size_t,
                                                 std::size_t*) const;

void EytzingerIndex::LowerBoundRankBatch(const std::uint32_t* queries,
                                         std::size_t count,
                                         std::size_t* ranks) const {
  std::size_t nodes[kBatchWidth];
  for (std::size_t base = 0; base < count; base += kBatchWidth) {
    const std::size_t group = std::min(kBatchWidth, count - base);
    DescendBatch<false>(queries + base, group, nodes);
    for (std::size_t i = 0; i < group; ++i) {
      ranks[base + i] = nodes[i] == 0 ? count_ : ranks_[nodes[i]];
    }
  }
}

EytzingerIndex EytzingerIndex::Build(const Snapshot& snapshot) {
  const std::size_t count = snapshot.entry_count();
  EytzingerIndex index;
  index.count_ = count;
  index.keys_.assign(count + 1, 0);
  index.ranks_.assign(count + 1, 0);
  std::size_t rank = 0;
  FillEytzinger(
      1, count, &rank,
      [&](std::size_t i) { return snapshot.EntryKey(i); },
      index.keys_.data(), index.ranks_.data());
  return index;
}

EytzingerIndex EytzingerIndex::Build(
    std::span<const std::uint32_t> sorted_keys) {
  const std::size_t count = sorted_keys.size();
  EytzingerIndex index;
  index.count_ = count;
  index.keys_.assign(count + 1, 0);
  index.ranks_.assign(count + 1, 0);
  std::size_t rank = 0;
  FillEytzinger(
      1, count, &rank, [&](std::size_t i) { return sorted_keys[i]; },
      index.keys_.data(), index.ranks_.data());
  return index;
}

std::size_t LookupEngine::LowerBound(std::uint32_t key) const {
  if (index_ != nullptr) return index_->LowerBoundRank(key);
  std::size_t lo = 0;
  std::size_t hi = snapshot_->entry_count();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (snapshot_->EntryKey(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::size_t LookupEngine::UpperBound(std::uint32_t key) const {
  if (index_ != nullptr) return index_->UpperBoundRank(key);
  std::size_t lo = 0;
  std::size_t hi = snapshot_->entry_count();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (snapshot_->EntryKey(mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

LookupResult LookupEngine::LookupKey(std::uint32_t key) const {
  std::size_t pos = LowerBound(key);
  if (pos == snapshot_->entry_count() || snapshot_->EntryKey(pos) != key) {
    return LookupResult{};
  }
  return LookupResult{true, key, snapshot_->EntryBlock(pos),
                      snapshot_->EntryClass(pos)};
}

EntryRange LookupEngine::Covering(const netsim::Prefix& prefix) const {
  // A /24 entry lies inside `prefix` iff its key is in
  // [prefix.First(), prefix.Last()]; for prefixes longer than /24 the
  // range can only catch the covering /24 itself, which is right: a /26
  // "covers" no whole /24 unless you count its parent — it does not.
  if (prefix.length() > 24) return EntryRange{};
  std::size_t begin = LowerBound(prefix.First().value());
  std::size_t end = UpperBound(prefix.Last().value());
  return EntryRange{begin, end};
}

std::size_t LookupEngine::DistinctBlocks(const EntryRange& range) const {
  std::vector<std::uint32_t> ids;
  ids.reserve(range.size());
  for (std::size_t i = range.begin; i < range.end; ++i) {
    std::uint32_t block = snapshot_->EntryBlock(i);
    if (block != kNoBlock) ids.push_back(block);
  }
  std::sort(ids.begin(), ids.end());
  return static_cast<std::size_t>(
      std::unique(ids.begin(), ids.end()) - ids.begin());
}

void LookupEngine::LookupBatch(std::span<const std::uint32_t> keys,
                               std::span<LookupResult> answers,
                               common::ThreadPool* pool) const {
  // Chunked contiguous scheduling (PR 5): each worker streams through
  // one adjacent slice of the answer array instead of striding it, and
  // the grain keeps small batches from paying a dispatch at all — a
  // single binary search is tens of nanoseconds, so only thousands of
  // them are worth waking a worker for.  With an Eytzinger index
  // attached each worker additionally walks its slice kBatchWidth
  // descents at a time (LowerBoundRankBatch), overlapping the cache
  // misses that dominate out-of-cache lookups; the answers are pinned
  // identical to the per-key path by differential tests.
  constexpr std::size_t kLookupGrain = 4096;
  if (index_ != nullptr) {
    const std::size_t entry_count = snapshot_->entry_count();
    common::ForEachChunk(
        pool, keys.size(), kLookupGrain, [&](common::ChunkRange chunk) {
          constexpr std::size_t kWidth = EytzingerIndex::kBatchWidth;
          std::size_t ranks[kWidth];
          for (std::size_t base = chunk.begin; base < chunk.end;
               base += kWidth) {
            const std::size_t group = std::min(kWidth, chunk.end - base);
            index_->LowerBoundRankBatch(keys.data() + base, group, ranks);
            for (std::size_t i = 0; i < group; ++i) {
              const std::uint32_t key = keys[base + i];
              const std::size_t pos = ranks[i];
              if (pos == entry_count || snapshot_->EntryKey(pos) != key) {
                answers[base + i] = LookupResult{};
              } else {
                answers[base + i] =
                    LookupResult{true, key, snapshot_->EntryBlock(pos),
                                 snapshot_->EntryClass(pos)};
              }
            }
          }
        });
    return;
  }
  common::ForEachChunk(pool, keys.size(), kLookupGrain,
                       [&](common::ChunkRange chunk) {
                         for (std::size_t i = chunk.begin; i < chunk.end;
                              ++i) {
                           answers[i] = LookupKey(keys[i]);
                         }
                       });
}

}  // namespace hobbit::serve
