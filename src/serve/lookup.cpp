#include "serve/lookup.h"

#include <algorithm>

namespace hobbit::serve {

std::size_t LookupEngine::LowerBound(std::uint32_t key) const {
  std::size_t lo = 0;
  std::size_t hi = snapshot_->entry_count();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (snapshot_->EntryKey(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

LookupResult LookupEngine::LookupKey(std::uint32_t key) const {
  std::size_t pos = LowerBound(key);
  if (pos == snapshot_->entry_count() || snapshot_->EntryKey(pos) != key) {
    return LookupResult{};
  }
  return LookupResult{true, key, snapshot_->EntryBlock(pos),
                      snapshot_->EntryClass(pos)};
}

EntryRange LookupEngine::Covering(const netsim::Prefix& prefix) const {
  // A /24 entry lies inside `prefix` iff its key is in
  // [prefix.First(), prefix.Last()]; for prefixes longer than /24 the
  // range can only catch the covering /24 itself, which is right: a /26
  // "covers" no whole /24 unless you count its parent — it does not.
  if (prefix.length() > 24) return EntryRange{};
  std::size_t begin = LowerBound(prefix.First().value());
  std::size_t end = begin;
  const std::uint32_t last = prefix.Last().value();
  // Advance by binary search, not a scan: first key > last.
  std::size_t lo = begin;
  std::size_t hi = snapshot_->entry_count();
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (snapshot_->EntryKey(mid) <= last) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  end = lo;
  return EntryRange{begin, end};
}

std::size_t LookupEngine::DistinctBlocks(const EntryRange& range) const {
  std::vector<std::uint32_t> ids;
  ids.reserve(range.size());
  for (std::size_t i = range.begin; i < range.end; ++i) {
    std::uint32_t block = snapshot_->EntryBlock(i);
    if (block != kNoBlock) ids.push_back(block);
  }
  std::sort(ids.begin(), ids.end());
  return static_cast<std::size_t>(
      std::unique(ids.begin(), ids.end()) - ids.begin());
}

void LookupEngine::LookupBatch(std::span<const std::uint32_t> keys,
                               std::span<LookupResult> answers,
                               common::ThreadPool* pool) const {
  // Chunked contiguous scheduling (PR 5): each worker streams through
  // one adjacent slice of the answer array instead of striding it, and
  // the grain keeps small batches from paying a dispatch at all — a
  // single binary search is tens of nanoseconds, so only thousands of
  // them are worth waking a worker for.
  constexpr std::size_t kLookupGrain = 4096;
  common::ForEachChunk(pool, keys.size(), kLookupGrain,
                       [&](common::ChunkRange chunk) {
                         for (std::size_t i = chunk.begin; i < chunk.end;
                              ++i) {
                           answers[i] = LookupKey(keys[i]);
                         }
                       });
}

}  // namespace hobbit::serve
