#include "serve/snapshot.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <utility>

#include "serve/wire.h"

#if defined(__unix__) || defined(__APPLE__)
#define HOBBIT_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace hobbit::serve {
namespace {

using wire::AppendU32;
using wire::AppendU64;
using wire::PadTo4;
using wire::ReadU32;
using wire::ReadU64;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Derived v1 payload size for given section counts.
std::uint64_t PayloadBytesFor(std::uint64_t n, std::uint64_t m,
                              std::uint64_t h) {
  return n * 4 + n * 4 + n + PadTo4(n) + m * 12 + h * 4;
}

/// The five v2 section offsets (keys, blocks, classes, blocktab, hops) —
/// a pure function of the counts, each AlignUp(previous end, 64).
struct V2Layout {
  std::uint64_t offsets[5];
  std::uint64_t sizes[5];
  std::uint64_t file_bytes;
};

V2Layout LayoutV2(std::uint64_t n, std::uint64_t m, std::uint64_t h) {
  V2Layout layout;
  layout.sizes[0] = n * 4;  // keys
  layout.sizes[1] = n * 4;  // blocks
  layout.sizes[2] = n;      // classes
  layout.sizes[3] = m * 12; // blocktab
  layout.sizes[4] = h * 4;  // hops
  std::uint64_t cursor = kSnapshotV2HeaderBytes;
  for (int i = 0; i < 5; ++i) {
    cursor = (cursor + kSnapshotAlignment - 1) & ~(kSnapshotAlignment - 1);
    layout.offsets[i] = cursor;
    cursor += layout.sizes[i];
  }
  layout.file_bytes = cursor;
  return layout;
}

const char* const kV2SectionNames[5] = {"keys", "blocks", "classes",
                                        "blocktab", "hops"};

bool LoadFail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::uint64_t Fnv1a64(std::span<const std::byte> bytes) {
  std::uint64_t hash = kFnvOffset;
  for (std::byte b : bytes) {
    hash ^= std::to_integer<std::uint64_t>(b);
    hash *= kFnvPrime;
  }
  return hash;
}

std::vector<ClassifiedPrefix> ClassifiedFrom(
    std::span<const core::ResultRecord> records) {
  std::vector<ClassifiedPrefix> out;
  out.reserve(records.size());
  for (const core::ResultRecord& r : records) {
    out.push_back({r.prefix, static_cast<std::uint8_t>(r.classification)});
  }
  return out;
}

std::vector<ClassifiedPrefix> ClassifiedFrom(
    std::span<const core::BlockResult> results) {
  std::vector<ClassifiedPrefix> out;
  out.reserve(results.size());
  for (const core::BlockResult& r : results) {
    out.push_back({r.prefix, static_cast<std::uint8_t>(r.classification)});
  }
  return out;
}

std::vector<SnapshotEntry> BuildSnapshotEntries(
    std::span<const cluster::AggregateBlock> blocks,
    std::span<const ClassifiedPrefix> classified) {
  // key -> (block id, class token); block membership wins over a
  // results-only record, classification survives either insertion order.
  std::map<std::uint32_t, std::pair<std::uint32_t, std::uint8_t>> entries;
  for (std::uint32_t b = 0; b < blocks.size(); ++b) {
    for (const netsim::Prefix& member : blocks[b].member_24s) {
      entries.emplace(member.base().value(), std::make_pair(b, kNoClass));
    }
  }
  for (const ClassifiedPrefix& c : classified) {
    auto [pos, inserted] = entries.emplace(
        c.prefix.base().value(), std::make_pair(kNoBlock, c.class_token));
    if (!inserted && pos->second.second == kNoClass) {
      pos->second.second = c.class_token;
    }
  }
  std::vector<SnapshotEntry> out;
  out.reserve(entries.size());
  for (const auto& [key, meta] : entries) {
    out.push_back({key, meta.first, meta.second});
  }
  return out;
}

void AppendBlockTable(std::span<const cluster::AggregateBlock> blocks,
                      std::vector<std::byte>* blocktab,
                      std::vector<std::byte>* hops) {
  std::uint32_t hop_offset = 0;
  for (const cluster::AggregateBlock& block : blocks) {
    AppendU32(*blocktab, static_cast<std::uint32_t>(block.member_24s.size()));
    AppendU32(*blocktab, hop_offset);
    AppendU32(*blocktab, static_cast<std::uint32_t>(block.last_hops.size()));
    hop_offset += static_cast<std::uint32_t>(block.last_hops.size());
  }
  for (const cluster::AggregateBlock& block : blocks) {
    for (const netsim::Ipv4Address& hop : block.last_hops) {
      AppendU32(*hops, hop.value());
    }
  }
}

std::vector<std::byte> AssembleSnapshot(std::span<const SnapshotEntry> entries,
                                        std::span<const std::byte> blocktab,
                                        std::span<const std::byte> hops,
                                        std::uint64_t epoch) {
  std::vector<std::byte> payload;
  const std::size_t n = entries.size();
  const std::size_t m = blocktab.size() / 12;
  const std::size_t h = hops.size() / 4;
  payload.reserve(PayloadBytesFor(n, m, h));
  for (const SnapshotEntry& e : entries) AppendU32(payload, e.key);
  for (const SnapshotEntry& e : entries) AppendU32(payload, e.block);
  for (const SnapshotEntry& e : entries) {
    payload.push_back(static_cast<std::byte>(e.class_token));
  }
  payload.resize(payload.size() + PadTo4(n), std::byte{0});
  payload.insert(payload.end(), blocktab.begin(), blocktab.end());
  payload.insert(payload.end(), hops.begin(), hops.end());

  std::vector<std::byte> out;
  out.reserve(kSnapshotHeaderBytes + payload.size());
  for (char c : kSnapshotMagic) out.push_back(static_cast<std::byte>(c));
  AppendU32(out, kSnapshotVersion);
  AppendU32(out, kSnapshotHeaderBytes);
  AppendU32(out, static_cast<std::uint32_t>(n));
  AppendU32(out, static_cast<std::uint32_t>(m));
  AppendU32(out, static_cast<std::uint32_t>(h));
  AppendU64(out, epoch);
  AppendU64(out, payload.size());
  AppendU64(out, Fnv1a64(payload));
  AppendU64(out, 0);  // reserved
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::byte> AssembleSnapshotV2(std::span<const SnapshotEntry> entries,
                                          std::span<const std::byte> blocktab,
                                          std::span<const std::byte> hops,
                                          std::uint64_t epoch) {
  const std::size_t n = entries.size();
  const std::size_t m = blocktab.size() / 12;
  const std::size_t h = hops.size() / 4;
  const V2Layout layout = LayoutV2(n, m, h);

  std::vector<std::byte> out(layout.file_bytes, std::byte{0});
  // Sections first, so the header can record their checksums.
  {
    std::byte* keys = out.data() + layout.offsets[0];
    std::byte* blocks = out.data() + layout.offsets[1];
    std::byte* classes = out.data() + layout.offsets[2];
    for (std::size_t i = 0; i < n; ++i) {
      const SnapshotEntry& e = entries[i];
      wire::StoreU32(keys + i * 4, e.key);
      wire::StoreU32(blocks + i * 4, e.block);
      classes[i] = static_cast<std::byte>(e.class_token);
    }
    std::copy(blocktab.begin(), blocktab.end(),
              out.begin() + static_cast<std::ptrdiff_t>(layout.offsets[3]));
    std::copy(hops.begin(), hops.end(),
              out.begin() + static_cast<std::ptrdiff_t>(layout.offsets[4]));
  }

  std::byte* header = out.data();
  std::memcpy(header, kSnapshotMagic, 4);
  wire::StoreU32(header + 4, kSnapshotVersion2);
  wire::StoreU32(header + 8, kSnapshotV2HeaderBytes);
  wire::StoreU32(header + 12, static_cast<std::uint32_t>(n));
  wire::StoreU32(header + 16, static_cast<std::uint32_t>(m));
  wire::StoreU32(header + 20, static_cast<std::uint32_t>(h));
  wire::StoreU64(header + 24, epoch);
  wire::StoreU64(header + 32, layout.file_bytes);
  for (int i = 0; i < 5; ++i) {
    wire::StoreU64(header + 40 + i * 8, layout.offsets[i]);
    wire::StoreU64(header + 80 + i * 8,
                   Fnv1a64({out.data() + layout.offsets[i],
                            static_cast<std::size_t>(layout.sizes[i])}));
  }
  wire::StoreU64(header + 120, 0);  // reserved
  return out;
}

std::vector<std::byte> CompileSnapshot(
    std::span<const cluster::AggregateBlock> blocks,
    std::span<const ClassifiedPrefix> classified, std::uint64_t epoch) {
  std::vector<SnapshotEntry> entries = BuildSnapshotEntries(blocks, classified);
  std::vector<std::byte> blocktab;
  std::vector<std::byte> hops;
  AppendBlockTable(blocks, &blocktab, &hops);
  return AssembleSnapshot(entries, blocktab, hops, epoch);
}

std::vector<std::byte> CompileSnapshotV2(
    std::span<const cluster::AggregateBlock> blocks,
    std::span<const ClassifiedPrefix> classified, std::uint64_t epoch) {
  std::vector<SnapshotEntry> entries = BuildSnapshotEntries(blocks, classified);
  std::vector<std::byte> blocktab;
  std::vector<std::byte> hops;
  AppendBlockTable(blocks, &blocktab, &hops);
  return AssembleSnapshotV2(entries, blocktab, hops, epoch);
}

// ---------------------------------------------------------------------------
// MmapSource

std::shared_ptr<const MmapSource> MmapSource::Map(const std::string& path,
                                                  std::string* error,
                                                  PrefaultMode prefault) {
  (void)prefault;  // unused on platforms without mmap
  auto source = std::shared_ptr<MmapSource>(new MmapSource());
#if HOBBIT_HAS_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error != nullptr) *error = "cannot open " + path;
    return nullptr;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    if (error != nullptr) *error = "cannot stat " + path;
    return nullptr;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size > 0) {
    int flags = MAP_PRIVATE;
#if defined(MAP_POPULATE)
    // Synchronous prefault: every page is resident when mmap returns,
    // so no query ever takes a major fault.
    if (prefault == PrefaultMode::kPopulate) flags |= MAP_POPULATE;
#endif
    void* data = ::mmap(nullptr, size, PROT_READ, flags, fd, 0);
    if (data != MAP_FAILED) {
      source->data_ = data;
      source->size_ = size;
      source->mapped_ = true;
#if defined(POSIX_MADV_WILLNEED)
      // Async readahead (also the fallback when MAP_POPULATE does not
      // exist on this platform): advisory, failures ignored.
      bool want_readahead = prefault == PrefaultMode::kWillNeed;
#if !defined(MAP_POPULATE)
      want_readahead |= prefault == PrefaultMode::kPopulate;
#endif
      if (want_readahead) {
        (void)::posix_madvise(data, size, POSIX_MADV_WILLNEED);
      }
#endif
    }
  }
  ::close(fd);
  if (source->mapped_ || size == 0) return source;
  // mmap failed (unusual filesystem, resource limit): fall through to the
  // owned-copy fallback below so the caller still gets the bytes.
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return nullptr;
  }
  char chunk[64 * 1024];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    const std::byte* begin = reinterpret_cast<const std::byte*>(chunk);
    source->fallback_.insert(source->fallback_.end(), begin,
                             begin + in.gcount());
  }
  source->data_ = source->fallback_.data();
  source->size_ = source->fallback_.size();
  source->mapped_ = false;
  return source;
}

MmapSource::~MmapSource() {
#if HOBBIT_HAS_MMAP
  if (mapped_ && data_ != nullptr) ::munmap(data_, size_);
#endif
}

// ---------------------------------------------------------------------------
// Snapshot

std::uint32_t Snapshot::LoadU32(std::size_t offset) const {
  return ReadU32(base_ + offset);
}

void Snapshot::Rebase() {
  if (map_ != nullptr) {
    std::span<const std::byte> bytes = map_->bytes();
    base_ = bytes.data();
    size_ = bytes.size();
  } else {
    base_ = buffer_.data();
    size_ = buffer_.size();
  }
}

Snapshot::Snapshot(const Snapshot& other)
    : buffer_(other.buffer_),
      map_(other.map_),
      version_(other.version_),
      fully_verified_(other.fully_verified_),
      entry_count_(other.entry_count_),
      block_count_(other.block_count_),
      hop_count_(other.hop_count_),
      epoch_(other.epoch_),
      checksum_(other.checksum_),
      keys_offset_(other.keys_offset_),
      entry_blocks_offset_(other.entry_blocks_offset_),
      classes_offset_(other.classes_offset_),
      blocktab_offset_(other.blocktab_offset_),
      hops_offset_(other.hops_offset_) {
  Rebase();
}

Snapshot& Snapshot::operator=(const Snapshot& other) {
  if (this != &other) {
    Snapshot copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Snapshot::Snapshot(Snapshot&& other) noexcept
    : buffer_(std::move(other.buffer_)),
      map_(std::move(other.map_)),
      version_(other.version_),
      fully_verified_(other.fully_verified_),
      entry_count_(other.entry_count_),
      block_count_(other.block_count_),
      hop_count_(other.hop_count_),
      epoch_(other.epoch_),
      checksum_(other.checksum_),
      keys_offset_(other.keys_offset_),
      entry_blocks_offset_(other.entry_blocks_offset_),
      classes_offset_(other.classes_offset_),
      blocktab_offset_(other.blocktab_offset_),
      hops_offset_(other.hops_offset_) {
  Rebase();
  other.base_ = nullptr;
  other.size_ = 0;
}

Snapshot& Snapshot::operator=(Snapshot&& other) noexcept {
  if (this != &other) {
    buffer_ = std::move(other.buffer_);
    map_ = std::move(other.map_);
    version_ = other.version_;
    fully_verified_ = other.fully_verified_;
    entry_count_ = other.entry_count_;
    block_count_ = other.block_count_;
    hop_count_ = other.hop_count_;
    epoch_ = other.epoch_;
    checksum_ = other.checksum_;
    keys_offset_ = other.keys_offset_;
    entry_blocks_offset_ = other.entry_blocks_offset_;
    classes_offset_ = other.classes_offset_;
    blocktab_offset_ = other.blocktab_offset_;
    hops_offset_ = other.hops_offset_;
    Rebase();
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

std::vector<netsim::Ipv4Address> Snapshot::BlockLastHops(
    std::uint32_t b) const {
  std::uint32_t offset = LoadU32(blocktab_offset_ + std::size_t{b} * 12 + 4);
  std::uint32_t count = BlockHopCount(b);
  std::vector<netsim::Ipv4Address> hops;
  hops.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    hops.emplace_back(LoadU32(hops_offset_ + (offset + std::size_t{i}) * 4));
  }
  return hops;
}

bool Snapshot::ValidateEntries(std::string* error) const {
  const std::size_t n = entry_count_;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (EntryKey(i) >= EntryKey(i + 1)) {
      return LoadFail(error, "entry keys not strictly ascending at index " +
                                 std::to_string(i + 1));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if ((EntryKey(i) & 0xFF) != 0) {
      return LoadFail(error,
                      "entry key is not a /24 base at index " +
                          std::to_string(i));
    }
    std::uint32_t block = EntryBlock(i);
    if (block != kNoBlock && block >= block_count_) {
      return LoadFail(error,
                      "entry block id out of range at index " +
                          std::to_string(i));
    }
    std::uint8_t token = EntryClass(i);
    if (token != kNoClass && token > 4) {
      return LoadFail(error, "entry classification out of range at index " +
                                 std::to_string(i));
    }
  }
  for (std::uint32_t b = 0; b < block_count_; ++b) {
    std::uint64_t offset = LoadU32(blocktab_offset_ + std::size_t{b} * 12 + 4);
    std::uint64_t count = BlockHopCount(b);
    if (offset + count > hop_count_) {
      return LoadFail(error, "block " + std::to_string(b) +
                                 " hop run exceeds the hop pool");
    }
  }
  return true;
}

bool Snapshot::VerifyPayload(std::string* error) const {
  if (version_ == kSnapshotVersion) {
    std::span<const std::byte> payload(base_ + kSnapshotHeaderBytes,
                                       size_ - kSnapshotHeaderBytes);
    if (Fnv1a64(payload) != checksum_) {
      return LoadFail(error, "payload checksum mismatch");
    }
  } else {
    const V2Layout layout = LayoutV2(entry_count_, block_count_, hop_count_);
    // Padding between sections must be zero: the layout is canonical, so
    // two compiles of the same state are byte-identical files.
    for (int i = 0; i < 5; ++i) {
      const std::size_t pad_begin =
          i == 0 ? kSnapshotV2HeaderBytes
                 : static_cast<std::size_t>(layout.offsets[i - 1] +
                                            layout.sizes[i - 1]);
      const std::size_t pad_end = static_cast<std::size_t>(layout.offsets[i]);
      for (std::size_t p = pad_begin; p < pad_end; ++p) {
        if (base_[p] != std::byte{0}) {
          return LoadFail(error, "nonzero inter-section padding before " +
                                     std::string(kV2SectionNames[i]));
        }
      }
    }
    for (int i = 0; i < 5; ++i) {
      std::span<const std::byte> section(
          base_ + layout.offsets[i], static_cast<std::size_t>(layout.sizes[i]));
      if (Fnv1a64(section) != ReadU64(base_ + 80 + i * 8)) {
        return LoadFail(error, std::string("section checksum mismatch (") +
                                   kV2SectionNames[i] + ")");
      }
    }
  }
  return ValidateEntries(error);
}

bool Snapshot::Validate(const SnapshotLoadOptions& options,
                        std::string* error) {
  if (size_ < kSnapshotHeaderBytes) {
    return LoadFail(error, "truncated header: " + std::to_string(size_) +
                               " bytes");
  }
  if (std::memcmp(base_, kSnapshotMagic, 4) != 0) {
    return LoadFail(error, "bad magic (not a HobbitSnapshot file)");
  }
  version_ = ReadU32(base_ + 4);
  if (version_ == kSnapshotVersion) {
    if (ReadU32(base_ + 8) != kSnapshotHeaderBytes) {
      return LoadFail(error, "bad header size field");
    }
    std::uint64_t n = ReadU32(base_ + 12);
    std::uint64_t m = ReadU32(base_ + 16);
    std::uint64_t h = ReadU32(base_ + 20);
    epoch_ = ReadU64(base_ + 24);
    std::uint64_t payload_bytes = ReadU64(base_ + 32);
    checksum_ = ReadU64(base_ + 40);
    if (ReadU64(base_ + 48) != 0) {
      return LoadFail(error, "nonzero reserved field");
    }
    if (payload_bytes != PayloadBytesFor(n, m, h)) {
      return LoadFail(error, "payload size field disagrees with section counts");
    }
    if (size_ != kSnapshotHeaderBytes + payload_bytes) {
      return LoadFail(error, size_ < kSnapshotHeaderBytes + payload_bytes
                                 ? "truncated payload"
                                 : "trailing bytes after payload");
    }
    entry_count_ = n;
    block_count_ = m;
    hop_count_ = h;
    keys_offset_ = kSnapshotHeaderBytes;
    entry_blocks_offset_ = keys_offset_ + n * 4;
    classes_offset_ = entry_blocks_offset_ + n * 4;
    blocktab_offset_ = classes_offset_ + n + PadTo4(n);
    hops_offset_ = blocktab_offset_ + m * 12;
  } else if (version_ == kSnapshotVersion2) {
    if (size_ < kSnapshotV2HeaderBytes) {
      return LoadFail(error, "truncated header: " + std::to_string(size_) +
                                 " bytes");
    }
    if (ReadU32(base_ + 8) != kSnapshotV2HeaderBytes) {
      return LoadFail(error, "bad header size field");
    }
    std::uint64_t n = ReadU32(base_ + 12);
    std::uint64_t m = ReadU32(base_ + 16);
    std::uint64_t h = ReadU32(base_ + 20);
    epoch_ = ReadU64(base_ + 24);
    std::uint64_t file_bytes = ReadU64(base_ + 32);
    if (ReadU64(base_ + 120) != 0) {
      return LoadFail(error, "nonzero reserved field");
    }
    const V2Layout layout = LayoutV2(n, m, h);
    for (int i = 0; i < 5; ++i) {
      if (ReadU64(base_ + 40 + i * 8) != layout.offsets[i]) {
        return LoadFail(error, std::string("bad section offset (") +
                                   kV2SectionNames[i] + ")");
      }
    }
    if (file_bytes != layout.file_bytes) {
      return LoadFail(error, "file size field disagrees with section counts");
    }
    if (size_ != file_bytes) {
      return LoadFail(error, size_ < file_bytes ? "truncated payload"
                                                : "trailing bytes after payload");
    }
    entry_count_ = n;
    block_count_ = m;
    hop_count_ = h;
    keys_offset_ = static_cast<std::size_t>(layout.offsets[0]);
    entry_blocks_offset_ = static_cast<std::size_t>(layout.offsets[1]);
    classes_offset_ = static_cast<std::size_t>(layout.offsets[2]);
    blocktab_offset_ = static_cast<std::size_t>(layout.offsets[3]);
    hops_offset_ = static_cast<std::size_t>(layout.offsets[4]);
    // The snapshot identity: FNV-1a folded over the five little-endian
    // section checksum fields.  Stable across mmap/owned loads and equal
    // for byte-identical files, so delta base matching works unchanged.
    checksum_ = Fnv1a64({base_ + 80, 40});
  } else {
    return LoadFail(error, "unsupported version " + std::to_string(version_));
  }

  if (!options.defer_verification) {
    if (!VerifyPayload(error)) return false;
    fully_verified_ = true;
  }
  return true;
}

std::optional<Snapshot> Snapshot::FromBuffer(std::vector<std::byte> buffer,
                                             std::string* error,
                                             const SnapshotLoadOptions& options) {
  Snapshot snapshot;
  snapshot.buffer_ = std::move(buffer);
  snapshot.Rebase();
  if (!snapshot.Validate(options, error)) return std::nullopt;
  return snapshot;
}

std::optional<Snapshot> Snapshot::FromFile(const std::string& path,
                                           std::string* error,
                                           const SnapshotLoadOptions& options) {
  if (options.use_mmap) {
    std::shared_ptr<const MmapSource> source =
        MmapSource::Map(path, error, options.prefault);
    if (source == nullptr) return std::nullopt;
    Snapshot snapshot;
    snapshot.map_ = std::move(source);
    snapshot.Rebase();
    if (!snapshot.Validate(options, error)) return std::nullopt;
    return snapshot;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LoadFail(error, "cannot open " + path);
    return std::nullopt;
  }
  std::vector<std::byte> buffer;
  char chunk[64 * 1024];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    const std::byte* begin = reinterpret_cast<const std::byte*>(chunk);
    buffer.insert(buffer.end(), begin, begin + in.gcount());
  }
  return FromBuffer(std::move(buffer), error, options);
}

}  // namespace hobbit::serve
