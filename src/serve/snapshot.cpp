#include "serve/snapshot.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <utility>

#include "serve/wire.h"

namespace hobbit::serve {
namespace {

using wire::AppendU32;
using wire::AppendU64;
using wire::PadTo4;
using wire::ReadU32;
using wire::ReadU64;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Derived payload size for given section counts.
std::uint64_t PayloadBytesFor(std::uint64_t n, std::uint64_t m,
                              std::uint64_t h) {
  return n * 4 + n * 4 + n + PadTo4(n) + m * 12 + h * 4;
}

bool LoadFail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::uint64_t Fnv1a64(std::span<const std::byte> bytes) {
  std::uint64_t hash = kFnvOffset;
  for (std::byte b : bytes) {
    hash ^= std::to_integer<std::uint64_t>(b);
    hash *= kFnvPrime;
  }
  return hash;
}

std::vector<ClassifiedPrefix> ClassifiedFrom(
    std::span<const core::ResultRecord> records) {
  std::vector<ClassifiedPrefix> out;
  out.reserve(records.size());
  for (const core::ResultRecord& r : records) {
    out.push_back({r.prefix, static_cast<std::uint8_t>(r.classification)});
  }
  return out;
}

std::vector<ClassifiedPrefix> ClassifiedFrom(
    std::span<const core::BlockResult> results) {
  std::vector<ClassifiedPrefix> out;
  out.reserve(results.size());
  for (const core::BlockResult& r : results) {
    out.push_back({r.prefix, static_cast<std::uint8_t>(r.classification)});
  }
  return out;
}

std::vector<SnapshotEntry> BuildSnapshotEntries(
    std::span<const cluster::AggregateBlock> blocks,
    std::span<const ClassifiedPrefix> classified) {
  // key -> (block id, class token); block membership wins over a
  // results-only record, classification survives either insertion order.
  std::map<std::uint32_t, std::pair<std::uint32_t, std::uint8_t>> entries;
  for (std::uint32_t b = 0; b < blocks.size(); ++b) {
    for (const netsim::Prefix& member : blocks[b].member_24s) {
      entries.emplace(member.base().value(), std::make_pair(b, kNoClass));
    }
  }
  for (const ClassifiedPrefix& c : classified) {
    auto [pos, inserted] = entries.emplace(
        c.prefix.base().value(), std::make_pair(kNoBlock, c.class_token));
    if (!inserted && pos->second.second == kNoClass) {
      pos->second.second = c.class_token;
    }
  }
  std::vector<SnapshotEntry> out;
  out.reserve(entries.size());
  for (const auto& [key, meta] : entries) {
    out.push_back({key, meta.first, meta.second});
  }
  return out;
}

void AppendBlockTable(std::span<const cluster::AggregateBlock> blocks,
                      std::vector<std::byte>* blocktab,
                      std::vector<std::byte>* hops) {
  std::uint32_t hop_offset = 0;
  for (const cluster::AggregateBlock& block : blocks) {
    AppendU32(*blocktab, static_cast<std::uint32_t>(block.member_24s.size()));
    AppendU32(*blocktab, hop_offset);
    AppendU32(*blocktab, static_cast<std::uint32_t>(block.last_hops.size()));
    hop_offset += static_cast<std::uint32_t>(block.last_hops.size());
  }
  for (const cluster::AggregateBlock& block : blocks) {
    for (const netsim::Ipv4Address& hop : block.last_hops) {
      AppendU32(*hops, hop.value());
    }
  }
}

std::vector<std::byte> AssembleSnapshot(std::span<const SnapshotEntry> entries,
                                        std::span<const std::byte> blocktab,
                                        std::span<const std::byte> hops,
                                        std::uint64_t epoch) {
  std::vector<std::byte> payload;
  const std::size_t n = entries.size();
  const std::size_t m = blocktab.size() / 12;
  const std::size_t h = hops.size() / 4;
  payload.reserve(PayloadBytesFor(n, m, h));
  for (const SnapshotEntry& e : entries) AppendU32(payload, e.key);
  for (const SnapshotEntry& e : entries) AppendU32(payload, e.block);
  for (const SnapshotEntry& e : entries) {
    payload.push_back(static_cast<std::byte>(e.class_token));
  }
  payload.resize(payload.size() + PadTo4(n), std::byte{0});
  payload.insert(payload.end(), blocktab.begin(), blocktab.end());
  payload.insert(payload.end(), hops.begin(), hops.end());

  std::vector<std::byte> out;
  out.reserve(kSnapshotHeaderBytes + payload.size());
  for (char c : kSnapshotMagic) out.push_back(static_cast<std::byte>(c));
  AppendU32(out, kSnapshotVersion);
  AppendU32(out, kSnapshotHeaderBytes);
  AppendU32(out, static_cast<std::uint32_t>(n));
  AppendU32(out, static_cast<std::uint32_t>(m));
  AppendU32(out, static_cast<std::uint32_t>(h));
  AppendU64(out, epoch);
  AppendU64(out, payload.size());
  AppendU64(out, Fnv1a64(payload));
  AppendU64(out, 0);  // reserved
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::byte> CompileSnapshot(
    std::span<const cluster::AggregateBlock> blocks,
    std::span<const ClassifiedPrefix> classified, std::uint64_t epoch) {
  std::vector<SnapshotEntry> entries = BuildSnapshotEntries(blocks, classified);
  std::vector<std::byte> blocktab;
  std::vector<std::byte> hops;
  AppendBlockTable(blocks, &blocktab, &hops);
  return AssembleSnapshot(entries, blocktab, hops, epoch);
}

std::uint32_t Snapshot::LoadU32(std::size_t offset) const {
  return ReadU32(buffer_.data() + offset);
}

std::vector<netsim::Ipv4Address> Snapshot::BlockLastHops(
    std::uint32_t b) const {
  std::uint32_t offset = LoadU32(blocktab_offset_ + std::size_t{b} * 12 + 4);
  std::uint32_t count = BlockHopCount(b);
  std::vector<netsim::Ipv4Address> hops;
  hops.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    hops.emplace_back(LoadU32(hops_offset_ + (offset + std::size_t{i}) * 4));
  }
  return hops;
}

std::optional<Snapshot> Snapshot::FromBuffer(std::vector<std::byte> buffer,
                                             std::string* error) {
  if (buffer.size() < kSnapshotHeaderBytes) {
    LoadFail(error, "truncated header: " + std::to_string(buffer.size()) +
                        " bytes");
    return std::nullopt;
  }
  if (std::memcmp(buffer.data(), kSnapshotMagic, 4) != 0) {
    LoadFail(error, "bad magic (not a HobbitSnapshot file)");
    return std::nullopt;
  }
  const std::byte* base = buffer.data();
  std::uint32_t version = ReadU32(base + 4);
  if (version != kSnapshotVersion) {
    LoadFail(error, "unsupported version " + std::to_string(version));
    return std::nullopt;
  }
  if (ReadU32(base + 8) != kSnapshotHeaderBytes) {
    LoadFail(error, "bad header size field");
    return std::nullopt;
  }
  std::uint64_t n = ReadU32(base + 12);
  std::uint64_t m = ReadU32(base + 16);
  std::uint64_t h = ReadU32(base + 20);
  std::uint64_t epoch = ReadU64(base + 24);
  std::uint64_t payload_bytes = ReadU64(base + 32);
  std::uint64_t checksum = ReadU64(base + 40);
  if (ReadU64(base + 48) != 0) {
    LoadFail(error, "nonzero reserved field");
    return std::nullopt;
  }
  if (payload_bytes != PayloadBytesFor(n, m, h)) {
    LoadFail(error, "payload size field disagrees with section counts");
    return std::nullopt;
  }
  if (buffer.size() != kSnapshotHeaderBytes + payload_bytes) {
    LoadFail(error,
             buffer.size() < kSnapshotHeaderBytes + payload_bytes
                 ? "truncated payload"
                 : "trailing bytes after payload");
    return std::nullopt;
  }
  std::span<const std::byte> payload(base + kSnapshotHeaderBytes,
                                     payload_bytes);
  if (Fnv1a64(payload) != checksum) {
    LoadFail(error, "payload checksum mismatch");
    return std::nullopt;
  }

  Snapshot snapshot;
  snapshot.entry_count_ = n;
  snapshot.block_count_ = m;
  snapshot.hop_count_ = h;
  snapshot.epoch_ = epoch;
  snapshot.checksum_ = checksum;
  snapshot.keys_offset_ = kSnapshotHeaderBytes;
  snapshot.entry_blocks_offset_ = snapshot.keys_offset_ + n * 4;
  snapshot.classes_offset_ = snapshot.entry_blocks_offset_ + n * 4;
  snapshot.blocktab_offset_ = snapshot.classes_offset_ + n + PadTo4(n);
  snapshot.hops_offset_ = snapshot.blocktab_offset_ + m * 12;
  snapshot.buffer_ = std::move(buffer);

  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (snapshot.EntryKey(i) >= snapshot.EntryKey(i + 1)) {
      LoadFail(error, "entry keys not strictly ascending at index " +
                          std::to_string(i + 1));
      return std::nullopt;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if ((snapshot.EntryKey(i) & 0xFF) != 0) {
      LoadFail(error, "entry key is not a /24 base at index " +
                          std::to_string(i));
      return std::nullopt;
    }
    std::uint32_t block = snapshot.EntryBlock(i);
    if (block != kNoBlock && block >= m) {
      LoadFail(error,
               "entry block id out of range at index " + std::to_string(i));
      return std::nullopt;
    }
    std::uint8_t token = snapshot.EntryClass(i);
    if (token != kNoClass && token > 4) {
      LoadFail(error, "entry classification out of range at index " +
                          std::to_string(i));
      return std::nullopt;
    }
  }
  for (std::uint32_t b = 0; b < m; ++b) {
    std::uint64_t offset =
        ReadU32(snapshot.buffer_.data() + snapshot.blocktab_offset_ +
                std::size_t{b} * 12 + 4);
    std::uint64_t count = snapshot.BlockHopCount(b);
    if (offset + count > h) {
      LoadFail(error, "block " + std::to_string(b) +
                          " hop run exceeds the hop pool");
      return std::nullopt;
    }
  }
  return snapshot;
}

std::optional<Snapshot> Snapshot::FromFile(const std::string& path,
                                           std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LoadFail(error, "cannot open " + path);
    return std::nullopt;
  }
  std::vector<std::byte> buffer;
  char chunk[64 * 1024];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    const std::byte* begin = reinterpret_cast<const std::byte*>(chunk);
    buffer.insert(buffer.end(), begin, begin + in.gcount());
  }
  return FromBuffer(std::move(buffer), error);
}

}  // namespace hobbit::serve
