// snapshot.h — the compiled, servable form of a Hobbit campaign.
//
// The text formats (cluster/blockio.h, hobbit/resultio.h) are the archival
// interchange forms; this is the *serving* form: a campaign's block list
// and per-/24 classifications lowered into one versioned, checksummed,
// little-endian buffer that a running service can map or read whole and
// query without any parsing, allocation, or pointer fixup.
//
// Layout (HobbitSnapshot v1; every integer little-endian):
//
//   offset  size  field
//   0       4     magic "HSNP"
//   4       4     u32 version            (== 1)
//   8       4     u32 header_bytes      (== 56)
//   12      4     u32 entry_count    n  (measured /24s, key-sorted)
//   16      4     u32 block_count    m  (aggregated blocks)
//   20      4     u32 hop_count      h  (last-hop pool entries)
//   24      8     u64 epoch             (producer-chosen campaign id)
//   32      8     u64 payload_bytes     (must equal the derived size)
//   40      8     u64 payload_checksum  (FNV-1a 64 over the payload)
//   48      8     u64 reserved          (== 0)
//   56            payload:
//     keys      n*4   u32 /24 base addresses, strictly ascending
//     blocks    n*4   u32 owning block id, or kNoBlock
//     classes   n*1   u8  Classification value, or kNoClass
//     pad       0..3  zero bytes realigning to 4
//     blocktab  m*12  u32 member_count, u32 hop_offset, u32 hop_count
//     hops      h*4   u32 last-hop addresses, per-block contiguous runs
//
// Layout (HobbitSnapshot v2 — the mmap zero-copy form):
//
//   offset  size  field
//   0       4     magic "HSNP"
//   4       4     u32 version            (== 2)
//   8       4     u32 header_bytes      (== 128)
//   12      4     u32 entry_count    n
//   16      4     u32 block_count    m
//   20      4     u32 hop_count      h
//   24      8     u64 epoch
//   32      8     u64 file_bytes        (exact total size of the file)
//   40      8*5   u64 section offsets: keys, blocks, classes, blocktab,
//                 hops — absolute, each 64-byte aligned, in that order,
//                 with offset == AlignUp(previous section end, 64); the
//                 padding bytes between sections are zero.  The layout
//                 is therefore a pure function of (n, m, h): two
//                 compiles of the same state are byte-identical.
//   80      8*5   u64 per-section FNV-1a 64 checksums, same order
//   120     8     u64 reserved          (== 0)
//   128           sections (see offsets; same content as the v1 payload
//                 sections, but individually 64-byte aligned)
//
// The v2 alignment means a server can mmap the file and serve straight
// out of the page cache: every section start is cache-line aligned, no
// copy, no fixup.  Per-section checksums let a loader verify sections
// up front (the default) or defer verification for O(1) cold start
// (SnapshotLoadOptions::defer_verification; call VerifyPayload later).
//
// Properties the loader enforces (each has a robustness test):
//  * exact size: header + payload_bytes (v1) / file_bytes (v2), nothing
//    truncated or trailing; v2 section offsets exactly at the aligned
//    positions with zero padding between sections;
//  * checksum over the whole payload (v1) / every section (v2);
//  * keys strictly ascending (sorted *and* duplicate-free — binary search
//    needs no further validation);
//  * every block id below m or kNoBlock, every class a valid enum value
//    or kNoClass, every blocktab hop run inside the hop pool.
//
// A loaded, verified Snapshot is therefore fully trusted by the lookup
// engine: the hot path does no bounds or validity re-checking.  A
// deferred-verification load enforces only the structural half (sizes,
// offsets) until VerifyPayload is called.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/aggregate.h"
#include "hobbit/resultio.h"
#include "hobbit/types.h"
#include "netsim/ipv4.h"

namespace hobbit::serve {

inline constexpr char kSnapshotMagic[4] = {'H', 'S', 'N', 'P'};
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::uint32_t kSnapshotHeaderBytes = 56;
inline constexpr std::uint32_t kSnapshotVersion2 = 2;
inline constexpr std::uint32_t kSnapshotV2HeaderBytes = 128;
/// Section starts in a v2 snapshot are aligned to this (one cache line).
inline constexpr std::size_t kSnapshotAlignment = 64;

/// Entry sentinel: measured /24 that belongs to no aggregated block.
inline constexpr std::uint32_t kNoBlock = 0xFFFFFFFFu;
/// Entry sentinel: no classification archived for this /24.
inline constexpr std::uint8_t kNoClass = 0xFF;

/// FNV-1a 64 over a byte range — the payload checksum.
std::uint64_t Fnv1a64(std::span<const std::byte> bytes);

/// A /24 destined for the snapshot: key plus optional classification.
/// (Adapters below build these from the archival record types.)
struct ClassifiedPrefix {
  netsim::Prefix prefix;                    // must be a /24
  std::uint8_t class_token = kNoClass;      // Classification value or kNoClass
};

std::vector<ClassifiedPrefix> ClassifiedFrom(
    std::span<const core::ResultRecord> records);
std::vector<ClassifiedPrefix> ClassifiedFrom(
    std::span<const core::BlockResult> results);

/// One resolved snapshot entry: a /24 key with its owning block id (or
/// kNoBlock) and classification token (or kNoClass).  The row form of
/// the snapshot's three columnar entry sections.
struct SnapshotEntry {
  std::uint32_t key = 0;
  std::uint32_t block = kNoBlock;
  std::uint8_t class_token = kNoClass;
};

/// Resolves blocks + classifications into the sorted, deduplicated entry
/// list.  Entries are the union: every block member /24 and every
/// classified /24.  Duplicate keys collapse (block membership wins for
/// the block id, the classification rides along either insertion order).
std::vector<SnapshotEntry> BuildSnapshotEntries(
    std::span<const cluster::AggregateBlock> blocks,
    std::span<const ClassifiedPrefix> classified);

/// Serializes the blocktab and hop-pool payload sections for `blocks`
/// (appended to the given buffers).  Shared by the full compiler and the
/// patch compiler so both emit bit-identical block sections.
void AppendBlockTable(std::span<const cluster::AggregateBlock> blocks,
                      std::vector<std::byte>* blocktab,
                      std::vector<std::byte>* hops);

/// Assembles a complete v1 snapshot buffer from pre-resolved parts:
/// sorted entries plus already-serialized blocktab/hops sections.  Both
/// CompileSnapshot and the patch applier (serve/delta.h) funnel through
/// here, which is what makes a patched snapshot byte-identical to a full
/// recompile of the same state.
std::vector<std::byte> AssembleSnapshot(
    std::span<const SnapshotEntry> entries, std::span<const std::byte> blocktab,
    std::span<const std::byte> hops, std::uint64_t epoch);

/// Assembles a v2 (64-byte-aligned, section-offset) snapshot from the
/// same pre-resolved parts.  Deterministic: the layout is a pure
/// function of the section sizes.
std::vector<std::byte> AssembleSnapshotV2(
    std::span<const SnapshotEntry> entries, std::span<const std::byte> blocktab,
    std::span<const std::byte> hops, std::uint64_t epoch);

/// Lowers a block list plus (optionally empty) per-/24 classifications into
/// a v1 snapshot buffer.  Equivalent to BuildSnapshotEntries +
/// AppendBlockTable + AssembleSnapshot.
std::vector<std::byte> CompileSnapshot(
    std::span<const cluster::AggregateBlock> blocks,
    std::span<const ClassifiedPrefix> classified = {},
    std::uint64_t epoch = 0);

/// As CompileSnapshot, but emits the v2 layout.
std::vector<std::byte> CompileSnapshotV2(
    std::span<const cluster::AggregateBlock> blocks,
    std::span<const ClassifiedPrefix> classified = {},
    std::uint64_t epoch = 0);

/// How aggressively a mapped snapshot is faulted into memory at map
/// time.  Demand paging (kNone) gives the fastest cold start but pays a
/// major-fault stall on first touch of every queried page; the prefault
/// modes trade startup latency for warm first queries.
enum class PrefaultMode : std::uint8_t {
  kNone = 0,   ///< demand paging (default)
  kWillNeed,   ///< madvise(MADV_WILLNEED): kick off async readahead
  kPopulate,   ///< MAP_POPULATE: synchronously fault every page at map
};

/// How FromFile/FromBuffer acquire and verify a snapshot.
struct SnapshotLoadOptions {
  /// FromFile only: mmap the file (MAP_PRIVATE, read-only) instead of
  /// reading it into an owned buffer.  Zero-copy: the Snapshot serves
  /// straight out of the page cache.  Falls back to an owned read on
  /// platforms without mmap.
  bool use_mmap = false;
  /// Skip the O(payload) verification work at load time (checksums and
  /// the per-entry invariant scan); only the structural header/size/
  /// offset checks run.  The cold-start win for a large mapped
  /// snapshot: nothing is faulted in until it is queried.  Callers can
  /// run the deferred work later via Snapshot::VerifyPayload.
  bool defer_verification = false;
  /// Mapped loads only (no-op for owned reads, which fault everything
  /// by construction): how much of the file to fault in at map time.
  PrefaultMode prefault = PrefaultMode::kNone;
};

/// A read-only mapped file (or, on platforms without mmap, an owned copy
/// of one).  Shared by every Snapshot copy that serves from it; unmapped
/// when the last reference drops.
class MmapSource {
 public:
  /// Maps `path` read-only.  Returns null (with a message in *error)
  /// when the file cannot be opened or mapped.  `prefault` selects how
  /// much of the mapping is faulted in up front (kPopulate adds
  /// MAP_POPULATE; kWillNeed issues madvise(MADV_WILLNEED); both fall
  /// back to demand paging where unsupported).
  static std::shared_ptr<const MmapSource> Map(
      const std::string& path, std::string* error = nullptr,
      PrefaultMode prefault = PrefaultMode::kNone);
  ~MmapSource();

  MmapSource(const MmapSource&) = delete;
  MmapSource& operator=(const MmapSource&) = delete;

  std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(data_), size_};
  }
  bool mapped() const { return mapped_; }

 private:
  MmapSource() = default;

  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;                ///< true: munmap; false: owned copy
  std::vector<std::byte> fallback_;    ///< owns the bytes when !mapped_
};

/// One immutable loaded snapshot.  Backed either by an owned buffer or
/// by a shared MmapSource; all accessors decode in place (little-endian
/// loads compile to plain loads on LE hosts).  Copy/move rebase the
/// cached base pointer, so copies stay valid and cheap (an mmap-backed
/// copy shares the mapping).
class Snapshot {
 public:
  /// An empty snapshot (no entries, no backing store); assign a loaded
  /// one over it.
  Snapshot() = default;

  /// Validates and adopts `buffer`.  On any violation of the format
  /// contract returns nullopt and, when `error` is non-null, a message
  /// naming the first violated property.
  static std::optional<Snapshot> FromBuffer(
      std::vector<std::byte> buffer, std::string* error = nullptr,
      const SnapshotLoadOptions& options = {});

  /// Reads (or, per `options`, maps) a file and validates it.
  static std::optional<Snapshot> FromFile(
      const std::string& path, std::string* error = nullptr,
      const SnapshotLoadOptions& options = {});

  Snapshot(const Snapshot& other);
  Snapshot& operator=(const Snapshot& other);
  Snapshot(Snapshot&& other) noexcept;
  Snapshot& operator=(Snapshot&& other) noexcept;

  std::size_t entry_count() const { return entry_count_; }
  std::size_t block_count() const { return block_count_; }
  std::size_t hop_count() const { return hop_count_; }
  std::uint64_t epoch() const { return epoch_; }
  /// v1: the payload checksum.  v2: FNV-1a 64 folded over the five
  /// little-endian section checksums — a stable identity for delta
  /// base matching either way.
  std::uint64_t checksum() const { return checksum_; }
  /// Serialized format version (1 or 2).
  std::uint32_t version() const { return version_; }
  /// True when the payload checks (checksums + invariant scan) have run.
  bool fully_verified() const { return fully_verified_; }
  /// True when the snapshot serves from a live mmap (zero-copy).
  bool is_mapped() const { return map_ != nullptr && map_->mapped(); }
  std::size_t buffer_bytes() const { return size_; }
  /// The full serialized form (header + payload), e.g. for byte-level
  /// comparison against a reference compile or for re-serialization.
  std::span<const std::byte> bytes() const { return {base_, size_}; }

  /// Runs the deferred payload verification (section checksums, entry
  /// and hop-run invariants, v2 inter-section padding).  Returns false
  /// with a message in *error on the first violated property.  Pure:
  /// safe to call from any thread on a shared const snapshot.
  bool VerifyPayload(std::string* error = nullptr) const;

  /// The i-th /24 base address (host order).  Strictly ascending in i.
  std::uint32_t EntryKey(std::size_t i) const {
    return LoadU32(keys_offset_ + i * 4);
  }
  /// The i-th entry's owning block id, or kNoBlock.
  std::uint32_t EntryBlock(std::size_t i) const {
    return LoadU32(entry_blocks_offset_ + i * 4);
  }
  /// The i-th entry's Classification value, or kNoClass.
  std::uint8_t EntryClass(std::size_t i) const {
    return static_cast<std::uint8_t>(base_[classes_offset_ + i]);
  }
  netsim::Prefix EntryPrefix(std::size_t i) const {
    return netsim::Prefix::Of(netsim::Ipv4Address(EntryKey(i)), 24);
  }

  /// Member-/24 count of block b.
  std::uint32_t BlockMemberCount(std::uint32_t b) const {
    return LoadU32(blocktab_offset_ + std::size_t{b} * 12);
  }
  /// Last-hop addresses of block b (host order), decoded into a vector.
  std::vector<netsim::Ipv4Address> BlockLastHops(std::uint32_t b) const;
  std::uint32_t BlockHopCount(std::uint32_t b) const {
    return LoadU32(blocktab_offset_ + std::size_t{b} * 12 + 8);
  }

 private:
  std::uint32_t LoadU32(std::size_t offset) const;
  void Rebase();
  /// Shared loader: validates the already-adopted storage.
  bool Validate(const SnapshotLoadOptions& options, std::string* error);
  bool ValidateEntries(std::string* error) const;

  /// Exactly one of these backs the snapshot.
  std::vector<std::byte> buffer_;
  std::shared_ptr<const MmapSource> map_;
  /// Cached view over the active backing store.
  const std::byte* base_ = nullptr;
  std::size_t size_ = 0;

  std::uint32_t version_ = kSnapshotVersion;
  bool fully_verified_ = false;
  std::size_t entry_count_ = 0;
  std::size_t block_count_ = 0;
  std::size_t hop_count_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t checksum_ = 0;
  std::size_t keys_offset_ = 0;
  std::size_t entry_blocks_offset_ = 0;
  std::size_t classes_offset_ = 0;
  std::size_t blocktab_offset_ = 0;
  std::size_t hops_offset_ = 0;
};

}  // namespace hobbit::serve
