// delta.h — snapshot patches: the wire form of a streaming publish.
//
// A streaming campaign (src/stream) republishes as blocks finish; a full
// HSNP recompile per publish would be O(world) work and bytes for what is
// usually an O(changed) update.  A patch carries only the *entry-level*
// difference against a specific base snapshot, plus a full replacement of
// the block table and hop pool (block ids are renumbered every publish —
// blocks re-sort by size — so the m*12+h*4 section is rewritten wholesale;
// it is small next to the n-entry sections).
//
// Layout (HobbitSnapshotPatch v1; every integer little-endian):
//
//   offset  size  field
//   0       4     magic "HSPT"
//   4       4     u32 version            (== 1)
//   8       4     u32 header_bytes      (== 64)
//   12      4     u32 upsert_count   u  (entries added or changed)
//   16      4     u32 remove_count   r  (base keys deleted)
//   20      4     u32 block_count    m' (replacement block table)
//   24      4     u32 hop_count      h' (replacement hop pool)
//   28      4     u32 reserved          (== 0)
//   32      8     u64 base_checksum     (payload checksum of the base
//                                        snapshot this patch applies to)
//   40      8     u64 new_epoch         (epoch of the patched snapshot)
//   48      8     u64 payload_bytes     (must equal the derived size)
//   56      8     u64 payload_checksum  (FNV-1a 64 over the payload)
//   64            payload:
//     upsert keys     u*4   u32 /24 bases, strictly ascending
//     upsert blocks   u*4   u32 owning block id, or kNoBlock
//     upsert classes  u*1   u8  Classification value, or kNoClass
//     pad             0..3  zero bytes realigning to 4
//     remove keys     r*4   u32 /24 bases, strictly ascending; must exist
//                           in the base and be disjoint from the upserts
//     blocktab        m'*12 as in the snapshot format
//     hops            h'*4  as in the snapshot format
//
// The applier is strict (same philosophy as Snapshot::FromBuffer): any
// violation — bad magic/version/size/checksum, wrong base, unsorted or
// overlapping key sections, removes that don't exist — rejects the whole
// patch, and the store keeps serving the current snapshot untouched.
//
// Contract: ApplyPatch(base, CompileDelta(base, S)) is byte-identical to
// CompileSnapshot(S) for any state S.  Both sides funnel through
// BuildSnapshotEntries / AppendBlockTable / AssembleSnapshot, so this
// holds structurally, and the differential gate in bench_stream and the
// verify_full_reference stream option re-check it at runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/snapshot.h"

namespace hobbit::serve {

inline constexpr char kPatchMagic[4] = {'H', 'S', 'P', 'T'};
inline constexpr std::uint32_t kPatchVersion = 1;
inline constexpr std::uint32_t kPatchHeaderBytes = 64;

/// What a CompileDelta call actually emitted, for telemetry.
struct DeltaStats {
  std::size_t upserts = 0;    ///< entries added or changed vs the base
  std::size_t removes = 0;    ///< base entries absent from the new state
  std::size_t unchanged = 0;  ///< base entries carried over untouched
};

/// Diffs the new state (blocks + classifications, as CompileSnapshot takes
/// them) against `base` and compiles the patch that transforms base into
/// the new state at `new_epoch`.  Always emits the full replacement block
/// table; entries are diffed.  An empty diff is valid (the patch then only
/// bumps the epoch / renews the block table).
std::vector<std::byte> CompileDelta(
    const Snapshot& base, std::span<const cluster::AggregateBlock> blocks,
    std::span<const ClassifiedPrefix> classified, std::uint64_t new_epoch,
    DeltaStats* stats = nullptr);

/// Validates `patch` against `base` and, when everything checks out,
/// returns the patched snapshot buffer (ready for Snapshot::FromBuffer).
/// On any violation returns nullopt and, when `error` is non-null, a
/// message naming the first violated property; `base` is never modified.
std::optional<std::vector<std::byte>> ApplyPatch(
    const Snapshot& base, std::span<const std::byte> patch,
    std::string* error = nullptr);

}  // namespace hobbit::serve
