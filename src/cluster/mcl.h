// mcl.h — the Markov Cluster algorithm (van Dongen 2000), from scratch.
//
// The paper clusters /24 blocks whose last-hop-router sets overlap but are
// not identical (§6.2-§6.4).  MCL simulates flow on the similarity graph:
// expansion (matrix squaring) lets flow reach farther, inflation
// (entry-wise powering + renormalisation) strengthens strong currents and
// starves weak ones; iterated, the process converges to a forest of
// attractors whose basins are the clusters.  The inflation exponent is the
// granularity knob the paper sweeps.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hobbit::common {
class ThreadPool;
}

namespace hobbit::cluster {

/// An undirected weighted graph given as an edge list over vertices
/// [0, n).
struct Graph {
  std::uint32_t vertex_count = 0;
  struct Edge {
    std::uint32_t a;
    std::uint32_t b;
    double weight;
  };
  std::vector<Edge> edges;
};

struct MclParams {
  double inflation = 2.0;
  /// Self-loop weight added to every vertex before normalisation (van
  /// Dongen recommends ~1 for undirected similarity graphs).
  double self_loop = 1.0;
  int max_iterations = 64;
  /// Convergence: stop when the iterate changes less than this.
  double epsilon = 1e-6;
  /// Pruning keeps iterates sparse.
  double prune_threshold = 1e-5;
  std::size_t max_entries_per_column = 64;
  /// Worker threads for expansion/inflation/pruning (column-sharded).
  /// Results are bit-identical for any thread count; see
  /// src/common/parallel.h.  Ignored when `pool` is set.
  int threads = 1;
  /// Optional externally owned pool shared across pipeline stages; when
  /// null, RunMcl creates its own from `threads`.
  common::ThreadPool* pool = nullptr;
};

/// The clustering: every vertex appears in exactly one cluster; clusters
/// of size one are singletons ("unclustered" in the paper's terms).
struct MclResult {
  std::vector<std::vector<std::uint32_t>> clusters;
  int iterations = 0;

  /// Clusters with at least two members.
  std::size_t NontrivialCount() const {
    std::size_t n = 0;
    for (const auto& c : clusters) n += c.size() >= 2 ? 1 : 0;
    return n;
  }
};

/// Runs MCL on the whole graph.
MclResult RunMcl(const Graph& graph, const MclParams& params = {});

/// The paper's parameter-selection procedure (§6.4): run MCL under each
/// candidate inflation and pick the one minimising the percentage of
/// intra-cluster edges whose weight is below the median of all edge
/// weights.
struct SweepOutcome {
  double best_inflation = 2.0;
  double best_bad_edge_ratio = 1.0;
  std::vector<std::pair<double, double>> tried;  // (inflation, ratio)
};
SweepOutcome SweepInflation(const Graph& graph,
                            std::span<const double> candidates,
                            const MclParams& base_params = {});

}  // namespace hobbit::cluster
