#include "cluster/sparse.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/parallel.h"
#include "common/simd.h"

namespace hobbit::cluster {
namespace {

// Minimum columns per chunk: components smaller than this run inline
// (an MCL run on a ten-vertex component should not pay any dispatch),
// larger matrices split into one contiguous chunk per shard.
constexpr std::size_t kColumnGrain = 64;

// Inflation sweep over one contiguous column: pow every entry in place
// and return the column sum in the simd layer's fixed lane order (see
// simd.h).  The canonical MCL inflation (2.0) is the vector kernel's
// single multiply — x*x and a correctly-rounded pow round identically —
// and other powers take a scalar libm pass followed by the same
// lane-ordered reduction.  The standalone Inflate kernel and the fused
// iteration both call this one function, which keeps fused == unfused
// bit-identity independent of the power and of the dispatched tier.
inline double InflateSweep(double* values, std::size_t count, double power,
                           const common::simd::Kernels& kernels) {
  if (power == 2.0) return kernels.square_accumulate(values, count);
  for (std::size_t i = 0; i < count; ++i) {
    values[i] = std::pow(values[i], power);
  }
  return kernels.sum(values, count);
}

// Pruning selection, shared verbatim by Prune and the fused iteration:
// keep the `max_per_column` largest of `kept` (already in row order),
// then restore row order.  The exact nth_element/sort call sequence is
// part of the bit-identity contract between the fused and unfused
// paths.
void SelectTopThenSortByRow(
    std::vector<std::pair<double, std::uint32_t>>& kept,
    std::size_t max_per_column) {
  if (kept.size() > max_per_column) {
    std::nth_element(
        kept.begin(),
        kept.begin() + static_cast<std::ptrdiff_t>(max_per_column),
        kept.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    kept.resize(max_per_column);
  }
  std::sort(kept.begin(), kept.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
}

// Variable-length per-column output of one shard's contiguous chunk.
// Chunks ascend with the shard index, so concatenating shard buffers in
// shard order reassembles the matrix in column order — the same bytes
// for every thread count.
struct ShardColumns {
  std::vector<std::uint32_t> rows;
  std::vector<double> values;
  std::vector<std::uint32_t> counts;  // entries per column of the chunk
  std::size_t first_column = 0;
  double max_difference = 0.0;
  bool used = false;
};

}  // namespace

SparseMatrix SparseMatrix::FromTriplets(std::uint32_t n,
                                        std::vector<Triplet> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.col != b.col) return a.col < b.col;
              return a.row < b.row;
            });
  SparseMatrix m(n);
  m.rows_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::uint32_t current_col = 0;
  for (std::size_t i = 0; i < triplets.size();) {
    const Triplet& t = triplets[i];
    while (current_col < t.col) m.col_start_[++current_col] = m.rows_.size();
    double sum = t.value;
    std::size_t j = i + 1;
    while (j < triplets.size() && triplets[j].col == t.col &&
           triplets[j].row == t.row) {
      sum += triplets[j].value;
      ++j;
    }
    m.rows_.push_back(t.row);
    m.values_.push_back(sum);
    i = j;
  }
  while (current_col < n) m.col_start_[++current_col] = m.rows_.size();
  return m;
}

void SparseMatrix::NormalizeColumns(common::ThreadPool* pool) {
  // Columns are contiguous value slices, so the reduction and the
  // divide run through the dispatched simd kernels; the lane-ordered
  // sum is bit-identical in every tier (simd.h contract), so the result
  // depends on neither the thread count nor the dispatched ISA.
  const common::simd::Kernels& kernels = common::simd::Active();
  common::ForEachChunk(
      pool, n_, kColumnGrain, [this, &kernels](common::ChunkRange chunk) {
        for (std::size_t c = chunk.begin; c < chunk.end; ++c) {
          double* column = values_.data() + col_start_[c];
          const std::size_t count = col_start_[c + 1] - col_start_[c];
          const double sum = kernels.sum(column, count);
          if (sum <= 0.0) continue;
          kernels.divide(column, count, sum);
        }
      });
}

void SparseMatrix::Inflate(double power, common::ThreadPool* pool) {
  // Fused per-column pow + renormalize: each column's floating-point
  // operations run in the fixed per-column order of the simd contract,
  // so results cannot depend on the thread count or dispatched tier.
  const common::simd::Kernels& kernels = common::simd::Active();
  common::ForEachChunk(
      pool, n_, kColumnGrain,
      [this, power, &kernels](common::ChunkRange chunk) {
        for (std::size_t c = chunk.begin; c < chunk.end; ++c) {
          double* column = values_.data() + col_start_[c];
          const std::size_t count = col_start_[c + 1] - col_start_[c];
          const double sum = InflateSweep(column, count, power, kernels);
          if (sum <= 0.0) continue;
          kernels.divide(column, count, sum);
        }
      });
}

void SparseMatrix::Prune(double threshold, std::size_t max_per_column,
                         common::ThreadPool* pool) {
  const common::simd::Kernels& kernels = common::simd::Active();
  if (!common::IsParallel(pool)) {
    std::vector<std::size_t> new_start(n_ + 1, 0);
    std::vector<std::uint32_t> new_rows;
    std::vector<double> new_values;
    new_rows.reserve(rows_.size());
    new_values.reserve(values_.size());
    std::vector<std::pair<double, std::uint32_t>> kept;
    for (std::uint32_t c = 0; c < n_; ++c) {
      const std::size_t count = col_start_[c + 1] - col_start_[c];
      kept.resize(count);
      kept.resize(kernels.filter_ge(values_.data() + col_start_[c],
                                    rows_.data() + col_start_[c], count,
                                    threshold, kept.data()));
      SelectTopThenSortByRow(kept, max_per_column);
      for (const auto& [value, row] : kept) {
        new_rows.push_back(row);
        new_values.push_back(value);
      }
      new_start[c + 1] = new_rows.size();
    }
    col_start_ = std::move(new_start);
    rows_ = std::move(new_rows);
    values_ = std::move(new_values);
    NormalizeColumns(pool);
    return;
  }

  // Parallel: each shard prunes its contiguous chunk of columns into
  // one per-shard buffer (per-column contents identical to the serial
  // path above), stitched back in shard = column order.
  common::PerShard<ShardColumns> shards(
      static_cast<std::size_t>(pool->thread_count()));
  pool->ForEachChunk(n_, kColumnGrain, [&](common::ChunkRange chunk) {
    ShardColumns& out = *shards[chunk.shard];
    out.used = true;
    out.first_column = chunk.begin;
    out.counts.reserve(chunk.size());
    std::vector<std::pair<double, std::uint32_t>> kept;
    for (std::size_t c = chunk.begin; c < chunk.end; ++c) {
      const std::size_t count = col_start_[c + 1] - col_start_[c];
      kept.resize(count);
      kept.resize(kernels.filter_ge(values_.data() + col_start_[c],
                                    rows_.data() + col_start_[c], count,
                                    threshold, kept.data()));
      SelectTopThenSortByRow(kept, max_per_column);
      for (const auto& [value, row] : kept) {
        out.rows.push_back(row);
        out.values.push_back(value);
      }
      out.counts.push_back(static_cast<std::uint32_t>(kept.size()));
    }
  });
  std::vector<std::size_t> new_start(n_ + 1, 0);
  std::vector<std::uint32_t> new_rows;
  std::vector<double> new_values;
  std::size_t total = 0;
  for (const auto& shard : shards) {
    if (shard->used) total += shard->rows.size();
  }
  new_rows.reserve(total);
  new_values.reserve(total);
  for (const auto& shard : shards) {
    const ShardColumns& out = *shard;
    if (!out.used) continue;
    for (std::size_t k = 0; k < out.counts.size(); ++k) {
      new_start[out.first_column + k + 1] =
          new_start[out.first_column + k] + out.counts[k];
    }
    new_rows.insert(new_rows.end(), out.rows.begin(), out.rows.end());
    new_values.insert(new_values.end(), out.values.begin(),
                      out.values.end());
  }
  col_start_ = std::move(new_start);
  rows_ = std::move(new_rows);
  values_ = std::move(new_values);
  NormalizeColumns(pool);
}

SparseMatrix SparseMatrix::Multiply(const SparseMatrix& other,
                                    common::ThreadPool* pool) const {
  // result = this * other, column by column: result[:,c] is a linear
  // combination of this's columns selected by other[:,c].  Each output
  // column is computed by exactly one shard with the same accumulation
  // order as the serial loop, so the product is thread-count-invariant.
  SparseMatrix result(n_);
  if (!common::IsParallel(pool)) {
    std::vector<double> accumulator(n_, 0.0);
    std::vector<std::uint32_t> touched;
    for (std::uint32_t c = 0; c < n_; ++c) {
      touched.clear();
      ColumnView oc = other.Column(c);
      for (std::size_t i = 0; i < oc.count; ++i) {
        const std::uint32_t k = oc.rows[i];
        const double w = oc.values[i];
        ColumnView tc = Column(k);
        for (std::size_t j = 0; j < tc.count; ++j) {
          const std::uint32_t r = tc.rows[j];
          if (accumulator[r] == 0.0) touched.push_back(r);
          accumulator[r] += w * tc.values[j];
        }
      }
      std::sort(touched.begin(), touched.end());
      for (std::uint32_t r : touched) {
        result.rows_.push_back(r);
        result.values_.push_back(accumulator[r]);
        accumulator[r] = 0.0;
      }
      result.col_start_[c + 1] = result.rows_.size();
    }
    return result;
  }

  common::PerShard<ShardColumns> shards(
      static_cast<std::size_t>(pool->thread_count()));
  pool->ForEachChunk(n_, kColumnGrain, [&](common::ChunkRange chunk) {
    ShardColumns& out = *shards[chunk.shard];
    out.used = true;
    out.first_column = chunk.begin;
    out.counts.reserve(chunk.size());
    std::vector<double> accumulator(n_, 0.0);
    std::vector<std::uint32_t> touched;
    for (std::size_t c = chunk.begin; c < chunk.end; ++c) {
      touched.clear();
      ColumnView oc = other.Column(static_cast<std::uint32_t>(c));
      for (std::size_t i = 0; i < oc.count; ++i) {
        const std::uint32_t k = oc.rows[i];
        const double w = oc.values[i];
        ColumnView tc = Column(k);
        for (std::size_t j = 0; j < tc.count; ++j) {
          const std::uint32_t r = tc.rows[j];
          if (accumulator[r] == 0.0) touched.push_back(r);
          accumulator[r] += w * tc.values[j];
        }
      }
      std::sort(touched.begin(), touched.end());
      for (std::uint32_t r : touched) {
        out.rows.push_back(r);
        out.values.push_back(accumulator[r]);
        accumulator[r] = 0.0;
      }
      out.counts.push_back(static_cast<std::uint32_t>(touched.size()));
    }
  });
  std::size_t total = 0;
  for (const auto& shard : shards) {
    if (shard->used) total += shard->rows.size();
  }
  result.rows_.reserve(total);
  result.values_.reserve(total);
  for (const auto& shard : shards) {
    const ShardColumns& out = *shard;
    if (!out.used) continue;
    for (std::size_t k = 0; k < out.counts.size(); ++k) {
      result.col_start_[out.first_column + k + 1] =
          result.col_start_[out.first_column + k] + out.counts[k];
    }
    result.rows_.insert(result.rows_.end(), out.rows.begin(),
                        out.rows.end());
    result.values_.insert(result.values_.end(), out.values.begin(),
                          out.values.end());
  }
  return result;
}

SparseMatrix SparseMatrix::MclIterate(double inflation,
                                      double prune_threshold,
                                      std::size_t max_per_column,
                                      common::ThreadPool* pool,
                                      double* max_difference) const {
  // One dispatch per iteration: every column flows through expansion
  // (this × this), inflation, pruning, renormalization and the
  // convergence delta without leaving its shard.  Per column the
  // floating-point operations and their order are exactly those of the
  // Multiply → Inflate → Prune call sequence (see the pinning test in
  // tests/test_sparse.cpp), so the fusion — like the thread count and
  // the dispatched simd tier — cannot change a single bit of the result.
  const common::simd::Kernels& kernels = common::simd::Active();
  SparseMatrix result(n_);
  const std::size_t slots =
      pool != nullptr ? static_cast<std::size_t>(pool->thread_count()) : 1;
  common::PerShard<ShardColumns> shards(slots);
  common::ForEachChunk(pool, n_, kColumnGrain, [&](common::ChunkRange
                                                       chunk) {
    ShardColumns& out = *shards[chunk.shard];
    out.used = true;
    out.first_column = chunk.begin;
    out.counts.reserve(chunk.size());
    std::vector<double> accumulator(n_, 0.0);
    std::vector<std::uint32_t> touched;
    std::vector<double> column;  // SoA scratch: the column, densely packed
    std::vector<std::pair<double, std::uint32_t>> kept;
    double local_max = 0.0;
    for (std::size_t c = chunk.begin; c < chunk.end; ++c) {
      // Expansion: column c of this × this, accumulated in the
      // reference order.
      touched.clear();
      ColumnView oc = Column(static_cast<std::uint32_t>(c));
      for (std::size_t i = 0; i < oc.count; ++i) {
        const std::uint32_t k = oc.rows[i];
        const double w = oc.values[i];
        ColumnView tc = Column(k);
        for (std::size_t j = 0; j < tc.count; ++j) {
          const std::uint32_t r = tc.rows[j];
          if (accumulator[r] == 0.0) touched.push_back(r);
          accumulator[r] += w * tc.values[j];
        }
      }
      std::sort(touched.begin(), touched.end());
      // Gather the column out of the n-sized accumulator into a densely
      // packed value array (clearing the accumulator in the same pass —
      // it must be all-zeros when the next column starts).  From here on
      // every stage is a contiguous sweep over `column` instead of a
      // gather/scatter through accumulator[r]: same floating-point
      // operations on the same values in the same (row-ascending) order,
      // so the fusion contract is untouched, but the loops now walk
      // cache lines linearly and vectorize.
      const std::size_t touched_count = touched.size();
      column.resize(touched_count);
      for (std::size_t t = 0; t < touched_count; ++t) {
        const std::uint32_t r = touched[t];
        column[t] = accumulator[r];
        accumulator[r] = 0.0;
      }
      // Inflation sweep (vector kernel): pow every entry in row order,
      // then normalize (columns summing to zero stay unnormalized, as
      // in Inflate).
      const double sum =
          InflateSweep(column.data(), touched_count, inflation, kernels);
      if (sum > 0.0) {
        kernels.divide(column.data(), touched_count, sum);
      }
      // Pruning (vector compare + compaction) + renormalization over
      // the kept entries.  The kept sum reduces through LaneAccumulator
      // — the same fixed order NormalizeColumns' kernel uses over the
      // pruned column in the unfused path.
      kept.resize(touched_count);
      kept.resize(kernels.filter_ge(column.data(), touched.data(),
                                    touched_count, prune_threshold,
                                    kept.data()));
      SelectTopThenSortByRow(kept, max_per_column);
      common::simd::LaneAccumulator kept_acc;
      for (std::size_t t = 0; t < kept.size(); ++t) {
        kept_acc.Add(t, kept[t].first);
      }
      const double kept_sum = kept_acc.Combine();
      if (kept_sum > 0.0) {
        for (auto& [value, row] : kept) value /= kept_sum;
      }
      // Convergence delta against the pre-iteration column, merged on
      // the union of supports exactly as MaxDifference does.
      ColumnView before = Column(static_cast<std::uint32_t>(c));
      std::size_t i = 0, j = 0;
      while (i < kept.size() || j < before.count) {
        if (j >= before.count ||
            (i < kept.size() && kept[i].second < before.rows[j])) {
          local_max = std::max(local_max, std::abs(kept[i].first));
          ++i;
        } else if (i >= kept.size() || before.rows[j] < kept[i].second) {
          local_max = std::max(local_max, std::abs(before.values[j]));
          ++j;
        } else {
          local_max =
              std::max(local_max, std::abs(kept[i].first - before.values[j]));
          ++i;
          ++j;
        }
      }
      // Emit and reset the accumulator for the next column.
      for (const auto& [value, row] : kept) {
        out.rows.push_back(row);
        out.values.push_back(value);
      }
      out.counts.push_back(static_cast<std::uint32_t>(kept.size()));
    }
    out.max_difference = local_max;
  });

  std::size_t total = 0;
  for (const auto& shard : shards) {
    if (shard->used) total += shard->rows.size();
  }
  result.rows_.reserve(total);
  result.values_.reserve(total);
  double delta = 0.0;
  for (const auto& shard : shards) {
    const ShardColumns& out = *shard;
    if (!out.used) continue;
    for (std::size_t k = 0; k < out.counts.size(); ++k) {
      result.col_start_[out.first_column + k + 1] =
          result.col_start_[out.first_column + k] + out.counts[k];
    }
    result.rows_.insert(result.rows_.end(), out.rows.begin(),
                        out.rows.end());
    result.values_.insert(result.values_.end(), out.values.begin(),
                          out.values.end());
    delta = std::max(delta, out.max_difference);
  }
  if (max_difference != nullptr) *max_difference = delta;
  return result;
}

double SparseMatrix::Chaos() const {
  // For each column: max - sum-of-squares; the global chaos is the max.
  double chaos = 0.0;
  for (std::uint32_t c = 0; c < n_; ++c) {
    ColumnView col = Column(c);
    double max_v = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < col.count; ++i) {
      max_v = std::max(max_v, col.values[i]);
      sum_sq += col.values[i] * col.values[i];
    }
    chaos = std::max(chaos, max_v - sum_sq);
  }
  return chaos;
}

double SparseMatrix::MaxDifference(const SparseMatrix& other) const {
  double diff = 0.0;
  for (std::uint32_t c = 0; c < n_; ++c) {
    ColumnView a = Column(c);
    ColumnView b = other.Column(c);
    std::size_t i = 0, j = 0;
    while (i < a.count || j < b.count) {
      if (j >= b.count || (i < a.count && a.rows[i] < b.rows[j])) {
        diff = std::max(diff, std::abs(a.values[i]));
        ++i;
      } else if (i >= a.count || b.rows[j] < a.rows[i]) {
        diff = std::max(diff, std::abs(b.values[j]));
        ++j;
      } else {
        diff = std::max(diff, std::abs(a.values[i] - b.values[j]));
        ++i;
        ++j;
      }
    }
  }
  return diff;
}

}  // namespace hobbit::cluster
