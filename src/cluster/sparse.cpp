#include "cluster/sparse.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/parallel.h"

namespace hobbit::cluster {
namespace {

bool IsParallel(common::ThreadPool* pool) {
  return pool != nullptr && pool->thread_count() > 1;
}

}  // namespace

SparseMatrix SparseMatrix::FromTriplets(std::uint32_t n,
                                        std::vector<Triplet> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.col != b.col) return a.col < b.col;
              return a.row < b.row;
            });
  SparseMatrix m(n);
  m.rows_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::uint32_t current_col = 0;
  for (std::size_t i = 0; i < triplets.size();) {
    const Triplet& t = triplets[i];
    while (current_col < t.col) m.col_start_[++current_col] = m.rows_.size();
    double sum = t.value;
    std::size_t j = i + 1;
    while (j < triplets.size() && triplets[j].col == t.col &&
           triplets[j].row == t.row) {
      sum += triplets[j].value;
      ++j;
    }
    m.rows_.push_back(t.row);
    m.values_.push_back(sum);
    i = j;
  }
  while (current_col < n) m.col_start_[++current_col] = m.rows_.size();
  return m;
}

void SparseMatrix::NormalizeColumns(common::ThreadPool* pool) {
  common::ForEach(pool, n_, [this](std::size_t c) {
    double sum = 0.0;
    for (std::size_t i = col_start_[c]; i < col_start_[c + 1]; ++i) {
      sum += values_[i];
    }
    if (sum <= 0.0) return;
    for (std::size_t i = col_start_[c]; i < col_start_[c + 1]; ++i) {
      values_[i] /= sum;
    }
  });
}

void SparseMatrix::Inflate(double power, common::ThreadPool* pool) {
  // Fused per-column pow + renormalize: each column's floating-point
  // operations run in the same order as the serial pow-then-normalize,
  // so results cannot depend on the thread count.
  common::ForEach(pool, n_, [this, power](std::size_t c) {
    double sum = 0.0;
    for (std::size_t i = col_start_[c]; i < col_start_[c + 1]; ++i) {
      values_[i] = std::pow(values_[i], power);
      sum += values_[i];
    }
    if (sum <= 0.0) return;
    for (std::size_t i = col_start_[c]; i < col_start_[c + 1]; ++i) {
      values_[i] /= sum;
    }
  });
}

void SparseMatrix::Prune(double threshold, std::size_t max_per_column,
                         common::ThreadPool* pool) {
  if (!IsParallel(pool)) {
    std::vector<std::size_t> new_start(n_ + 1, 0);
    std::vector<std::uint32_t> new_rows;
    std::vector<double> new_values;
    new_rows.reserve(rows_.size());
    new_values.reserve(values_.size());
    std::vector<std::pair<double, std::uint32_t>> kept;
    for (std::uint32_t c = 0; c < n_; ++c) {
      kept.clear();
      for (std::size_t i = col_start_[c]; i < col_start_[c + 1]; ++i) {
        if (values_[i] >= threshold) kept.emplace_back(values_[i], rows_[i]);
      }
      if (kept.size() > max_per_column) {
        std::nth_element(kept.begin(),
                         kept.begin() + static_cast<std::ptrdiff_t>(
                                            max_per_column),
                         kept.end(),
                         [](const auto& a, const auto& b) {
                           return a.first > b.first;
                         });
        kept.resize(max_per_column);
      }
      std::sort(kept.begin(), kept.end(), [](const auto& a, const auto& b) {
        return a.second < b.second;
      });
      for (const auto& [value, row] : kept) {
        new_rows.push_back(row);
        new_values.push_back(value);
      }
      new_start[c + 1] = new_rows.size();
    }
    col_start_ = std::move(new_start);
    rows_ = std::move(new_rows);
    values_ = std::move(new_values);
    NormalizeColumns(pool);
    return;
  }

  // Parallel: prune each column into its own buffer (per-shard scratch for
  // the selection), then stitch serially in column order — the per-column
  // contents are identical to the serial path above.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> kept_by_col(n_);
  pool->ForEachShard(n_, [&](std::size_t shard, std::size_t shard_count) {
    std::vector<std::pair<double, std::uint32_t>> kept;
    for (std::size_t c = shard; c < n_; c += shard_count) {
      kept.clear();
      for (std::size_t i = col_start_[c]; i < col_start_[c + 1]; ++i) {
        if (values_[i] >= threshold) kept.emplace_back(values_[i], rows_[i]);
      }
      if (kept.size() > max_per_column) {
        std::nth_element(kept.begin(),
                         kept.begin() + static_cast<std::ptrdiff_t>(
                                            max_per_column),
                         kept.end(),
                         [](const auto& a, const auto& b) {
                           return a.first > b.first;
                         });
        kept.resize(max_per_column);
      }
      std::sort(kept.begin(), kept.end(), [](const auto& a, const auto& b) {
        return a.second < b.second;
      });
      auto& column = kept_by_col[c];
      column.reserve(kept.size());
      for (const auto& [value, row] : kept) column.emplace_back(row, value);
    }
  });
  std::vector<std::size_t> new_start(n_ + 1, 0);
  std::vector<std::uint32_t> new_rows;
  std::vector<double> new_values;
  new_rows.reserve(rows_.size());
  new_values.reserve(values_.size());
  for (std::uint32_t c = 0; c < n_; ++c) {
    for (const auto& [row, value] : kept_by_col[c]) {
      new_rows.push_back(row);
      new_values.push_back(value);
    }
    new_start[c + 1] = new_rows.size();
  }
  col_start_ = std::move(new_start);
  rows_ = std::move(new_rows);
  values_ = std::move(new_values);
  NormalizeColumns(pool);
}

SparseMatrix SparseMatrix::Multiply(const SparseMatrix& other,
                                    common::ThreadPool* pool) const {
  // result = this * other, column by column: result[:,c] is a linear
  // combination of this's columns selected by other[:,c].  Each output
  // column is computed by exactly one shard with the same accumulation
  // order as the serial loop, so the product is thread-count-invariant.
  SparseMatrix result(n_);
  if (!IsParallel(pool)) {
    std::vector<double> accumulator(n_, 0.0);
    std::vector<std::uint32_t> touched;
    for (std::uint32_t c = 0; c < n_; ++c) {
      touched.clear();
      ColumnView oc = other.Column(c);
      for (std::size_t i = 0; i < oc.count; ++i) {
        const std::uint32_t k = oc.rows[i];
        const double w = oc.values[i];
        ColumnView tc = Column(k);
        for (std::size_t j = 0; j < tc.count; ++j) {
          const std::uint32_t r = tc.rows[j];
          if (accumulator[r] == 0.0) touched.push_back(r);
          accumulator[r] += w * tc.values[j];
        }
      }
      std::sort(touched.begin(), touched.end());
      for (std::uint32_t r : touched) {
        result.rows_.push_back(r);
        result.values_.push_back(accumulator[r]);
        accumulator[r] = 0.0;
      }
      result.col_start_[c + 1] = result.rows_.size();
    }
    return result;
  }

  std::vector<std::vector<std::uint32_t>> rows_by_col(n_);
  std::vector<std::vector<double>> values_by_col(n_);
  pool->ForEachShard(n_, [&](std::size_t shard, std::size_t shard_count) {
    std::vector<double> accumulator(n_, 0.0);
    std::vector<std::uint32_t> touched;
    for (std::size_t c = shard; c < n_; c += shard_count) {
      touched.clear();
      ColumnView oc = other.Column(static_cast<std::uint32_t>(c));
      for (std::size_t i = 0; i < oc.count; ++i) {
        const std::uint32_t k = oc.rows[i];
        const double w = oc.values[i];
        ColumnView tc = Column(k);
        for (std::size_t j = 0; j < tc.count; ++j) {
          const std::uint32_t r = tc.rows[j];
          if (accumulator[r] == 0.0) touched.push_back(r);
          accumulator[r] += w * tc.values[j];
        }
      }
      std::sort(touched.begin(), touched.end());
      auto& out_rows = rows_by_col[c];
      auto& out_values = values_by_col[c];
      out_rows.reserve(touched.size());
      out_values.reserve(touched.size());
      for (std::uint32_t r : touched) {
        out_rows.push_back(r);
        out_values.push_back(accumulator[r]);
        accumulator[r] = 0.0;
      }
    }
  });
  std::size_t total = 0;
  for (const auto& column : rows_by_col) total += column.size();
  result.rows_.reserve(total);
  result.values_.reserve(total);
  for (std::uint32_t c = 0; c < n_; ++c) {
    result.rows_.insert(result.rows_.end(), rows_by_col[c].begin(),
                        rows_by_col[c].end());
    result.values_.insert(result.values_.end(), values_by_col[c].begin(),
                          values_by_col[c].end());
    result.col_start_[c + 1] = result.rows_.size();
  }
  return result;
}

double SparseMatrix::Chaos() const {
  // For each column: max - sum-of-squares; the global chaos is the max.
  double chaos = 0.0;
  for (std::uint32_t c = 0; c < n_; ++c) {
    ColumnView col = Column(c);
    double max_v = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < col.count; ++i) {
      max_v = std::max(max_v, col.values[i]);
      sum_sq += col.values[i] * col.values[i];
    }
    chaos = std::max(chaos, max_v - sum_sq);
  }
  return chaos;
}

double SparseMatrix::MaxDifference(const SparseMatrix& other) const {
  double diff = 0.0;
  for (std::uint32_t c = 0; c < n_; ++c) {
    ColumnView a = Column(c);
    ColumnView b = other.Column(c);
    std::size_t i = 0, j = 0;
    while (i < a.count || j < b.count) {
      if (j >= b.count || (i < a.count && a.rows[i] < b.rows[j])) {
        diff = std::max(diff, std::abs(a.values[i]));
        ++i;
      } else if (i >= a.count || b.rows[j] < a.rows[i]) {
        diff = std::max(diff, std::abs(b.values[j]));
        ++j;
      } else {
        diff = std::max(diff, std::abs(a.values[i] - b.values[j]));
        ++i;
        ++j;
      }
    }
  }
  return diff;
}

}  // namespace hobbit::cluster
