// sparse.h — compressed-sparse-column matrices for the Markov Cluster
// algorithm.
//
// MCL interprets a graph as a column-stochastic matrix and alternates
// expansion (matrix squaring — flow spreads) with inflation (entry-wise
// powering — flow sharpens).  Everything here is column-oriented because
// both normalisation and pruning operate per column.
// All mutating operations optionally take a `common::ThreadPool*`; work is
// sharded *by column*, and every column's floating-point operations happen
// in the same order regardless of the thread count, so parallel results
// are bit-identical to serial ones (see src/common/parallel.h for the
// sharding contract).
#pragma once

#include <cstdint>
#include <vector>

namespace hobbit::common {
class ThreadPool;
}

namespace hobbit::cluster {

/// A square sparse matrix in CSC layout.  Entries within a column are
/// sorted by row index; explicit zeros are never stored.
class SparseMatrix {
 public:
  explicit SparseMatrix(std::uint32_t n) : col_start_(n + 1, 0), n_(n) {}

  /// Builds from triplets (duplicates summed).  Triplets may arrive in any
  /// order.
  struct Triplet {
    std::uint32_t row;
    std::uint32_t col;
    double value;
  };
  static SparseMatrix FromTriplets(std::uint32_t n,
                                   std::vector<Triplet> triplets);

  std::uint32_t size() const { return n_; }
  std::size_t nonzeros() const { return rows_.size(); }

  /// Iteration over one column.
  struct ColumnView {
    const std::uint32_t* rows;
    const double* values;
    std::size_t count;
  };
  ColumnView Column(std::uint32_t col) const {
    return {rows_.data() + col_start_[col], values_.data() + col_start_[col],
            col_start_[col + 1] - col_start_[col]};
  }

  /// Scales every column to sum 1 (columns with zero sum are left empty).
  void NormalizeColumns(common::ThreadPool* pool = nullptr);

  /// Raises each entry to `power`, then renormalizes columns.
  void Inflate(double power, common::ThreadPool* pool = nullptr);

  /// Drops entries below `threshold` and keeps at most `max_per_column`
  /// largest entries per column, then renormalizes.  This is the pruning
  /// that keeps MCL's iterates sparse.
  void Prune(double threshold, std::size_t max_per_column,
             common::ThreadPool* pool = nullptr);

  /// this × other (both column-stochastic n×n); returns the product.
  SparseMatrix Multiply(const SparseMatrix& other,
                        common::ThreadPool* pool = nullptr) const;

  /// One fused MCL iteration: expansion (this × this), inflation,
  /// pruning and column renormalization in a single parallel dispatch —
  /// bit-identical to the Multiply/Inflate/Prune call sequence (each
  /// output column's floating-point operations run in exactly the
  /// reference order), but with one pool wake-up per iteration instead
  /// of one per kernel and per-shard contiguous output buffers instead
  /// of per-column allocations.  After expansion each column is gathered
  /// into a densely packed value array, so inflation, normalization and
  /// pruning are contiguous (vectorizable) sweeps rather than scatters
  /// through an n-sized accumulator.  When `max_difference` is non-null
  /// it receives MaxDifference(result, *this), computed on the fly.
  SparseMatrix MclIterate(double inflation, double prune_threshold,
                          std::size_t max_per_column,
                          common::ThreadPool* pool = nullptr,
                          double* max_difference = nullptr) const;

  /// Sum over columns of max(column) - used in MCL's chaos convergence
  /// measure; a converged (idempotent) column has chaos ~ 0.
  double Chaos() const;

  /// Maximum absolute entry-wise difference against `other` on the union
  /// of their supports.
  double MaxDifference(const SparseMatrix& other) const;

 private:
  std::vector<std::size_t> col_start_;
  std::vector<std::uint32_t> rows_;
  std::vector<double> values_;
  std::uint32_t n_;
};

}  // namespace hobbit::cluster
