// components.h — union-find and connected components.
//
// §6.3 splits the similarity graph into connected components before
// clustering: MCL's cubic time and quadratic space make per-component runs
// essential at 0.5M vertices, and unreachable vertices never cluster
// together anyway.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "cluster/mcl.h"

namespace hobbit::cluster {

/// Plain disjoint-set union with path halving and size union.
class UnionFind {
 public:
  explicit UnionFind(std::uint32_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::uint32_t Find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns true when the two sets were distinct.
  bool Union(std::uint32_t a, std::uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  std::uint32_t SizeOf(std::uint32_t x) { return size_[Find(x)]; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

/// One connected component of a Graph, with vertex ids remapped to
/// [0, vertices.size()) so MCL can run on it directly.
struct Component {
  std::vector<std::uint32_t> vertices;  ///< original vertex ids
  Graph graph;                          ///< edges in local ids
};

/// Splits a graph into its connected components (isolated vertices come
/// back as single-vertex components).
std::vector<Component> SplitComponents(const Graph& graph);

}  // namespace hobbit::cluster
