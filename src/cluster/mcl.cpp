#include "cluster/mcl.h"

#include <algorithm>
#include <numeric>

#include "cluster/sparse.h"
#include "common/parallel.h"

namespace hobbit::cluster {
namespace {

SparseMatrix BuildTransitionMatrix(const Graph& graph,
                                   const MclParams& params) {
  std::vector<SparseMatrix::Triplet> triplets;
  triplets.reserve(graph.edges.size() * 2 + graph.vertex_count);
  for (const Graph::Edge& e : graph.edges) {
    if (e.a == e.b) continue;
    triplets.push_back({e.a, e.b, e.weight});
    triplets.push_back({e.b, e.a, e.weight});
  }
  for (std::uint32_t v = 0; v < graph.vertex_count; ++v) {
    triplets.push_back({v, v, params.self_loop});
  }
  SparseMatrix m = SparseMatrix::FromTriplets(graph.vertex_count,
                                              std::move(triplets));
  m.NormalizeColumns();
  return m;
}

/// Reads clusters off a converged matrix: vertex v belongs with the
/// attractor(s) its column flows to; weakly-connected components of the
/// "v -> argmax-row(column v)" structure give the clusters.
std::vector<std::vector<std::uint32_t>> Interpret(const SparseMatrix& m) {
  const std::uint32_t n = m.size();
  // Union-find over attractor assignment.
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<std::uint32_t> stack;
  auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[a] = b;
  };
  for (std::uint32_t c = 0; c < n; ++c) {
    SparseMatrix::ColumnView col = m.Column(c);
    // Union with every row the column still flows to (the converged
    // support is within one cluster).
    for (std::size_t i = 0; i < col.count; ++i) {
      if (col.values[i] > 1e-7) unite(c, col.rows[i]);
    }
  }
  std::vector<std::vector<std::uint32_t>> clusters;
  std::vector<std::int64_t> cluster_of(n, -1);
  for (std::uint32_t v = 0; v < n; ++v) {
    std::uint32_t root = find(v);
    if (cluster_of[root] < 0) {
      cluster_of[root] = static_cast<std::int64_t>(clusters.size());
      clusters.emplace_back();
    }
    clusters[static_cast<std::size_t>(cluster_of[root])].push_back(v);
  }
  return clusters;
}

}  // namespace

MclResult RunMcl(const Graph& graph, const MclParams& params) {
  MclResult result;
  if (graph.vertex_count == 0) return result;
  // One pool for the whole run, reused across iterations (worker threads
  // persist); an externally shared pool takes precedence.
  common::PoolRef pool(params.pool, params.threads);
  SparseMatrix m = BuildTransitionMatrix(graph, params);
  for (int iteration = 0; iteration < params.max_iterations; ++iteration) {
    // Expansion, inflation, pruning, renormalization and the
    // convergence delta, fused into a single pool dispatch —
    // bit-identical to the Multiply/Inflate/Prune sequence it replaced
    // (pinned by tests/test_sparse.cpp and test_mcl.cpp).
    double delta = 0.0;
    m = m.MclIterate(params.inflation, params.prune_threshold,
                     params.max_entries_per_column, pool.get(), &delta);
    result.iterations = iteration + 1;
    if (delta < params.epsilon) break;
  }
  result.clusters = Interpret(m);
  return result;
}

SweepOutcome SweepInflation(const Graph& graph,
                            std::span<const double> candidates,
                            const MclParams& base_params) {
  SweepOutcome outcome;
  if (graph.edges.empty()) return outcome;

  // Median of all edge weights.
  std::vector<double> weights;
  weights.reserve(graph.edges.size());
  for (const Graph::Edge& e : graph.edges) weights.push_back(e.weight);
  auto mid = weights.begin() +
             static_cast<std::ptrdiff_t>(weights.size() / 2);
  std::nth_element(weights.begin(), mid, weights.end());
  const double median = *mid;

  bool first = true;
  for (double inflation : candidates) {
    MclParams params = base_params;
    params.inflation = inflation;
    MclResult mcl = RunMcl(graph, params);
    // Map vertex -> cluster.
    std::vector<std::uint32_t> cluster_of(graph.vertex_count, 0);
    for (std::uint32_t c = 0; c < mcl.clusters.size(); ++c) {
      for (std::uint32_t v : mcl.clusters[c]) cluster_of[v] = c;
    }
    std::size_t intra = 0;
    std::size_t intra_bad = 0;
    for (const Graph::Edge& e : graph.edges) {
      if (cluster_of[e.a] != cluster_of[e.b]) continue;
      ++intra;
      if (e.weight < median) ++intra_bad;
    }
    const double ratio =
        intra == 0 ? 1.0 : static_cast<double>(intra_bad) / intra;
    outcome.tried.emplace_back(inflation, ratio);
    if (first || ratio < outcome.best_bad_edge_ratio) {
      outcome.best_bad_edge_ratio = ratio;
      outcome.best_inflation = inflation;
      first = false;
    }
  }
  return outcome;
}

}  // namespace hobbit::cluster
