#include "cluster/blockio.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

namespace hobbit::cluster {
namespace {

/// Splits a comma-separated field; empty input gives an empty list.
std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      if (start < text.size()) out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool Fail(std::string* error, int line, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + message;
  }
  return false;
}

}  // namespace

void WriteBlocks(std::ostream& os, std::span<const AggregateBlock> blocks) {
  os << "HobbitBlocks v1\n";
  os << "# " << blocks.size() << " blocks\n";
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const AggregateBlock& block = blocks[i];
    os << "B" << i << " hops=";
    for (std::size_t h = 0; h < block.last_hops.size(); ++h) {
      if (h > 0) os << ',';
      os << block.last_hops[h].ToString();
    }
    os << " members=";
    for (std::size_t m = 0; m < block.member_24s.size(); ++m) {
      if (m > 0) os << ',';
      os << block.member_24s[m].ToString();
    }
    os << "\n";
  }
}

std::optional<std::vector<AggregateBlock>> ReadBlocks(std::istream& is,
                                                      std::string* error) {
  std::vector<AggregateBlock> blocks;
  std::string line;
  int line_number = 0;
  bool saw_header = false;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != "HobbitBlocks v1") {
        Fail(error, line_number, "missing 'HobbitBlocks v1' header");
        return std::nullopt;
      }
      saw_header = true;
      continue;
    }
    std::istringstream fields(line);
    std::string id, hops_field, members_field;
    fields >> id >> hops_field >> members_field;
    if (id.empty() || id[0] != 'B' ||
        hops_field.rfind("hops=", 0) != 0 ||
        members_field.rfind("members=", 0) != 0) {
      Fail(error, line_number, "malformed record: " + line);
      return std::nullopt;
    }
    AggregateBlock block;
    for (const std::string& hop : SplitCommas(hops_field.substr(5))) {
      auto address = netsim::Ipv4Address::Parse(hop);
      if (!address) {
        Fail(error, line_number, "bad last-hop address: " + hop);
        return std::nullopt;
      }
      block.last_hops.push_back(*address);
    }
    for (const std::string& member : SplitCommas(members_field.substr(8))) {
      auto prefix = netsim::Prefix::Parse(member);
      if (!prefix || prefix->length() != 24) {
        Fail(error, line_number, "bad member /24: " + member);
        return std::nullopt;
      }
      block.member_24s.push_back(*prefix);
    }
    if (block.member_24s.empty()) {
      Fail(error, line_number, "block without members");
      return std::nullopt;
    }
    std::sort(block.last_hops.begin(), block.last_hops.end());
    std::sort(block.member_24s.begin(), block.member_24s.end());
    blocks.push_back(std::move(block));
  }
  if (!saw_header) {
    Fail(error, line_number, "empty input");
    return std::nullopt;
  }
  return blocks;
}

BlockIndex::BlockIndex(std::span<const AggregateBlock> blocks) {
  std::vector<std::pair<std::uint32_t, int>> entries;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (const netsim::Prefix& p : blocks[b].member_24s) {
      entries.emplace_back(p.base().value(), static_cast<int>(b));
    }
  }
  std::sort(entries.begin(), entries.end());
  keys_.reserve(entries.size());
  ids_.reserve(entries.size());
  for (const auto& [key, id] : entries) {
    keys_.push_back(key);
    ids_.push_back(id);
  }
}

int BlockIndex::BlockOf(const netsim::Prefix& slash24) const {
  if (slash24.length() != 24) return -1;
  return BlockOf(slash24.base());
}

int BlockIndex::BlockOf(netsim::Ipv4Address address) const {
  const std::uint32_t key = address.value() & 0xFFFFFF00u;
  auto pos = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (pos == keys_.end() || *pos != key) return -1;
  return ids_[static_cast<std::size_t>(pos - keys_.begin())];
}

}  // namespace hobbit::cluster
