#include "cluster/components.h"

#include <algorithm>

namespace hobbit::cluster {

std::vector<Component> SplitComponents(const Graph& graph) {
  UnionFind uf(graph.vertex_count);
  for (const Graph::Edge& e : graph.edges) uf.Union(e.a, e.b);

  // Map each root to a dense component index.
  std::vector<std::int64_t> component_of(graph.vertex_count, -1);
  std::vector<Component> components;
  for (std::uint32_t v = 0; v < graph.vertex_count; ++v) {
    std::uint32_t root = uf.Find(v);
    if (component_of[root] < 0) {
      component_of[root] = static_cast<std::int64_t>(components.size());
      components.emplace_back();
    }
    component_of[v] = component_of[root];
  }

  // Local vertex ids, in increasing original id per component.
  std::vector<std::uint32_t> local_id(graph.vertex_count);
  for (std::uint32_t v = 0; v < graph.vertex_count; ++v) {
    Component& comp =
        components[static_cast<std::size_t>(component_of[v])];
    local_id[v] = static_cast<std::uint32_t>(comp.vertices.size());
    comp.vertices.push_back(v);
  }
  for (Component& comp : components) {
    comp.graph.vertex_count =
        static_cast<std::uint32_t>(comp.vertices.size());
  }
  for (const Graph::Edge& e : graph.edges) {
    Component& comp =
        components[static_cast<std::size_t>(component_of[e.a])];
    comp.graph.edges.push_back({local_id[e.a], local_id[e.b], e.weight});
  }
  return components;
}

}  // namespace hobbit::cluster
