// aggregate.h — building homogeneous blocks larger than /24.
//
// Stage 1 (§5): merge measured /24s whose observed last-hop router sets
// are *identical* — the all-or-nothing aggregation behind Figure 5 and
// Table 5.
//
// Stage 2 (§6): /24s that are truly colocated can still show overlapping
// but non-identical sets when some load-balanced last hops were never
// sampled (few responsive addresses).  Model aggregates as vertices of a
// similarity graph, split into connected components, cluster with MCL
// (inflation chosen by the paper's bad-edge sweep), then *validate*
// clusters by reprobing member pairs with the exhaustive strategy.  An
// experimental rule over the within-cluster similarity distribution
// (§6.6) predicts which clusters validation will confirm.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/mcl.h"
#include "hobbit/pipeline.h"
#include "hobbit/types.h"
#include "netsim/internet.h"
#include "netsim/ipv4.h"
#include "probing/zmap.h"

namespace hobbit::cluster {

/// One aggregated homogeneous block: a set of /24s sharing one last-hop
/// router set.
struct AggregateBlock {
  std::vector<netsim::Prefix> member_24s;        // sorted
  std::vector<netsim::Ipv4Address> last_hops;    // sorted, the shared set
};

/// §5.1: groups homogeneous /24s by identical last-hop sets.  Aggregates
/// come back sorted by descending member count (ties by first prefix).
std::vector<AggregateBlock> AggregateIdentical(
    std::span<const core::BlockResult* const> homogeneous_blocks);

/// §6.3: the similarity graph.  Vertices are aggregates; an edge connects
/// two aggregates with overlapping last-hop sets, weighted
/// |A ∩ B| / max(|A|, |B|).  (Weight-1 edges cannot occur: identical sets
/// were already merged.)  Edge generation shards over vertices on `pool`;
/// the edge list comes back sorted by (a, b) regardless of thread count.
///
/// The production path routes candidate generation through a flat sorted
/// (router, vertex) inverted index and accumulates each shard's edges in
/// an arena-backed segment chain (common/arena.h) — no per-bucket heap
/// vectors, no reallocation copies while edges grow.  Identical output
/// to the reference below, pinned by tests and the bench gate.
Graph BuildSimilarityGraph(std::span<const AggregateBlock> aggregates,
                           common::ThreadPool* pool = nullptr);

/// The original hash-map + std::vector implementation, kept as the
/// differential reference for BuildSimilarityGraph (tests and
/// bench_pipeline_scaling compare edges element-for-element).
Graph BuildSimilarityGraphReference(std::span<const AggregateBlock> aggregates,
                                    common::ThreadPool* pool = nullptr);

/// §6.6: the experimental rule.  Looks at the distribution of pairwise
/// /24-level similarity inside a cluster (within-aggregate pairs count as
/// similarity 1) and matches clusters whose mass sits high.
struct RuleParams {
  /// A /24 pair counts as "high similarity" at or above this score.
  double high_similarity = 0.6;
  /// Required fraction of high-similarity pairs.
  double min_fraction_high = 0.65;
  /// Every aggregate pair must overlap at least this much — one weakly
  /// attached member disqualifies the cluster (transitive MCL merges of
  /// genuinely different gateway sets typically contain such a pair).
  double min_pair_similarity = 0.25;
};

/// One MCL cluster of aggregates, plus validation state.
struct ClusterInfo {
  std::vector<std::uint32_t> aggregate_ids;  ///< >= 2 members
  bool matches_rule = false;
  /// Reprobe outcome: ratio of sampled /24 pairs with identical reprobed
  /// last-hop sets (Fig 9); negative until validated.
  double identical_pair_ratio = -1.0;
  bool validated_homogeneous = false;
};

struct MclAggregationParams {
  std::vector<double> inflation_candidates = {1.4, 1.6, 2.0, 2.6, 3.2, 4.0};
  MclParams mcl;
  RuleParams rule;
};

struct MclAggregationResult {
  std::vector<ClusterInfo> clusters;          ///< nontrivial clusters
  std::vector<std::uint32_t> unclustered;     ///< singleton aggregates
  double chosen_inflation = 2.0;
  std::size_t component_count = 0;
};

/// Runs preprocessing (components) + inflation sweep + MCL + rule.
MclAggregationResult RunMclAggregation(
    std::span<const AggregateBlock> aggregates,
    const MclAggregationParams& params = {});

/// §6.5: validates clusters by reprobing sampled member-/24 pairs with the
/// exhaustive strategy.  Fills identical_pair_ratio and
/// validated_homogeneous on every cluster.  `study_blocks` must be the
/// pipeline's sorted snapshot records (reprobing needs the active-address
/// lists).
struct ValidationParams {
  std::size_t max_pairs_per_cluster = 64;
  std::uint64_t seed = 99;
  /// Worker threads for per-cluster reprobing.  Every cluster draws its
  /// pair sample from an RNG forked from (seed, cluster index), so the
  /// outcome is bit-identical for any thread count.  Ignored when `pool`
  /// is set.
  int threads = 1;
  /// Optional externally owned pool shared across pipeline stages.
  common::ThreadPool* pool = nullptr;
};
void ValidateClusters(const netsim::Internet& internet,
                      std::span<const probing::ZmapBlock> study_blocks,
                      std::span<const AggregateBlock> aggregates,
                      MclAggregationResult& result,
                      const ValidationParams& params = {});

/// Final §6.6 merge: validated clusters collapse into one block each;
/// everything else carries over unchanged.  Returns the final block list,
/// sorted by descending size.
std::vector<AggregateBlock> MergeValidatedClusters(
    std::span<const AggregateBlock> aggregates,
    const MclAggregationResult& result);

}  // namespace hobbit::cluster
