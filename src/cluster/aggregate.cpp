#include "cluster/aggregate.h"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

#include "cluster/components.h"
#include "common/arena.h"
#include "common/parallel.h"
#include "netsim/rng.h"

namespace hobbit::cluster {
namespace {

double Similarity(const std::vector<netsim::Ipv4Address>& a,
                  const std::vector<netsim::Ipv4Address>& b) {
  // Both sorted; intersection by merge.
  std::size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  const std::size_t denom = std::max(a.size(), b.size());
  return denom == 0 ? 0.0 : static_cast<double>(common) / denom;
}

}  // namespace

std::vector<AggregateBlock> AggregateIdentical(
    std::span<const core::BlockResult* const> homogeneous_blocks) {
  // Key aggregates by their exact last-hop set.
  std::map<std::vector<netsim::Ipv4Address>, std::vector<netsim::Prefix>>
      groups;
  for (const core::BlockResult* block : homogeneous_blocks) {
    if (block->last_hop_set.empty()) continue;
    groups[block->last_hop_set].push_back(block->prefix);
  }
  std::vector<AggregateBlock> aggregates;
  aggregates.reserve(groups.size());
  for (auto& [set, members] : groups) {
    AggregateBlock aggregate;
    aggregate.last_hops = set;
    std::sort(members.begin(), members.end());
    aggregate.member_24s = std::move(members);
    aggregates.push_back(std::move(aggregate));
  }
  std::sort(aggregates.begin(), aggregates.end(),
            [](const AggregateBlock& a, const AggregateBlock& b) {
              if (a.member_24s.size() != b.member_24s.size()) {
                return a.member_24s.size() > b.member_24s.size();
              }
              return a.member_24s.front() < b.member_24s.front();
            });
  return aggregates;
}

Graph BuildSimilarityGraph(std::span<const AggregateBlock> aggregates,
                           common::ThreadPool* pool) {
  Graph graph;
  graph.vertex_count = static_cast<std::uint32_t>(aggregates.size());
  // Flat inverted index: one (router, vertex) pair per membership,
  // sorted by router then vertex.  A router's bucket is then one
  // contiguous, vertex-ascending run found by binary search — the same
  // candidates the hash-map reference produces, without per-bucket heap
  // vectors or hashing on the query path.
  std::size_t memberships = 0;
  for (const AggregateBlock& aggregate : aggregates) {
    memberships += aggregate.last_hops.size();
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> by_router;
  by_router.reserve(memberships);
  for (std::uint32_t v = 0; v < aggregates.size(); ++v) {
    for (netsim::Ipv4Address router : aggregates[v].last_hops) {
      by_router.emplace_back(router.value(), v);
    }
  }
  std::sort(by_router.begin(), by_router.end());
  // Each vertex a emits its edges to higher-numbered neighbours, exactly
  // as the reference; per shard the edges accumulate in an arena-backed
  // segment chain, so growth is a bump allocation and never copies the
  // edges already emitted.  Chunks ascend with the shard index, so
  // stitching shard buffers in order yields the (a, b)-sorted edge list
  // for every thread count.
  struct ShardEdges {
    ShardEdges() = default;  // Arena's explicit ctor bars aggregate init.
    common::Arena arena;
    std::optional<common::ArenaVector<Graph::Edge>> edges;
  };
  const std::size_t slots =
      pool != nullptr ? static_cast<std::size_t>(pool->thread_count()) : 1;
  common::PerShard<ShardEdges> edges_by_shard(slots);
  common::ForEachChunk(
      pool, aggregates.size(), 1, [&](common::ChunkRange chunk) {
        ShardEdges& shard = *edges_by_shard[chunk.shard];
        if (!shard.edges.has_value()) {
          shard.edges.emplace(&shard.arena, /*first_capacity=*/128);
        }
        common::ArenaVector<Graph::Edge>& edges = *shard.edges;
        std::vector<std::uint32_t> candidates;
        for (std::size_t a = chunk.begin; a < chunk.end; ++a) {
          candidates.clear();
          for (netsim::Ipv4Address router : aggregates[a].last_hops) {
            const std::uint32_t rv = router.value();
            auto it = std::lower_bound(
                by_router.begin(), by_router.end(),
                std::pair<std::uint32_t, std::uint32_t>(rv, 0));
            for (; it != by_router.end() && it->first == rv; ++it) {
              if (it->second > a) candidates.push_back(it->second);
            }
          }
          std::sort(candidates.begin(), candidates.end());
          candidates.erase(
              std::unique(candidates.begin(), candidates.end()),
              candidates.end());
          for (std::uint32_t b : candidates) {
            double w = Similarity(aggregates[a].last_hops,
                                  aggregates[b].last_hops);
            if (w > 0.0) {
              edges.push_back({static_cast<std::uint32_t>(a), b, w});
            }
          }
        }
      });
  std::size_t total = 0;
  for (const auto& shard : edges_by_shard) {
    if (shard->edges.has_value()) total += shard->edges->size();
  }
  graph.edges.reserve(total);
  for (const auto& shard : edges_by_shard) {
    if (shard->edges.has_value()) shard->edges->AppendTo(graph.edges);
  }
  return graph;
}

Graph BuildSimilarityGraphReference(std::span<const AggregateBlock> aggregates,
                                    common::ThreadPool* pool) {
  Graph graph;
  graph.vertex_count = static_cast<std::uint32_t>(aggregates.size());
  // Inverted index: last-hop interface -> aggregates containing it (each
  // bucket in ascending vertex order by construction).
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_router;
  for (std::uint32_t v = 0; v < aggregates.size(); ++v) {
    for (netsim::Ipv4Address router : aggregates[v].last_hops) {
      by_router[router.value()].push_back(v);
    }
  }
  // Each vertex a emits its edges to higher-numbered neighbours.  Shards
  // take *contiguous* vertex chunks and append into one per-shard edge
  // buffer (not one vector per vertex); chunks ascend with the shard
  // index, so concatenating the shard buffers in shard order yields the
  // same (a, b)-sorted edge list for every thread count.
  const std::size_t slots =
      pool != nullptr ? static_cast<std::size_t>(pool->thread_count()) : 1;
  common::PerShard<std::vector<Graph::Edge>> edges_by_shard(slots);
  common::ForEachChunk(
      pool, aggregates.size(), 1, [&](common::ChunkRange chunk) {
        std::vector<Graph::Edge>& edges = *edges_by_shard[chunk.shard];
        std::vector<std::uint32_t> candidates;
        for (std::size_t a = chunk.begin; a < chunk.end; ++a) {
          candidates.clear();
          for (netsim::Ipv4Address router : aggregates[a].last_hops) {
            auto bucket = by_router.find(router.value());
            for (std::uint32_t b : bucket->second) {
              if (b > a) candidates.push_back(b);
            }
          }
          std::sort(candidates.begin(), candidates.end());
          candidates.erase(
              std::unique(candidates.begin(), candidates.end()),
              candidates.end());
          for (std::uint32_t b : candidates) {
            double w = Similarity(aggregates[a].last_hops,
                                  aggregates[b].last_hops);
            if (w > 0.0) {
              edges.push_back({static_cast<std::uint32_t>(a), b, w});
            }
          }
        }
      });
  std::size_t total = 0;
  for (const auto& edges : edges_by_shard) total += edges->size();
  graph.edges.reserve(total);
  for (const auto& edges : edges_by_shard) {
    graph.edges.insert(graph.edges.end(), edges->begin(), edges->end());
  }
  return graph;
}

namespace {

/// Pair-weighted similarity distribution test (§6.6 rule).
bool ClusterMatchesRule(std::span<const AggregateBlock> aggregates,
                        const std::vector<std::uint32_t>& members,
                        const RuleParams& rule) {
  // Count /24-level pairs at-or-above the similarity bar.  Pairs inside
  // one aggregate have similarity 1 by construction.  A single aggregate
  // pair overlapping below the floor disqualifies the whole cluster.
  long double high = 0, total = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const auto ni = static_cast<long double>(
        aggregates[members[i]].member_24s.size());
    high += ni * (ni - 1) / 2;
    total += ni * (ni - 1) / 2;
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      const auto nj = static_cast<long double>(
          aggregates[members[j]].member_24s.size());
      double s = Similarity(aggregates[members[i]].last_hops,
                            aggregates[members[j]].last_hops);
      if (s < rule.min_pair_similarity) return false;
      total += ni * nj;
      if (s >= rule.high_similarity) high += ni * nj;
    }
  }
  if (total <= 0) return false;
  return high / total >= rule.min_fraction_high;
}

}  // namespace

MclAggregationResult RunMclAggregation(
    std::span<const AggregateBlock> aggregates,
    const MclAggregationParams& params) {
  MclAggregationResult result;
  // One pool shared by edge generation, the inflation sweep and every
  // per-component MCL run.
  common::PoolRef pool(params.mcl.pool, params.mcl.threads);
  Graph graph = BuildSimilarityGraph(aggregates, pool.get());

  // §6.4 parameter sweep on the whole (disconnected) graph.
  MclParams sweep_params = params.mcl;
  sweep_params.pool = pool.get();
  SweepOutcome sweep =
      SweepInflation(graph, params.inflation_candidates, sweep_params);
  result.chosen_inflation = sweep.best_inflation;

  // Per-component MCL (§6.3 preprocessing step 2).
  std::vector<Component> components = SplitComponents(graph);
  result.component_count = components.size();
  MclParams mcl_params = sweep_params;
  mcl_params.inflation = result.chosen_inflation;

  for (const Component& component : components) {
    if (component.vertices.size() == 1) {
      result.unclustered.push_back(component.vertices.front());
      continue;
    }
    MclResult mcl = RunMcl(component.graph, mcl_params);
    for (const auto& local_cluster : mcl.clusters) {
      if (local_cluster.size() < 2) {
        for (std::uint32_t v : local_cluster) {
          result.unclustered.push_back(component.vertices[v]);
        }
        continue;
      }
      ClusterInfo info;
      info.aggregate_ids.reserve(local_cluster.size());
      for (std::uint32_t v : local_cluster) {
        info.aggregate_ids.push_back(component.vertices[v]);
      }
      std::sort(info.aggregate_ids.begin(), info.aggregate_ids.end());
      info.matches_rule =
          ClusterMatchesRule(aggregates, info.aggregate_ids, params.rule);
      result.clusters.push_back(std::move(info));
    }
  }
  return result;
}

void ValidateClusters(const netsim::Internet& internet,
                      std::span<const probing::ZmapBlock> study_blocks,
                      std::span<const AggregateBlock> aggregates,
                      MclAggregationResult& result,
                      const ValidationParams& params) {
  // Snapshot lookup by prefix (study_blocks sorted by prefix).
  auto find_block =
      [&](const netsim::Prefix& p) -> const probing::ZmapBlock* {
    auto pos = std::lower_bound(
        study_blocks.begin(), study_blocks.end(), p,
        [](const probing::ZmapBlock& b, const netsim::Prefix& q) {
          return b.prefix < q;
        });
    if (pos == study_blocks.end() || !(pos->prefix == p)) return nullptr;
    return &*pos;
  };

  common::PoolRef pool(params.pool, params.threads);

  // Clusters partition the aggregates, so reprobe results never repeat
  // across clusters: a per-cluster cache loses nothing, and per-cluster
  // RNGs forked from (seed, cluster index) keep the pair sample — and
  // therefore the verdict — independent of scheduling.
  pool->ForEach(result.clusters.size(), [&](std::size_t cluster_index) {
    ClusterInfo& cluster = result.clusters[cluster_index];
    netsim::Rng rng(netsim::StableHash(
        {params.seed, cluster_index, 0x7A11DA7EULL}));

    // Cache: reprobed last-hop set per /24 (local to this cluster).
    std::map<netsim::Prefix, std::vector<netsim::Ipv4Address>> reprobed;
    auto reprobe = [&](const netsim::Prefix& p)
        -> const std::vector<netsim::Ipv4Address>* {
      auto cached = reprobed.find(p);
      if (cached != reprobed.end()) return &cached->second;
      const probing::ZmapBlock* block = find_block(p);
      if (block == nullptr) return nullptr;
      core::BlockResult r = core::ReprobeBlock(
          internet, *block,
          netsim::StableHash({params.seed, p.base().value()}));
      return &reprobed.emplace(p, std::move(r.last_hop_set)).first->second;
    };

    // Collect the member /24s.
    std::vector<const netsim::Prefix*> members;
    for (std::uint32_t id : cluster.aggregate_ids) {
      for (const netsim::Prefix& p : aggregates[id].member_24s) {
        members.push_back(&p);
      }
    }
    if (members.size() < 2) {
      cluster.identical_pair_ratio = 1.0;
      cluster.validated_homogeneous = true;
      return;
    }
    const std::size_t total_pairs = members.size() * (members.size() - 1) / 2;
    const std::size_t want =
        std::min(params.max_pairs_per_cluster, total_pairs);
    std::size_t identical = 0;
    std::size_t compared = 0;
    for (std::size_t k = 0; k < want; ++k) {
      std::size_t i = rng.NextBelow(members.size());
      std::size_t j = rng.NextBelow(members.size() - 1);
      if (j >= i) ++j;
      const auto* set_a = reprobe(*members[i]);
      const auto* set_b = reprobe(*members[j]);
      if (set_a == nullptr || set_b == nullptr) continue;
      ++compared;
      if (*set_a == *set_b && !set_a->empty()) ++identical;
    }
    cluster.identical_pair_ratio =
        compared == 0 ? 0.0
                      : static_cast<double>(identical) / compared;
    cluster.validated_homogeneous =
        compared > 0 && identical == compared;
  });
}

std::vector<AggregateBlock> MergeValidatedClusters(
    std::span<const AggregateBlock> aggregates,
    const MclAggregationResult& result) {
  std::vector<bool> consumed(aggregates.size(), false);
  std::vector<AggregateBlock> merged;

  for (const ClusterInfo& cluster : result.clusters) {
    if (!cluster.validated_homogeneous) continue;
    AggregateBlock block;
    for (std::uint32_t id : cluster.aggregate_ids) {
      consumed[id] = true;
      const AggregateBlock& a = aggregates[id];
      block.member_24s.insert(block.member_24s.end(), a.member_24s.begin(),
                              a.member_24s.end());
      for (netsim::Ipv4Address r : a.last_hops) {
        auto pos = std::lower_bound(block.last_hops.begin(),
                                    block.last_hops.end(), r);
        if (pos == block.last_hops.end() || *pos != r) {
          block.last_hops.insert(pos, r);
        }
      }
    }
    std::sort(block.member_24s.begin(), block.member_24s.end());
    merged.push_back(std::move(block));
  }
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    if (!consumed[i]) merged.push_back(aggregates[i]);
  }
  std::sort(merged.begin(), merged.end(),
            [](const AggregateBlock& a, const AggregateBlock& b) {
              if (a.member_24s.size() != b.member_24s.size()) {
                return a.member_24s.size() > b.member_24s.size();
              }
              return a.member_24s.front() < b.member_24s.front();
            });
  return merged;
}

}  // namespace hobbit::cluster
