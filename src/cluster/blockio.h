// blockio.h — serialising Hobbit block lists.
//
// The paper publishes its blocks as a downloadable dataset ("We make the
// Hobbit blocks publicly available").  This is the equivalent: a plain
// one-record-per-line text format, stable under round trips, loadable by
// downstream consumers that only need prefix -> block membership.
//
// Format (version 1):
//   # comments and blank lines are ignored
//   HobbitBlocks v1
//   B<id> hops=<ip>[,<ip>...] members=<prefix>[,<prefix>...]
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/aggregate.h"

namespace hobbit::cluster {

/// Writes `blocks` in the v1 text format.
void WriteBlocks(std::ostream& os, std::span<const AggregateBlock> blocks);

/// Parses a v1 block list.  Returns nullopt on any syntax error and, when
/// `error` is non-null, stores a line-anchored message.
std::optional<std::vector<AggregateBlock>> ReadBlocks(
    std::istream& is, std::string* error = nullptr);

/// Finds the block containing a /24: binary search over a packed, sorted
/// array of /24 base addresses (4 bytes per probe, cache-dense).  This is
/// also the reference implementation that the serving layer's compiled
/// snapshot engine (serve::LookupEngine) is differential-tested against —
/// keep its answers authoritative.
class BlockIndex {
 public:
  explicit BlockIndex(std::span<const AggregateBlock> blocks);

  /// Index into the original span, or -1.  Non-/24 prefixes answer -1
  /// (member lists only ever hold /24s).
  int BlockOf(const netsim::Prefix& slash24) const;

  /// The block whose member /24 covers `address`, or -1.
  int BlockOf(netsim::Ipv4Address address) const;

  /// Total member /24s indexed.
  std::size_t size() const { return keys_.size(); }

 private:
  std::vector<std::uint32_t> keys_;  // member-/24 base addresses, sorted
  std::vector<int> ids_;             // parallel owning-block indices
};

}  // namespace hobbit::cluster
