// blockio.h — serialising Hobbit block lists.
//
// The paper publishes its blocks as a downloadable dataset ("We make the
// Hobbit blocks publicly available").  This is the equivalent: a plain
// one-record-per-line text format, stable under round trips, loadable by
// downstream consumers that only need prefix -> block membership.
//
// Format (version 1):
//   # comments and blank lines are ignored
//   HobbitBlocks v1
//   B<id> hops=<ip>[,<ip>...] members=<prefix>[,<prefix>...]
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cluster/aggregate.h"

namespace hobbit::cluster {

/// Writes `blocks` in the v1 text format.
void WriteBlocks(std::ostream& os, std::span<const AggregateBlock> blocks);

/// Parses a v1 block list.  Returns nullopt on any syntax error and, when
/// `error` is non-null, stores a line-anchored message.
std::optional<std::vector<AggregateBlock>> ReadBlocks(
    std::istream& is, std::string* error = nullptr);

/// Finds the block containing a /24 (linear index built once).
class BlockIndex {
 public:
  explicit BlockIndex(std::span<const AggregateBlock> blocks);

  /// Index into the original span, or -1.
  int BlockOf(const netsim::Prefix& slash24) const;

 private:
  std::vector<std::pair<netsim::Prefix, int>> entries_;  // sorted
};

}  // namespace hobbit::cluster
