// simd.h — runtime-dispatched vector kernels for the hot sweeps.
//
// PR 9 restructured the hottest loops into SIMD-friendly shapes (the
// gathered SoA MCL column, the Eytzinger descent, 64-byte-aligned arena
// chunks and snapshot sections); this layer supplies the vector kernels
// those shapes were built for.  Three tiers:
//
//   kScalar  plain C++, always compiled — the bit-exactness reference
//   kSse2    x86-64 baseline vectors (2 doubles/lane-pair)
//   kAvx2    256-bit vectors, compiled into one isolated TU with -mavx2
//            (the rest of the build stays baseline-ISA) and only ever
//            entered after a cpuid probe says the host can run it
//
// Dispatch rules:
//  * `MaxSupportedTier()` probes cpuid once (AVX2 needs both the
//    compiled-in kernel TU and the cpu feature bit).
//  * `ActiveTier()` starts from that probe, clamped down by the
//    HOBBIT_SIMD environment variable ("scalar", "sse2", "avx2") — the
//    override can never select a tier the host cannot execute.
//  * `SetActiveTier()` (tests, tools) re-pins the process-wide tier; it
//    clamps the same way.  The active tier is an atomic, so concurrent
//    readers under TSan are clean.
//
// FP-identity contract (stronger than bounded-ULP: *every tier returns
// identical bits*, so a forced-scalar run, an AVX2 run and any thread
// count all produce byte-identical MCL matrices):
//  * Elementwise kernels (`divide`, the squaring inside
//    `square_accumulate`, `filter_ge`'s comparisons) are exact per IEEE
//    lane semantics — a vector lane op rounds identically to the scalar
//    op, so nothing is contracted (no FMA) and nothing reassociates.
//  * Reductions (`sum`, the accumulation inside `square_accumulate`)
//    use one fixed association order, chosen to be vector-friendly and
//    implemented identically by every tier: element i accumulates into
//    lane (i mod 8) in ascending i order, and the 8 lanes combine as
//      c_j = lane[j] + lane[4 + j]   (j = 0..3)
//      result = (c0 + c1) + (c2 + c3)
//    `LaneAccumulator` below is the reference implementation of that
//    order; callers that reduce non-contiguous values (e.g. the pruned
//    AoS pairs in MclIterate) use it directly so their sums stay
//    bit-identical to the contiguous kernel.
//
// The kernels own the MCL sweeps' inner loops (cluster/sparse.cpp); the
// Eytzinger batch descent (serve/lookup.cpp) needs memory-level
// parallelism rather than vector ALUs and stays plain C++ + prefetch.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace hobbit::common::simd {

enum class Tier : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Width of the fixed reduction order: element i sums into lane
/// (i mod kSumLanes).  8 = two AVX2 accumulators, enough to hide the
/// 4-cycle add latency chain that serializes a single-accumulator sum.
inline constexpr std::size_t kSumLanes = 8;

/// The reference implementation of the reduction order.  Scalar by
/// construction; every vector `sum`/`square_accumulate` kernel must
/// match it bit for bit (pinned by tests/test_simd.cpp).
struct LaneAccumulator {
  double lane[kSumLanes] = {0, 0, 0, 0, 0, 0, 0, 0};

  void Add(std::size_t i, double value) {
    lane[i & (kSumLanes - 1)] += value;
  }

  double Combine() const {
    const double c0 = lane[0] + lane[4];
    const double c1 = lane[1] + lane[5];
    const double c2 = lane[2] + lane[6];
    const double c3 = lane[3] + lane[7];
    return (c0 + c1) + (c2 + c3);
  }
};

/// One tier's kernel table.  All pointers are always non-null.
struct Kernels {
  /// values[i] = values[i] * values[i]; returns the lane-ordered sum of
  /// the squared values.  (The MCL inflation sweep at power == 2.0.)
  double (*square_accumulate)(double* values, std::size_t count);
  /// Lane-ordered sum of `values` (the normalization sweep's reduction).
  double (*sum)(const double* values, std::size_t count);
  /// values[i] /= divisor (exact per element in every tier).
  void (*divide)(double* values, std::size_t count, double divisor);
  /// Compacts {values[i], tags[i]} pairs with values[i] >= threshold
  /// into `out` (ascending i), returning how many were kept.  `out`
  /// must have room for `count` pairs.  (The MCL prune scan.)
  std::size_t (*filter_ge)(const double* values, const std::uint32_t* tags,
                           std::size_t count, double threshold,
                           std::pair<double, std::uint32_t>* out);
};

const char* TierName(Tier tier);

/// Highest tier this build + this cpu can execute (probed once).
Tier MaxSupportedTier();
inline bool TierSupported(Tier tier) {
  return static_cast<int>(tier) <= static_cast<int>(MaxSupportedTier());
}

/// Pure resolution of an override string against a supported ceiling:
/// "scalar"/"sse2"/"avx2" clamp to `supported`; null, empty or unknown
/// requests resolve to `supported` itself.
Tier ResolveTier(const char* request, Tier supported);

/// The process-wide tier: HOBBIT_SIMD override (resolved lazily, once)
/// clamped to MaxSupportedTier().
Tier ActiveTier();
/// Re-pins the process-wide tier (clamped to the supported ceiling).
/// Returns the tier actually installed.
Tier SetActiveTier(Tier tier);

/// Kernel table for `tier`, clamped to the supported ceiling — asking
/// for AVX2 on an SSE2-only host returns the SSE2 table.
const Kernels& KernelsFor(Tier tier);
inline const Kernels& Active() { return KernelsFor(ActiveTier()); }

/// Human-readable cpu capability string for bench metadata, e.g.
/// "avx2+sse2" or "scalar-only" — what the *hardware* supports, not the
/// override, so checked-in BENCH files stay interpretable across
/// machines.
std::string CpuFeatureString();

}  // namespace hobbit::common::simd
