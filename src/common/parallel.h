// parallel.h — the shared deterministic thread pool.
//
// Every parallel stage in the codebase — adaptive probing, similarity-graph
// edge generation, MCL expansion/inflation, cluster validation reprobing —
// runs through this one primitive so that a single `threads` knob governs a
// whole campaign and so that results are *bit-identical for any thread
// count*.  Three entry points, one discipline:
//
//  * `ForEachChunk(count, grain, body)` — the preferred primitive.  The
//    index range [0, count) is split into `shard_count` *contiguous*
//    chunks (`shard_count = min(thread_count(), ceil(count / grain))`,
//    never more than count) and `body(ChunkRange)` runs exactly once per
//    chunk.  Chunk boundaries are the balanced split — chunk s covers
//    `[s*q + min(s, r), ...)` with `q = count / shard_count`,
//    `r = count % shard_count` — a pure function of (count, shard_count),
//    so the chunk→shard map is deterministic.  Contiguous ranges keep
//    each worker streaming through adjacent output slots instead of
//    striding `i % shard_count` across the whole array (cache-hostile
//    and false-sharing-prone).  `grain` is the minimum items a chunk
//    must be worth: short ranges use fewer shards and a range that fits
//    in one chunk runs inline with zero dispatch overhead.
//  * `ForEach(count, body)` invokes `body(i)` exactly once for every
//    i in [0, count); items are assigned contiguously as above with
//    grain 1.  Bodies must be independent (no cross-item ordering) and
//    must derive any randomness from i (stable hashing / per-index
//    forked RNGs), never from a shared sequential stream.  Under that
//    discipline the outputs cannot depend on the thread count.
//  * `ForEachShard(count, body)` is the legacy shard-level variant for
//    bodies that want per-worker scratch: `body(shard, shard_count)` is
//    invoked once per shard and iterates its items
//    `i = shard, shard + shard_count, ...` itself (the historical
//    interleaved assignment; new code should prefer ForEachChunk).
//
// Determinism caveat for per-shard accumulation: chunk boundaries (and
// the interleave stride) depend on the effective shard count, so a body
// that keeps per-shard state must stitch its output back *in item
// order* (per-item slots, or per-chunk buffers concatenated in chunk
// order — chunks ascend, so that is item order too).  All call sites in
// this repository follow that rule; see DESIGN.md §10.
//
// There is deliberately no work stealing: stealing makes the item→worker
// assignment scheduling-dependent, which is harmless for embarrassingly
// parallel writes but poisonous the moment a body keeps per-worker state.
//
// Dispatch cost: a call publishes one plain function pointer + context
// (no per-item std::function, no heap allocation), bumps an atomic
// epoch, and wakes only workers that actually parked.  Between jobs
// workers spin briefly on the epoch before parking on a condvar, so the
// dozens of back-to-back sub-millisecond dispatches an MCL iteration
// makes do not pay a mutex/condvar round-trip each time.  Spinning is
// disabled automatically when the pool is oversubscribed
// (thread_count() > hardware_concurrency()): there, a spinning waiter
// only steals timeslices from the worker it is waiting for.
//
// Degenerate cases (all documented behaviour, exercised by
// tests/test_parallel.cpp):
//  * a requested thread count < 1 clamps to 1 (serial, no workers spawned);
//  * count == 0 returns immediately without invoking the body;
//  * count == 1 or thread_count() == 1 runs inline on the calling thread;
//  * nested use (a body calling back into the same pool) degrades to
//    serial inline execution instead of deadlocking.
//
// Exceptions thrown by bodies are captured per shard and rethrown on the
// calling thread once every shard has finished; when several shards throw,
// the lowest shard (= lowest chunk) index wins (deterministic propagation).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <vector>

namespace hobbit::common {

/// One contiguous chunk of a ForEachChunk range: items [begin, end),
/// handled by `shard` of `shard_count`.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t shard = 0;
  std::size_t shard_count = 1;

  std::size_t size() const { return end - begin; }
};

/// The balanced contiguous split: bounds of chunk `shard` when [0, count)
/// is divided into `shard_count` chunks.  Chunks ascend and differ in
/// size by at most one item; a pure function of its arguments.
inline ChunkRange ChunkBounds(std::size_t count, std::size_t shard,
                              std::size_t shard_count) {
  const std::size_t q = count / shard_count;
  const std::size_t r = count % shard_count;
  const std::size_t begin = shard * q + (shard < r ? shard : r);
  return {begin, begin + q + (shard < r ? 1 : 0), shard, shard_count};
}

// A fixed 64 rather than std::hardware_destructive_interference_size:
// the standard constant varies with compiler tuning flags (and warns
// when used in headers); 64 is the destructive-interference line on
// every target this builds for.
inline constexpr std::size_t kCacheLineSize = 64;

/// A value padded out to its own cache line.  Per-shard accumulators
/// (counters, local maxima, scratch buffers) indexed by shard live in
/// `std::vector<CacheAligned<T>>` so adjacent shards never false-share.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

/// Per-shard scratch, one cache-line-aligned slot per shard.
template <typename T>
using PerShard = std::vector<CacheAligned<T>>;

/// A persistent pool of `threads - 1` worker threads plus the calling
/// thread.  Construction is cheap for `threads <= 1` (no threads are
/// spawned); workers otherwise live until destruction and are reused
/// across successive dispatches.
///
/// One owner at a time: concurrent dispatches from different threads on
/// the same pool are not supported.
class ThreadPool {
 public:
  /// `threads < 1` clamps to 1.
  explicit ThreadPool(int threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The effective (clamped) thread count, calling thread included.
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// True while the calling thread is executing a pool body (used for
  /// the nested-call serial fallback; exposed for the template fronts).
  static bool InsidePoolBody();

  /// Runs `body(chunk)` once per contiguous chunk of [0, count); see the
  /// file comment for the chunk map.  `grain` (>= 1) is the minimum
  /// chunk size worth dispatching; a range of at most `grain` items (or
  /// a nested call) runs inline as the single chunk {0, count, 0, 1}.
  template <typename Body>
  void ForEachChunk(std::size_t count, std::size_t grain, Body&& body) {
    if (count == 0) return;
    if (grain < 1) grain = 1;
    const std::size_t by_grain = (count + grain - 1) / grain;
    const std::size_t shards =
        std::min<std::size_t>(static_cast<std::size_t>(thread_count()),
                              by_grain);
    if (shards <= 1 || InsidePoolBody()) {
      body(ChunkRange{0, count, 0, 1});
      return;
    }
    struct Context {
      std::remove_reference_t<Body>* body;
      std::size_t count;
    } context{&body, count};
    DispatchRaw(shards,
                [](void* raw, std::size_t shard, std::size_t shard_count) {
                  auto* ctx = static_cast<Context*>(raw);
                  (*ctx->body)(ChunkBounds(ctx->count, shard, shard_count));
                },
                &context);
  }

  /// Runs `body(i)` exactly once for each i in [0, count), assigned as
  /// contiguous chunks (grain 1).
  template <typename Body>
  void ForEach(std::size_t count, Body&& body) {
    ForEachChunk(count, 1, [&body](ChunkRange chunk) {
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) body(i);
    });
  }

  /// Legacy shard-level variant: `body(shard, shard_count)` once per
  /// shard in [0, shard_count) with shard_count = min(thread_count(),
  /// count); the body iterates `i = shard; i < count; i += shard_count`
  /// itself and may keep per-shard scratch.
  template <typename Body>
  void ForEachShard(std::size_t count, Body&& body) {
    if (count == 0) return;
    const std::size_t shards = std::min<std::size_t>(
        static_cast<std::size_t>(thread_count()), count);
    if (shards == 1 || InsidePoolBody()) {
      body(std::size_t{0}, std::size_t{1});
      return;
    }
    std::remove_reference_t<Body>* context = &body;
    DispatchRaw(shards,
                [](void* raw, std::size_t shard, std::size_t shard_count) {
                  (*static_cast<std::remove_reference_t<Body>*>(raw))(
                      shard, shard_count);
                },
                context);
  }

  /// The batched dispatch all front-ends funnel into: runs
  /// `fn(context, shard, shards)` once per shard (the calling thread is
  /// shard 0), waits for completion, and rethrows the lowest-shard
  /// exception.  Public so the template fronts can live in the header;
  /// call the typed wrappers instead.
  void DispatchRaw(std::size_t shards,
                   void (*fn)(void*, std::size_t, std::size_t),
                   void* context);

 private:
  void WorkerLoop(std::size_t worker_index);
  void RethrowFirstError();

  std::vector<std::thread> workers_;

  // Job slot: plain fields published by the epoch bump (release) and
  // read by workers after observing the new epoch (acquire).
  void (*job_fn_)(void*, std::size_t, std::size_t) = nullptr;
  void* job_context_ = nullptr;
  std::size_t job_shards_ = 0;
  std::vector<std::exception_ptr> errors_;

  // Spin-then-park state.  `epoch_` increments per dispatch; workers
  // spin on it briefly, then register in `parked_workers_` and park on
  // `work_cv_`.  The caller waits on `pending_` symmetrically with
  // `caller_parked_` / `done_cv_`.  The seq_cst store/load pairing
  // (epoch before parked-count on the dispatcher, parked-count before
  // epoch in the would-be parker) closes the missed-wakeup race.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> pending_{0};
  std::atomic<int> parked_workers_{0};
  std::atomic<bool> caller_parked_{false};
  std::atomic<bool> stop_{false};
  // True when thread_count() <= hardware_concurrency(): spinning only
  // pays when waiters do not displace the workers they wait for.
  bool spin_allowed_ = false;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
};

/// True when `pool` would actually run bodies on more than one thread.
/// The shared test every caller with a serial fallback path needs.
inline bool IsParallel(const ThreadPool* pool) {
  return pool != nullptr && pool->thread_count() > 1;
}

/// The `threads`-or-external-`pool` pattern every pipeline stage shares
/// (PipelineConfig, MclParams, ValidationParams): use the caller's pool
/// when one was supplied, otherwise own a local pool of `threads`.
/// Replaces the hand-rolled `pool != nullptr ? 1 : threads` boilerplate
/// that used to be copied across pipeline.cpp, mcl.cpp and
/// aggregate.cpp.
class PoolRef {
 public:
  PoolRef(ThreadPool* external, int threads)
      : local_(external != nullptr ? 1 : threads),
        pool_(external != nullptr ? external : &local_) {}

  PoolRef(const PoolRef&) = delete;
  PoolRef& operator=(const PoolRef&) = delete;

  ThreadPool* get() const { return pool_; }
  ThreadPool& operator*() const { return *pool_; }
  ThreadPool* operator->() const { return pool_; }

 private:
  ThreadPool local_;
  ThreadPool* pool_;
};

/// Convenience wrappers treating a null pool as "serial": library code can
/// accept an optional `ThreadPool*` and call these unconditionally.
template <typename Body>
void ForEach(ThreadPool* pool, std::size_t count, Body&& body) {
  if (pool != nullptr) {
    pool->ForEach(count, body);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) body(i);
}

template <typename Body>
void ForEachShard(ThreadPool* pool, std::size_t count, Body&& body) {
  if (pool != nullptr) {
    pool->ForEachShard(count, body);
    return;
  }
  if (count > 0) body(std::size_t{0}, std::size_t{1});
}

template <typename Body>
void ForEachChunk(ThreadPool* pool, std::size_t count, std::size_t grain,
                  Body&& body) {
  if (pool != nullptr) {
    pool->ForEachChunk(count, grain, body);
    return;
  }
  if (count > 0) body(ChunkRange{0, count, 0, 1});
}

}  // namespace hobbit::common
