// parallel.h — the shared deterministic thread pool.
//
// Every parallel stage in the codebase — adaptive probing, similarity-graph
// edge generation, MCL expansion/inflation, cluster validation reprobing —
// runs through this one primitive so that a single `threads` knob governs a
// whole campaign and so that results are *bit-identical for any thread
// count*.  The determinism contract:
//
//  * `ForEach(count, body)` invokes `body(i)` exactly once for every
//    i in [0, count).  Work item i is handled by shard `i % shard_count`
//    where `shard_count = min(thread_count(), count)`.  Bodies must be
//    independent (no cross-item ordering) and must derive any randomness
//    from i (stable hashing / per-index forked RNGs), never from a shared
//    sequential stream.  Under that discipline the outputs cannot depend
//    on the thread count.
//  * `ForEachShard(count, body)` is the shard-level variant for bodies
//    that want per-worker scratch space: `body(shard, shard_count)` is
//    invoked once per shard and is responsible for iterating its items
//    `i = shard, shard + shard_count, ...` itself.  Because the
//    item→shard assignment is a pure function of (i, shard_count) — and
//    shard_count depends only on the configured thread count — any
//    per-shard accumulation that is later stitched back in item order is
//    deterministic as well.
//
// There is deliberately no work stealing: stealing makes the item→worker
// assignment scheduling-dependent, which is harmless for embarrassingly
// parallel writes but poisonous the moment a body keeps per-worker state.
//
// Degenerate cases (all documented behaviour, exercised by
// tests/test_parallel.cpp):
//  * a requested thread count < 1 clamps to 1 (serial, no workers spawned);
//  * count == 0 returns immediately without invoking the body;
//  * count == 1 or thread_count() == 1 runs inline on the calling thread;
//  * nested use (a body calling back into the same pool) degrades to
//    serial inline execution instead of deadlocking.
//
// Exceptions thrown by bodies are captured per shard and rethrown on the
// calling thread once every shard has finished; when several shards throw,
// the lowest shard index wins (deterministic propagation).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace hobbit::common {

/// A persistent pool of `threads - 1` worker threads plus the calling
/// thread.  Construction is cheap for `threads <= 1` (no threads are
/// spawned); workers otherwise live until destruction and are reused
/// across successive ForEach/ForEachShard calls.
///
/// One owner at a time: concurrent ForEach calls from different threads
/// on the same pool are not supported.
class ThreadPool {
 public:
  /// `threads < 1` clamps to 1.
  explicit ThreadPool(int threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The effective (clamped) thread count, calling thread included.
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `body(i)` exactly once for each i in [0, count); item i runs on
  /// shard `i % min(thread_count(), count)`.
  void ForEach(std::size_t count,
               const std::function<void(std::size_t)>& body);

  /// Shard-level variant: `body(shard, shard_count)` once per shard in
  /// [0, shard_count); the body iterates `i = shard; i < count;
  /// i += shard_count` itself and may keep per-shard scratch.
  void ForEachShard(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void WorkerLoop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_shards_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;
};

/// Convenience wrappers treating a null pool as "serial": library code can
/// accept an optional `ThreadPool*` and call these unconditionally.
void ForEach(ThreadPool* pool, std::size_t count,
             const std::function<void(std::size_t)>& body);
void ForEachShard(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace hobbit::common
