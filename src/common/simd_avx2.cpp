// simd_avx2.cpp — the AVX2 kernel tier.  This is the ONLY translation
// unit built with -mavx2 (see src/common/CMakeLists.txt): it holds raw
// intrinsic kernels and nothing else, so no inline function from a
// shared header can be compiled with AVX2 here and then picked by the
// linker for a baseline-ISA caller.  Entry is guarded at runtime by the
// cpuid probe in simd.cpp.
//
// Exactness: every kernel reproduces the scalar reference bit for bit —
// elementwise lane ops round identically to their scalar forms (no FMA,
// no reassociation), and the reductions use the fixed 8-lane order
// documented in simd.h: accumulator A holds lanes 0..3, B lanes 4..7,
// tails fold into the lane array scalar-style, and the combine runs
// through LaneAccumulator itself.
#include "common/simd.h"

#include <immintrin.h>

namespace hobbit::common::simd {
namespace {

double SquareAccumulateAvx2(double* values, std::size_t count) {
  __m256d a = _mm256_setzero_pd();
  __m256d b = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kSumLanes <= count; i += kSumLanes) {
    __m256d lo = _mm256_loadu_pd(values + i);
    __m256d hi = _mm256_loadu_pd(values + i + 4);
    lo = _mm256_mul_pd(lo, lo);
    hi = _mm256_mul_pd(hi, hi);
    _mm256_storeu_pd(values + i, lo);
    _mm256_storeu_pd(values + i + 4, hi);
    a = _mm256_add_pd(a, lo);
    b = _mm256_add_pd(b, hi);
  }
  LaneAccumulator acc;
  _mm256_storeu_pd(acc.lane + 0, a);
  _mm256_storeu_pd(acc.lane + 4, b);
  for (; i < count; ++i) {
    const double squared = values[i] * values[i];
    values[i] = squared;
    acc.Add(i, squared);
  }
  return acc.Combine();
}

double SumAvx2(const double* values, std::size_t count) {
  __m256d a = _mm256_setzero_pd();
  __m256d b = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kSumLanes <= count; i += kSumLanes) {
    a = _mm256_add_pd(a, _mm256_loadu_pd(values + i));
    b = _mm256_add_pd(b, _mm256_loadu_pd(values + i + 4));
  }
  LaneAccumulator acc;
  _mm256_storeu_pd(acc.lane + 0, a);
  _mm256_storeu_pd(acc.lane + 4, b);
  for (; i < count; ++i) acc.Add(i, values[i]);
  return acc.Combine();
}

void DivideAvx2(double* values, std::size_t count, double divisor) {
  const __m256d d = _mm256_set1_pd(divisor);
  std::size_t i = 0;
  // Two independent divides per iteration: vdivpd is long-latency but
  // partially pipelined, so overlapping a pair comes close to doubling
  // throughput on cores with a pipelined divider.
  for (; i + 8 <= count; i += 8) {
    _mm256_storeu_pd(values + i, _mm256_div_pd(_mm256_loadu_pd(values + i), d));
    _mm256_storeu_pd(values + i + 4,
                     _mm256_div_pd(_mm256_loadu_pd(values + i + 4), d));
  }
  for (; i + 4 <= count; i += 4) {
    _mm256_storeu_pd(values + i, _mm256_div_pd(_mm256_loadu_pd(values + i), d));
  }
  for (; i < count; ++i) values[i] /= divisor;
}

std::size_t FilterGeAvx2(const double* values, const std::uint32_t* tags,
                         std::size_t count, double threshold,
                         std::pair<double, std::uint32_t>* out) {
  const __m256d t = _mm256_set1_pd(threshold);
  std::size_t kept = 0;
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(v, t, _CMP_GE_OQ));
    if (mask == 0xF) {
      // All four kept — the common case of an MCL prune (thresholds sit
      // far below the bulk of a normalized column).  Interleave values
      // and zero-extended tags into the AoS pair layout
      // {double, u32, pad} in registers and store 64 bytes straight:
      //   unpacklo/hi give [v0 t0 v2 t2] / [v1 t1 v3 t3] per 128-bit
      //   lane; the two cross-lane permutes reassemble sequential pairs.
      const __m256i vals = _mm256_castpd_si256(v);
      const __m256i tag64 = _mm256_cvtepu32_epi64(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags + i)));
      const __m256i lo = _mm256_unpacklo_epi64(vals, tag64);
      const __m256i hi = _mm256_unpackhi_epi64(vals, tag64);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + kept),
                          _mm256_permute2x128_si256(lo, hi, 0x20));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + kept + 2),
                          _mm256_permute2x128_si256(lo, hi, 0x31));
      kept += 4;
      continue;
    }
    if (mask == 0) continue;
    // Mixed group: branchless emit, mask bits as cursor increments.
    out[kept] = {values[i], tags[i]};
    kept += mask & 1;
    out[kept] = {values[i + 1], tags[i + 1]};
    kept += (mask >> 1) & 1;
    out[kept] = {values[i + 2], tags[i + 2]};
    kept += (mask >> 2) & 1;
    out[kept] = {values[i + 3], tags[i + 3]};
    kept += (mask >> 3) & 1;
  }
  for (; i < count; ++i) {
    out[kept] = {values[i], tags[i]};
    kept += values[i] >= threshold ? 1 : 0;
  }
  return kept;
}

}  // namespace

// `extern` because namespace-scope const defaults to internal linkage
// and the dispatcher in simd.cpp links against this table.
extern const Kernels kAvx2Kernels;
const Kernels kAvx2Kernels{SquareAccumulateAvx2, SumAvx2, DivideAvx2,
                           FilterGeAvx2};

}  // namespace hobbit::common::simd
