// arena.cpp — the slow (new-chunk) path of the bump allocator.  This TU
// builds with warnings-as-errors (see src/common/CMakeLists.txt), which
// also puts arena.h itself under -Werror.
#include "common/arena.h"

#include <algorithm>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace hobbit::common {

void Arena::AdviseHugePages(const Chunk& chunk) const {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (!huge_pages_ || chunk.usable < kHugePageBytes) return;
  // madvise wants page granularity; new[] storage is not page-aligned,
  // so advise the page-aligned interior of the usable region.  Advisory
  // only — failures (THP disabled, old kernel) are deliberately ignored.
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return;
  const auto page_size = static_cast<std::uintptr_t>(page);
  const auto base =
      reinterpret_cast<std::uintptr_t>(chunk.data.get() + chunk.origin);
  const std::uintptr_t lo = AlignUp(base, page_size);
  const std::uintptr_t hi = (base + chunk.usable) & ~(page_size - 1);
  if (hi > lo) {
    (void)::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
  }
#else
  (void)chunk;
#endif
}

void* Arena::AllocateSlow(std::size_t bytes, std::size_t alignment) {
  if (alignment == 0 || (alignment & (alignment - 1)) != 0 ||
      alignment > kMaxAlignment) {
    throw std::bad_alloc();
  }
  // Try the retained chunks first (after a Reset the whole chain is
  // reusable); chunks too small for this request are skipped, not freed —
  // a later small allocation can still land in them on the next pass.
  while (chunk_index_ + 1 < chunks_.size()) {
    ++chunk_index_;
    cursor_ = 0;
    const Chunk& chunk = chunks_[chunk_index_];
    if (bytes <= chunk.usable) {
      cursor_ = bytes;
      allocated_ += bytes;
      return chunk.data.get() + chunk.origin;
    }
  }
  // Grow: double the last chunk (capped) and never below the request.
  // Raw new[] storage is only guaranteed 16-byte alignment, so each
  // chunk over-allocates by one cache line and bumps from a 64-aligned
  // `origin`; offset alignment then equals address alignment for every
  // supported request.
  const std::size_t grow =
      chunks_.empty() ? first_chunk_bytes_
                      : std::min(chunks_.back().usable * 2, kMaxChunkBytes);
  const std::size_t raw = std::max(grow, bytes) + kMaxAlignment;
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(raw);
  const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
  chunk.origin = AlignUp(base, kMaxAlignment) - base;
  chunk.usable = raw - chunk.origin;
  AdviseHugePages(chunk);
  chunks_.push_back(std::move(chunk));
  chunk_index_ = chunks_.size() - 1;
  cursor_ = bytes;
  allocated_ += bytes;
  return chunks_[chunk_index_].data.get() + chunks_[chunk_index_].origin;
}

}  // namespace hobbit::common
