// small_vector.h — contiguous vector with inline storage for small sizes.
//
// The measurement hot path manipulates millions of tiny address sets: a
// destination's last-hop interfaces (almost always exactly one, a handful
// under per-flow diversity) and the running intersection the prober keeps
// while testing the common-last-hop rule.  A std::vector heap-allocates
// for every one of them; SmallVector keeps up to `N` elements in the
// object itself and only touches the heap beyond that.
//
// Deliberately minimal: restricted to trivially copyable element types
// (addresses are), pointer iterators, and the operations the probing and
// classification code actually uses.  Spilled storage never shrinks back
// inline, matching std::vector's capacity behaviour.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <type_traits>

namespace hobbit::common {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable types");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using size_type = std::size_t;

  SmallVector() = default;
  SmallVector(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
  }
  template <typename It>
  SmallVector(It first, It last) {
    assign(first, last);
  }
  SmallVector(const SmallVector& other) {
    assign(other.begin(), other.end());
  }
  SmallVector(SmallVector&& other) noexcept { StealFrom(other); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      ReleaseHeap();
      StealFrom(other);
    }
    return *this;
  }
  SmallVector& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }
  ~SmallVector() { ReleaseHeap(); }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  iterator begin() { return data_; }
  const_iterator begin() const { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator end() const { return data_ + size_; }

  size_type size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_type capacity() const { return capacity_; }

  T& operator[](size_type i) { return data_[i]; }
  const T& operator[](size_type i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(size_type wanted) {
    if (wanted > capacity_) Grow(wanted);
  }

  void push_back(const T& value) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    data_[size_++] = value;
  }

  /// Inserts `value` before `pos`; returns the iterator at the inserted
  /// element.  Pointers are invalidated on growth, like std::vector.
  iterator insert(const_iterator pos, const T& value) {
    const size_type at = static_cast<size_type>(pos - data_);
    if (size_ == capacity_) Grow(capacity_ * 2);
    std::memmove(data_ + at + 1, data_ + at, (size_ - at) * sizeof(T));
    data_[at] = value;
    ++size_;
    return data_ + at;
  }

  iterator erase(const_iterator first, const_iterator last) {
    const size_type at = static_cast<size_type>(first - data_);
    const size_type count = static_cast<size_type>(last - first);
    std::memmove(data_ + at, data_ + at + count,
                 (size_ - at - count) * sizeof(T));
    size_ -= count;
    return data_ + at;
  }

  void pop_back() { --size_; }

  void resize(size_type wanted) {
    reserve(wanted);
    for (size_type i = size_; i < wanted; ++i) data_[i] = T{};
    size_ = wanted;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  void Grow(size_type wanted) {
    const size_type next = std::max(wanted, capacity_ * 2);
    T* fresh = new T[next];
    std::memcpy(fresh, data_, size_ * sizeof(T));
    ReleaseHeap();
    data_ = fresh;
    capacity_ = next;
  }

  void ReleaseHeap() {
    if (data_ != inline_) delete[] data_;
  }

  /// Takes other's heap buffer or copies its inline elements; leaves
  /// `other` empty and inline either way.
  void StealFrom(SmallVector& other) {
    if (other.data_ != other.inline_) {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_;
      other.capacity_ = N;
    } else {
      data_ = inline_;
      capacity_ = N;
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
      size_ = other.size_;
    }
    other.size_ = 0;
  }

  T inline_[N];
  T* data_ = inline_;
  size_type size_ = 0;
  size_type capacity_ = N;
};

}  // namespace hobbit::common
