#include "common/parallel.h"

#include <algorithm>

namespace hobbit::common {
namespace {

// Set while a thread is executing a shard body; a nested ForEach from
// inside a body runs serially inline instead of re-entering the pool
// (which would deadlock waiting for the worker it is running on).
thread_local bool tls_inside_pool = false;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int clamped = std::max(threads, 1);
  errors_.resize(static_cast<std::size_t>(clamped));
  workers_.reserve(static_cast<std::size_t>(clamped - 1));
  for (int w = 1; w < clamped; ++w) {
    workers_.emplace_back(
        [this, w] { WorkerLoop(static_cast<std::size_t>(w)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* job = nullptr;
    std::size_t shards = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
      shards = job_shards_;
    }
    std::exception_ptr error;
    if (worker_index < shards) {
      tls_inside_pool = true;
      try {
        (*job)(worker_index, shards);
      } catch (...) {
        error = std::current_exception();
      }
      tls_inside_pool = false;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error) errors_[worker_index] = error;
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ForEachShard(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t shards =
      std::min<std::size_t>(static_cast<std::size_t>(thread_count()), count);
  if (shards == 1 || tls_inside_pool) {
    // Serial path (single shard, or a nested call from inside a body):
    // one shard sees every item, in index order.
    body(0, 1);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &body;
    job_shards_ = shards;
    pending_ = workers_.size();
    std::fill(errors_.begin(), errors_.end(), nullptr);
    ++epoch_;
  }
  work_cv_.notify_all();
  // The calling thread is shard 0.
  tls_inside_pool = true;
  try {
    body(0, shards);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  tls_inside_pool = false;
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  for (std::exception_ptr& error : errors_) {
    if (error) {
      std::exception_ptr first = error;
      std::fill(errors_.begin(), errors_.end(), nullptr);
      std::rethrow_exception(first);
    }
  }
}

void ThreadPool::ForEach(std::size_t count,
                         const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  ForEachShard(count, [&](std::size_t shard, std::size_t shard_count) {
    for (std::size_t i = shard; i < count; i += shard_count) body(i);
  });
}

void ForEach(ThreadPool* pool, std::size_t count,
             const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    pool->ForEach(count, body);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) body(i);
}

void ForEachShard(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (pool != nullptr) {
    pool->ForEachShard(count, body);
    return;
  }
  if (count > 0) body(0, 1);
}

}  // namespace hobbit::common
