#include "common/parallel.h"

#include <algorithm>

namespace hobbit::common {
namespace {

// Set while a thread is executing a shard body; a nested dispatch from
// inside a body runs serially inline instead of re-entering the pool
// (which would deadlock waiting for the worker it is running on).
thread_local bool tls_inside_pool = false;

// How many epoch polls a waiter performs before parking on the condvar.
// MCL-style callers issue dozens of sub-millisecond dispatches back to
// back; ~10k pause-loop iterations (a few microseconds) bridge the gap
// between successive dispatches without measurable burn.
constexpr int kSpinIterations = 1 << 13;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int clamped = std::max(threads, 1);
  const unsigned hw = std::thread::hardware_concurrency();
  spin_allowed_ = hw != 0 && static_cast<unsigned>(clamped) <= hw;
  errors_.resize(static_cast<std::size_t>(clamped));
  workers_.reserve(static_cast<std::size_t>(clamped - 1));
  for (int w = 1; w < clamped; ++w) {
    workers_.emplace_back(
        [this, w] { WorkerLoop(static_cast<std::size_t>(w)); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    // Taking the lock orders the store before any in-flight parker's
    // predicate check; spinners observe the atomic directly.
    std::lock_guard<std::mutex> lock(mutex_);
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InsidePoolBody() { return tls_inside_pool; }

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    // Wait for a new epoch: bounded spin, then park.
    std::uint64_t epoch;
    int spins_left = spin_allowed_ ? kSpinIterations : 0;
    for (;;) {
      epoch = epoch_.load(std::memory_order_seq_cst);
      if (epoch != seen_epoch) break;
      if (stop_.load(std::memory_order_seq_cst)) return;
      if (spins_left > 0) {
        --spins_left;
        CpuRelax();
        continue;
      }
      parked_workers_.fetch_add(1, std::memory_order_seq_cst);
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] {
          return stop_.load(std::memory_order_seq_cst) ||
                 epoch_.load(std::memory_order_seq_cst) != seen_epoch;
        });
      }
      parked_workers_.fetch_sub(1, std::memory_order_seq_cst);
      spins_left = spin_allowed_ ? kSpinIterations : 0;
    }
    seen_epoch = epoch;

    // The epoch load (seq_cst) acquires the job fields published before
    // the dispatcher's epoch bump.
    auto* fn = job_fn_;
    void* context = job_context_;
    const std::size_t shards = job_shards_;
    if (worker_index < shards) {
      std::exception_ptr error;
      tls_inside_pool = true;
      try {
        fn(context, worker_index, shards);
      } catch (...) {
        error = std::current_exception();
      }
      tls_inside_pool = false;
      if (error) errors_[worker_index] = error;
    }
    if (pending_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
      // Last worker done.  Dekker pairing with the caller: our
      // pending_ decrement precedes this load; the caller stores
      // caller_parked_ before re-checking pending_.
      if (caller_parked_.load(std::memory_order_seq_cst)) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_one();
      }
    }
  }
}

void ThreadPool::RethrowFirstError() {
  for (std::exception_ptr& error : errors_) {
    if (error) {
      std::exception_ptr first = error;
      std::fill(errors_.begin(), errors_.end(), nullptr);
      std::rethrow_exception(first);
    }
  }
}

void ThreadPool::DispatchRaw(std::size_t shards,
                             void (*fn)(void*, std::size_t, std::size_t),
                             void* context) {
  // Publish the job, then bump the epoch (the release point).
  job_fn_ = fn;
  job_context_ = context;
  job_shards_ = shards;
  pending_.store(workers_.size(), std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  // Wake only if somebody actually parked.  A worker that decides to
  // park after this load registers in parked_workers_ (seq_cst) and
  // then re-checks the epoch under the lock, so it cannot miss the new
  // job; see the header comment on the pairing.
  if (parked_workers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    work_cv_.notify_all();
  }

  // The calling thread is shard 0.
  tls_inside_pool = true;
  try {
    fn(context, 0, shards);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  tls_inside_pool = false;

  // Wait for the workers: bounded spin, then park on done_cv_.
  int spins_left = spin_allowed_ ? kSpinIterations : 0;
  while (pending_.load(std::memory_order_seq_cst) != 0) {
    if (spins_left > 0) {
      --spins_left;
      CpuRelax();
      continue;
    }
    caller_parked_.store(true, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] {
        return pending_.load(std::memory_order_seq_cst) == 0;
      });
    }
    caller_parked_.store(false, std::memory_order_seq_cst);
    break;
  }
  RethrowFirstError();
}

}  // namespace hobbit::common
