// simd.cpp — dispatch plumbing, the scalar reference kernels, and the
// SSE2 tier (baseline ISA on x86-64, so it lives in this ordinary TU).
// The AVX2 tier is in simd_avx2.cpp, the only TU built with -mavx2.
#include "common/simd.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define HOBBIT_SIMD_X86_64 1
#include <emmintrin.h>
#else
#define HOBBIT_SIMD_X86_64 0
#endif

namespace hobbit::common::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar tier — the bit-exactness reference.  The reduction order here
// (LaneAccumulator) *defines* the contract the vector tiers must match.

double SquareAccumulateScalar(double* values, std::size_t count) {
  LaneAccumulator acc;
  for (std::size_t i = 0; i < count; ++i) {
    const double squared = values[i] * values[i];
    values[i] = squared;
    acc.Add(i, squared);
  }
  return acc.Combine();
}

double SumScalar(const double* values, std::size_t count) {
  LaneAccumulator acc;
  for (std::size_t i = 0; i < count; ++i) acc.Add(i, values[i]);
  return acc.Combine();
}

void DivideScalar(double* values, std::size_t count, double divisor) {
  for (std::size_t i = 0; i < count; ++i) values[i] /= divisor;
}

std::size_t FilterGeScalar(const double* values, const std::uint32_t* tags,
                           std::size_t count, double threshold,
                           std::pair<double, std::uint32_t>* out) {
  // Branchless emit: always write the candidate pair at the cursor and
  // advance only when it qualifies.  MCL prune scans hover around
  // half-kept thresholds where a conditional store mispredicts ~every
  // other element; the unconditional store is dependency-free.  (`out`
  // has room for `count` pairs, so the dead writes are in bounds, and
  // slots at/after the returned count are scratch by contract.)
  std::size_t kept = 0;
  for (std::size_t i = 0; i < count; ++i) {
    out[kept] = {values[i], tags[i]};
    kept += values[i] >= threshold ? 1 : 0;
  }
  return kept;
}

constexpr Kernels kScalarKernels{SquareAccumulateScalar, SumScalar,
                                 DivideScalar, FilterGeScalar};

#if HOBBIT_SIMD_X86_64

// ---------------------------------------------------------------------------
// SSE2 tier.  Four 2-lane accumulators cover the same 8 logical lanes as
// the scalar reference: S0 holds lanes {0,1}, S1 {2,3}, S2 {4,5},
// S3 {6,7}; storing them back in that order reproduces lane[0..7]
// exactly, so the combine is shared with LaneAccumulator.

double SquareAccumulateSse2(double* values, std::size_t count) {
  __m128d s0 = _mm_setzero_pd();
  __m128d s1 = _mm_setzero_pd();
  __m128d s2 = _mm_setzero_pd();
  __m128d s3 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + kSumLanes <= count; i += kSumLanes) {
    __m128d v0 = _mm_loadu_pd(values + i);
    __m128d v1 = _mm_loadu_pd(values + i + 2);
    __m128d v2 = _mm_loadu_pd(values + i + 4);
    __m128d v3 = _mm_loadu_pd(values + i + 6);
    v0 = _mm_mul_pd(v0, v0);
    v1 = _mm_mul_pd(v1, v1);
    v2 = _mm_mul_pd(v2, v2);
    v3 = _mm_mul_pd(v3, v3);
    _mm_storeu_pd(values + i, v0);
    _mm_storeu_pd(values + i + 2, v1);
    _mm_storeu_pd(values + i + 4, v2);
    _mm_storeu_pd(values + i + 6, v3);
    s0 = _mm_add_pd(s0, v0);
    s1 = _mm_add_pd(s1, v1);
    s2 = _mm_add_pd(s2, v2);
    s3 = _mm_add_pd(s3, v3);
  }
  LaneAccumulator acc;
  _mm_storeu_pd(acc.lane + 0, s0);
  _mm_storeu_pd(acc.lane + 2, s1);
  _mm_storeu_pd(acc.lane + 4, s2);
  _mm_storeu_pd(acc.lane + 6, s3);
  for (; i < count; ++i) {
    const double squared = values[i] * values[i];
    values[i] = squared;
    acc.Add(i, squared);
  }
  return acc.Combine();
}

double SumSse2(const double* values, std::size_t count) {
  __m128d s0 = _mm_setzero_pd();
  __m128d s1 = _mm_setzero_pd();
  __m128d s2 = _mm_setzero_pd();
  __m128d s3 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + kSumLanes <= count; i += kSumLanes) {
    s0 = _mm_add_pd(s0, _mm_loadu_pd(values + i));
    s1 = _mm_add_pd(s1, _mm_loadu_pd(values + i + 2));
    s2 = _mm_add_pd(s2, _mm_loadu_pd(values + i + 4));
    s3 = _mm_add_pd(s3, _mm_loadu_pd(values + i + 6));
  }
  LaneAccumulator acc;
  _mm_storeu_pd(acc.lane + 0, s0);
  _mm_storeu_pd(acc.lane + 2, s1);
  _mm_storeu_pd(acc.lane + 4, s2);
  _mm_storeu_pd(acc.lane + 6, s3);
  for (; i < count; ++i) acc.Add(i, values[i]);
  return acc.Combine();
}

void DivideSse2(double* values, std::size_t count, double divisor) {
  const __m128d d = _mm_set1_pd(divisor);
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    _mm_storeu_pd(values + i, _mm_div_pd(_mm_loadu_pd(values + i), d));
  }
  for (; i < count; ++i) values[i] /= divisor;
}

std::size_t FilterGeSse2(const double* values, const std::uint32_t* tags,
                         std::size_t count, double threshold,
                         std::pair<double, std::uint32_t>* out) {
  // Vector compare, branchless scalar emit (see FilterGeScalar): the
  // mask bits become cursor increments, never branches.
  const __m128d t = _mm_set1_pd(threshold);
  std::size_t kept = 0;
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const int mask =
        _mm_movemask_pd(_mm_cmpge_pd(_mm_loadu_pd(values + i), t));
    out[kept] = {values[i], tags[i]};
    kept += mask & 1;
    out[kept] = {values[i + 1], tags[i + 1]};
    kept += (mask >> 1) & 1;
  }
  for (; i < count; ++i) {
    out[kept] = {values[i], tags[i]};
    kept += values[i] >= threshold ? 1 : 0;
  }
  return kept;
}

constexpr Kernels kSse2Kernels{SquareAccumulateSse2, SumSse2, DivideSse2,
                               FilterGeSse2};

#endif  // HOBBIT_SIMD_X86_64

std::atomic<int> g_active_tier{-1};

}  // namespace

#if HOBBIT_HAVE_AVX2_TU
// Defined in simd_avx2.cpp (the -mavx2 TU); only reachable behind the
// runtime cpuid probe below.
extern const Kernels kAvx2Kernels;
#endif

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
  }
  return "scalar";
}

Tier MaxSupportedTier() {
#if HOBBIT_SIMD_X86_64
#if HOBBIT_HAVE_AVX2_TU && (defined(__GNUC__) || defined(__clang__))
  static const bool has_avx2 = __builtin_cpu_supports("avx2");
  if (has_avx2) return Tier::kAvx2;
#endif
  return Tier::kSse2;
#else
  return Tier::kScalar;
#endif
}

Tier ResolveTier(const char* request, Tier supported) {
  if (request == nullptr || *request == '\0') return supported;
  Tier wanted = supported;
  if (std::strcmp(request, "scalar") == 0) {
    wanted = Tier::kScalar;
  } else if (std::strcmp(request, "sse2") == 0) {
    wanted = Tier::kSse2;
  } else if (std::strcmp(request, "avx2") == 0) {
    wanted = Tier::kAvx2;
  }
  return static_cast<int>(wanted) < static_cast<int>(supported) ? wanted
                                                                : supported;
}

Tier ActiveTier() {
  int tier = g_active_tier.load(std::memory_order_relaxed);
  if (tier < 0) {
    // Benign first-use race: every initializer resolves the same value.
    tier = static_cast<int>(
        ResolveTier(std::getenv("HOBBIT_SIMD"), MaxSupportedTier()));
    g_active_tier.store(tier, std::memory_order_relaxed);
  }
  return static_cast<Tier>(tier);
}

Tier SetActiveTier(Tier tier) {
  const Tier supported = MaxSupportedTier();
  if (static_cast<int>(tier) > static_cast<int>(supported)) tier = supported;
  if (static_cast<int>(tier) < 0) tier = Tier::kScalar;
  g_active_tier.store(static_cast<int>(tier), std::memory_order_relaxed);
  return tier;
}

const Kernels& KernelsFor(Tier tier) {
  if (static_cast<int>(tier) > static_cast<int>(MaxSupportedTier())) {
    tier = MaxSupportedTier();
  }
  switch (tier) {
    case Tier::kScalar:
      return kScalarKernels;
#if HOBBIT_SIMD_X86_64
    case Tier::kSse2:
      return kSse2Kernels;
#if HOBBIT_HAVE_AVX2_TU
    case Tier::kAvx2:
      return kAvx2Kernels;
#endif
#endif
    default:
      return kScalarKernels;
  }
}

std::string CpuFeatureString() {
  switch (MaxSupportedTier()) {
    case Tier::kAvx2:
      return "avx2+sse2";
    case Tier::kSse2:
      return "sse2";
    case Tier::kScalar:
      break;
  }
  return "scalar-only";
}

}  // namespace hobbit::common::simd
