// bounded_queue.h — the fixed-capacity handoff between pipeline stages.
//
// The streaming campaign (src/stream) turns the batch pipeline into
// producer/consumer stages; this queue is the joint between them and the
// thing that makes the whole arrangement *bounded-memory*: a producer
// that outruns its consumer parks in Push until a slot frees, so the
// number of in-flight items — and with them the observation buffers they
// carry — can never exceed the configured capacity.  No spinning, no
// unbounded growth, no dropped items.
//
// Semantics:
//  * Push blocks while the queue is full; returns false only when the
//    queue was closed (the item is then dropped — producers treat that
//    as "stop producing").
//  * Pop blocks while the queue is empty; returns nullopt once the
//    queue is closed AND drained, so consumers can use
//    `while (auto item = queue.Pop())` as their whole loop.
//  * Close is idempotent and wakes every waiter.  Items already queued
//    are still delivered (close-then-drain, never close-and-discard).
//
// Multiple producers and multiple consumers are supported (one mutex
// covers the ring); the streaming pipeline uses it many-producers /
// one-consumer.  FIFO order holds per queue, not per producer — the
// consumer must not rely on cross-producer arrival order, which is why
// the stream aggregator is order-independent by construction.
//
// `counters()` exposes the backpressure telemetry the per-stage
// PipelineStats-style reporting wants: totals, how often each side had
// to wait, and the peak depth actually reached.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace hobbit::common {

/// Backpressure telemetry of one queue, a consistent snapshot.
struct QueueCounters {
  std::uint64_t pushed = 0;      ///< items accepted by Push
  std::uint64_t popped = 0;      ///< items delivered by Pop
  std::uint64_t push_waits = 0;  ///< Push calls that found the ring full
  std::uint64_t pop_waits = 0;   ///< Pop calls that found the ring empty
  std::size_t peak_depth = 0;    ///< maximum items resident at once
};

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` < 1 clamps to 1 (a zero-slot queue could never move an
  /// item: Push would wait on Pop and Pop on Push).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {
    ring_.resize(capacity_);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Blocks while full.  Returns true when the item was enqueued, false
  /// when the queue is closed (item dropped).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == capacity_ && !closed_) {
      ++counters_.push_waits;
      not_full_.wait(lock, [this] { return size_ < capacity_ || closed_; });
    }
    if (closed_) return false;
    ring_[(head_ + size_) % capacity_] = std::move(item);
    ++size_;
    ++counters_.pushed;
    if (size_ > counters_.peak_depth) counters_.peak_depth = size_;
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty.  Returns nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == 0 && !closed_) {
      ++counters_.pop_waits;
      not_empty_.wait(lock, [this] { return size_ > 0 || closed_; });
    }
    if (size_ == 0) return std::nullopt;  // closed and drained
    T item = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    ++counters_.popped;
    not_full_.notify_one();
    return item;
  }

  /// Ends the stream: producers get false, consumers drain then nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  QueueCounters counters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
  QueueCounters counters_;
};

}  // namespace hobbit::common
