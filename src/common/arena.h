// arena.h — bump allocation for hot-path scratch and edge buffers.
//
// The similarity-graph build and the measurement fast path allocate many
// short-lived, variably-sized buffers per shard (edge lists, candidate
// scratch, memo tables).  The general-purpose allocator charges a lock,
// a size-class search and cache-cold metadata for each of them; an Arena
// charges a pointer bump.  The intended shape is one Arena per shard
// (`common::PerShard<Arena>`), reset between campaigns, so parallel
// stages never contend on malloc and objects that are freed together are
// also laid out together.
//
// Rules of the house:
//  * Allocations are never individually freed — `Reset()` rewinds the
//    whole arena (retaining its chunks for reuse), and the destructor
//    releases the memory.  Only trivially destructible payloads belong
//    here; `AllocateArray`/`ArenaVector` enforce that statically.
//  * An Arena is single-owner mutable state, exactly like RouteMemo: one
//    arena per thread/shard, never shared concurrently.
//  * Alignment requests must be powers of two (up to one cache line).
//
// `ArenaVector<T>` is the growable-buffer companion: a segment chain in
// arena storage, so growth never copies elements and `push_back` is a
// bump plus a bounds check.  Elements are iterated/stitched in insertion
// order via `AppendTo`/`ForEach`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace hobbit::common {

class Arena {
 public:
  /// First chunk size; later chunks double up to kMaxChunkBytes.
  static constexpr std::size_t kDefaultChunkBytes = 1u << 16;
  static constexpr std::size_t kMaxChunkBytes = 1u << 23;
  /// Largest honored alignment (one cache line).
  static constexpr std::size_t kMaxAlignment = 64;
  /// Chunks at least this large are eligible for transparent huge pages
  /// (the kernel's THP unit on x86-64).
  static constexpr std::size_t kHugePageBytes = 2u << 20;

  struct Options {
    std::size_t first_chunk_bytes = kDefaultChunkBytes;
    /// Advise the kernel (madvise(MADV_HUGEPAGE)) to back chunks of at
    /// least kHugePageBytes with transparent huge pages, cutting TLB
    /// misses on large sweeps.  Purely advisory: a refusal (non-Linux,
    /// THP disabled) changes nothing but paging granularity.
    bool huge_pages = false;
  };

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes)
      : first_chunk_bytes_(first_chunk_bytes == 0 ? kDefaultChunkBytes
                                                  : first_chunk_bytes) {}

  explicit Arena(const Options& options)
      : first_chunk_bytes_(options.first_chunk_bytes == 0
                               ? kDefaultChunkBytes
                               : options.first_chunk_bytes),
        huge_pages_(options.huge_pages) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `alignment` (a power of two,
  /// <= kMaxAlignment).  Zero-sized requests return a valid pointer.
  /// Never fails except by throwing std::bad_alloc.
  void* Allocate(std::size_t bytes, std::size_t alignment) {
    // cursor_ is an offset from the current chunk's 64-aligned origin,
    // so offset alignment == address alignment for every request up to
    // kMaxAlignment.
    std::size_t aligned = AlignUp(cursor_, alignment);
    if (chunk_index_ < chunks_.size() &&
        aligned + bytes <= chunks_[chunk_index_].usable) {
      const Chunk& chunk = chunks_[chunk_index_];
      cursor_ = aligned + bytes;
      allocated_ += bytes;
      return chunk.data.get() + chunk.origin + aligned;
    }
    return AllocateSlow(bytes, alignment);
  }

  /// `count` value-initialized Ts.  T must be trivially destructible —
  /// Reset()/~Arena() never run destructors.
  template <typename T>
  T* AllocateArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage never runs destructors");
    T* out = static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (out + i) T();
    return out;
  }

  /// Rewinds to empty, retaining every chunk for reuse.  All previously
  /// returned pointers become invalid.
  void Reset() {
    chunk_index_ = 0;
    cursor_ = 0;
    allocated_ = 0;
  }

  /// Whether chunks are advised onto transparent huge pages.
  bool huge_pages() const { return huge_pages_; }

  /// Total bytes handed out since the last Reset (excludes padding).
  std::size_t allocated_bytes() const { return allocated_; }
  /// Total bytes held in chunks (high-water capacity).
  std::size_t reserved_bytes() const {
    std::size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.usable;
    return total;
  }

  static constexpr std::size_t AlignUp(std::size_t value,
                                       std::size_t alignment) {
    return (value + alignment - 1) & ~(alignment - 1);
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t origin = 0;  ///< first 64-aligned offset within data
    std::size_t usable = 0;  ///< bytes available at data + origin
  };

  void* AllocateSlow(std::size_t bytes, std::size_t alignment);
  /// Advises the page-aligned interior of `chunk` onto huge pages (no-op
  /// off Linux or when the chunk is below kHugePageBytes).
  void AdviseHugePages(const Chunk& chunk) const;

  std::vector<Chunk> chunks_;
  std::size_t first_chunk_bytes_;
  bool huge_pages_ = false;
  std::size_t chunk_index_ = 0;  ///< chunk currently bumped into
  std::size_t cursor_ = 0;       ///< offset within the current chunk
  std::size_t allocated_ = 0;
};

/// A growable buffer of trivially destructible Ts in arena storage.  A
/// chain of geometrically growing segments: growth never moves elements,
/// so `push_back` invalidates nothing, and the only way out is an
/// in-order copy (`AppendTo`) or walk (`ForEach`) — which is exactly the
/// stitch-shard-buffers-in-order access pattern of the parallel stages.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_destructible_v<T>,
                "arena storage never runs destructors");

 public:
  explicit ArenaVector(Arena* arena, std::size_t first_capacity = 16)
      : arena_(arena),
        first_capacity_(first_capacity == 0 ? 16 : first_capacity) {}

  void push_back(const T& value) {
    if (tail_ == nullptr || tail_->count == tail_->capacity) Grow();
    new (tail_->data + tail_->count) T(value);
    ++tail_->count;
    ++size_;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Appends all elements, in insertion order, to `out`.
  void AppendTo(std::vector<T>& out) const {
    for (const Segment* s = head_; s != nullptr; s = s->next) {
      out.insert(out.end(), s->data, s->data + s->count);
    }
  }

  /// Visits all elements in insertion order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Segment* s = head_; s != nullptr; s = s->next) {
      for (std::size_t i = 0; i < s->count; ++i) fn(s->data[i]);
    }
  }

 private:
  struct Segment {
    T* data = nullptr;
    std::size_t capacity = 0;
    std::size_t count = 0;
    Segment* next = nullptr;
  };

  void Grow() {
    const std::size_t capacity =
        tail_ == nullptr ? first_capacity_ : tail_->capacity * 2;
    auto* segment = static_cast<Segment*>(
        arena_->Allocate(sizeof(Segment), alignof(Segment)));
    new (segment) Segment();
    segment->data = static_cast<T*>(
        arena_->Allocate(capacity * sizeof(T), alignof(T)));
    segment->capacity = capacity;
    if (tail_ == nullptr) {
      head_ = segment;
    } else {
      tail_->next = segment;
    }
    tail_ = segment;
  }

  Arena* arena_;
  std::size_t first_capacity_;
  Segment* head_ = nullptr;
  Segment* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace hobbit::common
