#include "scenario/artifacts.h"

#include <algorithm>
#include <utility>

namespace hobbit::scenario {
namespace {

// Distinct salts per artifact so the draws are independent streams of
// one seed.
constexpr std::uint64_t kLossSalt = 0x10555ULL;
constexpr std::uint64_t kRateLimitSalt = 0x5113ECEULL;
constexpr std::uint64_t kLoopSelectSalt = 0x100D5E1ULL;
constexpr std::uint64_t kLoopShapeSalt = 0x100D5A9ULL;

// Synthetic loop routers live in 198.18.0.0/15 (RFC 2544 benchmarking
// space — guaranteed disjoint from the generated topology's address
// plan), one small cycle per looped destination.
constexpr std::uint32_t kLoopBase = 0xC6120000u;  // 198.18.0.0
constexpr std::uint32_t kLoopSpan = 0x0001FFFFu;  // within the /15

}  // namespace

ArtifactInjector::ArtifactInjector(const ArtifactConfig& config)
    : config_(config),
      seed_hash_state_(
          netsim::StableHashFrom(netsim::kStableHashInit, {config.seed})) {}

InjectorCounters ArtifactInjector::counters() const {
  InjectorCounters counters;
  counters.probe_losses = probe_losses_.load(std::memory_order_relaxed);
  counters.rate_limit_silences =
      rate_limit_silences_.load(std::memory_order_relaxed);
  counters.loop_rewrites = loop_rewrites_.load(std::memory_order_relaxed);
  return counters;
}

void ArtifactInjector::Rewrite(const netsim::ProbeSpec& probe,
                               const netsim::ArtifactContext& context,
                               netsim::ProbeReply& reply) const {
  const std::uint64_t dst = probe.destination.value();

  // 1. Forwarding loop: a per-destination cycle starting at a
  //    deterministic onset hop.  Only destinations whose true path
  //    reaches the onset can loop there; every probe with ttl >= onset
  //    then sees the cycle instead of the path suffix (the destination
  //    becomes unreachable, as under a real loop).  Probes below the
  //    onset keep their true-prefix replies, and unroutable
  //    destinations (path_length 0) stay plain timeouts.
  if (config_.p_loop > 0.0 && context.path_length > 0) {
    const std::uint64_t select =
        netsim::StableHashFrom(seed_hash_state_, {dst, kLoopSelectSalt});
    if (netsim::HashToUnit(select) < config_.p_loop) {
      const int span =
          std::max(1, config_.loop_onset_max - config_.loop_onset_min + 1);
      const std::uint64_t shape =
          netsim::StableHashFrom(seed_hash_state_, {dst, kLoopShapeSalt});
      const int onset =
          config_.loop_onset_min + static_cast<int>(shape % span);
      if (context.path_length >= onset && probe.ttl >= onset) {
        const int cycle = 2 + static_cast<int>((shape >> 32) % 2);
        const std::uint32_t cycle_base =
            static_cast<std::uint32_t>(select >> 16) & kLoopSpan;
        const int position = (probe.ttl - onset) % cycle;
        reply.kind = netsim::ReplyKind::kTtlExceeded;
        reply.responder = netsim::Ipv4Address(
            kLoopBase | ((cycle_base + static_cast<std::uint32_t>(position)) &
                         kLoopSpan));
        reply.hop = probe.ttl;
        reply.reply_ttl = 255 - probe.ttl;
        reply.rtt_ms = 5.0 + static_cast<double>(probe.ttl);
        loop_rewrites_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // 2. Rate-limit silence: one draw per (router, destination) episode —
  //    deliberately serial-free, like the simulator's own bursty
  //    RouterResponds — so a limited hop stays an anonymous "*" for the
  //    whole enumeration of that destination.
  if (config_.p_rate_limit > 0.0 &&
      reply.kind == netsim::ReplyKind::kTtlExceeded) {
    const std::uint64_t h = netsim::StableHashFrom(
        seed_hash_state_, {reply.responder.value(), dst, kRateLimitSalt});
    if (netsim::HashToUnit(h) < config_.p_rate_limit) {
      reply = netsim::ProbeReply{};
      rate_limit_silences_.fetch_add(1, std::memory_order_relaxed);
      return;  // nothing left to lose
    }
  }

  // 3. Per-packet probe loss: i.i.d. across packets (the serial is in
  //    the hash), so retransmissions and repeat flows draw fresh.
  if (config_.p_probe_loss > 0.0 &&
      reply.kind != netsim::ReplyKind::kTimeout) {
    const std::uint64_t h = netsim::StableHashFrom(
        seed_hash_state_,
        {dst, static_cast<std::uint64_t>(probe.ttl), probe.flow_id,
         probe.serial, kLossSalt});
    if (netsim::HashToUnit(h) < config_.p_probe_loss) {
      reply = netsim::ProbeReply{};
      probe_losses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::size_t InjectRouteChurn(netsim::Topology& topology, netsim::Rng& rng,
                             std::size_t flips) {
  const std::size_t routers = topology.router_count();
  if (routers == 0) return 0;
  const netsim::Topology& view = topology;  // const reads don't bump epochs
  std::size_t applied = 0;
  for (std::size_t f = 0; f < flips; ++f) {
    bool flipped = false;
    for (std::size_t attempt = 0; attempt < 32 && !flipped; ++attempt) {
      const auto id = static_cast<netsim::RouterId>(rng.NextBelow(routers));
      const std::vector<netsim::FibEntry>& entries =
          view.router(id).fib.entries();
      if (entries.empty()) continue;
      const std::size_t start = rng.NextBelow(entries.size());
      for (std::size_t k = 0; k < entries.size(); ++k) {
        const netsim::FibEntry& entry = entries[(start + k) % entries.size()];
        if (entry.group.next_hops.size() < 2) continue;
        // Copy before the mutable re-Add: Fib::Add may reallocate the
        // entry storage `entry` points into.
        const netsim::Prefix prefix = entry.prefix;
        netsim::EcmpGroup group = entry.group;
        std::rotate(group.next_hops.begin(), group.next_hops.begin() + 1,
                    group.next_hops.end());
        topology.router(id).fib.Add(prefix, std::move(group));
        ++applied;
        flipped = true;
        break;
      }
    }
  }
  return applied;
}

std::size_t ReconfigureLoadBalancers(netsim::Topology& topology,
                                     netsim::Rng& rng, std::size_t groups,
                                     netsim::LbPolicy policy) {
  const std::size_t routers = topology.router_count();
  if (routers == 0) return 0;
  const netsim::Topology& view = topology;  // const reads don't bump epochs
  std::size_t applied = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    bool switched = false;
    for (std::size_t attempt = 0; attempt < 32 && !switched; ++attempt) {
      const auto id = static_cast<netsim::RouterId>(rng.NextBelow(routers));
      const std::vector<netsim::FibEntry>& entries =
          view.router(id).fib.entries();
      if (entries.empty()) continue;
      const std::size_t start = rng.NextBelow(entries.size());
      for (std::size_t k = 0; k < entries.size(); ++k) {
        const netsim::FibEntry& entry = entries[(start + k) % entries.size()];
        if (entry.group.next_hops.size() < 2 ||
            entry.group.policy == policy) {
          continue;
        }
        const netsim::Prefix prefix = entry.prefix;
        netsim::EcmpGroup group = entry.group;
        group.policy = policy;
        topology.router(id).fib.Add(prefix, std::move(group));
        ++applied;
        switched = true;
        break;
      }
    }
  }
  return applied;
}

}  // namespace hobbit::scenario
