// scenario.h — declarative, seed-reproducible adversity schedules.
//
// A ScenarioSpec is a script run against a campaign: reply-side artifact
// intensities (artifacts.h) that hold for the whole run, plus a list of
// events keyed by *wave index* — the same segment boundaries the
// streaming driver already exposes (stream.h's on_segment_boundary).
// Wave 0 fires before the campaign's setup stages, so the snapshot and
// calibration see the already-adverse world; waves 1, 2, ... fire
// between measurement waves of `segment` blocks, with no probe in
// flight.
//
// Because both runners — RunScenarioPipeline (batch, below) and
// RunScenarioStream (scenario_stream.h) — apply the same events at the
// same boundaries with RNGs forked per (seed, wave, event index), a
// scenario campaign is bit-identical across the two modes and across
// thread counts, exactly like the clean pipeline.  An empty spec with
// zero intensities reproduces core::RunPipeline bit for bit (the
// zero-intensity differential gate in tests/test_scenario.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hobbit/pipeline.h"
#include "netsim/internet.h"
#include "netsim/outage.h"
#include "scenario/artifacts.h"

namespace hobbit::scenario {

enum class ScenarioAction : std::uint8_t {
  kRouteChurn,       ///< InjectRouteChurn(count) — reroutes
  kLbReconfigure,    ///< ReconfigureLoadBalancers(count, policy)
  kOutageStart,      ///< prefix goes dark (OutageOverlay)
  kOutageEnd,        ///< prefix recovers
};

struct ScenarioEvent {
  ScenarioAction action = ScenarioAction::kRouteChurn;
  /// Wave the event fires at: 0 = before setup, k >= 1 = the boundary
  /// before measurement wave k.
  std::size_t wave = 0;
  /// 0 = fire once at `wave`; r > 0 = fire at wave, wave + r, wave + 2r,
  /// ... (recurring churn is the common case).
  std::size_t repeat = 0;
  /// Flip/switch count for kRouteChurn / kLbReconfigure.
  std::size_t count = 4;
  /// Target policy for kLbReconfigure (kPerPacket = false links).
  netsim::LbPolicy policy = netsim::LbPolicy::kPerPacket;
  /// Affected prefix for kOutageStart / kOutageEnd.
  netsim::Prefix prefix;
};

struct ScenarioSpec {
  /// Seeds the injector hashes and the per-event mutation RNGs
  /// (independent of the campaign seed, so the same adversity can be
  /// replayed under different measurement seeds).
  std::uint64_t seed = 1;
  ArtifactConfig artifacts;
  /// Blocks per measurement wave; 0 = a single wave (events beyond wave
  /// 0 then never fire).  Mirrors stream::StreamConfig::segment.
  std::size_t segment = 0;
  std::vector<ScenarioEvent> events;
};

/// What the scenario actually did to the run.
struct ScenarioStats {
  InjectorCounters injector;
  std::size_t events_fired = 0;
  std::size_t churn_flips = 0;
  std::size_t lb_reconfigured = 0;
  std::size_t outage_starts = 0;
  std::size_t outage_ends = 0;
  std::size_t waves = 0;  ///< measurement waves driven (batch runner)
};

/// Owns a scenario's runtime state against one Internet: installs the
/// ArtifactInjector and an OutageOverlay on the primary simulator at
/// construction, applies events at wave boundaries, and uninstalls both
/// on destruction.  Single-threaded use; ApplyWave must only run while
/// no probe is in flight (both runners guarantee that).
class ScenarioDriver {
 public:
  ScenarioDriver(netsim::Internet& internet, const ScenarioSpec& spec);
  ~ScenarioDriver();

  ScenarioDriver(const ScenarioDriver&) = delete;
  ScenarioDriver& operator=(const ScenarioDriver&) = delete;

  /// Fires every event due at `wave` (in spec order; each event's RNG is
  /// forked from (seed, wave, event index), so firing is reproducible
  /// regardless of what else the schedule contains).
  void ApplyWave(std::size_t wave);

  /// Counters so far (injector tallies are read live).
  ScenarioStats stats() const;
  ScenarioStats* mutable_stats() { return &stats_; }

 private:
  void RebuildOverlay();

  netsim::Internet& internet_;
  ScenarioSpec spec_;
  ArtifactInjector injector_;
  netsim::OutageOverlay overlay_;
  std::vector<netsim::Prefix> active_outages_;
  ScenarioStats stats_;
};

/// The batch pipeline under a scenario: PrepareCampaign on the
/// wave-0-adverse world, then the main measurement driven wave by wave
/// (same indices, same MeasurementRng forks as core::RunPipeline and the
/// streaming driver) with ApplyWave between waves.  With an empty spec
/// the result is bit-identical to core::RunPipeline(internet, config).
core::PipelineResult RunScenarioPipeline(netsim::Internet& internet,
                                         const core::PipelineConfig& config,
                                         const ScenarioSpec& spec,
                                         ScenarioStats* stats = nullptr);

}  // namespace hobbit::scenario
