#include "scenario/scenario_stream.h"

#include <cstddef>
#include <functional>
#include <utility>

namespace hobbit::scenario {

stream::StreamResult RunScenarioStream(netsim::Internet& internet,
                                       stream::StreamConfig config,
                                       const ScenarioSpec& spec,
                                       ScenarioStats* stats_out) {
  ScenarioDriver driver(internet, spec);
  driver.ApplyWave(0);

  if (spec.segment != 0) config.segment = spec.segment;
  std::function<void(std::size_t)> chained =
      std::move(config.on_segment_boundary);
  config.on_segment_boundary = [&driver, chained](std::size_t wave) {
    driver.ApplyWave(wave);
    if (chained) chained(wave);
  };

  stream::StreamResult result = stream::RunStreamCampaign(internet, config);
  if (stats_out != nullptr) *stats_out = driver.stats();
  return result;
}

}  // namespace hobbit::scenario
