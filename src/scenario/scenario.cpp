#include "scenario/scenario.h"

#include <algorithm>
#include <chrono>

#include "common/parallel.h"

namespace hobbit::scenario {
namespace {

constexpr std::uint64_t kEventRngSalt = 0x5CE4A410ULL;

bool FiresAt(const ScenarioEvent& event, std::size_t wave) {
  if (event.repeat == 0) return event.wave == wave;
  return wave >= event.wave && (wave - event.wave) % event.repeat == 0;
}

}  // namespace

ScenarioDriver::ScenarioDriver(netsim::Internet& internet,
                               const ScenarioSpec& spec)
    : internet_(internet), spec_(spec), injector_(spec.artifacts) {
  netsim::Simulator* simulator = internet_.simulator.get();
  simulator->SetReplyArtifacts(&injector_);
  simulator->SetOutageOverlay(&overlay_);
}

ScenarioDriver::~ScenarioDriver() {
  netsim::Simulator* simulator = internet_.simulator.get();
  simulator->SetReplyArtifacts(nullptr);
  simulator->SetOutageOverlay(nullptr);
}

void ScenarioDriver::RebuildOverlay() {
  overlay_.Clear();
  for (const netsim::Prefix& prefix : active_outages_) overlay_.Fail(prefix);
}

void ScenarioDriver::ApplyWave(std::size_t wave) {
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    const ScenarioEvent& event = spec_.events[i];
    if (!FiresAt(event, wave)) continue;
    // Forked per (seed, wave, event index): which events fire at other
    // waves cannot shift this one's draws.
    netsim::Rng rng = netsim::Rng(spec_.seed)
                          .Fork(netsim::StableHash({kEventRngSalt, wave, i}));
    switch (event.action) {
      case ScenarioAction::kRouteChurn:
        stats_.churn_flips +=
            InjectRouteChurn(internet_.topology, rng, event.count);
        break;
      case ScenarioAction::kLbReconfigure:
        stats_.lb_reconfigured += ReconfigureLoadBalancers(
            internet_.topology, rng, event.count, event.policy);
        break;
      case ScenarioAction::kOutageStart:
        active_outages_.push_back(event.prefix);
        RebuildOverlay();
        ++stats_.outage_starts;
        break;
      case ScenarioAction::kOutageEnd: {
        auto pos = std::find_if(
            active_outages_.begin(), active_outages_.end(),
            [&](const netsim::Prefix& p) {
              return p.base() == event.prefix.base() &&
                     p.length() == event.prefix.length();
            });
        if (pos != active_outages_.end()) active_outages_.erase(pos);
        RebuildOverlay();
        ++stats_.outage_ends;
        break;
      }
    }
    ++stats_.events_fired;
  }
}

ScenarioStats ScenarioDriver::stats() const {
  ScenarioStats stats = stats_;
  stats.injector = injector_.counters();
  return stats;
}

core::PipelineResult RunScenarioPipeline(netsim::Internet& internet,
                                         const core::PipelineConfig& config,
                                         const ScenarioSpec& spec,
                                         ScenarioStats* stats_out) {
  const netsim::Simulator* simulator = internet.simulator.get();
  common::PoolRef pool(config.pool, config.threads);

  ScenarioDriver driver(internet, spec);
  // Wave 0 before any probing: the snapshot and calibration stages see
  // the already-adverse world, in both this and the streaming runner.
  driver.ApplyWave(0);

  core::PipelineResult result;
  {
    core::CampaignSetup setup =
        core::PrepareCampaign(internet, config, simulator, pool.get());
    result.study_blocks = std::move(setup.study_blocks);
    result.calibration = std::move(setup.calibration);
    result.table = std::move(setup.table);
    result.stats = setup.stats;
  }

  // The main measurement, wave by wave — the same loop shape (and the
  // same boundary indices 1, 2, ...) as stream::RunStreamCampaign, and
  // the same per-index MeasurementRng forks as core::RunPipeline, so
  // all three agree whenever they run the same schedule.
  const auto measurement_start = std::chrono::steady_clock::now();
  {
    const std::uint64_t before = simulator->probes_sent();
    const std::size_t total = result.study_blocks.size();
    result.results.resize(total);
    const std::size_t segment =
        spec.segment == 0 ? (total == 0 ? 1 : total) : spec.segment;
    std::size_t done = 0;
    std::size_t segment_index = 0;
    while (done < total) {
      if (segment_index > 0) driver.ApplyWave(segment_index);
      const std::size_t count = std::min(segment, total - done);
      const std::size_t base = done;
      pool->ForEachChunk(count, 1, [&](common::ChunkRange chunk) {
        core::BlockProber prober(simulator, &result.table, config.prober);
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          const std::size_t index = base + i;
          result.results[index] = prober.ProbeBlock(
              result.study_blocks[index],
              core::MeasurementRng(config.seed, index));
        }
      });
      done += count;
      ++segment_index;
      ++driver.mutable_stats()->waves;
    }
    result.stats.probes_sent += simulator->probes_sent() - before;
  }
  result.stats.measurement_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    measurement_start)
          .count();
  if (stats_out != nullptr) *stats_out = driver.stats();
  return result;
}

}  // namespace hobbit::scenario
