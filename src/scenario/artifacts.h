// artifacts.h — deterministic measurement-artifact injectors.
//
// The classic traceroute pathologies of Viger et al. ("Detection,
// Understanding, and Prevention of Traceroute Measurement Artifacts"),
// modelled so Hobbit's classifier can be stress-tested against them:
//
//   * probe loss           — any reply deterministically dropped with
//                            probability p per packet;
//   * rate-limit silence   — TTL-exceeded replies suppressed per
//                            (router, destination) episode, turning the
//                            hop into an anonymous "*" for that whole
//                            enumeration (mirrors the simulator's bursty
//                            RouterResponds model);
//   * forwarding loops     — selected destinations answer from a
//                            synthetic loop of cycling router addresses
//                            past a per-destination onset hop, so
//                            probing above the onset sees the cycle
//                            instead of the true path suffix;
//   * false links          — not a reply rewrite at all: flipping ECMP
//                            groups to kPerPacket (see
//                            ReconfigureLoadBalancers below) makes
//                            successive probes of one flow cross
//                            different physical paths, the canonical
//                            false-link generator;
//   * route churn          — InjectRouteChurn (generalized out of
//                            src/stream) rotates next-hop preference
//                            like a reroute.
//
// Reply-side artifacts are a netsim::ReplyArtifacts decorator: pure
// stable-hash functions of (seed, probe, clean reply), so campaigns stay
// bit-identical across thread counts and across the batch/stream
// drivers.  Zero intensities leave every reply untouched.  Topology-side
// artifacts are mutators that go through the mutable accessors and so
// bump Topology::mutation_epoch(), keeping RouteMemo caches correct.
#pragma once

#include <atomic>
#include <cstdint>

#include "netsim/artifacts.h"
#include "netsim/rng.h"
#include "netsim/simulator.h"
#include "netsim/topology.h"

namespace hobbit::scenario {

/// Intensities of the reply-side injectors.  All default to zero =
/// artifact-free; an ArtifactInjector with this config is a no-op.
struct ArtifactConfig {
  std::uint64_t seed = 1;
  /// Per-packet probe loss: any non-timeout reply becomes a timeout.
  double p_probe_loss = 0.0;
  /// Per-(router, destination) rate-limit episode: the router's
  /// TTL-exceeded replies toward that destination all vanish, leaving an
  /// anonymous hop.
  double p_rate_limit = 0.0;
  /// Per-destination forwarding loop: replies past the onset hop come
  /// from a cycle of synthetic loop routers instead of the true path.
  double p_loop = 0.0;
  /// Loop onset hop is drawn deterministically from [min, max].
  int loop_onset_min = 3;
  int loop_onset_max = 8;
};

constexpr bool AnyArtifacts(const ArtifactConfig& config) {
  return config.p_probe_loss > 0.0 || config.p_rate_limit > 0.0 ||
         config.p_loop > 0.0;
}

/// Relaxed-atomic tallies of what the injector actually did — the
/// "did it fire" visibility for tests and bench_scenario.
struct InjectorCounters {
  std::uint64_t probe_losses = 0;
  std::uint64_t rate_limit_silences = 0;
  std::uint64_t loop_rewrites = 0;

  std::uint64_t total() const {
    return probe_losses + rate_limit_silences + loop_rewrites;
  }
};

/// The reply-side decorator.  Install with Simulator::SetReplyArtifacts;
/// Rewrite is thread-safe (counters are relaxed atomics, everything else
/// is immutable after construction).
class ArtifactInjector final : public netsim::ReplyArtifacts {
 public:
  explicit ArtifactInjector(const ArtifactConfig& config);

  void Rewrite(const netsim::ProbeSpec& probe,
               const netsim::ArtifactContext& context,
               netsim::ProbeReply& reply) const override;

  const ArtifactConfig& config() const { return config_; }
  InjectorCounters counters() const;

 private:
  ArtifactConfig config_;
  // StableHash({seed, ...}) pre-folded through the seed, like the
  // simulator's own seed_hash_state_.
  std::uint64_t seed_hash_state_;
  mutable std::atomic<std::uint64_t> probe_losses_{0};
  mutable std::atomic<std::uint64_t> rate_limit_silences_{0};
  mutable std::atomic<std::uint64_t> loop_rewrites_{0};
};

/// Route churn: rotates the next-hop order of up to `flips` randomly
/// chosen multi-path FIB entries (a new preferred path, as after a
/// reroute), bumping Topology::mutation_epoch via the mutable accessors.
/// Returns how many entries were actually flipped (0 when the topology
/// has no ECMP entries).  Moved here from src/stream; stream re-exports
/// it for its existing callers.
std::size_t InjectRouteChurn(netsim::Topology& topology, netsim::Rng& rng,
                             std::size_t flips = 4);

/// Load-balancer reconfiguration: switches up to `groups` randomly
/// chosen multi-next-hop ECMP groups to `policy`.  With kPerPacket (the
/// default) this is the false-link generator — per-flow probe sequences
/// stop pinning a single path.  Bumps mutation_epoch; RouteMemo already
/// refuses to cache multi-hop per-packet walks, so memoized campaigns
/// stay exact.  Returns the number of groups actually switched.
std::size_t ReconfigureLoadBalancers(
    netsim::Topology& topology, netsim::Rng& rng, std::size_t groups,
    netsim::LbPolicy policy = netsim::LbPolicy::kPerPacket);

}  // namespace hobbit::scenario
