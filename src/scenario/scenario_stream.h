// scenario_stream.h — scenario schedules under the streaming campaign.
//
// Thin composition: a ScenarioDriver wrapped around
// stream::RunStreamCampaign, with the spec's events wired into the
// stream's segment-boundary callback.  Wave numbering is shared with the
// batch runner (wave 0 before setup, k >= 1 between waves of
// spec.segment blocks), so a streaming scenario campaign classifies
// every /24 bit-identically to RunScenarioPipeline under the same spec —
// the cross-mode differential gate in tests/test_scenario.cpp.
#pragma once

#include "scenario/scenario.h"
#include "stream/stream.h"

namespace hobbit::scenario {

/// Runs a streaming campaign under `spec`.  The spec's segment overrides
/// config.segment (they must describe the same wave grid); a caller-set
/// config.on_segment_boundary still fires, after the scenario events of
/// that boundary.
stream::StreamResult RunScenarioStream(netsim::Internet& internet,
                                       stream::StreamConfig config,
                                       const ScenarioSpec& spec,
                                       ScenarioStats* stats = nullptr);

}  // namespace hobbit::scenario
