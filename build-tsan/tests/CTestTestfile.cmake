# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/hobbit_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/hobbit_concurrency_tests[1]_include.cmake")
add_test(cli_generate "/root/repo/build-tsan/tools/hobbit_sim" "generate" "--scale" "0.02" "--seed" "5")
set_tests_properties(cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;71;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_measure_roundtrip "/root/repo/build-tsan/tools/hobbit_sim" "measure" "--scale" "0.02" "--seed" "5" "--results" "/root/repo/build-tsan/smoke_results.tsv" "--blocks" "/root/repo/build-tsan/smoke_blocks.txt")
set_tests_properties(cli_measure_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;73;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_stats "/root/repo/build-tsan/tools/hobbit_sim" "stats" "--results" "/root/repo/build-tsan/smoke_results.tsv")
set_tests_properties(cli_stats PROPERTIES  DEPENDS "cli_measure_roundtrip" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;77;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build-tsan/examples/quickstart" "0.02" "5")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;81;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_export_blocks "/root/repo/build-tsan/examples/export_blocks" "/root/repo/build-tsan/smoke_export.txt" "0.02" "5")
set_tests_properties(example_export_blocks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;82;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_command "/root/repo/build-tsan/tools/hobbit_sim" "frobnicate")
set_tests_properties(cli_rejects_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;84;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_rejects_bad_prefix "/root/repo/build-tsan/tools/hobbit_sim" "classify" "not-a-prefix" "--scale" "0.02")
set_tests_properties(cli_rejects_bad_prefix PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;86;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_stats_missing_file "/root/repo/build-tsan/tools/hobbit_sim" "stats" "--results" "/nonexistent/file.tsv")
set_tests_properties(cli_stats_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;89;add_test;/root/repo/tests/CMakeLists.txt;0;")
