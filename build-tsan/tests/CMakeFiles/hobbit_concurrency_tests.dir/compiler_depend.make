# Empty compiler generated dependencies file for hobbit_concurrency_tests.
# This may be replaced when dependencies are built.
