file(REMOVE_RECURSE
  "CMakeFiles/hobbit_concurrency_tests.dir/test_concurrency.cpp.o"
  "CMakeFiles/hobbit_concurrency_tests.dir/test_concurrency.cpp.o.d"
  "CMakeFiles/hobbit_concurrency_tests.dir/test_parallel.cpp.o"
  "CMakeFiles/hobbit_concurrency_tests.dir/test_parallel.cpp.o.d"
  "hobbit_concurrency_tests"
  "hobbit_concurrency_tests.pdb"
  "hobbit_concurrency_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hobbit_concurrency_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
