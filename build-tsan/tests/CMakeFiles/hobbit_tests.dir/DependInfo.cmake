
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adjacency.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_adjacency.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_adjacency.cpp.o.d"
  "/root/repo/tests/test_aggregate.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_aggregate.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_aggregate.cpp.o.d"
  "/root/repo/tests/test_blockio.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_blockio.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_blockio.cpp.o.d"
  "/root/repo/tests/test_cellular.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_cellular.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_cellular.cpp.o.d"
  "/root/repo/tests/test_census.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_census.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_census.cpp.o.d"
  "/root/repo/tests/test_components.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_components.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_components.cpp.o.d"
  "/root/repo/tests/test_confidence.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_confidence.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_confidence.cpp.o.d"
  "/root/repo/tests/test_edns.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_edns.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_edns.cpp.o.d"
  "/root/repo/tests/test_epochs.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_epochs.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_epochs.cpp.o.d"
  "/root/repo/tests/test_evaluation.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_evaluation.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_evaluation.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_hierarchy.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_hierarchy.cpp.o.d"
  "/root/repo/tests/test_host_model.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_host_model.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_host_model.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_internet.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_internet.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_internet.cpp.o.d"
  "/root/repo/tests/test_ipv4.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_ipv4.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_ipv4.cpp.o.d"
  "/root/repo/tests/test_ipv6.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_ipv6.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_ipv6.cpp.o.d"
  "/root/repo/tests/test_ipv6_pilot.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_ipv6_pilot.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_ipv6_pilot.cpp.o.d"
  "/root/repo/tests/test_last_hop.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_last_hop.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_last_hop.cpp.o.d"
  "/root/repo/tests/test_mcl.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_mcl.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_mcl.cpp.o.d"
  "/root/repo/tests/test_multivantage.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_multivantage.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_multivantage.cpp.o.d"
  "/root/repo/tests/test_outage.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_outage.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_outage.cpp.o.d"
  "/root/repo/tests/test_parser_robustness.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_parser_robustness.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_parser_robustness.cpp.o.d"
  "/root/repo/tests/test_ping.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_ping.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_ping.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_plot.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_plot.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_plot.cpp.o.d"
  "/root/repo/tests/test_prober.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_prober.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_prober.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rdns.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_rdns.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_rdns.cpp.o.d"
  "/root/repo/tests/test_registry.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_registry.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_registry.cpp.o.d"
  "/root/repo/tests/test_resultio.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_resultio.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_resultio.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_rtt_model.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_rtt_model.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_rtt_model.cpp.o.d"
  "/root/repo/tests/test_sampling.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_sampling.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_sampling.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_sparse.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_sparse.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_sparse.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_topo_discovery.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_topo_discovery.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_topo_discovery.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_traceroute.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_traceroute.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_traceroute.cpp.o.d"
  "/root/repo/tests/test_zmap.cpp" "tests/CMakeFiles/hobbit_tests.dir/test_zmap.cpp.o" "gcc" "tests/CMakeFiles/hobbit_tests.dir/test_zmap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/analysis/CMakeFiles/analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cluster/CMakeFiles/cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hobbit/CMakeFiles/hobbit_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/probing/CMakeFiles/probing.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/netsim/CMakeFiles/netsim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
