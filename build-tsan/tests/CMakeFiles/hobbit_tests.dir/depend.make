# Empty dependencies file for hobbit_tests.
# This may be replaced when dependencies are built.
