
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/internet.cpp" "src/netsim/CMakeFiles/netsim.dir/internet.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/internet.cpp.o.d"
  "/root/repo/src/netsim/ipv4.cpp" "src/netsim/CMakeFiles/netsim.dir/ipv4.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/ipv4.cpp.o.d"
  "/root/repo/src/netsim/ipv6.cpp" "src/netsim/CMakeFiles/netsim.dir/ipv6.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/ipv6.cpp.o.d"
  "/root/repo/src/netsim/rdns.cpp" "src/netsim/CMakeFiles/netsim.dir/rdns.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/rdns.cpp.o.d"
  "/root/repo/src/netsim/registry.cpp" "src/netsim/CMakeFiles/netsim.dir/registry.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/registry.cpp.o.d"
  "/root/repo/src/netsim/simulator.cpp" "src/netsim/CMakeFiles/netsim.dir/simulator.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/simulator.cpp.o.d"
  "/root/repo/src/netsim/topology.cpp" "src/netsim/CMakeFiles/netsim.dir/topology.cpp.o" "gcc" "src/netsim/CMakeFiles/netsim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
