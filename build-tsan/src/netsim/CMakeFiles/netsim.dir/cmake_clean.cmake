file(REMOVE_RECURSE
  "CMakeFiles/netsim.dir/internet.cpp.o"
  "CMakeFiles/netsim.dir/internet.cpp.o.d"
  "CMakeFiles/netsim.dir/ipv4.cpp.o"
  "CMakeFiles/netsim.dir/ipv4.cpp.o.d"
  "CMakeFiles/netsim.dir/ipv6.cpp.o"
  "CMakeFiles/netsim.dir/ipv6.cpp.o.d"
  "CMakeFiles/netsim.dir/rdns.cpp.o"
  "CMakeFiles/netsim.dir/rdns.cpp.o.d"
  "CMakeFiles/netsim.dir/registry.cpp.o"
  "CMakeFiles/netsim.dir/registry.cpp.o.d"
  "CMakeFiles/netsim.dir/simulator.cpp.o"
  "CMakeFiles/netsim.dir/simulator.cpp.o.d"
  "CMakeFiles/netsim.dir/topology.cpp.o"
  "CMakeFiles/netsim.dir/topology.cpp.o.d"
  "libnetsim.a"
  "libnetsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
