
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/adjacency.cpp" "src/analysis/CMakeFiles/analysis.dir/adjacency.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/adjacency.cpp.o.d"
  "/root/repo/src/analysis/cellular.cpp" "src/analysis/CMakeFiles/analysis.dir/cellular.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/cellular.cpp.o.d"
  "/root/repo/src/analysis/census.cpp" "src/analysis/CMakeFiles/analysis.dir/census.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/census.cpp.o.d"
  "/root/repo/src/analysis/edns.cpp" "src/analysis/CMakeFiles/analysis.dir/edns.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/edns.cpp.o.d"
  "/root/repo/src/analysis/evaluation.cpp" "src/analysis/CMakeFiles/analysis.dir/evaluation.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/evaluation.cpp.o.d"
  "/root/repo/src/analysis/outage_detection.cpp" "src/analysis/CMakeFiles/analysis.dir/outage_detection.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/outage_detection.cpp.o.d"
  "/root/repo/src/analysis/plot.cpp" "src/analysis/CMakeFiles/analysis.dir/plot.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/plot.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/sampling.cpp" "src/analysis/CMakeFiles/analysis.dir/sampling.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/sampling.cpp.o.d"
  "/root/repo/src/analysis/topo_discovery.cpp" "src/analysis/CMakeFiles/analysis.dir/topo_discovery.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/topo_discovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/cluster/CMakeFiles/cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/hobbit/CMakeFiles/hobbit_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/probing/CMakeFiles/probing.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/netsim/CMakeFiles/netsim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
