file(REMOVE_RECURSE
  "CMakeFiles/analysis.dir/adjacency.cpp.o"
  "CMakeFiles/analysis.dir/adjacency.cpp.o.d"
  "CMakeFiles/analysis.dir/cellular.cpp.o"
  "CMakeFiles/analysis.dir/cellular.cpp.o.d"
  "CMakeFiles/analysis.dir/census.cpp.o"
  "CMakeFiles/analysis.dir/census.cpp.o.d"
  "CMakeFiles/analysis.dir/edns.cpp.o"
  "CMakeFiles/analysis.dir/edns.cpp.o.d"
  "CMakeFiles/analysis.dir/evaluation.cpp.o"
  "CMakeFiles/analysis.dir/evaluation.cpp.o.d"
  "CMakeFiles/analysis.dir/outage_detection.cpp.o"
  "CMakeFiles/analysis.dir/outage_detection.cpp.o.d"
  "CMakeFiles/analysis.dir/plot.cpp.o"
  "CMakeFiles/analysis.dir/plot.cpp.o.d"
  "CMakeFiles/analysis.dir/report.cpp.o"
  "CMakeFiles/analysis.dir/report.cpp.o.d"
  "CMakeFiles/analysis.dir/sampling.cpp.o"
  "CMakeFiles/analysis.dir/sampling.cpp.o.d"
  "CMakeFiles/analysis.dir/topo_discovery.cpp.o"
  "CMakeFiles/analysis.dir/topo_discovery.cpp.o.d"
  "libanalysis.a"
  "libanalysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
