file(REMOVE_RECURSE
  "CMakeFiles/cluster.dir/aggregate.cpp.o"
  "CMakeFiles/cluster.dir/aggregate.cpp.o.d"
  "CMakeFiles/cluster.dir/blockio.cpp.o"
  "CMakeFiles/cluster.dir/blockio.cpp.o.d"
  "CMakeFiles/cluster.dir/components.cpp.o"
  "CMakeFiles/cluster.dir/components.cpp.o.d"
  "CMakeFiles/cluster.dir/mcl.cpp.o"
  "CMakeFiles/cluster.dir/mcl.cpp.o.d"
  "CMakeFiles/cluster.dir/sparse.cpp.o"
  "CMakeFiles/cluster.dir/sparse.cpp.o.d"
  "libcluster.a"
  "libcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
