
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/aggregate.cpp" "src/cluster/CMakeFiles/cluster.dir/aggregate.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/aggregate.cpp.o.d"
  "/root/repo/src/cluster/blockio.cpp" "src/cluster/CMakeFiles/cluster.dir/blockio.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/blockio.cpp.o.d"
  "/root/repo/src/cluster/components.cpp" "src/cluster/CMakeFiles/cluster.dir/components.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/components.cpp.o.d"
  "/root/repo/src/cluster/mcl.cpp" "src/cluster/CMakeFiles/cluster.dir/mcl.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/mcl.cpp.o.d"
  "/root/repo/src/cluster/sparse.cpp" "src/cluster/CMakeFiles/cluster.dir/sparse.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/hobbit/CMakeFiles/hobbit_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/netsim/CMakeFiles/netsim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/probing/CMakeFiles/probing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
