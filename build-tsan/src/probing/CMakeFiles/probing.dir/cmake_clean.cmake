file(REMOVE_RECURSE
  "CMakeFiles/probing.dir/last_hop.cpp.o"
  "CMakeFiles/probing.dir/last_hop.cpp.o.d"
  "CMakeFiles/probing.dir/traceroute.cpp.o"
  "CMakeFiles/probing.dir/traceroute.cpp.o.d"
  "CMakeFiles/probing.dir/zmap.cpp.o"
  "CMakeFiles/probing.dir/zmap.cpp.o.d"
  "libprobing.a"
  "libprobing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
