
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/probing/last_hop.cpp" "src/probing/CMakeFiles/probing.dir/last_hop.cpp.o" "gcc" "src/probing/CMakeFiles/probing.dir/last_hop.cpp.o.d"
  "/root/repo/src/probing/traceroute.cpp" "src/probing/CMakeFiles/probing.dir/traceroute.cpp.o" "gcc" "src/probing/CMakeFiles/probing.dir/traceroute.cpp.o.d"
  "/root/repo/src/probing/zmap.cpp" "src/probing/CMakeFiles/probing.dir/zmap.cpp.o" "gcc" "src/probing/CMakeFiles/probing.dir/zmap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/netsim/CMakeFiles/netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
