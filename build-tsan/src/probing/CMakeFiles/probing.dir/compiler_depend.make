# Empty compiler generated dependencies file for probing.
# This may be replaced when dependencies are built.
