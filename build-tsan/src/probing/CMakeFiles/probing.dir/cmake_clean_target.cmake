file(REMOVE_RECURSE
  "libprobing.a"
)
