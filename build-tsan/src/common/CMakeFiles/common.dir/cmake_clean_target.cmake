file(REMOVE_RECURSE
  "libcommon.a"
)
