file(REMOVE_RECURSE
  "CMakeFiles/common.dir/parallel.cpp.o"
  "CMakeFiles/common.dir/parallel.cpp.o.d"
  "libcommon.a"
  "libcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
