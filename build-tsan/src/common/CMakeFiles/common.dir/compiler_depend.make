# Empty compiler generated dependencies file for common.
# This may be replaced when dependencies are built.
