file(REMOVE_RECURSE
  "libhobbit_core.a"
)
