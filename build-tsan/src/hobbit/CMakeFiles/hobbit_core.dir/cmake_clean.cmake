file(REMOVE_RECURSE
  "CMakeFiles/hobbit_core.dir/confidence.cpp.o"
  "CMakeFiles/hobbit_core.dir/confidence.cpp.o.d"
  "CMakeFiles/hobbit_core.dir/hierarchy.cpp.o"
  "CMakeFiles/hobbit_core.dir/hierarchy.cpp.o.d"
  "CMakeFiles/hobbit_core.dir/pipeline.cpp.o"
  "CMakeFiles/hobbit_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/hobbit_core.dir/prober.cpp.o"
  "CMakeFiles/hobbit_core.dir/prober.cpp.o.d"
  "CMakeFiles/hobbit_core.dir/resultio.cpp.o"
  "CMakeFiles/hobbit_core.dir/resultio.cpp.o.d"
  "libhobbit_core.a"
  "libhobbit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hobbit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
