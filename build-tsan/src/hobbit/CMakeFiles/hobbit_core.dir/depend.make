# Empty dependencies file for hobbit_core.
# This may be replaced when dependencies are built.
