# Empty dependencies file for bench_metric_choice.
# This may be replaced when dependencies are built.
