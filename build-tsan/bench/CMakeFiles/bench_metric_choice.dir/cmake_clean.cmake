file(REMOVE_RECURSE
  "CMakeFiles/bench_metric_choice.dir/bench_metric_choice.cpp.o"
  "CMakeFiles/bench_metric_choice.dir/bench_metric_choice.cpp.o.d"
  "bench_metric_choice"
  "bench_metric_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metric_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
