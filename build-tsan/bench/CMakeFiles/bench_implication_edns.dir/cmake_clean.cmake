file(REMOVE_RECURSE
  "CMakeFiles/bench_implication_edns.dir/bench_implication_edns.cpp.o"
  "CMakeFiles/bench_implication_edns.dir/bench_implication_edns.cpp.o.d"
  "bench_implication_edns"
  "bench_implication_edns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_implication_edns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
