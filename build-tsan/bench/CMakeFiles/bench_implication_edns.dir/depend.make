# Empty dependencies file for bench_implication_edns.
# This may be replaced when dependencies are built.
