file(REMOVE_RECURSE
  "CMakeFiles/bench_multivantage.dir/bench_multivantage.cpp.o"
  "CMakeFiles/bench_multivantage.dir/bench_multivantage.cpp.o.d"
  "bench_multivantage"
  "bench_multivantage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multivantage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
