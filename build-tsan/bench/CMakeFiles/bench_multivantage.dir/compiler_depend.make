# Empty compiler generated dependencies file for bench_multivantage.
# This may be replaced when dependencies are built.
