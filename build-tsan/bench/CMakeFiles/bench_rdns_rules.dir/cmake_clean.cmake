file(REMOVE_RECURSE
  "CMakeFiles/bench_rdns_rules.dir/bench_rdns_rules.cpp.o"
  "CMakeFiles/bench_rdns_rules.dir/bench_rdns_rules.cpp.o.d"
  "bench_rdns_rules"
  "bench_rdns_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rdns_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
