# Empty dependencies file for bench_rdns_rules.
# This may be replaced when dependencies are built.
