file(REMOVE_RECURSE
  "CMakeFiles/bench_implication_outage.dir/bench_implication_outage.cpp.o"
  "CMakeFiles/bench_implication_outage.dir/bench_implication_outage.cpp.o.d"
  "bench_implication_outage"
  "bench_implication_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_implication_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
