# Empty compiler generated dependencies file for bench_implication_outage.
# This may be replaced when dependencies are built.
