file(REMOVE_RECURSE
  "CMakeFiles/bench_prelim.dir/bench_prelim.cpp.o"
  "CMakeFiles/bench_prelim.dir/bench_prelim.cpp.o.d"
  "bench_prelim"
  "bench_prelim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prelim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
