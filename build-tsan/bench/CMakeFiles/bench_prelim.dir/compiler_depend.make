# Empty compiler generated dependencies file for bench_prelim.
# This may be replaced when dependencies are built.
