# Empty compiler generated dependencies file for export_blocks.
# This may be replaced when dependencies are built.
