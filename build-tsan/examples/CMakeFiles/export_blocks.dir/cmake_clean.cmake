file(REMOVE_RECURSE
  "CMakeFiles/export_blocks.dir/export_blocks.cpp.o"
  "CMakeFiles/export_blocks.dir/export_blocks.cpp.o.d"
  "export_blocks"
  "export_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
