# Empty dependencies file for export_blocks.
# This may be replaced when dependencies are built.
