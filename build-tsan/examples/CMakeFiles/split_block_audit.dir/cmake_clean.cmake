file(REMOVE_RECURSE
  "CMakeFiles/split_block_audit.dir/split_block_audit.cpp.o"
  "CMakeFiles/split_block_audit.dir/split_block_audit.cpp.o.d"
  "split_block_audit"
  "split_block_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_block_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
