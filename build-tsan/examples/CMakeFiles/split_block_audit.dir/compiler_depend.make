# Empty compiler generated dependencies file for split_block_audit.
# This may be replaced when dependencies are built.
