file(REMOVE_RECURSE
  "CMakeFiles/cellular_census.dir/cellular_census.cpp.o"
  "CMakeFiles/cellular_census.dir/cellular_census.cpp.o.d"
  "cellular_census"
  "cellular_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellular_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
