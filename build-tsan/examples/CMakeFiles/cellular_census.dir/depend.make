# Empty dependencies file for cellular_census.
# This may be replaced when dependencies are built.
