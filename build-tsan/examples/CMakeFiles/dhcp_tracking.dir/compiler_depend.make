# Empty compiler generated dependencies file for dhcp_tracking.
# This may be replaced when dependencies are built.
