file(REMOVE_RECURSE
  "CMakeFiles/dhcp_tracking.dir/dhcp_tracking.cpp.o"
  "CMakeFiles/dhcp_tracking.dir/dhcp_tracking.cpp.o.d"
  "dhcp_tracking"
  "dhcp_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhcp_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
