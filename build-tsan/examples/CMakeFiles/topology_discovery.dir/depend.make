# Empty dependencies file for topology_discovery.
# This may be replaced when dependencies are built.
