file(REMOVE_RECURSE
  "CMakeFiles/topology_discovery.dir/topology_discovery.cpp.o"
  "CMakeFiles/topology_discovery.dir/topology_discovery.cpp.o.d"
  "topology_discovery"
  "topology_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
