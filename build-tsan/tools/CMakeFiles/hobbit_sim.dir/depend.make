# Empty dependencies file for hobbit_sim.
# This may be replaced when dependencies are built.
