file(REMOVE_RECURSE
  "CMakeFiles/hobbit_sim.dir/hobbit_sim.cpp.o"
  "CMakeFiles/hobbit_sim.dir/hobbit_sim.cpp.o.d"
  "hobbit_sim"
  "hobbit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hobbit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
