
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hobbit/confidence.cpp" "src/hobbit/CMakeFiles/hobbit_core.dir/confidence.cpp.o" "gcc" "src/hobbit/CMakeFiles/hobbit_core.dir/confidence.cpp.o.d"
  "/root/repo/src/hobbit/hierarchy.cpp" "src/hobbit/CMakeFiles/hobbit_core.dir/hierarchy.cpp.o" "gcc" "src/hobbit/CMakeFiles/hobbit_core.dir/hierarchy.cpp.o.d"
  "/root/repo/src/hobbit/pipeline.cpp" "src/hobbit/CMakeFiles/hobbit_core.dir/pipeline.cpp.o" "gcc" "src/hobbit/CMakeFiles/hobbit_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/hobbit/prober.cpp" "src/hobbit/CMakeFiles/hobbit_core.dir/prober.cpp.o" "gcc" "src/hobbit/CMakeFiles/hobbit_core.dir/prober.cpp.o.d"
  "/root/repo/src/hobbit/resultio.cpp" "src/hobbit/CMakeFiles/hobbit_core.dir/resultio.cpp.o" "gcc" "src/hobbit/CMakeFiles/hobbit_core.dir/resultio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/probing/CMakeFiles/probing.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
