#include "analysis/edns.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hobbit::analysis {
namespace {

TEST(Edns, LatencyGrowsWithDistance) {
  netsim::Subnet subnet;
  subnet.base_rtt_ms = 40.0;
  subnet.geo_x = 0.0;
  subnet.geo_y = 0.0;
  FrontEnd near_fe{0.05, 0.0};
  FrontEnd far_fe{0.9, 0.9};
  EXPECT_LT(LatencyToFrontEnd(subnet, near_fe),
            LatencyToFrontEnd(subnet, far_fe));
  // At zero distance only the access component remains.
  FrontEnd colocated{0.0, 0.0};
  EXPECT_DOUBLE_EQ(LatencyToFrontEnd(subnet, colocated), 10.0);
}

TEST(Edns, PlacementIsDeterministicAndInRange) {
  auto a = PlaceFrontEnds(16, netsim::Rng(5));
  auto b = PlaceFrontEnds(16, netsim::Rng(5));
  ASSERT_EQ(a.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_GE(a[i].x, 0.0);
    EXPECT_LT(a[i].x, 1.0);
    EXPECT_GE(a[i].y, 0.0);
    EXPECT_LT(a[i].y, 1.0);
  }
}

TEST(Edns, HomogeneousStratumHasZeroPenalty) {
  // All clients of one subnet share a location: whatever representative
  // is measured, the mapping is optimal for everyone.
  netsim::Internet internet = netsim::BuildInternet(netsim::TinyConfig(71));
  const netsim::Prefix& slash24 = internet.study_24s.front();
  std::vector<std::vector<netsim::Ipv4Address>> strata(1);
  for (std::uint32_t i = 1; i < 50; ++i) {
    strata[0].push_back(netsim::Ipv4Address(slash24.base().value() + i));
  }
  auto front_ends = PlaceFrontEnds(8, netsim::Rng(9));
  const netsim::TruthRecord* truth = internet.TruthOf(slash24);
  ASSERT_NE(truth, nullptr);
  if (truth->heterogeneous) GTEST_SKIP() << "drew a split /24";
  MappingOutcome outcome =
      EvaluateMapping(internet, strata, front_ends, netsim::Rng(2));
  EXPECT_DOUBLE_EQ(outcome.mean_penalty_ms, 0.0);
  EXPECT_DOUBLE_EQ(outcome.misdirected_share, 0.0);
}

TEST(Edns, ScatteredStratumPaysAPenalty) {
  // Build a fake world view: clients from two far-apart subnets forced
  // into one mapping unit must include misdirected ones for some
  // front-end placements.
  netsim::Internet internet = netsim::BuildInternet(netsim::TinyConfig(71));
  // Find two /24s whose subnets sit far apart.
  const netsim::Subnet* a = nullptr;
  const netsim::Subnet* b = nullptr;
  netsim::Prefix pa, pb;
  for (const netsim::Prefix& p : internet.study_24s) {
    netsim::SubnetId id = internet.topology.FindSubnet(p.base());
    const netsim::Subnet& s = internet.topology.subnet(id);
    if (a == nullptr) {
      a = &s;
      pa = p;
      continue;
    }
    double dx = s.geo_x - a->geo_x, dy = s.geo_y - a->geo_y;
    if (dx * dx + dy * dy > 0.5) {
      b = &s;
      pb = p;
      break;
    }
  }
  ASSERT_NE(b, nullptr);
  std::vector<std::vector<netsim::Ipv4Address>> strata(1);
  for (std::uint32_t i = 1; i < 40; ++i) {
    strata[0].push_back(netsim::Ipv4Address(pa.base().value() + i));
    strata[0].push_back(netsim::Ipv4Address(pb.base().value() + i));
  }
  auto front_ends = PlaceFrontEnds(16, netsim::Rng(9));
  MappingOutcome outcome =
      EvaluateMapping(internet, strata, front_ends, netsim::Rng(2));
  EXPECT_GT(outcome.mean_penalty_ms, 1.0);
  EXPECT_GT(outcome.misdirected_share, 0.2);
}

TEST(Edns, EmptyInputsAreSafe) {
  netsim::Internet internet = netsim::BuildInternet(netsim::TinyConfig(71));
  std::vector<std::vector<netsim::Ipv4Address>> strata;
  auto front_ends = PlaceFrontEnds(4, netsim::Rng(1));
  MappingOutcome outcome =
      EvaluateMapping(internet, strata, front_ends, netsim::Rng(2));
  EXPECT_EQ(outcome.clients, 0u);
  std::vector<std::vector<netsim::Ipv4Address>> one(1);
  one[0].push_back(internet.study_24s.front().base());
  MappingOutcome no_fe = EvaluateMapping(internet, one, {}, netsim::Rng(2));
  EXPECT_EQ(no_fe.clients, 0u);
}

TEST(Edns, SplitSubnetsSitApart) {
  // Generator property: the sub-blocks of a split /24 have scattered
  // coordinates (different customers, different towns).
  netsim::Internet internet = netsim::BuildInternet(netsim::TinyConfig(71));
  int checked = 0;
  double moved = 0;
  for (std::size_t i = 0; i < internet.study_24s.size(); ++i) {
    if (!internet.truth[i].heterogeneous) continue;
    const netsim::Prefix& p = internet.study_24s[i];
    netsim::SubnetId first = internet.topology.FindSubnet(p.base());
    netsim::SubnetId last = internet.topology.FindSubnet(p.Last());
    if (first == last) continue;
    const auto& sa = internet.topology.subnet(first);
    const auto& sb = internet.topology.subnet(last);
    double dx = sa.geo_x - sb.geo_x, dy = sa.geo_y - sb.geo_y;
    moved += dx * dx + dy * dy > 1e-6;
    ++checked;
  }
  ASSERT_GT(checked, 0);
  EXPECT_GT(moved / checked, 0.9);
}

}  // namespace
}  // namespace hobbit::analysis
