#include "analysis/census.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hobbit::analysis {
namespace {

using test::Pfx;

netsim::Registry MakeRegistry() {
  netsim::Registry registry;
  std::uint32_t kt = registry.AddAs(
      {4766, "Korea Telecom", "Korea", netsim::OrgType::kBroadbandIsp});
  std::uint32_t sk = registry.AddAs(
      {9318, "SK Broadband", "Korea", netsim::OrgType::kBroadbandIsp});
  registry.AddAllocation(Pfx("60.0.0.0/12"), kt);
  registry.AddAllocation(Pfx("61.0.0.0/12"), sk);
  registry.Seal();
  return registry;
}

TEST(Census, CountByAsRanksDescending) {
  netsim::Registry registry = MakeRegistry();
  std::vector<netsim::Prefix> prefixes = {
      Pfx("60.0.1.0/24"), Pfx("60.0.2.0/24"), Pfx("60.0.3.0/24"),
      Pfx("61.0.1.0/24"), Pfx("99.0.0.0/24") /* unallocated: skipped */};
  auto rows = CountByAs(registry, prefixes);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].info.asn, 4766u);
  EXPECT_EQ(rows[0].count, 3u);
  EXPECT_EQ(rows[1].info.asn, 9318u);
  EXPECT_EQ(rows[1].count, 1u);
}

TEST(Census, CountByAsTieBreaksByAsn) {
  netsim::Registry registry = MakeRegistry();
  std::vector<netsim::Prefix> prefixes = {Pfx("60.0.1.0/24"),
                                          Pfx("61.0.1.0/24")};
  auto rows = CountByAs(registry, prefixes);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].info.asn, 4766u);  // equal counts: lower ASN first
}

TEST(Census, AsOfBlockUsesFirstMember) {
  netsim::Registry registry = MakeRegistry();
  cluster::AggregateBlock block;
  block.member_24s = {Pfx("60.0.1.0/24"), Pfx("60.0.2.0/24")};
  const netsim::AsInfo* as = AsOfBlock(registry, block);
  ASSERT_NE(as, nullptr);
  EXPECT_EQ(as->organization, "Korea Telecom");

  cluster::AggregateBlock empty;
  EXPECT_EQ(AsOfBlock(registry, empty), nullptr);
  cluster::AggregateBlock unknown;
  unknown.member_24s = {Pfx("99.0.0.0/24")};
  EXPECT_EQ(AsOfBlock(registry, unknown), nullptr);
}

TEST(Census, DominantKindFromGeneratedWorld) {
  netsim::Internet internet = netsim::BuildInternet(netsim::TinyConfig(23));
  // Assemble a block from all cellular /24s; dominant kind must agree.
  cluster::AggregateBlock block;
  for (const netsim::Prefix& p : internet.study_24s) {
    netsim::SubnetId id = internet.topology.FindSubnet(p.base());
    if (id != netsim::kNoSubnet &&
        internet.topology.subnet(id).kind ==
            netsim::SubnetKind::kCellular) {
      block.member_24s.push_back(p);
    }
  }
  ASSERT_GE(block.member_24s.size(), 10u);
  EXPECT_EQ(DominantKind(internet, block), netsim::SubnetKind::kCellular);
}

}  // namespace
}  // namespace hobbit::analysis
