#include "analysis/evaluation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hobbit::analysis {
namespace {

struct Fixture {
  netsim::Internet internet;
  core::PipelineResult result;
  std::vector<cluster::AggregateBlock> aggregates;
};

Fixture& Shared() {
  static Fixture fixture = [] {
    Fixture f;
    f.internet = netsim::BuildInternet(netsim::TinyConfig(37));
    core::PipelineConfig config;
    config.seed = 37;
    config.calibration_blocks = 50;
    f.result = core::RunPipeline(f.internet, config);
    f.aggregates = cluster::AggregateIdentical(f.result.HomogeneousBlocks());
    return f;
  }();
  return fixture;
}

TEST(Evaluation, VerdictCountsPartitionAnalyzableBlocks) {
  Fixture& f = Shared();
  VerdictEvaluation e = EvaluateVerdicts(f.internet, f.result);
  const std::uint64_t scored = e.true_homogeneous + e.false_homogeneous +
                               e.true_heterogeneous +
                               e.false_heterogeneous;
  EXPECT_EQ(scored + e.not_analyzable, f.result.results.size());
  EXPECT_GT(scored, 50u);
}

TEST(Evaluation, HobbitIsAccurateOnTheTinyWorld) {
  Fixture& f = Shared();
  VerdictEvaluation e = EvaluateVerdicts(f.internet, f.result);
  EXPECT_GT(e.Accuracy(), 0.85);
  EXPECT_GT(e.HomogeneousPrecision(), 0.95)
      << "saying 'homogeneous' must be near-certain";
}

TEST(Evaluation, RatesAreWellDefinedOnEmptyInput) {
  VerdictEvaluation empty;
  EXPECT_DOUBLE_EQ(empty.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(empty.HomogeneousPrecision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.HeterogeneousRecall(), 0.0);
  FlagEvaluation no_flags;
  EXPECT_DOUBLE_EQ(no_flags.Precision(), 0.0);
  AggregationEvaluation no_blocks;
  EXPECT_DOUBLE_EQ(no_blocks.Purity(), 0.0);
}

TEST(Evaluation, AlignedDisjointFlagIsPrecise) {
  Fixture& f = Shared();
  FlagEvaluation e = EvaluateAlignedDisjointFlag(f.internet, f.result);
  if (e.flagged == 0) GTEST_SKIP() << "no splits sampled at this scale";
  EXPECT_DOUBLE_EQ(e.Precision(), 1.0)
      << "the paper claims <0.1% false positives";
}

TEST(Evaluation, ExactAggregationIsMostlyPure) {
  Fixture& f = Shared();
  AggregationEvaluation e = EvaluateAggregation(f.internet, f.aggregates);
  EXPECT_GT(e.blocks, 20u);
  EXPECT_GT(e.Purity(), 0.8);
  EXPECT_GT(e.mean_completeness, 0.3);
  EXPECT_LE(e.mean_completeness, 1.0);
}

TEST(Evaluation, SyntheticPureAndMixedBlocks) {
  // Hand-built blocks against the world's truth records.
  Fixture& f = Shared();
  // Find two /24s of the same truth block and one of a different block.
  netsim::Prefix a, b, c;
  std::uint64_t pair_truth = 0;
  bool have_pair = false, have_other = false;
  std::map<std::uint64_t, netsim::Prefix> seen;
  for (std::size_t i = 0; i < f.internet.study_24s.size(); ++i) {
    const netsim::TruthRecord& truth = f.internet.truth[i];
    if (truth.heterogeneous) continue;
    auto pos = seen.find(truth.truth_block);
    if (pos != seen.end() && !have_pair) {
      a = pos->second;
      b = truth.prefix;
      pair_truth = truth.truth_block;
      have_pair = true;
    } else if (have_pair && !have_other &&
               truth.truth_block != pair_truth) {
      c = truth.prefix;
      have_other = true;
      break;
    }
    seen.emplace(truth.truth_block, truth.prefix);
  }
  ASSERT_TRUE(have_pair && have_other);
  cluster::AggregateBlock pure;
  pure.member_24s = {a, b};
  cluster::AggregateBlock mixed;
  mixed.member_24s = {a, c};
  std::vector<cluster::AggregateBlock> blocks = {pure, mixed};
  AggregationEvaluation e = EvaluateAggregation(f.internet, blocks);
  EXPECT_EQ(e.blocks, 2u);
  EXPECT_EQ(e.pure_blocks, 1u);
}

}  // namespace
}  // namespace hobbit::analysis
