// LineService protocol conformance, driven entirely through streams.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "serve/service.h"
#include "test_util.h"

namespace hobbit::serve {
namespace {

using test::Addr;
using test::Pfx;

std::vector<std::byte> SampleSnapshotBytes(std::uint64_t epoch) {
  cluster::AggregateBlock a;
  a.member_24s = {Pfx("20.0.1.0/24"), Pfx("20.0.9.0/24")};
  a.last_hops = {Addr("10.0.0.1"), Addr("10.0.0.2")};
  cluster::AggregateBlock b;
  b.member_24s = {Pfx("99.1.2.0/24")};
  b.last_hops = {Addr("10.0.0.9")};
  std::vector<ClassifiedPrefix> classified = {
      {Pfx("20.0.1.0/24"),
       static_cast<std::uint8_t>(core::Classification::kSameLastHop)}};
  return CompileSnapshot(std::vector<cluster::AggregateBlock>{a, b},
                         classified, epoch);
}

std::string WriteTemp(const std::string& name,
                      const std::vector<std::byte>& bytes) {
  std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return path;
}

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : service_(&store_, &metrics_, nullptr) {
    std::string error;
    auto snapshot = Snapshot::FromBuffer(SampleSnapshotBytes(5), &error);
    EXPECT_TRUE(snapshot.has_value()) << error;
    store_.Swap(std::make_shared<const Snapshot>(*std::move(snapshot)));
  }

  /// Feeds a whole session; returns stdout.
  std::string Session(const std::string& input) {
    std::istringstream in(input);
    std::ostringstream out;
    service_.Run(in, out);
    return out.str();
  }

  SnapshotStore store_;
  ServeMetrics metrics_;
  LineService service_;
};

TEST_F(ServiceTest, LookupHitByAddressAndPrefix) {
  EXPECT_EQ(Session("LOOKUP 20.0.1.77\n"),
            "HIT 20.0.1.0/24 block=0 class=same-last-hop members=2 "
            "hops=2\n");
  EXPECT_EQ(Session("LOOKUP 99.1.2.0/24\n"),
            "HIT 99.1.2.0/24 block=1 class=- members=1 hops=1\n");
  EXPECT_EQ(metrics_.hits.load(), 2u);
}

TEST_F(ServiceTest, LookupMissAndCover) {
  EXPECT_EQ(Session("LOOKUP 8.8.8.8\n"), "MISS 8.8.8.8\n");
  EXPECT_EQ(Session("LOOKUP 20.0.0.0/16\n"),
            "COVER 20.0.0.0/16 entries=2 blocks=1\n");
  EXPECT_EQ(metrics_.misses.load(), 1u);
  EXPECT_EQ(metrics_.covering_queries.load(), 1u);
}

TEST_F(ServiceTest, LookupRejectsGarbage) {
  EXPECT_EQ(Session("LOOKUP definitely-not-an-ip\n"),
            "ERR bad query: definitely-not-an-ip\n");
  // A /26 is neither an exact /24 nor a covering (shorter) prefix.
  EXPECT_EQ(Session("LOOKUP 20.0.1.0/26\n"),
            "ERR bad query: 20.0.1.0/26\n");
}

TEST_F(ServiceTest, BatchKeepsInputOrderAndCountsEachQuery) {
  std::string out = Session(
      "BATCH 3\n"
      "20.0.9.3\n"
      "8.8.8.0/24\n"
      "garbage\n");
  EXPECT_EQ(out,
            "HIT 20.0.9.0/24 block=0 class=- members=2 hops=2\n"
            "MISS 8.8.8.0/24\n"
            "ERR bad query: garbage\n"
            "OK 3\n");
  EXPECT_EQ(metrics_.batches.load(), 1u);
  EXPECT_EQ(metrics_.lookups.load(), 2u);  // the garbage line is not a lookup
}

TEST_F(ServiceTest, BatchRejectsBadAndTruncatedInput) {
  EXPECT_EQ(Session("BATCH many\n"), "ERR bad batch size: many\n");
  EXPECT_EQ(Session("BATCH 3\n20.0.1.1\n"),
            "ERR batch truncated at query 1\n");
}

TEST_F(ServiceTest, ReloadSwapsGenerationsAndSurvivesBadFiles) {
  std::string good = WriteTemp("service_reload.snap",
                               SampleSnapshotBytes(9));
  std::string out = Session("RELOAD " + good + "\nSTATS\n");
  EXPECT_NE(out.find("OK generation=2 entries=3 blocks=2 epoch=9"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("reloads=1"), std::string::npos) << out;

  // A corrupt file must not disturb the serving snapshot.
  auto corrupt = SampleSnapshotBytes(10);
  corrupt[60] ^= std::byte{0xFF};
  std::string bad = WriteTemp("service_corrupt.snap", corrupt);
  out = Session("RELOAD " + bad + "\nLOOKUP 20.0.1.1\n");
  EXPECT_NE(out.find("ERR reload failed:"), std::string::npos) << out;
  EXPECT_NE(out.find("HIT 20.0.1.0/24"), std::string::npos) << out;
  EXPECT_EQ(store_.Current()->epoch(), 9u);
  EXPECT_EQ(metrics_.failed_reloads.load(), 1u);

  EXPECT_EQ(Session("RELOAD\n"), "ERR reload needs a path\n");
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

TEST_F(ServiceTest, StatsReportsCountersAndLatency) {
  Session("LOOKUP 20.0.1.1\nLOOKUP 8.8.8.8\n");
  std::string out = Session("STATS\n");
  EXPECT_NE(out.find("lookups=2 hits=1 misses=1"), std::string::npos)
      << out;
  EXPECT_NE(out.find("generation=1 epoch=5"), std::string::npos) << out;
  EXPECT_NE(out.find("latency_ns p50="), std::string::npos) << out;
  // Two LOOKUPs recorded before this STATS line.
  EXPECT_NE(out.find("samples=2"), std::string::npos) << out;
}

TEST_F(ServiceTest, UnknownCommandsCommentsAndQuit) {
  EXPECT_EQ(Session("FROB x\n"), "ERR unknown command: FROB\n");
  EXPECT_EQ(Session("# comment\n\n"), "");
  // QUIT stops the session: the trailing LOOKUP is never served.
  EXPECT_EQ(Session("QUIT\nLOOKUP 20.0.1.1\n"), "BYE\n");
}

TEST(ServiceEmptyStore, QueriesFailCleanlyUntilFirstReload) {
  SnapshotStore store;
  ServeMetrics metrics;
  LineService service(&store, &metrics);
  std::istringstream in(
      "LOOKUP 20.0.1.1\n"
      "BATCH 2\n20.0.1.1\n8.8.8.8\n"
      "STATS\n");
  std::ostringstream out;
  service.Run(in, out);
  EXPECT_NE(out.str().find("ERR no snapshot loaded\nERR no snapshot "
                           "loaded\n"),
            std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("generation=0 epoch=0"), std::string::npos);
}

}  // namespace
}  // namespace hobbit::serve
