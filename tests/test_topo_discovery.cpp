#include "analysis/topo_discovery.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hobbit::analysis {
namespace {

using test::Addr;
using test::BuildMiniNet;
using test::MiniNet;

std::vector<netsim::Ipv4Address> SomeDestinations() {
  std::vector<netsim::Ipv4Address> out;
  for (std::uint32_t host = 1; host <= 24; ++host) {
    out.push_back(netsim::Ipv4Address(Addr("20.0.1.0").value() + host));
    out.push_back(netsim::Ipv4Address(Addr("20.0.2.0").value() + host));
  }
  return out;
}

TEST(CollectCorpus, RecordsLinksForReachableDestinations) {
  MiniNet net = BuildMiniNet();
  auto destinations = SomeDestinations();
  TracerouteCorpus corpus = CollectCorpus(*net.simulator, destinations);
  EXPECT_EQ(corpus.entries.size(), destinations.size());
  EXPECT_GT(corpus.total_links, 5u);
  for (const CorpusEntry& entry : corpus.entries) {
    EXPECT_FALSE(entry.links.empty()) << entry.destination.ToString();
  }
}

TEST(CollectCorpus, SkipsUnreachableDestinations) {
  MiniNet net = BuildMiniNet();
  std::vector<netsim::Ipv4Address> destinations = {Addr("99.9.9.9")};
  TracerouteCorpus corpus = CollectCorpus(*net.simulator, destinations);
  EXPECT_TRUE(corpus.entries.empty());
}

TEST(DiscoverySeries, CoverageIsMonotoneAndReachesOne) {
  MiniNet net = BuildMiniNet();
  TracerouteCorpus corpus = CollectCorpus(*net.simulator, SomeDestinations());
  // One stratum holding everything: k rounds add one entry each.
  std::vector<std::vector<std::uint32_t>> strata(1);
  for (std::uint32_t i = 0; i < corpus.entries.size(); ++i) {
    strata[0].push_back(i);
  }
  auto series = DiscoverySeries(corpus, strata, 2, netsim::Rng(3));
  ASSERT_FALSE(series.empty());
  double prev = 0;
  for (const SeriesPoint& point : series) {
    EXPECT_GE(point.link_ratio, prev);
    prev = point.link_ratio;
  }
  EXPECT_GT(series.back().link_ratio, 0.99);
}

TEST(DiscoverySeries, CoarserStrataNeedFewerSelections) {
  // The Fig 11 effect in miniature: selecting per aggregate block reaches
  // a target coverage with fewer destinations than selecting per /24.
  MiniNet net = BuildMiniNet();
  TracerouteCorpus corpus = CollectCorpus(*net.simulator, SomeDestinations());
  ASSERT_EQ(corpus.entries.size(), 48u);

  // Fine strata: one per /24 (indices interleave 20.0.1.x / 20.0.2.x).
  std::vector<std::vector<std::uint32_t>> per_24(2);
  // Coarse strata: both /24s share last-hop infrastructure heavily; one
  // stratum stands in for a Hobbit block covering them.
  std::vector<std::vector<std::uint32_t>> per_block(1);
  for (std::uint32_t i = 0; i < corpus.entries.size(); ++i) {
    bool first_24 =
        netsim::Prefix::Slash24Of(corpus.entries[i].destination) ==
        test::Pfx("20.0.1.0/24");
    per_24[first_24 ? 0 : 1].push_back(i);
    per_block[0].push_back(i);
  }
  auto fine = DiscoverySeries(corpus, per_24, 2, netsim::Rng(5), 0.95);
  auto coarse = DiscoverySeries(corpus, per_block, 2, netsim::Rng(5), 0.95);
  ASSERT_FALSE(fine.empty());
  ASSERT_FALSE(coarse.empty());
  // Both strategies must eventually clear the 95 % target, and at equal
  // average selections per /24 the coarse (block-level) curve must not be
  // materially worse — the two /24s share their infrastructure, which is
  // the situation where block-level selection saves probes.
  EXPECT_GE(fine.back().link_ratio, 0.95);
  EXPECT_GE(coarse.back().link_ratio, 0.95);
  auto ratio_at = [](const std::vector<SeriesPoint>& series, double x) {
    double best = 0;
    for (const auto& point : series) {
      if (point.avg_selected_per_24 <= x) best = point.link_ratio;
    }
    return best;
  };
  for (double x : {2.0, 4.0, 8.0}) {
    EXPECT_GE(ratio_at(coarse, x) + 0.15, ratio_at(fine, x)) << x;
  }
}

TEST(DiscoverySeries, EmptyCorpusGivesEmptySeries) {
  TracerouteCorpus corpus;
  std::vector<std::vector<std::uint32_t>> strata;
  EXPECT_TRUE(DiscoverySeries(corpus, strata, 2, netsim::Rng(1)).empty());
}

}  // namespace
}  // namespace hobbit::analysis
