// test_route_memo.cpp — the per-campaign FIB-resolution memo must be an
// exact, invisible optimization: identical routing results with and
// without it, across flows, TTLs and topology mutations.
#include "netsim/route_memo.h"

#include <gtest/gtest.h>

#include "netsim/simulator.h"
#include "test_util.h"

namespace hobbit::netsim {
namespace {

using test::Addr;
using test::BuildMiniNet;
using test::MiniNet;
using test::Pfx;

std::vector<Ipv4Address> BlockDestinations() {
  std::vector<Ipv4Address> destinations;
  for (const char* base : {"20.0.1.0", "20.0.2.0", "20.0.3.0", "20.0.4.0",
                           "20.0.5.0"}) {
    const std::uint32_t prefix = Addr(base).value();
    for (std::uint32_t octet : {0u, 1u, 63u, 64u, 65u, 128u, 200u, 255u}) {
      destinations.emplace_back(prefix | octet);
    }
  }
  return destinations;
}

TEST(RouteMemo, ResolvePathIdenticalWithAndWithoutMemo) {
  MiniNet net = BuildMiniNet();
  RouteMemo memo;
  for (Ipv4Address dst : BlockDestinations()) {
    for (std::uint16_t flow = 0; flow < 4; ++flow) {
      auto memoized = net.simulator->ResolvePath(dst, flow, 0, &memo);
      auto direct = net.simulator->ResolvePath(dst, flow, 0, nullptr);
      ASSERT_EQ(memoized, direct)
          << dst.ToString() << " flow " << flow;
    }
  }
  // The sweep re-resolves each destination 4 times through 6-router
  // paths; most lookups must come from the cache.
  EXPECT_GT(memo.hits(), memo.misses());
}

TEST(RouteMemo, SendRepliesIdenticalWithMemo) {
  MiniNet net = BuildMiniNet();
  RouteMemo memo;
  std::uint64_t serial = 1;
  for (Ipv4Address dst : BlockDestinations()) {
    for (int ttl : {1, 3, MiniNet::kHostHop - 1, MiniNet::kHostHop, 64}) {
      for (std::uint16_t flow = 0; flow < 3; ++flow) {
        ProbeSpec probe;
        probe.destination = dst;
        probe.ttl = ttl;
        probe.flow_id = flow;
        probe.serial = serial++;
        ProbeReply direct = net.simulator->Send(probe);
        ProbeReply memoized = net.simulator->Send(probe, &memo);
        ASSERT_EQ(memoized.kind, direct.kind);
        ASSERT_EQ(memoized.responder, direct.responder);
        ASSERT_EQ(memoized.reply_ttl, direct.reply_ttl);
        ASSERT_EQ(memoized.hop, direct.hop);
        ASSERT_EQ(memoized.rtt_ms, direct.rtt_ms);
      }
    }
  }
}

TEST(RouteMemo, InvalidatesWhenTopologyMutates) {
  MiniNet net = BuildMiniNet();
  RouteMemo memo;
  const Ipv4Address dst = Addr("20.0.1.5");

  // Warm the memo through every router on the path.
  for (std::uint16_t flow = 0; flow < 8; ++flow) {
    auto path = net.simulator->ResolvePath(dst, flow, 0, &memo);
    ASSERT_FALSE(path.empty());
    ASSERT_EQ(path.back(), net.gw1);
  }

  // Collapse r1's per-flow pair {m1, m2} down to {m1}.  The non-const
  // router() access bumps the topology's mutation epoch, so the memo must
  // drop its cached FibEntry pointers instead of serving stale routes.
  const std::uint64_t epoch_before = net.topology.mutation_epoch();
  net.topology.router(net.r1).fib.Add(Pfx("0.0.0.0/0"),
                                      {{net.m1}, LbPolicy::kPerFlow});
  EXPECT_GT(net.topology.mutation_epoch(), epoch_before);

  for (std::uint16_t flow = 0; flow < 8; ++flow) {
    auto memoized = net.simulator->ResolvePath(dst, flow, 0, &memo);
    auto fresh = net.simulator->ResolvePath(dst, flow, 0, nullptr);
    ASSERT_EQ(memoized, fresh) << "flow " << flow;
    ASSERT_EQ(memoized[2], net.m1) << "stale route served from the memo";
  }
}

TEST(RouteMemo, TopologyCopyAndMoveBumpEpoch) {
  MiniNet net = BuildMiniNet();
  const std::uint64_t epoch = net.topology.mutation_epoch();
  Topology copy = net.topology;
  EXPECT_GT(copy.mutation_epoch(), epoch);
  Topology moved = std::move(copy);
  EXPECT_GT(moved.mutation_epoch(), epoch);
}

}  // namespace
}  // namespace hobbit::netsim
