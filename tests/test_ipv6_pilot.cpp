#include "hobbit/ipv6_pilot.h"

#include <gtest/gtest.h>

#include "netsim/rng.h"

namespace hobbit::core {
namespace {

netsim::Ipv6Address V6(const char* text) {
  auto a = netsim::Ipv6Address::Parse(text);
  return a ? *a : netsim::Ipv6Address(0, 0);
}

Ipv6Observation Obs(const char* address, const char* router) {
  return {V6(address), {V6(router)}};
}

TEST(Ipv6Pilot, SingleLastHopIsHomogeneous) {
  std::vector<Ipv6Observation> observations = {
      Obs("2001:db8:1:2::10", "fe80::1"),
      Obs("2001:db8:1:2::900", "fe80::1"),
      Obs("2001:db8:1:2:8000::1", "fe80::1"),
      Obs("2001:db8:1:2:ffff::9", "fe80::1")};
  EXPECT_TRUE(HobbitSaysHomogeneous6(observations));
}

TEST(Ipv6Pilot, InterleavedLoadBalancingIsHomogeneous) {
  std::vector<Ipv6Observation> observations = {
      Obs("2001:db8:1:2::1", "fe80::a"),
      Obs("2001:db8:1:2::2", "fe80::b"),
      Obs("2001:db8:1:2::3", "fe80::a"),
      Obs("2001:db8:1:2::4", "fe80::b")};
  EXPECT_TRUE(HobbitSaysHomogeneous6(observations));
}

TEST(Ipv6Pilot, CleanSplitAcrossTheSlash65IsHierarchical) {
  // Two route entries: lower and upper half of the /64.
  std::vector<Ipv6Observation> observations = {
      Obs("2001:db8:1:2::1", "fe80::a"),
      Obs("2001:db8:1:2::ffff", "fe80::a"),
      Obs("2001:db8:1:2:8000::1", "fe80::b"),
      Obs("2001:db8:1:2:ffff::1", "fe80::b")};
  auto groups = GroupByLastHop6(observations);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_TRUE(GroupsAreHierarchical6(groups));
  EXPECT_FALSE(HobbitSaysHomogeneous6(observations));
}

TEST(Ipv6Pilot, CommonLastHopAcrossMultiSets) {
  std::vector<Ipv6Observation> observations = {
      {V6("2001:db8::1"), {V6("fe80::a"), V6("fe80::b")}},
      {V6("2001:db8::2"), {V6("fe80::a")}},
      {V6("2001:db8:0:0:8000::3"), {V6("fe80::a"), V6("fe80::c")}}};
  EXPECT_TRUE(HaveCommonLastHop6(observations));
  EXPECT_TRUE(HobbitSaysHomogeneous6(observations));
}

TEST(Ipv6Pilot, EmptyIsNotHomogeneous) {
  EXPECT_FALSE(HobbitSaysHomogeneous6({}));
}

TEST(Ipv6Pilot, GroupRangesUseFullWidthOrdering) {
  // Addresses differing only in the low 64 bits must order correctly
  // (exercises the high/low comparison path).
  std::vector<Ipv6Observation> observations = {
      Obs("2001:db8::ffff:ffff:ffff:ffff", "fe80::a"),
      Obs("2001:db8:0:1::", "fe80::a")};
  auto groups = GroupByLastHop6(observations);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].min, V6("2001:db8::ffff:ffff:ffff:ffff"));
  EXPECT_EQ(groups[0].max, V6("2001:db8:0:1::"));
}

// First-passage property over synthetic per-destination balancing in a
// /64: interleaved assignment must be recognized for the vast majority of
// random draws, split assignment must not.
class Ipv6PilotProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Ipv6PilotProperty, BalancedVsSplitVerdicts) {
  netsim::Rng rng(GetParam());
  int balanced_homogeneous = 0, split_homogeneous = 0;
  constexpr int kTrials = 60;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<Ipv6Observation> balanced, split;
    for (int i = 0; i < 24; ++i) {
      auto iid = rng.Next();
      netsim::Ipv6Address address(0x20010db800010002ULL, iid);
      // Balanced: hash-interleaved across 3 gateways.
      balanced.push_back(
          {address,
           {netsim::Ipv6Address(0xfe80000000000000ULL, 0xa + iid % 3)}});
      // Split: routed by the top bit of the interface identifier.
      split.push_back(
          {address,
           {netsim::Ipv6Address(0xfe80000000000000ULL,
                                0x100 + (iid >> 63))}});
    }
    balanced_homogeneous += HobbitSaysHomogeneous6(balanced);
    split_homogeneous += HobbitSaysHomogeneous6(split);
  }
  EXPECT_GT(balanced_homogeneous, kTrials * 7 / 10);
  EXPECT_LT(split_homogeneous, kTrials / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ipv6PilotProperty,
                         ::testing::Values(1, 7, 19));

}  // namespace
}  // namespace hobbit::core
