#include "cluster/aggregate.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hobbit::cluster {
namespace {

using test::Addr;
using test::Pfx;

core::BlockResult Homog(const char* prefix,
                        std::vector<netsim::Ipv4Address> last_hops) {
  core::BlockResult r;
  r.prefix = Pfx(prefix);
  r.classification = core::Classification::kNonHierarchical;
  std::sort(last_hops.begin(), last_hops.end());
  r.last_hop_set = std::move(last_hops);
  return r;
}

TEST(AggregateIdentical, MergesIdenticalSetsOnly) {
  core::BlockResult a = Homog("20.0.1.0/24", {Addr("10.0.0.1")});
  core::BlockResult b = Homog("20.0.9.0/24", {Addr("10.0.0.1")});
  core::BlockResult c =
      Homog("20.0.2.0/24", {Addr("10.0.0.1"), Addr("10.0.0.2")});
  std::vector<const core::BlockResult*> blocks = {&a, &b, &c};
  auto aggregates = AggregateIdentical(blocks);
  ASSERT_EQ(aggregates.size(), 2u);
  // Sorted by descending size: {a, b} first.
  EXPECT_EQ(aggregates[0].member_24s.size(), 2u);
  EXPECT_EQ(aggregates[0].member_24s[0], Pfx("20.0.1.0/24"));
  EXPECT_EQ(aggregates[0].member_24s[1], Pfx("20.0.9.0/24"));
  EXPECT_EQ(aggregates[1].member_24s.size(), 1u);
}

TEST(AggregateIdentical, SetIdentityRequiresSameSizeAndElements) {
  // The paper's footnote 9: identical == equal size and same elements.
  core::BlockResult a =
      Homog("20.0.1.0/24", {Addr("10.0.0.1"), Addr("10.0.0.2")});
  core::BlockResult b = Homog("20.0.2.0/24", {Addr("10.0.0.1")});
  std::vector<const core::BlockResult*> blocks = {&a, &b};
  EXPECT_EQ(AggregateIdentical(blocks).size(), 2u);
}

TEST(AggregateIdentical, SkipsEmptySets) {
  core::BlockResult empty;
  empty.prefix = Pfx("20.0.3.0/24");
  empty.classification = core::Classification::kNonHierarchical;
  std::vector<const core::BlockResult*> blocks = {&empty};
  EXPECT_TRUE(AggregateIdentical(blocks).empty());
}

AggregateBlock Agg(std::vector<const char*> prefixes,
                   std::vector<const char*> routers) {
  AggregateBlock block;
  for (const char* p : prefixes) block.member_24s.push_back(Pfx(p));
  for (const char* r : routers) block.last_hops.push_back(Addr(r));
  std::sort(block.member_24s.begin(), block.member_24s.end());
  std::sort(block.last_hops.begin(), block.last_hops.end());
  return block;
}

TEST(SimilarityGraph, PaperExampleScore) {
  // §6.3: A={1.1.1.1, 2.2.2.2, 3.3.3.3}, B={3.3.3.3, 4.4.4.4} -> 1/3.
  std::vector<AggregateBlock> aggregates = {
      Agg({"20.0.1.0/24"}, {"1.1.1.1", "2.2.2.2", "3.3.3.3"}),
      Agg({"20.0.2.0/24"}, {"3.3.3.3", "4.4.4.4"})};
  Graph graph = BuildSimilarityGraph(aggregates);
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_NEAR(graph.edges.front().weight, 1.0 / 3.0, 1e-12);
}

TEST(SimilarityGraph, DisjointSetsGetNoEdge) {
  std::vector<AggregateBlock> aggregates = {
      Agg({"20.0.1.0/24"}, {"1.1.1.1"}),
      Agg({"20.0.2.0/24"}, {"2.2.2.2"})};
  Graph graph = BuildSimilarityGraph(aggregates);
  EXPECT_TRUE(graph.edges.empty());
  EXPECT_EQ(graph.vertex_count, 2u);
}

TEST(SimilarityGraph, NoDuplicateEdgesWhenSharingManyRouters) {
  std::vector<AggregateBlock> aggregates = {
      Agg({"20.0.1.0/24"}, {"1.1.1.1", "2.2.2.2", "3.3.3.3"}),
      Agg({"20.0.2.0/24"}, {"1.1.1.1", "2.2.2.2", "4.4.4.4"})};
  Graph graph = BuildSimilarityGraph(aggregates);
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_NEAR(graph.edges.front().weight, 2.0 / 3.0, 1e-12);
}

TEST(MclAggregation, OverlappingFamilesCluster) {
  // Three aggregates drawn from one true gateway pool {A,B,C}: partial
  // sets {A,B}, {B,C}, {A,C} must cluster together; an unrelated
  // aggregate must stay out.
  std::vector<AggregateBlock> aggregates = {
      Agg({"20.0.1.0/24"}, {"10.0.0.1", "10.0.0.2"}),
      Agg({"20.0.2.0/24"}, {"10.0.0.2", "10.0.0.3"}),
      Agg({"20.0.3.0/24"}, {"10.0.0.1", "10.0.0.3"}),
      Agg({"20.0.9.0/24"}, {"10.0.0.9"})};
  MclAggregationResult result = RunMclAggregation(aggregates);
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.clusters.front().aggregate_ids,
            (std::vector<std::uint32_t>{0, 1, 2}));
  ASSERT_EQ(result.unclustered.size(), 1u);
  EXPECT_EQ(result.unclustered.front(), 3u);
  EXPECT_EQ(result.component_count, 2u);
}

TEST(MclAggregation, RuleMatchesTightClusters) {
  // Tight family: every pairwise similarity is 1/2 or better.
  std::vector<AggregateBlock> tight = {
      Agg({"20.0.1.0/24", "20.0.2.0/24"}, {"10.0.0.1", "10.0.0.2"}),
      Agg({"20.0.3.0/24", "20.0.4.0/24"}, {"10.0.0.1", "10.0.0.2",
                                           "10.0.0.3"})};
  MclAggregationParams params;
  MclAggregationResult result = RunMclAggregation(tight, params);
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_TRUE(result.clusters.front().matches_rule);
}

TEST(MclAggregation, RuleRejectsLooseClusters) {
  // A long chain sharing one router pairwise out of many: low scores.
  std::vector<AggregateBlock> loose = {
      Agg({"20.0.1.0/24"}, {"10.0.0.1", "10.0.0.11", "10.0.0.12",
                            "10.0.0.13"}),
      Agg({"20.0.2.0/24"}, {"10.0.0.1", "10.0.0.21", "10.0.0.22",
                            "10.0.0.23"}),
      Agg({"20.0.3.0/24"}, {"10.0.0.1", "10.0.0.31", "10.0.0.32",
                            "10.0.0.33"})};
  MclAggregationResult result = RunMclAggregation(loose);
  for (const auto& cluster : result.clusters) {
    EXPECT_FALSE(cluster.matches_rule);
  }
}

TEST(MergeValidated, OnlyValidatedClustersMerge) {
  std::vector<AggregateBlock> aggregates = {
      Agg({"20.0.1.0/24"}, {"10.0.0.1", "10.0.0.2"}),
      Agg({"20.0.2.0/24"}, {"10.0.0.2", "10.0.0.3"}),
      Agg({"20.0.9.0/24"}, {"10.0.0.9"})};
  MclAggregationResult result;
  ClusterInfo cluster;
  cluster.aggregate_ids = {0, 1};
  cluster.validated_homogeneous = true;
  result.clusters.push_back(cluster);
  result.unclustered = {2};

  auto merged = MergeValidatedClusters(aggregates, result);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].member_24s.size(), 2u);
  // Union of last-hop sets.
  EXPECT_EQ(merged[0].last_hops.size(), 3u);
  EXPECT_EQ(merged[1].member_24s.size(), 1u);
}

TEST(MergeValidated, UnvalidatedClusterStaysSplit) {
  std::vector<AggregateBlock> aggregates = {
      Agg({"20.0.1.0/24"}, {"10.0.0.1", "10.0.0.2"}),
      Agg({"20.0.2.0/24"}, {"10.0.0.2", "10.0.0.3"})};
  MclAggregationResult result;
  ClusterInfo cluster;
  cluster.aggregate_ids = {0, 1};
  cluster.validated_homogeneous = false;
  result.clusters.push_back(cluster);
  auto merged = MergeValidatedClusters(aggregates, result);
  EXPECT_EQ(merged.size(), 2u);
}

TEST(ValidateClusters, EndToEndOnTinyInternet) {
  // Full-stack: pipeline -> exact aggregation -> MCL -> reprobing.
  netsim::Internet internet = netsim::BuildInternet(netsim::TinyConfig(31));
  core::PipelineConfig config;
  config.seed = 31;
  config.calibration_blocks = 50;
  config.samples_per_block = 48;
  core::PipelineResult pipeline = core::RunPipeline(internet, config);
  auto homogeneous = pipeline.HomogeneousBlocks();
  auto aggregates = AggregateIdentical(homogeneous);
  ASSERT_GT(aggregates.size(), 0u);
  MclAggregationResult mcl = RunMclAggregation(aggregates);
  ValidateClusters(internet, pipeline.study_blocks, aggregates, mcl);
  for (const auto& cluster : mcl.clusters) {
    EXPECT_GE(cluster.identical_pair_ratio, 0.0);
    EXPECT_LE(cluster.identical_pair_ratio, 1.0);
    if (cluster.validated_homogeneous) {
      EXPECT_DOUBLE_EQ(cluster.identical_pair_ratio, 1.0);
    }
  }
  // Validated merges can only reduce the block count.
  auto merged = MergeValidatedClusters(aggregates, mcl);
  EXPECT_LE(merged.size(), aggregates.size());
}

}  // namespace
}  // namespace hobbit::cluster
