#include "netsim/ipv4.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

namespace hobbit::netsim {
namespace {

TEST(Ipv4Address, FromOctetsAndBack) {
  Ipv4Address a = Ipv4Address::FromOctets(192, 0, 2, 7);
  EXPECT_EQ(a.value(), 0xC0000207u);
  EXPECT_EQ(a.Octet(0), 192);
  EXPECT_EQ(a.Octet(1), 0);
  EXPECT_EQ(a.Octet(2), 2);
  EXPECT_EQ(a.Octet(3), 7);
  EXPECT_EQ(a.ToString(), "192.0.2.7");
}

TEST(Ipv4Address, ParseValid) {
  auto a = Ipv4Address::Parse("10.20.30.40");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, Ipv4Address::FromOctets(10, 20, 30, 40));
  EXPECT_EQ(Ipv4Address::Parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::Parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4Address, ParseRejectsGarbage) {
  const char* bad[] = {"",           "1.2.3",      "1.2.3.4.5", "256.1.1.1",
                       "1.2.3.256",  "a.b.c.d",    "1..2.3",    "1.2.3.4 ",
                       " 1.2.3.4",   "1.2.3.-4",   "1.2.3.4x",  "0001.2.3.4",
                       "1,2,3,4"};
  for (const char* text : bad) {
    EXPECT_FALSE(Ipv4Address::Parse(text).has_value()) << text;
  }
}

TEST(Ipv4Address, OrderingMatchesNumeric) {
  EXPECT_LT(Ipv4Address::FromOctets(1, 2, 3, 4),
            Ipv4Address::FromOctets(1, 2, 3, 5));
  EXPECT_LT(Ipv4Address::FromOctets(9, 255, 255, 255),
            Ipv4Address::FromOctets(10, 0, 0, 0));
}

TEST(Ipv4Address, RoundTripsThroughString) {
  for (std::uint32_t v : {0u, 1u, 255u, 256u, 0x01020304u, 0xFFFFFFFFu,
                          0x80000000u, 0xC0A80101u}) {
    Ipv4Address a(v);
    auto back = Ipv4Address::Parse(a.ToString());
    ASSERT_TRUE(back.has_value()) << a.ToString();
    EXPECT_EQ(*back, a);
  }
}

TEST(Prefix, CanonicalizesBase) {
  Prefix p = Prefix::Of(Ipv4Address::FromOctets(10, 1, 2, 200), 24);
  EXPECT_EQ(p.base(), Ipv4Address::FromOctets(10, 1, 2, 0));
  EXPECT_EQ(p.length(), 24);
  EXPECT_EQ(p.ToString(), "10.1.2.0/24");
}

TEST(Prefix, ParseValidAndCanonical) {
  auto p = Prefix::Parse("10.0.0.0/8");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 8);
  EXPECT_TRUE(Prefix::Parse("0.0.0.0/0").has_value());
  EXPECT_TRUE(Prefix::Parse("1.2.3.4/32").has_value());
}

TEST(Prefix, ParseRejectsHostBitsAndGarbage) {
  EXPECT_FALSE(Prefix::Parse("10.0.0.1/24").has_value());
  EXPECT_FALSE(Prefix::Parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::Parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::Parse("10.0.0.0/").has_value());
  EXPECT_FALSE(Prefix::Parse("10.0.0.0/8x").has_value());
}

TEST(Prefix, SizeFirstLast) {
  Prefix p = *Prefix::Parse("192.168.4.0/22");
  EXPECT_EQ(p.Size(), 1024u);
  EXPECT_EQ(p.First(), Ipv4Address::FromOctets(192, 168, 4, 0));
  EXPECT_EQ(p.Last(), Ipv4Address::FromOctets(192, 168, 7, 255));
  EXPECT_EQ(Prefix::Of(Ipv4Address(0), 0).Size(), std::uint64_t{1} << 32);
}

TEST(Prefix, ContainsAddress) {
  Prefix p = *Prefix::Parse("10.1.0.0/16");
  EXPECT_TRUE(p.Contains(Ipv4Address::FromOctets(10, 1, 255, 255)));
  EXPECT_TRUE(p.Contains(Ipv4Address::FromOctets(10, 1, 0, 0)));
  EXPECT_FALSE(p.Contains(Ipv4Address::FromOctets(10, 2, 0, 0)));
  EXPECT_FALSE(p.Contains(Ipv4Address::FromOctets(9, 255, 0, 0)));
}

TEST(Prefix, ContainsPrefixAndDisjoint) {
  Prefix p16 = *Prefix::Parse("10.1.0.0/16");
  Prefix p24 = *Prefix::Parse("10.1.2.0/24");
  Prefix other = *Prefix::Parse("10.2.0.0/16");
  EXPECT_TRUE(p16.Contains(p24));
  EXPECT_FALSE(p24.Contains(p16));
  EXPECT_TRUE(p16.Contains(p16));
  EXPECT_TRUE(p24.DisjointFrom(other));
  EXPECT_FALSE(p16.DisjointFrom(p24));
}

TEST(Prefix, Slash24OfAndChildren) {
  Prefix p = Prefix::Slash24Of(Ipv4Address::FromOctets(203, 0, 113, 77));
  EXPECT_EQ(p.ToString(), "203.0.113.0/24");
  EXPECT_EQ(p.Child(26, 0).ToString(), "203.0.113.0/26");
  EXPECT_EQ(p.Child(26, 3).ToString(), "203.0.113.192/26");
  EXPECT_EQ(p.Child(25, 1).ToString(), "203.0.113.128/25");
}

TEST(Prefix, OrderingPutsParentBeforeChildren) {
  Prefix parent = *Prefix::Parse("10.0.0.0/8");
  Prefix child = *Prefix::Parse("10.0.0.0/9");
  EXPECT_LT(parent, child);
}

TEST(Lcp, AddressPairs) {
  EXPECT_EQ(LongestCommonPrefixLength(Ipv4Address(0), Ipv4Address(0)), 32);
  EXPECT_EQ(LongestCommonPrefixLength(Ipv4Address(0),
                                      Ipv4Address(0x80000000u)),
            0);
  EXPECT_EQ(LongestCommonPrefixLength(
                Ipv4Address::FromOctets(10, 0, 1, 0),
                Ipv4Address::FromOctets(10, 0, 2, 0)),
            22);
}

TEST(Lcp, PrefixPairsClampToLength) {
  Prefix a = *Prefix::Parse("10.0.1.0/24");
  Prefix b = *Prefix::Parse("10.0.1.0/24");
  EXPECT_EQ(LongestCommonPrefixLength(a, b), 24);
  Prefix c = *Prefix::Parse("10.0.2.0/24");
  EXPECT_EQ(LongestCommonPrefixLength(a, c), 22);
}

TEST(Lcp, SpanningPrefixCoversBoth) {
  Ipv4Address a = Ipv4Address::FromOctets(10, 0, 0, 2);
  Ipv4Address b = Ipv4Address::FromOctets(10, 0, 0, 125);
  Prefix span = SpanningPrefix(a, b);
  EXPECT_TRUE(span.Contains(a));
  EXPECT_TRUE(span.Contains(b));
  EXPECT_EQ(span.ToString(), "10.0.0.0/25");
}

// Property sweep: spanning prefix is the *narrowest* covering prefix.
class SpanningProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpanningProperty, NarrowestCover) {
  std::uint64_t seed = GetParam();
  // Cheap LCG for test-local randomness.
  auto next = [&seed] {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(seed >> 32);
  };
  for (int i = 0; i < 200; ++i) {
    Ipv4Address a(next());
    Ipv4Address b(next());
    Prefix span = SpanningPrefix(a, b);
    EXPECT_TRUE(span.Contains(a));
    EXPECT_TRUE(span.Contains(b));
    if (span.length() < 32) {
      // One level narrower must fail for at least one of the two.
      Prefix narrower = Prefix::Of(a, span.length() + 1);
      EXPECT_FALSE(narrower.Contains(a) && narrower.Contains(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpanningProperty,
                         ::testing::Values(1u, 2u, 3u, 99u, 0xDEADBEEFu));

}  // namespace
}  // namespace hobbit::netsim
